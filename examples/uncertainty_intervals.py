"""Prediction intervals for RegHD via split-conformal calibration.

A power-plant operator needs guarantees, not just point estimates.  This
example wraps RegHD-8 in a :class:`ConformalRegressor` on the CCPP
surrogate and checks the empirical coverage of the resulting intervals on
held-out data — distribution-free, finite-sample, no change to the model.

    python examples/uncertainty_intervals.py
"""

import numpy as np

from repro import MultiModelRegHD, RegHDConfig
from repro.datasets import StandardScaler, load_dataset, train_test_split
from repro.evaluation import ConformalRegressor, render_table


def main() -> None:
    dataset = load_dataset("ccpp").subsample(2500, seed=0)
    split = train_test_split(dataset, seed=0)
    scaler = StandardScaler().fit(split.X_train)
    X_train = scaler.transform(split.X_train)
    X_test = scaler.transform(split.X_test)

    rows = []
    for alpha in (0.32, 0.1, 0.05):
        conformal = ConformalRegressor(
            MultiModelRegHD(
                dataset.n_features, RegHDConfig(dim=1000, n_models=8, seed=0)
            ),
            alpha=alpha,
            seed=0,
        ).fit(X_train, split.y_train)
        interval = conformal.predict_interval(X_test)
        rows.append(
            {
                "alpha": alpha,
                "target_coverage": 1.0 - alpha,
                "empirical_coverage": float(
                    interval.covers(split.y_test).mean()
                ),
                "interval_width_MW": float(interval.width.mean()),
            }
        )
    print(
        render_table(
            rows,
            precision=3,
            title=f"Conformal RegHD on '{dataset.name}' "
            f"(targets in MW; {split.n_test} held-out plants-hours)",
        )
    )

    interval = conformal.predict_interval(X_test[:5])
    print("\nfirst five test predictions (alpha = 0.05):")
    for low, pred, up, truth in zip(
        interval.lower, interval.prediction, interval.upper, split.y_test[:5]
    ):
        marker = "ok " if low <= truth <= up else "MISS"
        print(
            f"  [{low:7.1f}, {up:7.1f}]  point {pred:7.1f}  "
            f"true {truth:7.1f}  {marker}"
        )


if __name__ == "__main__":
    main()
