"""Prediction intervals under drift: batch vs streaming conformal.

A power-plant operator needs guarantees, not just point estimates — and
the guarantee has to survive the plant aging.  This example compares the
two conformal tools in the repo on a stream whose concept shifts midway:

* **batch** — :class:`ConformalRegressor` wraps RegHD-4, calibrated once
  on pre-drift data.  Its split-conformal guarantee is only as good as
  exchangeability: after the concept shifts, the frozen quantile keeps
  issuing pre-drift-width bands and coverage collapses.
* **streaming** — :class:`StreamingRegHD` with an
  :class:`AdaptiveConformal` calibrator riding its honest
  predict-then-train residuals.  The rolling window tracks the current
  concept and the ACI update (``gamma > 0``) nudges the working alpha
  whenever coverage slips, so the intervals re-widen and recover.

    python examples/uncertainty_intervals.py
"""

from repro import MultiModelRegHD, RegHDConfig
from repro.datasets import load_dataset
from repro.evaluation import ConformalRegressor, render_table
from repro.robust import AdaptiveConformal
from repro.streaming import StreamingRegHD

ALPHA = 0.1  # nominal 90 % intervals
N_FEATURES = 5
BATCH = 50
N_BATCHES = 80  # drift hits at the halfway point
N_HISTORY = 1500  # pre-drift rows the batch pipeline calibrates on

# Two linear concepts from the registry: different seeds draw different
# random coefficients, and the post-drift regime is three times noisier.
_HALF_ROWS = (N_BATCHES // 2) * BATCH
_PRE = load_dataset(
    "linear",
    n_samples=N_HISTORY + _HALF_ROWS,
    n_features=N_FEATURES,
    noise=0.3,
    seed=0,
)
_POST = load_dataset(
    "linear", n_samples=_HALF_ROWS, n_features=N_FEATURES, noise=0.9, seed=7
)


def make_stream():
    """A piecewise-stationary stream: the concept switches halfway in."""
    X_pre, y_pre = _PRE.X[N_HISTORY:], _PRE.y[N_HISTORY:]
    half = N_BATCHES // 2
    for b in range(N_BATCHES):
        lo = (b if b < half else b - half) * BATCH
        sl = slice(lo, lo + BATCH)
        if b < half:
            yield X_pre[sl], y_pre[sl]
        else:
            yield _POST.X[sl], _POST.y[sl]


def main() -> None:
    config = RegHDConfig(dim=1000, n_models=4, seed=0)

    # Batch conformal: train + calibrate once, on pre-drift data only —
    # all a one-shot pipeline ever gets to see.
    X_hist, y_hist = _PRE.X[:N_HISTORY], _PRE.y[:N_HISTORY]
    batch = ConformalRegressor(
        MultiModelRegHD(N_FEATURES, config), alpha=ALPHA, seed=0
    ).fit(X_hist, y_hist)

    # Streaming conformal: calibrates prequentially as the data arrives.
    stream = StreamingRegHD(
        N_FEATURES,
        config,
        conformal=AdaptiveConformal(alpha=ALPHA, window=250, gamma=0.002),
    )

    segments = {}  # segment label -> coverage bookkeeping
    for b, (X, y) in enumerate(make_stream()):
        if b < N_BATCHES // 2:
            seg = "pre-drift"
        elif b < N_BATCHES // 2 + 10:
            seg = "drift transient"  # the residual window is re-filling
        else:
            seg = "post-drift"
        stats = segments.setdefault(
            seg, {"n": 0, "n_rows": 0, "batch_hits": 0, "stream_hits": 0,
                  "batch_width": 0.0, "stream_width": 0.0}
        )
        stats["n_rows"] += len(y)

        # Batch: the frozen model + frozen quantile.
        interval = batch.predict_interval(X)
        stats["batch_hits"] += int(interval.covers(y).sum())
        stats["batch_width"] += float(interval.width.sum())

        # Streaming: record the calibrator's prequential score delta
        # around the update (update() predicts, scores, then trains).
        cal = stream.conformal
        covered_before, width = cal.n_covered, 2.0 * cal.quantile()
        scored_before = cal.n_scored
        stream.update(X, y)
        scored = cal.n_scored - scored_before
        if scored:  # warm-up batches are not scored (infinite band)
            stats["stream_hits"] += cal.n_covered - covered_before
            stats["stream_width"] += width * scored
            stats["n"] += scored

    rows = []
    for seg, s in segments.items():
        n = s["n"] or 1
        rows.append(
            {
                "segment": seg,
                "target": 1.0 - ALPHA,
                "batch_coverage": s["batch_hits"] / s["n_rows"],
                "batch_width": s["batch_width"] / s["n_rows"],
                "stream_coverage": s["stream_hits"] / n,
                "stream_width": s["stream_width"] / n,
            }
        )
    print(
        render_table(
            rows,
            precision=3,
            title=(
                "Nominal 90% intervals across a concept shift "
                "(batch = frozen split-conformal, stream = AdaptiveConformal)"
            ),
        )
    )
    print(
        "\nThe frozen batch calibration under-covers once the concept\n"
        "shifts; the streaming calibrator's rolling window + ACI update\n"
        f"pulls coverage back toward {1.0 - ALPHA:.0%} "
        f"(working alpha ended at {stream.conformal.alpha_t:.3f})."
    )


if __name__ == "__main__":
    main()
