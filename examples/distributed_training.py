"""Shard-parallel training with the ModelDelta protocol.

A RegHD model is a bundle — a weighted sum of encoded inputs — so
training decomposes over data shards: N workers train on N disjoint
slices from the same broadcast base state, each captures the sum of
its updates as a ModelDelta, and one ordered merge folds them back.
This example walks the three layers:

1. the raw delta protocol (begin_delta / capture_delta / merge_deltas
   / apply_delta) on two hand-driven workers;
2. ShardTrainer map-reduce rounds, showing 1-shard parity with the
   sequential stream and the mean-vs-sum reduction trade-off;
3. DeltaCoordinator feeding a live StreamingRegHD between prequential
   batches, with delta files round-tripped through save_delta —
   the wire format an edge fleet would actually ship.

    python examples/distributed_training.py
"""

import os
import tempfile

from repro import RegHDConfig, load_delta, save_delta
from repro.core import MultiModelRegHD, SingleModelRegHD, derive_shard_seed
from repro.datasets import load_dataset
from repro.distributed import DeltaCoordinator, ShardTrainer
from repro.metrics import root_mean_squared_error
from repro.streaming import StreamingRegHD

FEATURES = 6
CONFIG = RegHDConfig(dim=1024, n_models=4, seed=0)


def make_data(n: int, seed: int):
    ds = load_dataset(
        "interaction", n_samples=n, n_features=FEATURES, seed=seed
    )
    return ds.X, ds.y


def raw_protocol() -> None:
    print("--- 1. the delta protocol, by hand ---")
    X, y = make_data(400, seed=0)
    base = SingleModelRegHD(FEATURES, dim=1024, seed=0)
    base.scaler.freeze_once(y[:200])  # one shared target space

    # Two "workers": same base state, disjoint halves of the stream.
    meta, arrays = base.get_state()
    deltas = []
    for shard_id, sl in enumerate((slice(0, 200), slice(200, 400))):
        worker = SingleModelRegHD.from_state(meta, arrays)
        worker.begin_delta()
        worker.partial_fit(X[sl], y[sl])
        delta = worker.capture_delta()
        print(f"  shard {shard_id}: {delta.n_samples} samples, "
              f"{delta.nbytes} payload bytes, "
              f"seed stream {derive_shard_seed(0, shard_id)}")
        deltas.append(delta)

    merged = base.merge_deltas(deltas, reduction="sum")
    base.apply_delta(merged)
    rmse = root_mean_squared_error(y, base.predict(X))
    print(f"  merged + applied: train RMSE {rmse:.4f}")


def shard_trainer() -> None:
    print("--- 2. ShardTrainer map-reduce ---")
    X, y = make_data(1200, seed=1)
    X_test, y_test = make_data(300, seed=2)

    # Sequential reference: the same stream, batch by batch.
    seq = MultiModelRegHD(FEATURES, CONFIG)
    for lo in range(0, len(y), 64):
        seq.partial_fit(X[lo : lo + 64], y[lo : lo + 64])
    seq_rmse = root_mean_squared_error(y_test, seq.predict(X_test))
    print(f"  sequential             : RMSE {seq_rmse:.4f}")

    # 1 shard replays the sequential stream (singleton merge = copy).
    replay = MultiModelRegHD(FEATURES, CONFIG)
    ShardTrainer(replay, n_shards=1, batch_rows=64).train(X, y)
    replay_rmse = root_mean_squared_error(y_test, replay.predict(X_test))
    print(f"  1-shard replay         : RMSE {replay_rmse:.4f} "
          f"(diff {abs(replay_rmse - seq_rmse):.2e})")

    # 4 shards, merging after every 128-row super-batch.  The sum
    # reduction bundles disjoint shards (sequential-quality parity at
    # this cadence); mean is the conservative choice for many large
    # shards.
    for reduction in ("sum", "mean"):
        model = MultiModelRegHD(FEATURES, CONFIG)
        trainer = ShardTrainer(model, n_shards=4, reduction=reduction)
        for lo in range(0, len(y), 128):
            trainer.train(X[lo : lo + 128], y[lo : lo + 128])
        rmse = root_mean_squared_error(y_test, model.predict(X_test))
        print(f"  4-shard ({reduction:4s} merge)  : RMSE {rmse:.4f}")


def coordinator() -> None:
    print("--- 3. DeltaCoordinator on a live stream ---")
    stream = StreamingRegHD(FEATURES, CONFIG)
    coord = DeltaCoordinator(stream, n_shards=2, reduction="sum")
    for round_no in range(6):
        X, y = make_data(256, seed=10 + round_no)
        report = coord.round(X, y)
        mse = ("   --  " if report.prequential_mse is None
               else f"{report.prequential_mse:7.4f}")
        print(f"  round {report.round}: prequential MSE {mse}  "
              f"merged {report.merged_bytes} bytes")

    # Deltas are files too — the wire format an edge device would ship.
    trainer = coord.trainer
    X, y = make_data(256, seed=99)
    shard_deltas = trainer.map(X, y)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "shard_delta.npz")
        save_delta(shard_deltas[0], path)
        restored = load_delta(path)
    stream.absorb_delta(trainer.reduce([restored, shard_deltas[1]]))
    print(f"  shipped shard 0 as a delta file "
          f"({restored.n_samples} samples) and folded it back in")


if __name__ == "__main__":
    raw_protocol()
    shard_trainer()
    coordinator()
