"""HD-based reinforcement learning — the paper's future-work extension.

The RegHD conclusion: "Regression is a key required algorithm which can be
extended to support the first HD-based reinforcement learning."  This
example does exactly that: a Q-learning agent whose action-value function
is a set of RegHD hypervector models, trained on two from-scratch control
problems.

    python examples/hd_reinforcement_learning.py
"""

from repro.rl import CartPole, GridWorld, HDQAgent, evaluate_policy, train_agent
from repro.rl.training import random_policy_reward


def run_gridworld() -> None:
    print("=== GridWorld 5x5 (wall with a gap; reach the corner) ===")
    env = GridWorld(5)
    agent = HDQAgent(
        env.state_dim,
        env.n_actions,
        dim=1000,
        seed=0,
        lr=0.5,
        epsilon_decay=0.95,
    )
    run = train_agent(env, agent, episodes=150, seed=0)
    for window_start in range(0, 150, 30):
        chunk = run.rewards()[window_start : window_start + 30]
        print(
            f"  episodes {window_start + 1:3d}-{window_start + 30:3d}: "
            f"mean reward {chunk.mean():+.3f}"
        )
    print(f"  greedy policy : {evaluate_policy(env, agent, episodes=10):+.3f}")
    print(f"  random policy : {random_policy_reward(env, episodes=10):+.3f}")


def run_cartpole() -> None:
    print("\n=== CartPole (balance the pole; reward = steps survived) ===")
    env = CartPole(step_limit=200)
    agent = HDQAgent(
        env.state_dim,
        env.n_actions,
        dim=1000,
        seed=0,
        lr=0.5,
        gamma=0.99,
        epsilon_decay=0.97,
    )
    run = train_agent(env, agent, episodes=150, seed=0)
    for window_start in range(0, 150, 30):
        chunk = run.rewards()[window_start : window_start + 30]
        print(
            f"  episodes {window_start + 1:3d}-{window_start + 30:3d}: "
            f"mean steps {chunk.mean():6.1f}"
        )
    print(f"  greedy policy : {evaluate_policy(env, agent, episodes=10):6.1f} steps")
    print(f"  random policy : {random_policy_reward(env, episodes=10):6.1f} steps")
    print(
        "\nThe agent's Q-function is k hypervectors updated with the "
        "RegHD delta rule on TD errors — no gradients, no replay network."
    )


if __name__ == "__main__":
    run_gridworld()
    run_cartpole()
