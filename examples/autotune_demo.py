"""Auto-tuning RegHD for a new dataset.

Runs the staged autotuner (k -> softmax temperature -> dimensionality
ladder under a 5 % quality budget) on the airfoil surrogate and compares
the tuned configuration against the library defaults on held-out data.

    python examples/autotune_demo.py
"""

from repro import MultiModelRegHD, RegHDConfig, mean_squared_error
from repro.core import ConvergencePolicy
from repro.datasets import StandardScaler, load_dataset, train_test_split
from repro.evaluation import render_table
from repro.evaluation.autotune import autotune_reghd
from repro.hardware import RegHDCostSpec, reghd_memory


def main() -> None:
    dataset = load_dataset("airfoil").subsample(1200, seed=0)
    split = train_test_split(dataset, seed=0)
    scaler = StandardScaler().fit(split.X_train)
    X_train = scaler.transform(split.X_train)
    X_test = scaler.transform(split.X_test)

    base = RegHDConfig(
        seed=0, convergence=ConvergencePolicy(max_epochs=12, patience=3)
    )
    print("running staged autotune (k -> temperature -> dimension)...")
    result = autotune_reghd(
        X_train,
        split.y_train,
        base_config=base,
        k_grid=(1, 2, 4, 8, 16),
        temp_grid=(5.0, 20.0, 50.0),
        dim_ladder=(4000, 2000, 1000, 500),
        probe_dim=1000,
        quality_budget=0.05,
        seed=0,
    )

    print(f"\nevaluated {result.n_trials} configurations:")
    rows = [
        {"stage": t.stage, "params": str(t.params), "val_mse": t.val_mse}
        for t in result.trials
    ]
    print(render_table(rows, precision=3))

    chosen = result.config
    print(
        f"\nchosen: k={chosen.n_models}, temp={chosen.softmax_temp}, "
        f"D={chosen.dim}"
    )

    # Head-to-head on the held-out test set.
    default_model = MultiModelRegHD(dataset.n_features, base).fit(
        X_train, split.y_train
    )
    tuned_model = MultiModelRegHD(dataset.n_features, chosen).fit(
        X_train, split.y_train
    )
    default_mse = mean_squared_error(
        split.y_test, default_model.predict(X_test)
    )
    tuned_mse = mean_squared_error(split.y_test, tuned_model.predict(X_test))
    default_kib = reghd_memory(
        RegHDCostSpec.from_config(dataset.n_features, base),
        count_encoder=False,
    ).total_kib
    tuned_kib = reghd_memory(
        RegHDCostSpec.from_config(dataset.n_features, chosen),
        count_encoder=False,
    ).total_kib
    print(
        render_table(
            [
                {
                    "config": f"default (k=8, D={base.dim})",
                    "test_mse": default_mse,
                    "model_kib": default_kib,
                },
                {
                    "config": f"tuned (k={chosen.n_models}, D={chosen.dim})",
                    "test_mse": tuned_mse,
                    "model_kib": tuned_kib,
                },
            ],
            precision=2,
            title="held-out comparison",
        )
    )


if __name__ == "__main__":
    main()
