"""Concept-drift adaptation with streaming RegHD.

A sensor-calibration scenario: the device learns the mapping from raw
sensor readings to a physical quantity, then the sensor is recalibrated
mid-stream (an abrupt concept change).  A drift-aware streaming learner
(Page-Hinkley detection + exponential forgetting) recovers quickly; a
frozen-memory learner keeps averaging the two incompatible concepts.

    python examples/concept_drift_adaptation.py
"""

import numpy as np

from repro import RegHDConfig
from repro.streaming import PageHinkley, StreamingRegHD

N_BATCHES_PER_CONCEPT = 30
BATCH = 64
CONFIG = RegHDConfig(dim=1000, n_models=4, seed=0)


def batches(concept: int, n_batches: int, seed: int):
    rng = np.random.default_rng(seed)
    for _ in range(n_batches):
        X = rng.normal(size=(BATCH, 4))
        if concept == 0:
            y = np.sin(2 * X[:, 0]) + X[:, 1]
        else:  # recalibration flips the response and adds an offset
            y = -np.sin(2 * X[:, 0]) - X[:, 1] + 2.0
        yield X, y


def run(label: str, stream: StreamingRegHD) -> None:
    for X, y in batches(0, N_BATCHES_PER_CONCEPT, seed=0):
        stream.update(X, y)
    for X, y in batches(1, N_BATCHES_PER_CONCEPT, seed=1):
        stream.update(X, y)

    curve = stream.history.mse_curve()
    drift_events = stream.history.drift_events
    print(f"--- {label} ---")
    print(f"  pre-drift MSE (last 5 batches of concept A): "
          f"{np.nanmean(curve[25:30]):.3f}")
    print(f"  right after the drift (batches 31-35):       "
          f"{np.nanmean(curve[30:35]):.3f}")
    print(f"  recovered (last 5 batches of concept B):     "
          f"{np.nanmean(curve[-5:]):.3f}")
    if drift_events:
        print(f"  drift detected at batch(es): {drift_events} "
              f"(change was at batch {N_BATCHES_PER_CONCEPT + 1})")
    else:
        print("  drift detected: never")
    print()


def main() -> None:
    run(
        "frozen memory (no detector, no forgetting)",
        StreamingRegHD(4, CONFIG, forgetting=1.0),
    )
    run(
        "drift-aware (Page-Hinkley + forgetting)",
        StreamingRegHD(
            4,
            CONFIG,
            forgetting=0.99,
            detector=PageHinkley(threshold=1.0),
            drift_shrink=0.0,
        ),
    )
    print(
        "Because a model hypervector is a weighted *sum* of encoded "
        "samples, forgetting is just scalar decay and a hard reset is "
        "multiplication by zero — no optimiser state to rebuild."
    )


if __name__ == "__main__":
    main()
