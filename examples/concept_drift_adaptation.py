"""Concept-drift adaptation with streaming RegHD.

A sensor-calibration scenario, declared once in the workload registry:
the ``sensor_recalibration`` workload pairs the ``sensor_forecast``
dataset with an abrupt drift profile (mid-stream the target is inverted
and offset — a recalibrated sensor).  This example replays that declared
stream through two learners: a drift-aware one (Page-Hinkley detection +
exponential forgetting) recovers quickly; a frozen-memory learner keeps
averaging the two incompatible concepts.

    python examples/concept_drift_adaptation.py
"""

import numpy as np

from repro import RegHDConfig
from repro.datasets import StandardScaler
from repro.streaming import PageHinkley, StreamingRegHD
from repro.workloads import get_workload

BATCH = 64
CONFIG = RegHDConfig(dim=1000, n_models=4, seed=0)

WORKLOAD = get_workload("sensor_recalibration")
DATASET = WORKLOAD.load(quick=False, seed=0)


def batches():
    """The workload's stream: standardized windows, drift applied."""
    X = StandardScaler().fit(DATASET.X).transform(DATASET.X)
    y, n = DATASET.y, len(DATASET.y)
    for lo in range(0, n - BATCH + 1, BATCH):
        yield X[lo : lo + BATCH], WORKLOAD.drifted_targets(
            y[lo : lo + BATCH], lo / n
        )


def run(label: str, stream: StreamingRegHD) -> None:
    for X, y in batches():
        stream.update(X, y)

    curve = stream.history.mse_curve()
    n_batches = len(curve)
    # First batch whose targets the workload's abrupt drift rewrites.
    drift_batch = int(np.ceil(WORKLOAD.drift.at * n_batches))
    drift_events = stream.history.drift_events
    print(f"--- {label} ---")
    print(f"  pre-drift MSE (last 5 batches of concept A): "
          f"{np.nanmean(curve[drift_batch - 5 : drift_batch]):.3f}")
    print(f"  right after the drift (next 5 batches):      "
          f"{np.nanmean(curve[drift_batch : drift_batch + 5]):.3f}")
    print(f"  recovered (last 5 batches of concept B):     "
          f"{np.nanmean(curve[-5:]):.3f}")
    if drift_events:
        print(f"  drift detected at batch(es): {drift_events} "
              f"(change was at batch {drift_batch + 1})")
    else:
        print("  drift detected: never")
    print()


def main() -> None:
    in_features = DATASET.n_features
    run(
        "frozen memory (no detector, no forgetting)",
        StreamingRegHD(in_features, CONFIG, forgetting=1.0),
    )
    run(
        "drift-aware (Page-Hinkley + forgetting)",
        StreamingRegHD(
            in_features,
            CONFIG,
            forgetting=0.99,
            detector=PageHinkley(threshold=1.0),
            drift_shrink=0.0,
        ),
    )
    print(
        "Because a model hypervector is a weighted *sum* of encoded "
        "samples, forgetting is just scalar decay and a hard reset is "
        "multiplication by zero — no optimiser state to rebuild."
    )


if __name__ == "__main__":
    main()
