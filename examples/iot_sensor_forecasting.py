"""IoT sensor forecasting with streaming (online) RegHD.

The paper motivates RegHD with IoT devices that must learn from sensor
streams in real time.  This example:

1. simulates a noisy periodic sensor signal (e.g. temperature),
2. encodes sliding windows with the permutation-based sequence encoder,
3. trains RegHD *online* with ``partial_fit`` — one pass, no stored
   dataset — and tracks forecasting error as the stream flows.

    python examples/iot_sensor_forecasting.py
"""

from repro import MultiModelRegHD, RegHDConfig, SequenceEncoder, r2_score
from repro.datasets import load_dataset

WINDOW = 12
DIM = 2000
STREAM_LEN = 2400
CHUNK = 100  # samples per arriving batch


def main() -> None:
    dataset = load_dataset("sensor_forecast", n=STREAM_LEN, window=WINDOW, seed=0)
    X, y = dataset.X, dataset.y

    encoder = SequenceEncoder(
        WINDOW, DIM, seed=0, levels=64, value_range=(-2.5, 2.5)
    )
    model = MultiModelRegHD(
        WINDOW,
        RegHDConfig(dim=DIM, n_models=4, seed=0),
        encoder=encoder,
    )

    # Hold out the final stretch of the stream for evaluation.
    n_train = len(y) - 400
    X_stream, y_stream = X[:n_train], y[:n_train]
    X_test, y_test = X[n_train:], y[n_train:]

    print(f"streaming {n_train} windows in chunks of {CHUNK}...")
    for start in range(0, n_train, CHUNK):
        model.partial_fit(
            X_stream[start : start + CHUNK], y_stream[start : start + CHUNK]
        )
        if start % (8 * CHUNK) == 0:
            r2 = r2_score(y_test, model.predict(X_test))
            print(f"  after {start + CHUNK:5d} windows: held-out R^2 = {r2:.3f}")

    final = r2_score(y_test, model.predict(X_test))
    print(f"\nfinal one-step-ahead forecast R^2 = {final:.3f}")

    # Show a few forecasts against the truth.
    preds = model.predict(X_test[:6])
    print("\n  t   truth  forecast")
    for i, (truth, pred) in enumerate(zip(y_test[:6], preds)):
        print(f"  {i}  {truth:6.3f}  {pred:8.3f}")


if __name__ == "__main__":
    main()
