"""Explaining RegHD predictions.

The paper counts interpretability among HD computing's advantages.  This
example trains RegHD on the Friedman #1 benchmark — whose ground truth
uses only features 0-4, with three pure distractors appended — and shows:

1. feature importances recovering the informative/distractor split,
2. a single prediction decomposed into per-cluster contributions
   (Eq. 6 unpacked; the terms sum to the prediction exactly),
3. cluster population profiles over the test set.

    python examples/explain_predictions.py
"""

from repro import MultiModelRegHD, RegHDConfig
from repro.datasets import load_dataset
from repro.evaluation import render_table
from repro.interpret import cluster_profile, feature_importance, prediction_breakdown


def main() -> None:
    dataset = load_dataset(
        "friedman1", n_samples=800, n_features=8, noise=0.3, seed=0
    )
    model = MultiModelRegHD(
        8, RegHDConfig(dim=2000, n_models=4, seed=0)
    ).fit(dataset.X, dataset.y)

    print("=== feature importance (finite-difference sensitivity) ===")
    importances = feature_importance(model, dataset.X[:200])
    rows = [
        {
            "feature": f"x{i}",
            "importance": float(imp),
            "ground_truth": "informative" if i < 5 else "distractor",
        }
        for i, imp in enumerate(importances)
    ]
    print(render_table(rows, precision=3))

    print("\n=== one prediction, decomposed (Eq. 6) ===")
    x = dataset.X[0]
    explanation = prediction_breakdown(model, x)
    print(f"prediction = {explanation.prediction:.3f} "
          f"(true target = {dataset.y[0]:.3f})")
    print(f"baseline (training-target mean) = {explanation.baseline:.3f}")
    contrib_rows = [
        {
            "cluster": c.cluster,
            "confidence": c.confidence,
            "dot_product": c.dot_product,
            "contribution": c.contribution,
        }
        for c in explanation.contributions
    ]
    print(render_table(contrib_rows, precision=3))
    print(f"baseline + contributions = {explanation.check_sums():.3f}  "
          "(equals the prediction exactly)")

    print("\n=== cluster population profile ===")
    profiles = cluster_profile(model, dataset.X[200:])
    profile_rows = [
        {
            "cluster": p.cluster,
            "inputs": p.count,
            "share": p.share,
            "mean_prediction": p.mean_prediction,
        }
        for p in profiles
    ]
    print(render_table(profile_rows, precision=3))


if __name__ == "__main__":
    main()
