"""Edge deployment: pick a quantisation config by quality/energy trade-off.

Walks the Section-3 quantisation space on a power-plant-style workload,
measuring test MSE for each configuration and pricing its inference cost
on the embedded-CPU and FPGA device profiles.  This is the decision a
deployment engineer makes before flashing a model onto a sub-watt device.

    python examples/edge_deployment_quantization.py
"""

from repro import ClusterQuant, MultiModelRegHD, PredictQuant, RegHDConfig
from repro.datasets import StandardScaler, load_dataset, train_test_split
from repro.evaluation import render_table
from repro.hardware import (
    ARM_A53,
    FPGA_KINTEX7,
    RegHDCostSpec,
    estimate,
    reghd_infer_cost,
    reghd_memory,
)
from repro.metrics import mean_squared_error

DIM = 2000
CONFIGS = {
    "full-precision": (ClusterQuant.NONE, PredictQuant.FULL),
    "quantized-cluster": (ClusterQuant.FRAMEWORK, PredictQuant.FULL),
    "binary-query": (ClusterQuant.FRAMEWORK, PredictQuant.BINARY_QUERY),
    "binary-model": (ClusterQuant.FRAMEWORK, PredictQuant.BINARY_MODEL),
    "fully-binary": (ClusterQuant.FRAMEWORK, PredictQuant.BINARY_BOTH),
}


def main() -> None:
    dataset = load_dataset("ccpp").subsample(1500, seed=0)
    split = train_test_split(dataset, seed=0)
    scaler = StandardScaler().fit(split.X_train)
    X_train = scaler.transform(split.X_train)
    X_test = scaler.transform(split.X_test)

    rows = []
    for label, (cluster_quant, predict_quant) in CONFIGS.items():
        model = MultiModelRegHD(
            dataset.n_features,
            RegHDConfig(
                dim=DIM,
                n_models=8,
                seed=0,
                cluster_quant=cluster_quant,
                predict_quant=predict_quant,
            ),
        )
        model.fit(X_train, split.y_train)
        mse = mean_squared_error(split.y_test, model.predict(X_test))

        spec = RegHDCostSpec(
            dataset.n_features,
            DIM,
            8,
            cluster_quant=cluster_quant,
            predict_quant=predict_quant,
        )
        per_query = reghd_infer_cost(spec, 1)
        fpga = estimate(per_query, FPGA_KINTEX7)
        arm = estimate(per_query, ARM_A53)
        rows.append(
            {
                "config": label,
                "test_mse": mse,
                "fpga_uj_per_query": fpga.energy_j * 1e6,
                "arm_uj_per_query": arm.energy_j * 1e6,
                "arm_us_per_query": arm.latency_s * 1e6,
                "model_kib": reghd_memory(spec, count_encoder=False).total_kib,
            }
        )

    print(
        render_table(
            rows,
            precision=3,
            title=f"Quantisation trade-offs on '{dataset.name}' "
            f"(D={DIM}, k=8; per-query inference cost)",
        )
    )

    best_quality = min(rows, key=lambda r: r["test_mse"])
    best_energy = min(rows, key=lambda r: r["arm_uj_per_query"])
    print(f"\nbest quality : {best_quality['config']}")
    print(f"best energy  : {best_energy['config']}")
    print(
        "\nThe paper's recommendation — quantise the clusters, binarise the "
        "query, keep the model integer — sits on the knee of this curve."
    )


if __name__ == "__main__":
    main()
