"""Compare RegHD against classical regressors on the UCI surrogates.

A compact version of the paper's Table-1 study: grid-search each model
family, train on the same split, and print the MSE leaderboard — the
workflow a practitioner uses to decide whether RegHD fits their problem.

    python examples/model_comparison.py [dataset]

where ``dataset`` is one of the registered names (default: boston).
"""

import sys

from repro import BaselineHD, MultiModelRegHD, RegHDConfig
from repro.baselines import (
    DecisionTreeRegressor,
    KNNRegressor,
    MLPRegressor,
    RidgeRegression,
    SVR,
)
from repro.datasets import load_dataset, train_test_split
from repro.evaluation import grid_search, render_table, run_on_split


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "boston"
    dataset = load_dataset(name).subsample(1500, seed=0)
    split = train_test_split(dataset, seed=0)
    print(
        f"dataset: {dataset.name} "
        f"({split.n_train} train / {split.n_test} test, "
        f"{dataset.n_features} features)\n"
    )

    # Grid-search the two most tunable families (the paper tunes every
    # comparator by grid search).
    ridge_grid = grid_search(
        lambda alpha: RidgeRegression(alpha=alpha),
        {"alpha": [0.01, 0.1, 1.0, 10.0]},
        split.X_train,
        split.y_train,
        seed=0,
    )
    tree_grid = grid_search(
        lambda max_depth: DecisionTreeRegressor(max_depth=max_depth),
        {"max_depth": [4, 6, 8, 12]},
        split.X_train,
        split.y_train,
        seed=0,
    )
    print(f"grid search: ridge alpha={ridge_grid.best_params['alpha']}, "
          f"tree depth={tree_grid.best_params['max_depth']}\n")

    factories = {
        "Ridge": lambda n: RidgeRegression(**ridge_grid.best_params),
        "DecisionTree": lambda n: DecisionTreeRegressor(**tree_grid.best_params),
        "kNN": lambda n: KNNRegressor(k=7, weights="distance"),
        "DNN (MLP)": lambda n: MLPRegressor(hidden=(64, 64), epochs=80, seed=0),
        "SVR (RBF)": lambda n: SVR(epochs=60, seed=0),
        "Baseline-HD": lambda n: BaselineHD(n, dim=2000, n_bins=128, seed=0),
        "RegHD-1": lambda n: MultiModelRegHD(
            n, RegHDConfig(dim=2000, n_models=1, seed=0)
        ),
        "RegHD-8": lambda n: MultiModelRegHD(
            n, RegHDConfig(dim=2000, n_models=8, seed=0)
        ),
        "RegHD-32": lambda n: MultiModelRegHD(
            n, RegHDConfig(dim=2000, n_models=32, seed=0)
        ),
    }

    results = [
        run_on_split(factory, split, dataset_name=dataset.name, model_label=label)
        for label, factory in factories.items()
    ]
    rows = sorted(
        (
            {
                "model": r.model,
                "test_mse": r.mse,
                "test_r2": r.r2,
                "fit_seconds": r.fit_seconds,
            }
            for r in results
        ),
        key=lambda row: row["test_mse"],
    )
    print(render_table(rows, precision=3, title="leaderboard (lower MSE first)"))


if __name__ == "__main__":
    main()
