"""Robustness of RegHD vs a DNN under hardware faults.

IoT hardware running on unreliable power corrupts model memory.  This
example trains RegHD-8 and an equivalent-quality MLP on the same task,
then injects sign-flip faults into their *trained parameters* at
increasing rates and reports the quality degradation of each — the
holographic-representation robustness argument of the paper's Section 3,
made concrete.

    python examples/robustness_under_faults.py
"""

from repro import MultiModelRegHD, RegHDConfig
from repro.baselines import MLPRegressor
from repro.datasets import StandardScaler, load_dataset, train_test_split
from repro.evaluation import render_table
from repro.noise import sweep_mlp, sweep_reghd

RATES = [0.0, 0.01, 0.05, 0.1, 0.2, 0.3]


def main() -> None:
    dataset = load_dataset("airfoil").subsample(1200, seed=0)
    split = train_test_split(dataset, seed=0)
    scaler = StandardScaler().fit(split.X_train)
    X_train = scaler.transform(split.X_train)
    X_test = scaler.transform(split.X_test)

    print("training RegHD-8 and the DNN comparator...")
    reghd = MultiModelRegHD(
        dataset.n_features, RegHDConfig(dim=2000, n_models=8, seed=0)
    ).fit(X_train, split.y_train)
    mlp = MLPRegressor(hidden=(64, 64), epochs=80, seed=0).fit(
        X_train, split.y_train
    )

    print("injecting sign-flip faults into trained parameters...\n")
    hd_curve = sweep_reghd(
        reghd, X_test, split.y_test, rates=RATES, repeats=5, seed=0
    )
    mlp_curve = sweep_mlp(
        mlp, X_test, split.y_test, rates=RATES, repeats=5, seed=0
    )

    rows = []
    for rate, hd_deg, mlp_deg in zip(
        RATES, hd_curve.degradation(), mlp_curve.degradation()
    ):
        rows.append(
            {
                "fault_rate": rate,
                "RegHD_mse_growth_%": 100.0 * hd_deg,
                "DNN_mse_growth_%": 100.0 * mlp_deg,
            }
        )
    print(
        render_table(
            rows,
            precision=1,
            title="Relative MSE growth under parameter sign-flips "
            "(5 fault draws per point)",
        )
    )
    print(
        "\nHypervectors spread information uniformly across dimensions, so "
        "random flips shave accuracy gradually; the DNN's structured "
        "weights amplify single faults through the network."
    )


if __name__ == "__main__":
    main()
