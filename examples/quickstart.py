"""Quickstart: train RegHD on a nonlinear regression task.

Runs in a few seconds on a laptop:

    python examples/quickstart.py
"""

from repro import (
    MultiModelRegHD,
    RegHDConfig,
    SingleModelRegHD,
    mean_squared_error,
    r2_score,
)
from repro.datasets import load_dataset, train_test_split


def main() -> None:
    # A nonlinear synthetic task from the dataset registry:
    # y = sin(2 x0) + 0.5 x1 x2 + 0.3 x3 (+ noise).
    dataset = load_dataset("interaction", n_samples=900, n_features=5, seed=0)
    split = train_test_split(dataset, test_fraction=1 / 3, seed=0)
    X_train, y_train = split.X_train, split.y_train
    X_test, y_test = split.X_test, split.y_test

    # --- single-model RegHD (paper Sec. 2.3) -----------------------------
    single = SingleModelRegHD(in_features=5, dim=2000, seed=0)
    single.fit(X_train, y_train)
    pred = single.predict(X_test)
    print("Single-model RegHD")
    print(f"  test MSE = {mean_squared_error(y_test, pred):.4f}")
    print(f"  test R^2 = {r2_score(y_test, pred):.3f}")
    print(f"  converged after {single.history_.n_epochs} iterations")

    # --- multi-model RegHD (paper Sec. 2.4) ------------------------------
    config = RegHDConfig(dim=2000, n_models=8, seed=0)
    multi = MultiModelRegHD(in_features=5, config=config)
    multi.fit(X_train, y_train)
    pred = multi.predict(X_test)
    print("\nMulti-model RegHD (k=8)")
    print(f"  test MSE = {mean_squared_error(y_test, pred):.4f}")
    print(f"  test R^2 = {r2_score(y_test, pred):.3f}")

    # Peek at the run-time clustering: which cluster claims each input,
    # and with what confidence.
    assignments = multi.cluster_assignments(X_test[:5])
    confidences = multi.confidences(X_test[:5])
    print("\nFirst five test inputs:")
    for i, (a, c) in enumerate(zip(assignments, confidences)):
        print(f"  input {i}: cluster {a}, confidence {c.max():.2f}")


if __name__ == "__main__":
    main()
