"""Language identification with n-gram hypervectors.

The related-work lineage of HD computing began with random indexing of
text ([38] in the paper).  This example reproduces that result in
miniature on synthetic "languages" (distinct character Markov chains):
bundle the trigram hypervectors of training texts per language, classify
fresh texts by cosine similarity to the language bundles.

    python examples/language_identification.py
"""

import numpy as np

from repro.encoding import NGramTextEncoder
from repro.ops import cosine_similarity

ALPHABET = "abcdefghijklmnop "
N_LANGUAGES = 4
TRAIN_TEXTS = 20
TEST_TEXTS = 30
TEXT_LENGTH = 300


def make_language(seed: int):
    """A random character-level Markov chain — a synthetic 'language'."""
    rng = np.random.default_rng(seed)
    transition = rng.dirichlet(
        np.full(len(ALPHABET), 0.15), size=len(ALPHABET)
    )

    def sample(length: int = TEXT_LENGTH) -> str:
        idx = [int(rng.integers(len(ALPHABET)))]
        for _ in range(length - 1):
            idx.append(int(rng.choice(len(ALPHABET), p=transition[idx[-1]])))
        return "".join(ALPHABET[i] for i in idx)

    return sample


def main() -> None:
    encoder = NGramTextEncoder(4000, n=3, alphabet=ALPHABET, seed=0)
    languages = [make_language(seed) for seed in range(1, N_LANGUAGES + 1)]

    # Train: one bundle hypervector per language.
    print(f"bundling {TRAIN_TEXTS} training texts per language...")
    profiles = np.stack(
        [
            encoder.encode_batch([lang() for _ in range(TRAIN_TEXTS)]).sum(axis=0)
            for lang in languages
        ]
    )

    # Test: nearest language bundle by cosine similarity.
    correct = 0
    confusion = np.zeros((N_LANGUAGES, N_LANGUAGES), dtype=int)
    for true_label, lang in enumerate(languages):
        for _ in range(TEST_TEXTS):
            query = encoder.encode(lang())
            sims = cosine_similarity(profiles, query)
            predicted = int(np.argmax(sims))
            confusion[true_label, predicted] += 1
            correct += predicted == true_label

    total = N_LANGUAGES * TEST_TEXTS
    print(f"\naccuracy: {correct}/{total} = {correct / total:.1%}")
    print("\nconfusion matrix (rows = true, cols = predicted):")
    header = "      " + "  ".join(f"L{j}" for j in range(N_LANGUAGES))
    print(header)
    for i, row in enumerate(confusion):
        print(f"  L{i}  " + "  ".join(f"{v:2d}" for v in row))
    print(
        "\nOne bundle per class, one cosine per query — the single-pass "
        "HD learning the paper's related work describes."
    )


if __name__ == "__main__":
    main()
