# Convenience targets for the RegHD reproduction.

PYTHON ?= python

.PHONY: install test bench examples reproduce clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Run every example end to end (a few minutes total).
examples:
	set -e; for f in examples/*.py; do echo "=== $$f ==="; $(PYTHON) $$f; done

# Regenerate everything EXPERIMENTS.md quotes and capture the logs.
reproduce:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
	@echo "benchmark tables written under benchmarks/results/"

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
