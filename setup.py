"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` needs bdist_wheel; on the offline evaluation image the
`wheel` distribution is unavailable, so `python setup.py develop` provides
the equivalent editable install. Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
