"""Tests for fault injection and robustness sweeps."""

import numpy as np
import pytest

from repro.baselines.mlp import MLPRegressor
from repro.core.config import ConvergencePolicy, RegHDConfig
from repro.core.multi import MultiModelRegHD
from repro.core.single import SingleModelRegHD
from repro.exceptions import ConfigurationError
from repro.noise.injection import (
    INJECTORS,
    add_gaussian_noise,
    flip_bits,
    flip_signs,
    outlier_burst,
    stuck_at_zero,
)
from repro.noise.robustness import sweep_mlp, sweep_reghd


class TestInjectors:
    def test_flip_signs_rate_zero_identity(self):
        v = np.random.default_rng(0).normal(size=100)
        np.testing.assert_array_equal(flip_signs(v, 0.0, seed=1), v)

    def test_flip_signs_rate_one_negates(self):
        v = np.random.default_rng(0).normal(size=100)
        np.testing.assert_array_equal(flip_signs(v, 1.0, seed=1), -v)

    def test_flip_signs_fraction(self):
        v = np.ones(100_000)
        out = flip_signs(v, 0.3, seed=0)
        assert np.mean(out < 0) == pytest.approx(0.3, abs=0.01)

    def test_flip_signs_does_not_mutate_input(self):
        v = np.ones(10)
        flip_signs(v, 1.0, seed=0)
        np.testing.assert_array_equal(v, 1.0)

    def test_flip_bits(self):
        bits = np.zeros(10_000, dtype=np.uint8)
        out = flip_bits(bits, 0.25, seed=0)
        assert out.mean() == pytest.approx(0.25, abs=0.02)

    def test_flip_bits_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            flip_bits(np.array([0, 2]), 0.1)

    def test_gaussian_noise_rate_zero(self):
        v = np.random.default_rng(0).normal(size=50)
        np.testing.assert_array_equal(add_gaussian_noise(v, 0.0, seed=1), v)

    def test_gaussian_noise_perturbs(self):
        v = np.ones(1000)
        out = add_gaussian_noise(v, 1.0, seed=0, relative_sigma=1.0)
        assert not np.array_equal(out, v)
        assert out.std() > 0.5

    def test_stuck_at_zero(self):
        v = np.ones(10_000)
        out = stuck_at_zero(v, 0.4, seed=0)
        assert np.mean(out == 0.0) == pytest.approx(0.4, abs=0.02)

    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_invalid_rates(self, rate):
        with pytest.raises(ConfigurationError):
            flip_signs(np.ones(4), rate)

    def test_deterministic(self):
        v = np.random.default_rng(0).normal(size=64)
        np.testing.assert_array_equal(
            flip_signs(v, 0.5, seed=7), flip_signs(v, 0.5, seed=7)
        )


@pytest.fixture
def trained_models(tiny_regression):
    X, y, Xte, yte = tiny_regression
    conv = ConvergencePolicy(max_epochs=8, patience=3)
    hd = MultiModelRegHD(
        5, RegHDConfig(dim=512, n_models=4, seed=0, convergence=conv)
    ).fit(X, y)
    mlp = MLPRegressor(hidden=(16, 16), epochs=60, seed=0).fit(X, y)
    return hd, mlp, Xte, yte


class TestSweeps:
    def test_reghd_curve_structure(self, trained_models):
        hd, _, Xte, yte = trained_models
        curve = sweep_reghd(
            hd, Xte, yte, rates=[0.0, 0.05, 0.2], repeats=2, seed=0
        )
        assert len(curve.points) == 3
        assert curve.points[0].rate == 0.0
        assert np.all(np.isfinite(curve.mses))

    def test_model_restored_after_sweep(self, trained_models):
        hd, _, Xte, yte = trained_models
        before = hd.predict(Xte)
        sweep_reghd(hd, Xte, yte, rates=[0.0, 0.5], repeats=1, seed=0)
        np.testing.assert_allclose(hd.predict(Xte), before)

    def test_mlp_restored_after_sweep(self, trained_models):
        _, mlp, Xte, yte = trained_models
        before = mlp.predict(Xte)
        sweep_mlp(mlp, Xte, yte, rates=[0.0, 0.5], repeats=1, seed=0)
        np.testing.assert_allclose(mlp.predict(Xte), before)

    def test_quality_degrades_with_rate(self, trained_models):
        hd, _, Xte, yte = trained_models
        curve = sweep_reghd(
            hd, Xte, yte, rates=[0.0, 0.3], repeats=3, seed=0
        )
        assert curve.points[1].mse > curve.points[0].mse

    def test_single_model_supported(self, tiny_regression):
        X, y, Xte, yte = tiny_regression
        model = SingleModelRegHD(
            5, dim=256, seed=0, convergence=ConvergencePolicy(max_epochs=5, patience=2)
        ).fit(X, y)
        curve = sweep_reghd(model, Xte, yte, rates=[0.0, 0.1], repeats=1, seed=0)
        assert len(curve.points) == 2

    def test_degradation_relative(self, trained_models):
        hd, _, Xte, yte = trained_models
        curve = sweep_reghd(hd, Xte, yte, rates=[0.0, 0.2], repeats=2, seed=0)
        deg = curve.degradation()
        assert deg[0] == pytest.approx(0.0)
        assert deg[1] >= 0.0

    def test_rates_must_start_at_zero(self, trained_models):
        hd, _, Xte, yte = trained_models
        with pytest.raises(ConfigurationError):
            sweep_reghd(hd, Xte, yte, rates=[0.1, 0.2])

    def test_unknown_injector(self, trained_models):
        hd, _, Xte, yte = trained_models
        with pytest.raises(ConfigurationError):
            sweep_reghd(hd, Xte, yte, rates=[0.0], injector="emp")

    def test_reghd_more_robust_than_mlp(self, trained_models):
        """The paper's robustness claim, at a moderate error rate."""
        hd, mlp, Xte, yte = trained_models
        rates = [0.0, 0.1]
        hd_curve = sweep_reghd(hd, Xte, yte, rates=rates, repeats=3, seed=0)
        mlp_curve = sweep_mlp(mlp, Xte, yte, rates=rates, repeats=3, seed=0)
        assert hd_curve.degradation()[1] < mlp_curve.degradation()[1]


class TestBitFlipInjector:
    def test_registered_in_injectors(self):
        from repro.noise.injection import INJECTORS, bit_flip

        assert INJECTORS["bit_flip"] is bit_flip

    def test_dispatches_to_binary_domain(self):
        from repro.noise.injection import bit_flip

        bits = np.zeros(10_000, dtype=np.uint8)
        out = bit_flip(bits, 0.25, seed=0)
        assert set(np.unique(out)) <= {0, 1}
        assert out.mean() == pytest.approx(0.25, abs=0.02)

    def test_dispatches_to_sign_domain(self):
        from repro.noise.injection import bit_flip

        v = np.random.default_rng(0).normal(size=10_000)
        out = bit_flip(v, 0.3, seed=0)
        assert np.mean(out != v) == pytest.approx(0.3, abs=0.02)
        np.testing.assert_array_equal(np.abs(out), np.abs(v))

    def test_binary_dispatch_matches_flip_bits(self):
        from repro.noise.injection import bit_flip, flip_bits

        bits = (np.random.default_rng(1).random(500) < 0.5).astype(np.uint8)
        np.testing.assert_array_equal(
            bit_flip(bits, 0.2, seed=3), flip_bits(bits, 0.2, seed=3)
        )

    def test_sweep_binary_quantized_model_native_domain(self, tiny_regression):
        """A binary-quantised model can now be swept with bit flips in its
        native (sign) domain through the registered injector."""
        from repro.core.quantization import ClusterQuant, PredictQuant
        from repro.noise.robustness import sweep_reghd

        X, y, Xte, yte = tiny_regression
        conv = ConvergencePolicy(max_epochs=6, patience=3)
        model = MultiModelRegHD(
            5,
            RegHDConfig(
                dim=512,
                n_models=4,
                seed=0,
                convergence=conv,
                cluster_quant=ClusterQuant.FRAMEWORK,
                predict_quant=PredictQuant.BINARY_MODEL,
            ),
        ).fit(X, y)
        curve = sweep_reghd(
            model, Xte, yte,
            rates=[0.0, 0.1, 0.3],
            injector="bit_flip",
            repeats=2,
            seed=0,
        )
        assert curve.injector == "bit_flip"
        assert np.all(np.isfinite(curve.mses))
        assert curve.points[-1].mse > curve.points[0].mse

    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_invalid_rates(self, rate):
        from repro.noise.injection import bit_flip

        with pytest.raises(ConfigurationError):
            bit_flip(np.ones(4), rate)


class TestOutlierBurst:
    def test_registered_in_injectors(self):
        assert INJECTORS["outlier_burst"] is outlier_burst

    def test_rate_zero_identity(self, rng):
        X = rng.normal(size=(20, 4))
        np.testing.assert_array_equal(outlier_burst(X, 0.0, seed=0), X)

    def test_contaminates_expected_fraction(self, rng):
        X = rng.normal(size=(2000, 5))
        dirty = outlier_burst(X, 0.1, seed=0)
        changed = (dirty != X).any(axis=1).mean()
        assert 0.07 <= changed <= 0.13

    def test_rows_shift_along_shared_direction(self, rng):
        """Every contaminated row moves along one common direction —
        the correlated structure marginal checks cannot see."""
        X = rng.normal(size=(500, 4))
        dirty = outlier_burst(X, 0.2, seed=0, magnitude=20.0)
        delta = dirty - X
        moved = delta[(delta != 0).any(axis=1)]
        units = moved / np.linalg.norm(moved, axis=1, keepdims=True)
        cosines = np.abs(units @ units[0])
        np.testing.assert_allclose(cosines, 1.0, atol=1e-10)

    def test_magnitude_scales_shift(self, rng):
        X = rng.normal(size=(500, 3))
        small = outlier_burst(X, 0.2, seed=0, magnitude=2.0)
        large = outlier_burst(X, 0.2, seed=0, magnitude=20.0)
        np.testing.assert_allclose(large - X, 10.0 * (small - X))

    def test_one_dimensional_input(self, rng):
        v = rng.normal(size=500)
        dirty = outlier_burst(v, 0.1, seed=0, magnitude=10.0)
        changed = dirty != v
        assert 0.05 <= changed.mean() <= 0.16
        assert np.abs(dirty[changed] - v[changed]).min() > 0.0

    def test_deterministic_and_pure(self, rng):
        X = rng.normal(size=(100, 3))
        X_copy = X.copy()
        a = outlier_burst(X, 0.3, seed=7)
        b = outlier_burst(X, 0.3, seed=7)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(X, X_copy)  # input not mutated

    def test_invalid_arguments(self, rng):
        X = rng.normal(size=(10, 3))
        with pytest.raises(ConfigurationError):
            outlier_burst(X, 1.5)
        with pytest.raises(ConfigurationError):
            outlier_burst(X, 0.1, magnitude=0.0)
        with pytest.raises(ConfigurationError):
            outlier_burst(X, 0.1, tail=1.0)
        with pytest.raises(ConfigurationError):
            outlier_burst(np.zeros((2, 2, 2)), 0.1)
