"""Tests for the iterative trainer."""

import numpy as np
import pytest

from repro.core.config import ConvergencePolicy
from repro.core.trainer import EpochRecord, IterativeTrainer, TrainingHistory


class _ToyModel:
    """Scalar LMS model for exercising the trainer contract."""

    def __init__(self, lr: float = 0.5):
        self.w = np.zeros(1)
        self.lr = lr
        self.epoch_ends = 0

    def fit_epoch(self, S, y, order):
        for i in order:
            err = y[i] - S[i] @ self.w
            self.w += self.lr * err * S[i]

    def predict_encoded(self, S):
        return S @ self.w

    def end_epoch(self):
        self.epoch_ends += 1


class _DivergingModel(_ToyModel):
    def fit_epoch(self, S, y, order):
        self.w += 10.0 ** (5 + self.epoch_ends)


def _data(n=50):
    rng = np.random.default_rng(0)
    S = rng.normal(size=(n, 1))
    y = 2.0 * S[:, 0]
    return S, y


class TestTrainingLoop:
    def test_converges_on_linear_problem(self):
        S, y = _data()
        model = _ToyModel()
        history = IterativeTrainer(
            ConvergencePolicy(max_epochs=50, patience=3, tol=1e-4), seed=0
        ).train(model, S, y)
        assert history.converged
        assert model.w[0] == pytest.approx(2.0, abs=1e-3)

    def test_respects_max_epochs(self):
        S, y = _data()
        history = IterativeTrainer(
            ConvergencePolicy(max_epochs=2, patience=10), seed=0
        ).train(_ToyModel(lr=1e-6), S, y)
        assert history.n_epochs == 2
        assert not history.converged

    def test_end_epoch_called_every_epoch(self):
        S, y = _data()
        model = _ToyModel(lr=1e-6)
        history = IterativeTrainer(
            ConvergencePolicy(max_epochs=4, patience=10), seed=0
        ).train(model, S, y)
        assert model.epoch_ends == history.n_epochs == 4

    def test_validation_monitored_when_given(self):
        S, y = _data()
        S_val, y_val = _data(20)
        history = IterativeTrainer(
            ConvergencePolicy(max_epochs=5, patience=2), seed=0
        ).train(_ToyModel(), S, y, S_val, y_val)
        assert all(r.val_mse is not None for r in history.records)
        assert history.records[0].monitored == history.records[0].val_mse

    def test_min_epochs_prevents_early_stop(self):
        S, y = _data()
        # Converges immediately, but min_epochs forces more passes.
        history = IterativeTrainer(
            ConvergencePolicy(max_epochs=10, patience=1, tol=1e-12, min_epochs=6),
            seed=0,
        ).train(_ToyModel(lr=1.0), S, y)
        assert history.n_epochs >= 6

    def test_divergence_detected(self):
        S, y = _data()
        history = IterativeTrainer(
            ConvergencePolicy(max_epochs=20, patience=3), seed=0
        ).train(_DivergingModel(), S, y)
        assert history.diverged
        assert not history.converged
        assert history.n_epochs < 20

    def test_deterministic_given_seed(self):
        S, y = _data()
        h1 = IterativeTrainer(ConvergencePolicy(max_epochs=5, patience=9), 3).train(
            _ToyModel(), S, y
        )
        h2 = IterativeTrainer(ConvergencePolicy(max_epochs=5, patience=9), 3).train(
            _ToyModel(), S, y
        )
        np.testing.assert_allclose(h1.train_curve(), h2.train_curve())


class TestTrainingHistory:
    def test_curves(self):
        history = TrainingHistory(
            records=[EpochRecord(1, 4.0, None), EpochRecord(2, 2.0, None)]
        )
        np.testing.assert_allclose(history.train_curve(), [4.0, 2.0])
        assert np.isnan(history.val_curve()).all()

    def test_best_epoch(self):
        history = TrainingHistory(
            records=[
                EpochRecord(1, 4.0),
                EpochRecord(2, 1.0),
                EpochRecord(3, 2.0),
            ]
        )
        assert history.best_epoch == 2

    def test_final_train_mse(self):
        history = TrainingHistory(records=[EpochRecord(1, 4.0)])
        assert history.final_train_mse == 4.0

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory().final_train_mse
        with pytest.raises(ValueError):
            TrainingHistory().best_epoch

    def test_monotone_decreasing_curve_on_toy(self):
        S, y = _data()
        history = IterativeTrainer(
            ConvergencePolicy(max_epochs=6, patience=9), seed=0
        ).train(_ToyModel(lr=0.1), S, y)
        curve = history.train_curve()
        assert np.all(np.diff(curve) <= 1e-9)
