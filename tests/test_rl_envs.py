"""Tests for the RL environments."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rl.envs import CartPole, GridWorld


class TestGridWorld:
    def test_reset_returns_start(self):
        env = GridWorld(5)
        obs = env.reset()
        np.testing.assert_allclose(obs, [1.0, 0.0])  # bottom-left, scaled

    def test_observation_in_unit_square(self):
        env = GridWorld(4)
        obs = env.reset()
        rng = np.random.default_rng(0)
        for _ in range(50):
            obs, _, done = env.step(int(rng.integers(4)))
            assert np.all(obs >= 0.0) and np.all(obs <= 1.0)
            if done:
                obs = env.reset()

    def test_goal_gives_positive_reward_and_ends(self):
        env = GridWorld(3, obstacles=())
        env.reset()
        # From (2,0): up, up, right, right reaches goal (0,2).
        rewards = []
        for action in (0, 0, 1, 1):
            _, r, done = env.step(action)
            rewards.append(r)
        assert done
        assert rewards[-1] == 1.0
        assert all(r == -0.01 for r in rewards[:-1])

    def test_obstacle_ends_with_penalty(self):
        env = GridWorld(3, obstacles=((1, 0),))
        env.reset()
        _, reward, done = env.step(0)  # step up into the obstacle
        assert done
        assert reward == -1.0

    def test_walls_clip_movement(self):
        env = GridWorld(3, obstacles=())
        env.reset()
        obs, _, _ = env.step(3)  # left from column 0 stays put
        np.testing.assert_allclose(obs, [1.0, 0.0])

    def test_step_limit_terminates(self):
        env = GridWorld(4, obstacles=(), step_limit=5)
        env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done = env.step(3)  # bump into the left wall forever
            steps += 1
        assert steps == 5

    def test_invalid_action(self):
        env = GridWorld(3)
        env.reset()
        with pytest.raises(ConfigurationError):
            env.step(4)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            GridWorld(1)
        with pytest.raises(ConfigurationError):
            GridWorld(3, obstacles=((2, 0),))  # collides with start
        with pytest.raises(ConfigurationError):
            GridWorld(3, obstacles=((9, 9),))


class TestCartPole:
    def test_reset_near_zero(self):
        env = CartPole()
        obs = env.reset(seed=0)
        assert obs.shape == (4,)
        assert np.all(np.abs(obs) <= 0.05)

    def test_reset_deterministic_given_seed(self):
        env = CartPole()
        np.testing.assert_array_equal(env.reset(seed=3), env.reset(seed=3))

    def test_reward_one_per_step(self):
        env = CartPole()
        env.reset(seed=0)
        _, reward, _ = env.step(0)
        assert reward == 1.0

    def test_constant_push_eventually_fails(self):
        env = CartPole(step_limit=500)
        env.reset(seed=0)
        done = False
        steps = 0
        while not done:
            _, _, done = env.step(1)  # push right forever
            steps += 1
        assert steps < 500  # pole must tip before the limit

    def test_failure_is_limit_violation(self):
        env = CartPole(step_limit=500)
        env.reset(seed=0)
        done = False
        while not done:
            obs, _, done = env.step(1)
        assert abs(obs[0]) > CartPole.X_LIMIT or abs(obs[2]) > CartPole.THETA_LIMIT

    def test_physics_push_right_accelerates_cart_right(self):
        env = CartPole()
        env.reset(seed=0)
        start_x_dot = env._state[1]
        obs, _, _ = env.step(1)
        assert obs[1] > start_x_dot

    def test_balanced_alternation_survives_longer_than_constant(self):
        def run(policy) -> int:
            env = CartPole(step_limit=500)
            env.reset(seed=0)
            steps, done = 0, False
            while not done:
                obs, _, done = env.step(policy(steps, obs if steps else env._state))
                steps += 1
            return steps

        constant = run(lambda t, obs: 1)
        # React to the pole angle: push toward the fall.
        reactive = run(lambda t, obs: 1 if obs[2] > 0 else 0)
        assert reactive > constant

    def test_invalid_action(self):
        env = CartPole()
        env.reset()
        with pytest.raises(ConfigurationError):
            env.step(2)

    def test_invalid_step_limit(self):
        with pytest.raises(ConfigurationError):
            CartPole(step_limit=0)
