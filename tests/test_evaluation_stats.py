"""Tests for the statistical comparison helpers."""

import numpy as np
import pytest

from repro.evaluation.stats import (
    aggregate_metric,
    bootstrap_difference_ci,
    multi_seed_mses,
    paired_comparison,
)
from repro.exceptions import ConfigurationError


class TestAggregateMetric:
    def test_values(self):
        agg = aggregate_metric("mse", [1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.std == pytest.approx(1.0)
        assert agg.n_runs == 3

    def test_single_value_zero_std(self):
        agg = aggregate_metric("mse", [5.0])
        assert agg.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            aggregate_metric("mse", [])

    def test_str(self):
        assert "mse" in str(aggregate_metric("mse", [1.0, 2.0]))


class TestPairedComparison:
    def test_detects_clear_difference(self):
        rng = np.random.default_rng(0)
        base = rng.normal(10.0, 0.5, size=12)
        better = base - 2.0 + 0.1 * rng.normal(size=12)
        result = paired_comparison(better, base)
        assert result.mean_difference < 0
        assert result.significant(0.05)
        assert result.wilcoxon_pvalue < 0.05

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=10)
        b = a + 0.001 * rng.normal(size=10)
        result = paired_comparison(a, b)
        assert not result.significant(0.001)

    def test_identical_runs(self):
        a = np.ones(5)
        result = paired_comparison(a, a)
        assert result.t_pvalue == 1.0
        assert result.mean_difference == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            paired_comparison([1.0, 2.0], [1.0])

    def test_too_few_runs(self):
        with pytest.raises(ConfigurationError):
            paired_comparison([1.0], [2.0])


class TestBootstrapCI:
    def test_contains_true_difference(self):
        rng = np.random.default_rng(2)
        a = rng.normal(5.0, 1.0, size=40)
        b = rng.normal(3.0, 1.0, size=40)
        lo, hi = bootstrap_difference_ci(a, b, seed=0)
        assert lo < 2.0 < hi or (lo < (a - b).mean() < hi)
        assert lo < hi

    def test_deterministic(self):
        a = np.arange(10.0)
        b = np.arange(10.0)[::-1].copy()
        assert bootstrap_difference_ci(a, b, seed=3) == bootstrap_difference_ci(
            a, b, seed=3
        )

    def test_invalid_confidence(self):
        with pytest.raises(ConfigurationError):
            bootstrap_difference_ci([1.0, 2.0], [1.0, 2.0], confidence=1.0)

    def test_invalid_resamples(self):
        with pytest.raises(ConfigurationError):
            bootstrap_difference_ci([1.0], [1.0], n_resamples=0)


class TestMultiSeedMSEs:
    def test_one_mse_per_seed(self):
        from repro.baselines import RidgeRegression
        from repro.datasets import load_dataset

        ds = load_dataset("boston").subsample(150, seed=0)
        mses = multi_seed_mses(
            lambda seed, n: RidgeRegression(1.0),
            ds,
            seeds=[0, 1, 2],
        )
        assert mses.shape == (3,)
        assert np.all(mses > 0)
        # Different splits give different errors.
        assert len(np.unique(mses)) > 1

    def test_pairable_across_model_families(self):
        """Same seeds -> paired comparisons are valid."""
        from repro.baselines import DecisionTreeRegressor, RidgeRegression
        from repro.datasets import load_dataset

        ds = load_dataset("ccpp").subsample(400, seed=0)
        seeds = [0, 1, 2, 3]
        ridge = multi_seed_mses(
            lambda seed, n: RidgeRegression(1.0), ds, seeds=seeds
        )
        tree = multi_seed_mses(
            lambda seed, n: DecisionTreeRegressor(max_depth=8), ds, seeds=seeds
        )
        result = paired_comparison(tree, ridge)
        assert result.n_pairs == 4

    def test_empty_seeds(self):
        from repro.baselines import RidgeRegression
        from repro.datasets import load_dataset

        with pytest.raises(ConfigurationError):
            multi_seed_mses(
                lambda seed, n: RidgeRegression(),
                load_dataset("boston"),
                seeds=[],
            )
