"""Golden-equivalence proof for the estimator-stack refactor.

``tests/fixtures/golden_predictions.npz`` was recorded with the
pre-refactor per-model implementations (private ``_normalize_rows`` /
``_softmax`` clones, inline y-scaling, per-class fit loops).  These tests
retrain with the same seeds on the rebased stack and require
**bit-identical** predictions — not allclose — so the refactor is proven
behaviourally invisible.

If a deliberate numerics change ever invalidates these, regenerate with
``PYTHONPATH=src python tests/fixtures/generate_fixtures.py`` *and* call
the change out loudly: it breaks bit-compat with previously saved models.
"""

import pathlib

import numpy as np
import pytest

from repro import BaselineHD, MultiModelRegHD, RegHDConfig, SingleModelRegHD
from repro.core import ClusterQuant, ConvergencePolicy, PredictQuant
from repro.encoding import RandomProjectionEncoder

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

DIM = 96
SEED = 1234
CONV = ConvergencePolicy(max_epochs=4, patience=2)

#: Every execution-runtime backend must reproduce the golden trajectories.
#: Packed sign products are exact integers, so the packed backends are
#: bit-identical everywhere except the BINARY_BOTH dots (scale rounding).
BACKENDS = ("dense", "packed", "packed_v2")


@pytest.fixture(scope="module")
def golden():
    return np.load(FIXTURES / "golden_predictions.npz")


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(SEED)
    X = rng.normal(size=(72, 4))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] * X[:, 2] - X[:, 3]
    X_query = rng.normal(size=(16, 4))
    return X, y, X_query


def multi_config(
    cq: ClusterQuant, pq: PredictQuant, backend: str | None = None
) -> RegHDConfig:
    return RegHDConfig(
        dim=DIM,
        n_models=3,
        seed=SEED,
        convergence=CONV,
        cluster_quant=cq,
        predict_quant=pq,
        backend=backend,
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_single_model_bit_identical(golden, data, backend):
    X, y, X_query = data
    model = SingleModelRegHD(
        4, dim=DIM, seed=SEED, convergence=CONV, backend=backend
    )
    model.fit(X, y)
    np.testing.assert_array_equal(model.predict(X_query), golden["single"])


@pytest.mark.parametrize("backend", BACKENDS)
def test_baseline_hd_bit_identical(golden, data, backend, monkeypatch):
    X, y, X_query = data
    # BaselineHD takes the backend from the environment default.
    monkeypatch.setenv("REPRO_BACKEND", backend)
    model = BaselineHD(4, dim=DIM, n_bins=8, seed=SEED, convergence=CONV)
    model.fit(X, y)
    np.testing.assert_array_equal(
        model.predict(X_query), golden["baseline_hd"]
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("cq", list(ClusterQuant))
@pytest.mark.parametrize("pq", list(PredictQuant))
def test_multi_model_bit_identical_all_quant_combos(
    golden, data, cq, pq, backend
):
    X, y, X_query = data
    model = MultiModelRegHD(4, multi_config(cq, pq, backend))
    model.fit(X, y)
    expected = golden[f"multi_{cq.value}_{pq.value}"]
    if backend != "dense" and pq is PredictQuant.BINARY_BOTH:
        # The packed fully-binary dots apply the two scale factors in a
        # different order than the dense matmul — float rounding only.
        np.testing.assert_allclose(
            model.predict(X_query), expected, rtol=1e-9, atol=1e-10
        )
    else:
        np.testing.assert_array_equal(model.predict(X_query), expected)


def test_projection_encoder_bit_identical(golden, data):
    X, y, X_query = data
    model = SingleModelRegHD(
        4,
        encoder=RandomProjectionEncoder(4, DIM, seed=SEED),
        convergence=CONV,
    )
    model.fit(X, y)
    np.testing.assert_array_equal(
        model.predict(X_query), golden["single_projection"]
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_partial_fit_stream_bit_identical(golden, data, backend):
    """The frozen-scaler streaming path produces the pre-refactor result."""
    X, y, X_query = data
    model = MultiModelRegHD(
        4,
        multi_config(
            ClusterQuant.FRAMEWORK, PredictQuant.BINARY_QUERY, backend
        ),
    )
    for start in (0, 24, 48):
        model.partial_fit(X[start : start + 24], y[start : start + 24])
    np.testing.assert_array_equal(
        model.predict(X_query), golden["multi_partial_fit"]
    )


@pytest.mark.parametrize("rematerialize", (False, True))
@pytest.mark.parametrize("cq", list(ClusterQuant))
@pytest.mark.parametrize("pq", list(PredictQuant))
def test_packed_v2_plan_matches_golden(golden, data, cq, pq, rematerialize):
    """Compiled packed_v2 plans (stored and rematerialised) stay on the
    golden trajectory: plan predictions match the dense-reference golden
    to float rounding, and the rematerialised plan is bit-identical to
    the stored-operand plan."""
    X, y, X_query = data
    model = MultiModelRegHD(4, multi_config(cq, pq))
    model.fit(X, y)
    plan = model.compile(backend="packed_v2", rematerialize=rematerialize)
    assert plan.rematerialized is rematerialize
    expected = golden[f"multi_{cq.value}_{pq.value}"]
    np.testing.assert_allclose(
        plan.predict(X_query), expected, rtol=1e-9, atol=1e-10
    )
    if rematerialize:
        stored = model.compile(backend="packed_v2")
        np.testing.assert_array_equal(
            plan.predict(X_query), stored.predict(X_query)
        )
        assert plan.nbytes < stored.nbytes
