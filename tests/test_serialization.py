"""Tests for model save/load."""

import numpy as np
import pytest

from repro import BaselineHD, MultiModelRegHD, RegHDConfig, SingleModelRegHD
from repro.core import ClusterQuant, ConvergencePolicy, PredictQuant
from repro.encoding import RandomProjectionEncoder
from repro.exceptions import ConfigurationError
from repro.serialization import load_model, save_model

CONV = ConvergencePolicy(max_epochs=5, patience=2)


@pytest.fixture
def data(rng):
    X = rng.normal(size=(80, 4))
    y = np.sin(X[:, 0]) + X[:, 1]
    return X, y


class TestRoundtrip:
    def test_single_model(self, data, tmp_path):
        X, y = data
        model = SingleModelRegHD(4, dim=128, seed=0, convergence=CONV).fit(X, y)
        path = save_model(model, tmp_path / "single.npz")
        loaded = load_model(path)
        np.testing.assert_array_equal(loaded.predict(X), model.predict(X))

    def test_multi_model(self, data, tmp_path):
        X, y = data
        model = MultiModelRegHD(
            4, RegHDConfig(dim=128, n_models=3, seed=0, convergence=CONV)
        ).fit(X, y)
        loaded = load_model(save_model(model, tmp_path / "multi.npz"))
        np.testing.assert_array_equal(loaded.predict(X), model.predict(X))

    def test_multi_model_quantized(self, data, tmp_path):
        X, y = data
        model = MultiModelRegHD(
            4,
            RegHDConfig(
                dim=128,
                n_models=3,
                seed=0,
                convergence=CONV,
                cluster_quant=ClusterQuant.FRAMEWORK,
                predict_quant=PredictQuant.BINARY_QUERY,
            ),
        ).fit(X, y)
        loaded = load_model(save_model(model, tmp_path / "quant.npz"))
        assert loaded.config.cluster_quant is ClusterQuant.FRAMEWORK
        assert loaded.config.predict_quant is PredictQuant.BINARY_QUERY
        np.testing.assert_array_equal(loaded.predict(X), model.predict(X))

    def test_baseline_hd(self, data, tmp_path):
        X, y = data
        model = BaselineHD(4, dim=128, n_bins=8, seed=0, convergence=CONV).fit(X, y)
        loaded = load_model(save_model(model, tmp_path / "bhd.npz"))
        np.testing.assert_array_equal(loaded.predict(X), model.predict(X))

    def test_projection_encoder_roundtrip(self, data, tmp_path):
        X, y = data
        enc = RandomProjectionEncoder(4, 128, seed=0)
        model = SingleModelRegHD(4, encoder=enc, convergence=CONV).fit(X, y)
        loaded = load_model(save_model(model, tmp_path / "proj.npz"))
        np.testing.assert_array_equal(loaded.predict(X), model.predict(X))

    def test_suffix_appended(self, data, tmp_path):
        X, y = data
        model = SingleModelRegHD(4, dim=64, seed=0, convergence=CONV).fit(X, y)
        path = save_model(model, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()


class TestErrors:
    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unfitted"):
            save_model(SingleModelRegHD(4, dim=64), tmp_path / "x.npz")

    def test_non_model_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_model(path)

    def test_custom_encoder_rejected(self, data, tmp_path):
        from repro.encoding import IDLevelEncoder

        X, y = data
        model = SingleModelRegHD(
            4, encoder=IDLevelEncoder(4, 64, seed=0), convergence=CONV
        ).fit(X, y)
        with pytest.raises(ConfigurationError, match="encoder"):
            save_model(model, tmp_path / "x.npz")


class TestValidationOnLoad:
    """Corrupt or tampered files must fail with ConfigurationError, never
    a bare KeyError / BadZipFile / silent garbage model."""

    def _saved(self, data, tmp_path):
        X, y = data
        model = SingleModelRegHD(4, dim=64, seed=0, convergence=CONV).fit(
            X, y
        )
        return save_model(model, tmp_path / "m.npz")

    def test_truncated_file_rejected(self, data, tmp_path):
        path = self._saved(data, tmp_path)
        path.write_bytes(path.read_bytes()[:120])
        with pytest.raises(ConfigurationError):
            load_model(path)

    def test_missing_array_rejected(self, data, tmp_path):
        path = self._saved(data, tmp_path)
        loaded = dict(np.load(path, allow_pickle=False))
        del loaded["model_vector"]
        np.savez(path, **loaded)
        with pytest.raises(ConfigurationError, match="model_vector"):
            load_model(path)

    def test_shape_mismatch_rejected(self, data, tmp_path):
        path = self._saved(data, tmp_path)
        loaded = dict(np.load(path, allow_pickle=False))
        loaded["model_vector"] = loaded["model_vector"][:-1]
        np.savez(path, **loaded)
        with pytest.raises(ConfigurationError, match="shape"):
            load_model(path)

    def test_encoder_shape_mismatch_rejected(self, data, tmp_path):
        path = self._saved(data, tmp_path)
        loaded = dict(np.load(path, allow_pickle=False))
        loaded["encoder_bases"] = loaded["encoder_bases"][:, :-1]
        np.savez(path, **loaded)
        with pytest.raises(ConfigurationError, match="shape"):
            load_model(path)

    def test_non_numeric_dtype_rejected(self, data, tmp_path):
        path = self._saved(data, tmp_path)
        loaded = dict(np.load(path, allow_pickle=False))
        loaded["model_vector"] = np.array(["x"] * 64)
        np.savez(path, **loaded)
        with pytest.raises(ConfigurationError, match="dtype"):
            load_model(path)

    def test_not_a_zip_rejected(self, tmp_path):
        path = tmp_path / "fake.npz"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(ConfigurationError):
            load_model(path)


class TestMetadataExtra:
    def test_extra_roundtrip_via_read_metadata(self, data, tmp_path):
        from repro.serialization import read_metadata

        X, y = data
        model = SingleModelRegHD(4, dim=64, seed=0, convergence=CONV).fit(
            X, y
        )
        extra = {"stream": {"batch": 12, "forgetting": 0.97}}
        path = save_model(model, tmp_path / "m.npz", extra=extra)
        meta = read_metadata(path)
        assert meta["extra"] == extra
        assert meta["model_type"] == "single"

    def test_read_metadata_missing_file(self, tmp_path):
        from repro.serialization import read_metadata

        with pytest.raises(ConfigurationError):
            read_metadata(tmp_path / "absent.npz")
