"""Tests for similarity metrics."""

import numpy as np
import pytest

from repro.exceptions import DimensionalityError
from repro.ops.generate import random_binary, random_bipolar
from repro.ops.quantize import bipolar_to_binary
from repro.ops.similarity import (
    cosine_similarity,
    dot_similarity,
    hamming_distance,
    hamming_similarity,
    pairwise_cosine,
)


class TestDotSimilarity:
    def test_single_vectors_scalar(self):
        assert dot_similarity([1.0, 2.0], [3.0, 4.0]) == pytest.approx(11.0)

    def test_batch_vs_single(self):
        batch = np.array([[1.0, 0.0], [0.0, 2.0]])
        out = dot_similarity(batch, [1.0, 1.0])
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_batch_vs_batch_matrix(self):
        a = np.eye(3)
        out = dot_similarity(a, a)
        np.testing.assert_allclose(out, np.eye(3))

    def test_dim_mismatch_raises(self):
        with pytest.raises(DimensionalityError):
            dot_similarity([1.0, 2.0], [1.0, 2.0, 3.0])


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, -3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        v = np.array([1.0, 2.0])
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity([1.0, 0.0], [0.0, 1.0]) == pytest.approx(0.0)

    def test_zero_vector_is_zero_not_nan(self):
        assert cosine_similarity([0.0, 0.0], [1.0, 1.0]) == pytest.approx(0.0)

    def test_scale_invariance(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([-2.0, 0.5, 1.0])
        assert cosine_similarity(a, b) == pytest.approx(
            cosine_similarity(10.0 * a, 0.1 * b)
        )

    def test_batch_shape(self):
        a = np.random.default_rng(0).normal(size=(4, 16))
        b = np.random.default_rng(1).normal(size=(5, 16))
        assert cosine_similarity(a, b).shape == (4, 5)

    def test_range(self):
        rng = np.random.default_rng(2)
        out = cosine_similarity(rng.normal(size=(6, 32)), rng.normal(size=(6, 32)))
        assert np.all(out <= 1.0 + 1e-12) and np.all(out >= -1.0 - 1e-12)


class TestHamming:
    def test_distance_identical_is_zero(self):
        v = random_binary(1, 64, seed=0)[0]
        assert hamming_distance(v, v) == pytest.approx(0.0)

    def test_distance_complement_is_dim(self):
        v = random_binary(1, 64, seed=0)[0]
        assert hamming_distance(v, 1 - v) == pytest.approx(64.0)

    def test_known_distance(self):
        a = np.array([0, 1, 1, 0], dtype=np.uint8)
        b = np.array([1, 1, 0, 0], dtype=np.uint8)
        assert hamming_distance(a, b) == pytest.approx(2.0)

    def test_similarity_range(self):
        a = random_binary(1, 128, seed=1)[0]
        b = random_binary(1, 128, seed=2)[0]
        sim = hamming_similarity(a, b)
        assert -1.0 <= sim <= 1.0

    def test_similarity_equals_bipolar_cosine(self):
        """The Sec.-3.1 equivalence: Hamming sim of binary views == cosine
        of the underlying bipolar vectors."""
        bip_a = random_bipolar(1, 512, seed=3)[0]
        bip_b = random_bipolar(1, 512, seed=4)[0]
        bin_a = bipolar_to_binary(bip_a)
        bin_b = bipolar_to_binary(bip_b)
        cos = cosine_similarity(
            bip_a.astype(float), bip_b.astype(float)
        )
        ham = hamming_similarity(bin_a, bin_b)
        assert ham == pytest.approx(cos, abs=1e-12)

    def test_batch_shapes(self):
        a = random_binary(3, 32, seed=5)
        b = random_binary(4, 32, seed=6)
        assert hamming_distance(a, b).shape == (3, 4)


class TestPairwiseCosine:
    def test_diagonal_is_one(self):
        batch = np.random.default_rng(0).normal(size=(5, 24))
        gram = pairwise_cosine(batch)
        np.testing.assert_allclose(np.diag(gram), 1.0)

    def test_symmetry(self):
        batch = np.random.default_rng(1).normal(size=(6, 24))
        gram = pairwise_cosine(batch)
        np.testing.assert_allclose(gram, gram.T)
