"""Tests for RegHD seed ensembles and cross-validation."""

import numpy as np
import pytest

from repro import MultiModelRegHD, RegHDConfig
from repro.core import ConvergencePolicy
from repro.core.ensemble import RegHDEnsemble
from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import mean_squared_error

CONFIG = RegHDConfig(
    dim=256, n_models=4, seed=0,
    convergence=ConvergencePolicy(max_epochs=8, patience=3),
)


class TestEnsemble:
    def test_members_have_distinct_seeds(self):
        ensemble = RegHDEnsemble(5, CONFIG, n_members=3)
        seeds = {m.config.seed for m in ensemble.members}
        assert seeds == {0, 1, 2}

    def test_predict_is_member_mean(self, tiny_regression):
        X, y, Xte, _ = tiny_regression
        ensemble = RegHDEnsemble(5, CONFIG, n_members=3).fit(X, y)
        stacked = np.stack([m.predict(Xte) for m in ensemble.members])
        np.testing.assert_allclose(
            ensemble.predict(Xte), stacked.mean(axis=0)
        )

    def test_single_member_equals_base_model(self, tiny_regression):
        X, y, Xte, _ = tiny_regression
        ensemble = RegHDEnsemble(5, CONFIG, n_members=1).fit(X, y)
        solo = MultiModelRegHD(5, CONFIG).fit(X, y)
        np.testing.assert_allclose(ensemble.predict(Xte), solo.predict(Xte))

    def test_ensemble_not_worse_than_average_member(self, tiny_regression):
        """Variance reduction: ensemble MSE <= mean member MSE."""
        X, y, Xte, yte = tiny_regression
        ensemble = RegHDEnsemble(5, CONFIG, n_members=5).fit(X, y)
        member_mses = [
            mean_squared_error(yte, m.predict(Xte)) for m in ensemble.members
        ]
        ensemble_mse = mean_squared_error(yte, ensemble.predict(Xte))
        assert ensemble_mse <= np.mean(member_mses) + 1e-12

    def test_uncertainty_shapes_and_nonnegative(self, tiny_regression):
        X, y, Xte, _ = tiny_regression
        ensemble = RegHDEnsemble(5, CONFIG, n_members=5).fit(X, y)
        mean, sigma = ensemble.predict_with_uncertainty(Xte[:20])
        assert mean.shape == sigma.shape == (20,)
        assert np.all(sigma >= 0)

    def test_far_ood_predictions_regress_to_training_mean(self, tiny_regression):
        """Encodings of far-OOD inputs are near-orthogonal to every model
        hypervector, so predictions collapse toward the training-target
        mean — a documented HDC property."""
        X, y, _, _ = tiny_regression
        ensemble = RegHDEnsemble(5, CONFIG, n_members=3).fit(X, y)
        far = X[:50] + 25.0
        pred_far = ensemble.predict(far)
        pred_in = ensemble.predict(X[:50])
        y_mean = float(np.mean(y))
        assert np.mean(np.abs(pred_far - y_mean)) < np.mean(
            np.abs(pred_in - y_mean)
        )

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RegHDEnsemble(5, CONFIG).predict(np.zeros((1, 5)))

    def test_invalid_members(self):
        with pytest.raises(ConfigurationError):
            RegHDEnsemble(5, CONFIG, n_members=0)

    def test_requires_integer_seed(self):
        with pytest.raises(ConfigurationError):
            RegHDEnsemble(5, CONFIG.with_overrides(seed=None))

    def test_repr(self):
        assert "RegHDEnsemble" in repr(RegHDEnsemble(5, CONFIG, n_members=2))


class TestCrossValidate:
    def test_fold_count_and_labels(self):
        from repro.baselines import RidgeRegression
        from repro.datasets import Dataset
        from repro.evaluation.runner import cross_validate

        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))
        ds = Dataset("lin", X, X @ np.array([1.0, 2.0, -1.0]))
        results = cross_validate(
            lambda n: RidgeRegression(1e-6), ds, k=4, model_label="ridge"
        )
        assert len(results) == 4
        assert {r.dataset for r in results} == {
            "lin[fold0]", "lin[fold1]", "lin[fold2]", "lin[fold3]"
        }
        assert all(r.mse < 1e-6 for r in results)
