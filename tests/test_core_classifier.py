"""Tests for the HD classifier substrate."""

import numpy as np
import pytest

from repro.core import ConvergencePolicy
from repro.core.classifier import HDClassifier
from repro.exceptions import ConfigurationError, NotFittedError

CONV = ConvergencePolicy(max_epochs=10, patience=3)


def _blobs(n_per_class=60, n_classes=3, n_features=4, seed=0, spread=0.4):
    # Fixed class centres (so train/test draws share the same concept);
    # only the samples vary with ``seed``.
    centers = np.random.default_rng(42).normal(size=(n_classes, n_features)) * 3.0
    rng = np.random.default_rng(seed)
    X, y = [], []
    for c in range(n_classes):
        X.append(centers[c] + spread * rng.normal(size=(n_per_class, n_features)))
        y.append(np.full(n_per_class, c))
    return np.vstack(X), np.concatenate(y)


class TestHDClassifier:
    def test_learns_separable_blobs(self):
        X, y = _blobs(seed=0)
        Xte, yte = _blobs(seed=1)
        clf = HDClassifier(4, dim=1024, seed=0, convergence=CONV).fit(X, y)
        assert clf.score(Xte, yte) > 0.9

    def test_predict_returns_original_labels(self):
        X, y = _blobs()
        labels = np.array(["cat", "dog", "fox"])[y]
        clf = HDClassifier(4, dim=512, seed=0, convergence=CONV).fit(X, labels)
        pred = clf.predict(X[:10])
        assert set(pred) <= {"cat", "dog", "fox"}

    def test_n_classes(self):
        X, y = _blobs(n_classes=5)
        clf = HDClassifier(4, dim=256, seed=0, convergence=CONV).fit(X, y)
        assert clf.n_classes == 5
        assert clf.class_vectors_.shape == (5, 256)

    def test_binary_inference_close_to_full(self):
        X, y = _blobs(seed=2)
        Xte, yte = _blobs(seed=3)
        full = HDClassifier(4, dim=2048, seed=0, convergence=CONV).fit(X, y)
        binary = HDClassifier(
            4, dim=2048, seed=0, convergence=CONV, binary_inference=True
        ).fit(X, y)
        assert binary.score(Xte, yte) > full.score(Xte, yte) - 0.1

    def test_decision_scores_shape(self):
        X, y = _blobs()
        clf = HDClassifier(4, dim=256, seed=0, convergence=CONV).fit(X, y)
        assert clf.decision_scores(X[:7]).shape == (7, 3)

    def test_accuracy_curve_recorded(self):
        X, y = _blobs()
        clf = HDClassifier(4, dim=256, seed=0, convergence=CONV).fit(X, y)
        assert clf.accuracy_curve_
        assert all(0.0 <= a <= 1.0 for a in clf.accuracy_curve_)

    def test_iterative_training_improves_over_bundling(self):
        """Error-driven epochs must beat the single-pass bundle init on a
        task with overlapping classes."""
        X, y = _blobs(spread=2.0, seed=4)
        Xte, yte = _blobs(spread=2.0, seed=5)
        one = HDClassifier(
            4, dim=1024, seed=0,
            convergence=ConvergencePolicy(max_epochs=1, patience=1),
        ).fit(X, y)
        many = HDClassifier(4, dim=1024, seed=0, convergence=CONV).fit(X, y)
        assert many.score(Xte, yte) >= one.score(Xte, yte)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            HDClassifier(4, dim=64).predict(np.zeros((1, 4)))

    def test_single_class_rejected(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        with pytest.raises(ConfigurationError):
            HDClassifier(3, dim=64).fit(X, np.zeros(10))

    @pytest.mark.parametrize("kwargs", [{"lr": 0.0}, {"batch_size": 0}])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            HDClassifier(4, dim=64, **kwargs)

    def test_deterministic(self):
        X, y = _blobs()
        a = HDClassifier(4, dim=256, seed=7, convergence=CONV).fit(X, y)
        b = HDClassifier(4, dim=256, seed=7, convergence=CONV).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))
