"""Tests for bundling operations."""

import numpy as np
import pytest

from repro.exceptions import DimensionalityError
from repro.ops.bundling import Accumulator, bundle, majority_bundle, weighted_bundle
from repro.ops.generate import random_bipolar
from repro.ops.similarity import cosine_similarity


class TestBundle:
    def test_sum(self):
        out = bundle([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(out, [4.0, 6.0])

    def test_bundle_similar_to_members(self):
        vecs = random_bipolar(5, 2048, seed=0).astype(np.float64)
        b = bundle(vecs)
        for v in vecs:
            assert cosine_similarity(b, v) > 0.3

    def test_rejects_1d(self):
        with pytest.raises(DimensionalityError):
            bundle([1.0, 2.0])


class TestWeightedBundle:
    def test_weights_applied(self):
        out = weighted_bundle([[1.0, 0.0], [0.0, 1.0]], [2.0, 3.0])
        np.testing.assert_allclose(out, [2.0, 3.0])

    def test_zero_weight_removes_member(self):
        vecs = random_bipolar(2, 256, seed=1).astype(np.float64)
        out = weighted_bundle(vecs, [1.0, 0.0])
        np.testing.assert_allclose(out, vecs[0])

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(DimensionalityError):
            weighted_bundle([[1.0, 2.0]], [1.0, 2.0])


class TestMajorityBundle:
    def test_values_bipolar(self):
        vecs = random_bipolar(5, 128, seed=2)
        out = majority_bundle(vecs)
        assert set(np.unique(out)) <= {-1, 1}

    def test_odd_count_majority(self):
        vecs = np.array([[1, 1], [1, -1], [-1, -1]], dtype=np.int8)
        np.testing.assert_array_equal(majority_bundle(vecs), [1, -1])

    def test_tie_value(self):
        vecs = np.array([[1, -1], [-1, 1]], dtype=np.int8)
        np.testing.assert_array_equal(
            majority_bundle(vecs, tie_value=-1), [-1, -1]
        )

    def test_invalid_tie_value(self):
        with pytest.raises(ValueError):
            majority_bundle(np.ones((2, 4)), tie_value=0)


class TestAccumulator:
    def test_add_and_value(self):
        acc = Accumulator(4)
        acc.add([1.0, 2.0, 3.0, 4.0])
        acc.add([1.0, 0.0, 0.0, 0.0], weight=2.0)
        np.testing.assert_allclose(acc.value(), [3.0, 2.0, 3.0, 4.0])
        assert acc.count == 2

    def test_mean(self):
        acc = Accumulator(2)
        acc.add([2.0, 4.0])
        acc.add([4.0, 8.0])
        np.testing.assert_allclose(acc.mean(), [3.0, 6.0])

    def test_mean_empty_is_zero(self):
        acc = Accumulator(3)
        np.testing.assert_allclose(acc.mean(), [0.0, 0.0, 0.0])

    def test_reset(self):
        acc = Accumulator(2)
        acc.add([1.0, 1.0])
        acc.reset()
        assert acc.count == 0
        np.testing.assert_allclose(acc.value(), [0.0, 0.0])

    def test_value_returns_copy(self):
        acc = Accumulator(2)
        acc.add([1.0, 1.0])
        acc.value()[0] = 99.0
        assert acc.value()[0] == 1.0

    def test_shape_mismatch_raises(self):
        acc = Accumulator(3)
        with pytest.raises(DimensionalityError):
            acc.add([1.0, 2.0])

    def test_invalid_dim_raises(self):
        with pytest.raises(ValueError):
            Accumulator(0)

    def test_matches_bundle_of_equivalent_batch(self):
        vecs = random_bipolar(6, 64, seed=3).astype(np.float64)
        acc = Accumulator(64)
        for v in vecs:
            acc.add(v)
        np.testing.assert_allclose(acc.value(), bundle(vecs))
