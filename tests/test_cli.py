"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestDatasets:
    def test_lists_paper_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("diabetes", "boston", "airfoil", "ccpp"):
            assert name in out

    def test_json_listing_is_machine_readable(self, capsys):
        import json

        assert main(["datasets", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in listing}
        assert "airfoil" in by_name
        assert "paper" in by_name["airfoil"]["tags"]
        assert "n_samples" in by_name["friedman1"]["params"]


class TestWorkloads:
    def test_lists_the_catalogue(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "airfoil_steady" in out
        assert "adversarial_burst" in out

    def test_json_listing_declares_the_scenario(self, capsys):
        import json

        assert main(["workloads", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in listing}
        burst = by_name["adversarial_burst"]
        assert burst["traffic"] == "adversarial"
        assert burst["guard_policy"] == "mahalanobis"
        assert burst["faults"][0]["injector"] == "outlier_burst"


class TestReplay:
    def test_replay_one_workload_writes_the_record(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_workloads.json"
        code = main(
            ["replay", "airfoil_steady", "--quick", "--output", str(out_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out and "airfoil_steady" in out
        record = json.loads(out_path.read_text())
        assert record["benchmark"] == "reghd-workload-replay"
        assert record["quick"] is True
        assert record["results"][0]["workload"] == "airfoil_steady"

    def test_replay_unknown_workload_raises(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["replay", "no_such_workload", "--quick"])


class TestTrain:
    def test_train_multi_model(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "boston",
                "--k", "4",
                "--dim", "256",
                "--epochs", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test MSE" in out
        assert "MultiModelRegHD" in out

    def test_train_single_model(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "boston",
                "--k", "1",
                "--dim", "256",
                "--epochs", "4",
            ]
        )
        assert code == 0
        assert "SingleModelRegHD" in capsys.readouterr().out

    def test_train_quantized(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "boston",
                "--k", "2",
                "--dim", "256",
                "--epochs", "3",
                "--cluster-quant", "framework",
                "--predict-quant", "binary_query",
            ]
        )
        assert code == 0

    def test_train_save_and_predict(self, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        main(
            [
                "train",
                "--dataset", "boston",
                "--k", "2",
                "--dim", "128",
                "--epochs", "3",
                "--max-samples", "200",
                "--save", str(model_path),
            ]
        )
        capsys.readouterr()
        assert model_path.exists()

        features = tmp_path / "features.csv"
        rng = np.random.default_rng(0)
        np.savetxt(features, rng.normal(size=(5, 13)), delimiter=",")
        assert main(["predict", str(model_path), str(features)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        assert all(np.isfinite(float(line)) for line in lines)

    def test_unknown_dataset_raises(self):
        with pytest.raises(Exception):
            main(["train", "--dataset", "nope", "--epochs", "1"])


class TestCompare:
    def test_compare_runs(self, capsys):
        code = main(
            [
                "compare",
                "--dataset", "boston",
                "--dim", "256",
                "--max-samples", "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for label in ("RegHD-8", "Baseline-HD", "DNN"):
            assert label in out


class TestCapacity:
    def test_false_positive_query(self, capsys):
        assert main(
            ["capacity", "--dim", "100000", "--patterns", "10000"]
        ) == 0
        assert "5.69" in capsys.readouterr().out

    def test_capacity_query(self, capsys):
        assert main(
            ["capacity", "--dim", "100000", "--max-error", "0.057"]
        ) == 0
        out = capsys.readouterr().out
        assert "patterns" in out

    def test_requires_one_of_group(self):
        with pytest.raises(SystemExit):
            main(["capacity", "--dim", "1000"])


class TestHardware:
    def test_report_runs(self, capsys):
        assert main(["hardware", "--dim", "2000", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "KiB" in out
        assert "fpga-kintex7" in out
        assert "arm-a53" in out

    def test_quantization_flags(self, capsys):
        assert main(
            [
                "hardware",
                "--dim", "1000",
                "--cluster-quant", "none",
                "--predict-quant", "full",
                "--density", "0.5",
            ]
        ) == 0
        assert "density=0.5" in capsys.readouterr().out


class TestScalerSidecar:
    def test_predict_applies_saved_scaler(self, tmp_path, capsys):
        """Predictions on raw-unit features must land in target units —
        the sidecar scaler reproduces the training pipeline."""
        from repro.datasets import load_dataset

        model_path = tmp_path / "model.npz"
        main(
            [
                "train",
                "--dataset", "ccpp",
                "--k", "2",
                "--dim", "256",
                "--epochs", "4",
                "--max-samples", "400",
                "--save", str(model_path),
            ]
        )
        capsys.readouterr()
        sidecar = tmp_path / "model.npz.scaler.json"
        assert sidecar.exists()

        # Raw (unstandardised) feature rows from the same dataset.
        ds = load_dataset("ccpp")
        features = tmp_path / "raw.csv"
        np.savetxt(features, ds.X[:8], delimiter=",")
        assert main(["predict", str(model_path), str(features)]) == 0
        preds = [float(l) for l in capsys.readouterr().out.strip().splitlines()]
        # CCPP targets live around 400-500 MW; without the scaler the
        # predictions would collapse to ~the target mean for every row.
        assert all(380.0 < p < 520.0 for p in preds)
        assert np.std(preds) > 0.5


class TestBench:
    def test_bench_writes_json(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--dims", "64,96",
                "--rows", "32",
                "--repeats", "2",
                "--features", "4",
                "--workers", "2",
                "--output", str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rows_per_s" in out and "vs float" in out
        record = json.loads(out_file.read_text())
        assert record["schema"] == 1
        assert record["benchmark"] == "reghd-inference-engine"
        assert {r["variant"] for r in record["results"]} == {
            "float",
            "packed",
            "packed_v2",
            "packed_mt",
        }
        assert set(record["speedups"]) == {"64", "96"}

    def test_bench_quick_flag(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "bench.json"
        assert main(
            [
                "bench",
                "--dims", "64",
                "--rows", "32",
                "--repeats", "2",
                "--features", "4",
                "--quick",
                "--output", str(out_file),
            ]
        ) == 0
        capsys.readouterr()
        assert json.loads(out_file.read_text())["quick"] is True

    def test_bench_rejects_bad_dims(self, capsys):
        assert main(["bench", "--dims", "abc"]) == 1
        assert "--dims" in capsys.readouterr().err

    def test_bench_compare_gate(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "bench.json"
        args = [
            "bench",
            "--dims", "64",
            "--rows", "32",
            "--repeats", "2",
            "--features", "4",
            "--output", str(out_file),
        ]
        assert main(args) == 0
        capsys.readouterr()
        # Same machine + params: the rows/s diff mode runs; a doctored
        # baseline claiming 100x the throughput must trip the gate.
        record = json.loads(out_file.read_text())
        fast = json.loads(out_file.read_text())
        for row in fast["results"]:
            row["rows_per_s"] *= 100.0
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(fast))
        assert main(args + ["--compare", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # A baseline far *slower* than any rerun passes the gate.
        slow = record
        for row in slow["results"]:
            row["rows_per_s"] /= 100.0
        baseline.write_text(json.dumps(slow))
        assert main(args + ["--compare", str(baseline)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_bench_compare_missing_baseline(self, tmp_path, capsys):
        assert main(
            [
                "bench", "--dims", "64", "--rows", "32", "--repeats", "1",
                "--features", "4",
                "--output", str(tmp_path / "b.json"),
                "--compare", str(tmp_path / "nope.json"),
            ]
        ) == 1
        assert "--compare" in capsys.readouterr().err


class TestReport:
    def test_collects_tables(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1.txt").write_text("Table 1\nrow\n")
        (results / "fig8.txt").write_text("Fig 8\nrow\n")
        out_file = tmp_path / "report.md"
        assert main(
            [
                "report",
                "--results-dir", str(results),
                "--output", str(out_file),
            ]
        ) == 0
        text = out_file.read_text()
        assert "## table1" in text and "## fig8" in text
        assert "Table 1" in text

    def test_stdout_mode(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "x.txt").write_text("hello\n")
        assert main(["report", "--results-dir", str(results)]) == 0
        assert "hello" in capsys.readouterr().out

    def test_missing_dir_errors(self, tmp_path):
        assert main(
            ["report", "--results-dir", str(tmp_path / "nope")]
        ) == 1


class TestStream:
    def test_stream_runs_with_reliability_stack(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        code = main(
            [
                "stream",
                "--dataset", "boston",
                "--k", "2",
                "--dim", "256",
                "--batch-size", "32",
                "--max-batches", "12",
                "--checkpoint-dir", str(ckpt_dir),
                "--checkpoint-every", "4",
                "--guard-policy", "repair",
                "--scrub-every", "3",
                "--watchdog",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batches processed" in out
        assert "rollbacks" in out
        assert list(ckpt_dir.glob("ckpt-*.npz"))

    def test_stream_resume_from_checkpoint(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        args = [
            "stream",
            "--dataset", "boston",
            "--k", "2",
            "--dim", "256",
            "--batch-size", "32",
            "--checkpoint-dir", str(ckpt_dir),
            "--checkpoint-every", "3",
        ]
        assert main(args + ["--max-batches", "6"]) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "recovered from checkpoint at batch 6" in out

    def test_stream_resume_requires_checkpoint_dir(self, capsys):
        code = main(
            ["stream", "--dataset", "boston", "--resume"]
        )
        assert code == 1
        assert "requires --checkpoint-dir" in capsys.readouterr().err

    def test_stream_plain(self, capsys):
        code = main(
            [
                "stream",
                "--dataset", "boston",
                "--batch-size", "64",
                "--max-batches", "5",
                "--dim", "256",
                "--k", "2",
            ]
        )
        assert code == 0
        assert "batches processed : 5" in capsys.readouterr().out


class TestStreamRobustness:
    def test_mahalanobis_guard_over_contaminated_stream(self, capsys):
        code = main(
            [
                "stream",
                "--dataset", "airfoil",
                "--batch-size", "50",
                "--max-batches", "20",
                "--dim", "256",
                "--k", "2",
                "--guard-policy", "mahalanobis",
                "--contaminate", "0.1",
                "--contaminate-magnitude", "10.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rows gated" in out
        gated = int(out.split("rows gated")[1].split(":")[1].split()[0])
        assert gated > 0  # the burst must not sail through

    def test_stream_intervals_summary(self, capsys):
        code = main(
            [
                "stream",
                "--dataset", "boston",
                "--batch-size", "50",
                "--max-batches", "8",
                "--dim", "256",
                "--k", "2",
                "--intervals",
                "--alpha", "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "conformal" in out
        assert "@ alpha 0.2" in out

    def test_unknown_guard_policy_lists_valid(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "stream",
                    "--dataset", "boston",
                    "--max-batches", "2",
                    "--guard-policy", "bogus",
                ]
            )
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "mahalanobis" in err


class TestPredictIntervals:
    def test_predict_with_intervals(self, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        main(
            [
                "train",
                "--dataset", "boston",
                "--k", "2",
                "--dim", "128",
                "--epochs", "3",
                "--max-samples", "200",
                "--save", str(model_path),
            ]
        )
        capsys.readouterr()

        features = tmp_path / "features.csv"
        rng = np.random.default_rng(0)
        np.savetxt(features, rng.normal(size=(5, 13)), delimiter=",")
        code = main(
            ["predict", str(model_path), str(features), "--intervals"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].split() == ["prediction", "lower", "upper"]
        assert len(lines) == 6  # header + 5 rows
        for line in lines[1:]:
            pred, lo, hi = map(float, line.split())
            assert lo <= pred <= hi


class TestTelemetry:
    @pytest.fixture(autouse=True)
    def _restore_sink(self):
        from repro import telemetry

        previous = telemetry.active()
        yield
        if previous is not None:
            telemetry.enable(previous)
        else:
            telemetry.disable()

    def test_catalog_lists_every_metric(self, capsys):
        from repro.telemetry import CATALOG

        assert main(["telemetry", "--catalog"]) == 0
        out = capsys.readouterr().out
        for name in CATALOG:
            assert name in out

    def test_workload_prints_prometheus_text(self, capsys):
        code = main(
            ["telemetry", "--dim", "128", "--rows", "64", "--batches", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE reghd_kernel_calls_total counter" in out
        batches = next(
            int(line.split()[-1])
            for line in out.splitlines()
            if line.startswith("reghd_stream_batches_total")
        )
        assert batches >= 3

    def test_workload_writes_file(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.json"
        code = main(
            [
                "telemetry",
                "--dim", "128",
                "--rows", "64",
                "--batches", "3",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        import json

        payload = json.loads(out_path.read_text())
        assert set(payload) == {
            "meta", "metrics", "events", "events_dropped"
        }

    def test_stream_metrics_out(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.prom"
        code = main(
            [
                "stream",
                "--dataset", "boston",
                "--batch-size", "32",
                "--max-batches", "6",
                "--dim", "256",
                "--k", "2",
                "--checkpoint-dir", str(tmp_path / "ckpts"),
                "--checkpoint-every", "3",
                "--guard-policy", "repair",
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        assert "wrote metrics" in capsys.readouterr().out
        text = metrics_path.read_text()
        assert "reghd_kernel_calls_total{" in text
        assert "reghd_serving_latency_seconds_bucket{" in text
        assert "reghd_cache_events_total{" in text
        # at least one reliability counter (acceptance criterion)
        assert "reghd_checkpoint_writes_total" in text

    def test_predict_metrics_out(self, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        assert main(
            [
                "train",
                "--dataset", "boston",
                "--k", "2",
                "--dim", "256",
                "--epochs", "2",
                "--save", str(model_path),
            ]
        ) == 0
        capsys.readouterr()
        rng = np.random.default_rng(0)
        features_path = tmp_path / "features.txt"
        np.savetxt(features_path, rng.normal(size=(16, 13)))
        metrics_path = tmp_path / "m.prom"
        code = main(
            [
                "predict",
                str(model_path),
                str(features_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        text = metrics_path.read_text()
        assert "reghd_build_info{" in text
        assert "reghd_serving_rows_total 16" in text


class TestObservabilityCLI:
    @pytest.fixture(autouse=True)
    def _isolated_sinks(self):
        from repro.telemetry import flight as flight_mod
        from repro.telemetry import metrics as metrics_mod
        from repro.telemetry import tracing as tracing_mod

        flight_mod.disable_flight()
        tracing_mod.disable_tracing()
        metrics_mod.disable()
        yield
        flight_mod.disable_flight()
        tracing_mod.disable_tracing()
        metrics_mod.disable()

    def test_trace_command_exports_chrome_trace(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        code = main(
            ["trace", "airfoil_steady", "--quick", "--out", str(out_path)]
        )
        assert code == 0
        assert "wrote trace" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        names = {e["name"] for e in payload["traceEvents"]}
        assert "replay/batch" in names
        assert "encode" in names and "search" in names

    def test_top_once_renders_a_snapshot(self, tmp_path, capsys):
        from repro.telemetry import slo as slo_mod

        path = tmp_path / "live.json"
        slo_mod.SnapshotWriter(path).write(
            {
                "kind": slo_mod.SNAPSHOT_KIND,
                "workload": "wine",
                "batches": 3,
                "rows": 96,
                "qps": 10.0,
                "p50_ms": 1.0,
                "p99_ms": 2.0,
                "slo": [],
            }
        )
        assert main(["top", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "reghd top" in out
        assert "workload wine" in out
        assert "\x1b[2J" not in out  # --once never clears the screen

    def test_forced_breach_replay_dumps_flight_bundles(
        self, tmp_path, capsys
    ):
        import json

        flight_dir = tmp_path / "flight"
        live_path = tmp_path / "live.json"
        code = main(
            [
                "replay", "airfoil_steady", "--quick",
                "--force-breach",
                "--flight-dir", str(flight_dir),
                "--live-out", str(live_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # the forced gate must fail the run
        assert "FAIL" in out
        assert "flight dumps" in out
        dumps = sorted(flight_dir.glob("flight-*.json"))
        assert any("gate-breach" in d.name for d in dumps)
        assert any("watchdog-rollback" in d.name for d in dumps)
        bundle = json.loads(dumps[0].read_text())
        assert bundle["kind"] == "reghd-flight-dump"
        # the live snapshot is attachable with `repro top`
        assert main(["top", str(live_path), "--once"]) == 0
        assert "airfoil_steady" in capsys.readouterr().out
