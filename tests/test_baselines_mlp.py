"""Tests for the numpy MLP regressor."""

import numpy as np
import pytest

from repro.baselines.mlp import MLPRegressor
from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import r2_score


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hidden": ()},
            {"hidden": (0,)},
            {"activation": "gelu"},
            {"optimizer": "rmsprop"},
            {"lr": 0.0},
            {"epochs": 0},
            {"batch_size": 0},
            {"weight_decay": -1e-3},
            {"early_stopping_patience": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            MLPRegressor(**kwargs)

    def test_layer_shapes(self):
        model = MLPRegressor(hidden=(8, 4), epochs=1)
        model.fit(np.zeros((10, 3)), np.zeros(10))
        shapes = [W.shape for W in model.weights_]
        assert shapes == [(3, 8), (8, 4), (4, 1)]


class TestTraining:
    def test_learns_linear(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(150, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 1.0
        model = MLPRegressor(hidden=(16,), epochs=150, seed=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.97

    def test_learns_nonlinear(self, tiny_regression):
        X, y, Xte, yte = tiny_regression
        model = MLPRegressor(hidden=(32, 32), epochs=150, seed=0).fit(X, y)
        assert r2_score(yte, model.predict(Xte)) > 0.5

    def test_tanh_activation_works(self, tiny_regression):
        X, y, _, _ = tiny_regression
        model = MLPRegressor(
            hidden=(16,), activation="tanh", epochs=60, seed=0
        ).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.3

    def test_sgd_optimizer_works(self, tiny_regression):
        X, y, _, _ = tiny_regression
        model = MLPRegressor(
            hidden=(16,), optimizer="sgd", lr=0.05, epochs=80, seed=0
        ).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_early_stopping_trims_epochs(self, tiny_regression):
        X, y, _, _ = tiny_regression
        model = MLPRegressor(
            hidden=(8,), epochs=500, early_stopping_patience=5, tol=1e-2, seed=0
        ).fit(X, y)
        assert model.n_epochs_ < 500

    def test_loss_curve_decreases(self, tiny_regression):
        X, y, _, _ = tiny_regression
        model = MLPRegressor(hidden=(16,), epochs=40, seed=0).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_deterministic(self, tiny_regression):
        X, y, Xte, _ = tiny_regression
        a = MLPRegressor(hidden=(8,), epochs=15, seed=2).fit(X, y).predict(Xte)
        b = MLPRegressor(hidden=(8,), epochs=15, seed=2).fit(X, y).predict(Xte)
        np.testing.assert_allclose(a, b)

    def test_target_units(self, tiny_regression):
        X, y, _, _ = tiny_regression
        y_big = y * 1e4 + 1e6
        model = MLPRegressor(hidden=(16,), epochs=60, seed=0).fit(X, y_big)
        pred = model.predict(X)
        assert abs(pred.mean() - y_big.mean()) < 0.2 * np.abs(y_big).max()

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            MLPRegressor().predict(np.zeros((1, 3)))

    def test_weight_decay_shrinks_weights(self, tiny_regression):
        X, y, _, _ = tiny_regression
        free = MLPRegressor(hidden=(16,), epochs=60, weight_decay=0.0, seed=0).fit(X, y)
        decayed = MLPRegressor(hidden=(16,), epochs=60, weight_decay=0.05, seed=0).fit(X, y)
        def norm(m):
            return sum(float(np.linalg.norm(W)) for W in m.weights_)

        assert norm(decayed) < norm(free)
