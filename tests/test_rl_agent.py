"""Tests for the HD Q-learning agent, replay buffer, and training loop."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rl import (
    GridWorld,
    HDQAgent,
    ReplayBuffer,
    Transition,
    evaluate_policy,
    train_agent,
)
from repro.rl.training import random_policy_reward


def _transition(i: int = 0, done: bool = False) -> Transition:
    return Transition(
        state=np.array([float(i), 0.0]),
        action=i % 2,
        reward=float(i),
        next_state=np.array([float(i) + 1.0, 0.0]),
        done=done,
    )


class TestReplayBuffer:
    def test_push_and_len(self):
        buf = ReplayBuffer(4)
        for i in range(3):
            buf.push(_transition(i))
        assert len(buf) == 3

    def test_ring_eviction(self):
        buf = ReplayBuffer(2)
        for i in range(5):
            buf.push(_transition(i))
        assert len(buf) == 2
        stored_rewards = {t.reward for t in buf.sample(10)}
        assert stored_rewards <= {3.0, 4.0}

    def test_sample_deterministic(self):
        a, b = ReplayBuffer(8, seed=1), ReplayBuffer(8, seed=1)
        for i in range(8):
            a.push(_transition(i))
            b.push(_transition(i))
        assert [t.reward for t in a.sample(4)] == [t.reward for t in b.sample(4)]

    def test_sample_empty_raises(self):
        with pytest.raises(ConfigurationError):
            ReplayBuffer(4).sample(1)

    def test_as_arrays_shapes(self):
        buf = ReplayBuffer(8)
        for i in range(4):
            buf.push(_transition(i, done=(i == 3)))
        states, actions, rewards, next_states, dones = buf.as_arrays(
            buf.sample(4)
        )
        assert states.shape == (4, 2)
        assert actions.dtype == np.int64
        assert dones.dtype == bool

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            ReplayBuffer(0)


class TestHDQAgent:
    def test_q_values_shape(self):
        agent = HDQAgent(3, 4, dim=128, seed=0)
        q = agent.q_values(np.zeros(3))
        assert q.shape == (4,)
        np.testing.assert_allclose(q, 0.0)  # zero-initialised models

    def test_act_greedy_is_argmax(self):
        agent = HDQAgent(2, 3, dim=128, seed=0)
        state = np.array([0.7, -0.3])
        agent.models[1] = agent._encode(state)[0]  # make action 1 best
        assert agent.act(state, greedy=True) == 1

    def test_exploration_respects_epsilon_zero(self):
        agent = HDQAgent(2, 3, dim=128, seed=0, epsilon=0.0, epsilon_min=0.0)
        agent.models[2] = agent._encode(np.ones(2))[0]
        actions = {agent.act(np.ones(2)) for _ in range(10)}
        assert actions == {2}

    def test_full_epsilon_is_random(self):
        agent = HDQAgent(2, 4, dim=64, seed=0, epsilon=1.0)
        actions = {agent.act(np.zeros(2)) for _ in range(100)}
        assert len(actions) == 4

    def test_decay_epsilon_floors(self):
        agent = HDQAgent(
            2, 2, dim=64, epsilon=0.5, epsilon_min=0.4, epsilon_decay=0.5
        )
        agent.decay_epsilon()
        agent.decay_epsilon()
        assert agent.epsilon == 0.4

    def test_td_update_moves_q_toward_target(self):
        agent = HDQAgent(2, 2, dim=256, seed=0, lr=0.5, gamma=0.0)
        state = np.array([0.3, -0.2])
        before = agent.q_values(state)[0]
        transition = Transition(state, 0, 5.0, state, True)
        agent.observe(transition)
        after = agent.q_values(state)[0]
        assert before < after <= 5.0

    def test_terminal_transition_ignores_next_state(self):
        agent = HDQAgent(2, 2, dim=256, seed=0, lr=1.0, gamma=1.0)
        state = np.array([0.1, 0.1])
        # Give the next state a huge Q so leakage would be visible.
        agent.models[1] = 100.0 * agent._encode(np.array([9.0, 9.0]))[0]
        agent.observe(Transition(state, 0, 1.0, np.array([9.0, 9.0]), True))
        # Target was exactly r=1.0 (terminal), so Q(s, 0) ~ lr * 1.0.
        assert agent.q_values(state)[0] == pytest.approx(1.0, abs=0.2)

    def test_learn_from_replay_empty_returns_none(self):
        agent = HDQAgent(2, 2, dim=64, seed=0)
        assert agent.learn_from_replay() is None

    def test_learn_from_replay_returns_error(self):
        agent = HDQAgent(2, 2, dim=64, seed=0)
        agent.observe(_transition(0))
        assert agent.learn_from_replay() is not None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_actions": 1},
            {"lr": 0.0},
            {"lr": 2.5},
            {"gamma": 1.5},
            {"epsilon": 0.1, "epsilon_min": 0.5},
            {"epsilon_decay": 0.0},
            {"batch_size": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        params = {"state_dim": 2, "n_actions": 2, "dim": 32}
        params.update(kwargs)
        state_dim = params.pop("state_dim")
        n_actions = params.pop("n_actions")
        with pytest.raises(ConfigurationError):
            HDQAgent(state_dim, n_actions, **params)


class TestTraining:
    def test_agent_learns_gridworld(self):
        """The headline extension claim: HD Q-learning solves the task."""
        env = GridWorld(4)
        agent = HDQAgent(
            env.state_dim,
            env.n_actions,
            dim=512,
            seed=0,
            lr=0.5,
            epsilon_decay=0.93,
        )
        train_agent(env, agent, episodes=80, seed=0)
        greedy = evaluate_policy(env, agent, episodes=5)
        random = random_policy_reward(env, episodes=5)
        assert greedy > random
        assert greedy > 0.5  # reliably reaches the goal

    def test_learning_curve_improves(self):
        env = GridWorld(4)
        agent = HDQAgent(
            env.state_dim, env.n_actions, dim=512, seed=0, lr=0.5,
            epsilon_decay=0.93,
        )
        run = train_agent(env, agent, episodes=80, seed=0)
        rewards = run.rewards()
        assert rewards[-10:].mean() > rewards[:10].mean()

    def test_moving_average_shape(self):
        env = GridWorld(3, obstacles=())
        agent = HDQAgent(env.state_dim, env.n_actions, dim=128, seed=0)
        run = train_agent(env, agent, episodes=12, seed=0)
        assert len(run.moving_average(5)) == 12 - 5 + 1

    def test_invalid_training_args(self):
        env = GridWorld(3)
        agent = HDQAgent(env.state_dim, env.n_actions, dim=64)
        with pytest.raises(ConfigurationError):
            train_agent(env, agent, episodes=0)
        with pytest.raises(ConfigurationError):
            train_agent(env, agent, episodes=1, replay_updates_per_step=-1)
        with pytest.raises(ConfigurationError):
            evaluate_policy(env, agent, episodes=0)

    def test_training_deterministic(self):
        def run_once():
            env = GridWorld(3)
            agent = HDQAgent(env.state_dim, env.n_actions, dim=128, seed=5)
            return train_agent(env, agent, episodes=10, seed=5).rewards()

        np.testing.assert_allclose(run_once(), run_once())
