"""Tests for SVR and k-NN baselines."""

import numpy as np
import pytest

from repro.baselines.knn import KNNRegressor
from repro.baselines.svr import SVR
from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import r2_score


class TestSVR:
    def test_linear_kernel_fits_linear(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(150, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = SVR(kernel="linear", epochs=80, lr=0.1, seed=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9

    def test_rbf_fits_nonlinear(self, tiny_regression):
        X, y, Xte, yte = tiny_regression
        model = SVR(kernel="rbf", n_components=256, epochs=80, seed=0).fit(X, y)
        assert r2_score(yte, model.predict(Xte)) > 0.3

    def test_rbf_beats_linear_on_nonlinear(self, tiny_regression):
        X, y, Xte, yte = tiny_regression
        linear = SVR(kernel="linear", epochs=80, seed=0).fit(X, y)
        rbf = SVR(kernel="rbf", epochs=80, seed=0).fit(X, y)
        assert r2_score(yte, rbf.predict(Xte)) > r2_score(yte, linear.predict(Xte))

    def test_deterministic(self, tiny_regression):
        X, y, Xte, _ = tiny_regression
        a = SVR(epochs=10, seed=1).fit(X, y).predict(Xte)
        b = SVR(epochs=10, seed=1).fit(X, y).predict(Xte)
        np.testing.assert_allclose(a, b)

    def test_epsilon_tube_tolerates_noise(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        model = SVR(kernel="linear", epsilon=10.0, epochs=40, seed=0).fit(X, y)
        # With a huge tube no subgradient fires: weights stay ~0.
        assert np.linalg.norm(model.coef_) < 0.05

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"C": 0.0},
            {"epsilon": -0.1},
            {"kernel": "poly"},
            {"gamma": 0.0},
            {"n_components": 0},
            {"lr": 0.0},
            {"epochs": 0},
            {"batch_size": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SVR(**kwargs)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            SVR().predict(np.zeros((1, 2)))


class TestKNN:
    def test_exact_match_with_distance_weights(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 3))
        y = rng.normal(size=30)
        model = KNNRegressor(k=5, weights="distance").fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-6)

    def test_k1_returns_nearest_target(self):
        X = np.array([[0.0], [10.0]])
        y = np.array([1.0, 2.0])
        model = KNNRegressor(k=1).fit(X, y)
        np.testing.assert_allclose(model.predict([[0.1]]), [1.0])

    def test_uniform_averages(self):
        X = np.array([[0.0], [1.0], [100.0]])
        y = np.array([2.0, 4.0, 100.0])
        model = KNNRegressor(k=2).fit(X, y)
        assert model.predict([[0.5]])[0] == pytest.approx(3.0)

    def test_learns_smooth_function(self, tiny_regression):
        X, y, Xte, yte = tiny_regression
        model = KNNRegressor(k=7).fit(X, y)
        assert r2_score(yte, model.predict(Xte)) > 0.2

    def test_k_larger_than_train_raises(self):
        with pytest.raises(ConfigurationError):
            KNNRegressor(k=10).fit(np.zeros((5, 2)), np.zeros(5))

    @pytest.mark.parametrize("kwargs", [{"k": 0}, {"weights": "triangle"}])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            KNNRegressor(**kwargs)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KNNRegressor().predict(np.zeros((1, 2)))
