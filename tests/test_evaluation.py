"""Tests for the evaluation harness: runner, grid search, reporting."""

import numpy as np
import pytest

from repro.baselines.linear import RidgeRegression
from repro.datasets import Dataset, train_test_split
from repro.evaluation import (
    grid_search,
    iter_grid,
    render_markdown,
    render_pivot,
    render_table,
    run_experiment,
    run_many,
    run_on_split,
)
from repro.exceptions import ConfigurationError


def _dataset(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = X @ np.array([1.0, -1.0, 0.5, 2.0]) + 0.1 * rng.normal(size=n)
    return Dataset("lin", X, y)


class TestRunner:
    def test_run_experiment_result_fields(self):
        result = run_experiment(
            lambda n: RidgeRegression(1e-6), _dataset(), model_label="ridge"
        )
        assert result.model == "ridge"
        assert result.dataset == "lin"
        assert result.mse < 0.1
        assert result.r2 > 0.95
        assert result.fit_seconds >= 0.0

    def test_default_label_is_class_name(self):
        result = run_experiment(lambda n: RidgeRegression(), _dataset())
        assert result.model == "RidgeRegression"

    def test_epochs_captured_for_iterative_models(self):
        from repro.core import ConvergencePolicy
        from repro.core.single import SingleModelRegHD

        result = run_experiment(
            lambda n: SingleModelRegHD(
                n, dim=128, seed=0,
                convergence=ConvergencePolicy(max_epochs=3, patience=2),
            ),
            _dataset(),
        )
        assert result.n_epochs is not None
        assert 1 <= result.n_epochs <= 3

    def test_max_train_samples_caps(self):
        result = run_experiment(
            lambda n: RidgeRegression(), _dataset(500), max_train_samples=50
        )
        assert np.isfinite(result.mse)

    def test_invalid_max_train_samples(self):
        with pytest.raises(ConfigurationError):
            run_experiment(lambda n: RidgeRegression(), _dataset(), max_train_samples=1)

    def test_run_many_shares_split(self):
        results = run_many(
            {"a": lambda n: RidgeRegression(), "b": lambda n: RidgeRegression()},
            _dataset(),
        )
        assert results[0].mse == pytest.approx(results[1].mse)

    def test_run_on_split_no_standardize(self):
        split = train_test_split(_dataset(), seed=0)
        result = run_on_split(
            lambda n: RidgeRegression(), split, standardize=False
        )
        assert result.r2 > 0.9

    def test_as_row(self):
        result = run_experiment(lambda n: RidgeRegression(), _dataset())
        row = result.as_row()
        assert set(row) == {
            "dataset", "model", "mse", "rmse", "r2", "fit_s", "predict_s", "epochs",
        }


class TestGridSearch:
    def test_iter_grid_counts(self):
        combos = list(iter_grid({"a": [1, 2], "b": [3, 4, 5]}))
        assert len(combos) == 6

    def test_iter_grid_empty(self):
        assert list(iter_grid({})) == [{}]

    def test_iter_grid_empty_values(self):
        with pytest.raises(ConfigurationError):
            list(iter_grid({"a": []}))

    def test_finds_best_alpha(self):
        ds = _dataset(200)
        result = grid_search(
            lambda alpha: RidgeRegression(alpha=alpha),
            {"alpha": [1e-6, 1e3]},
            ds.X,
            ds.y,
            seed=0,
        )
        assert result.best_params["alpha"] == 1e-6
        assert result.n_evaluated == 2

    def test_all_results_recorded(self):
        ds = _dataset()
        result = grid_search(
            lambda alpha: RidgeRegression(alpha=alpha),
            {"alpha": [0.1, 1.0, 10.0]},
            ds.X,
            ds.y,
        )
        assert len(result.all_results) == 3
        assert result.best_mse == min(m for _, m in result.all_results)

    def test_invalid_val_fraction(self):
        ds = _dataset()
        with pytest.raises(ConfigurationError):
            grid_search(lambda: RidgeRegression(), {}, ds.X, ds.y, val_fraction=1.0)


class TestReporting:
    ROWS = [
        {"model": "a", "mse": 1.2345, "epochs": 3},
        {"model": "b", "mse": 0.5, "epochs": None},
    ]

    def test_render_table(self):
        text = render_table(self.ROWS)
        assert "model" in text and "mse" in text
        assert "1.234" in text or "1.235" in text
        assert "-" in text  # the None cell

    def test_render_table_column_selection(self):
        text = render_table(self.ROWS, columns=["model"])
        assert "mse" not in text

    def test_render_table_empty(self):
        with pytest.raises(ConfigurationError):
            render_table([])

    def test_render_markdown(self):
        text = render_markdown(self.ROWS)
        assert text.startswith("| model")
        assert "|---|" in text.replace(" ", "")

    def test_render_pivot_layout(self):
        rows = [
            {"model": "m1", "dataset": "d1", "mse": 1.0},
            {"model": "m1", "dataset": "d2", "mse": 2.0},
            {"model": "m2", "dataset": "d1", "mse": 3.0},
            {"model": "m2", "dataset": "d2", "mse": 4.0},
        ]
        text = render_pivot(rows, index="model", column="dataset", value="mse")
        lines = text.strip().splitlines()
        assert "d1" in lines[0] and "d2" in lines[0]
        assert any(line.strip().startswith("m1") for line in lines)

    def test_render_pivot_missing_cell(self):
        rows = [
            {"model": "m1", "dataset": "d1", "mse": 1.0},
            {"model": "m2", "dataset": "d2", "mse": 4.0},
        ]
        text = render_pivot(rows, index="model", column="dataset", value="mse")
        assert "-" in text

    def test_large_numbers_scientific(self):
        text = render_table([{"x": 1.5e9}])
        assert "e+" in text
