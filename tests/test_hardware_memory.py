"""Tests for the memory-footprint model."""

import pytest

from repro.core import ClusterQuant, PredictQuant
from repro.exceptions import HardwareModelError
from repro.hardware.cost_model import (
    BaselineHDCostSpec,
    DNNCostSpec,
    RegHDCostSpec,
)
from repro.hardware.memory import (
    MemoryFootprint,
    baseline_hd_memory,
    dnn_memory,
    reghd_memory,
)


class TestRegHDMemory:
    def test_full_precision_parameters(self):
        spec = RegHDCostSpec(10, 1000, 8)
        fp = reghd_memory(spec, count_encoder=False)
        # clusters + models: 2 * 8 * 1000 int32 elements.
        assert fp.parameters_bytes == 2 * 8 * 1000 * 4

    def test_binary_cluster_shrinks_storage(self):
        full = reghd_memory(
            RegHDCostSpec(10, 1000, 8), count_encoder=False
        )
        binary = reghd_memory(
            RegHDCostSpec(10, 1000, 8, cluster_quant=ClusterQuant.FRAMEWORK),
            count_encoder=False,
        )
        # Binary clusters: 32x smaller cluster store.
        assert binary.parameters_bytes < full.parameters_bytes

    def test_binary_model_is_one_bit_per_element(self):
        spec = RegHDCostSpec(
            10, 1000, 8,
            cluster_quant=ClusterQuant.FRAMEWORK,
            predict_quant=PredictQuant.BINARY_BOTH,
        )
        fp = reghd_memory(spec, count_encoder=False)
        assert fp.parameters_bytes == 2 * 8 * 1000 / 8  # both stores 1-bit

    def test_sparse_model_cheaper_than_dense(self):
        dense = reghd_memory(RegHDCostSpec(10, 1000, 8), count_encoder=False)
        sparse = reghd_memory(
            RegHDCostSpec(10, 1000, 8, model_density=0.1),
            count_encoder=False,
        )
        assert sparse.parameters_bytes < dense.parameters_bytes

    def test_encoder_term(self):
        spec = RegHDCostSpec(10, 1000, 8)
        with_enc = reghd_memory(spec)
        without = reghd_memory(spec, count_encoder=False)
        assert with_enc.encoder_bytes > 0
        assert without.encoder_bytes == 0
        assert with_enc.total_bytes > without.total_bytes

    def test_total_and_kib(self):
        fp = MemoryFootprint(encoder_bytes=1024.0, parameters_bytes=1024.0)
        assert fp.total_bytes == 2048.0
        assert fp.total_kib == 2.0

    def test_invalid_bits(self):
        with pytest.raises(HardwareModelError):
            reghd_memory(RegHDCostSpec(10, 100, 2), int_bits=0)


class TestComparativeMemory:
    def test_quantized_reghd_smaller_than_dnn(self):
        """The deployment story: a fully binary RegHD-8 at D=1000 beats a
        256x256 DNN's float weights."""
        reghd = reghd_memory(
            RegHDCostSpec(
                10, 1000, 8,
                cluster_quant=ClusterQuant.FRAMEWORK,
                predict_quant=PredictQuant.BINARY_BOTH,
            ),
            count_encoder=False,
        )
        dnn = dnn_memory(DNNCostSpec((10, 256, 256, 1)))
        assert reghd.total_bytes < dnn.total_bytes

    def test_baseline_hd_parameter_heavy(self):
        """128 class hypervectors dwarf RegHD's 8+8."""
        reghd = reghd_memory(RegHDCostSpec(10, 1000, 8), count_encoder=False)
        bhd = baseline_hd_memory(
            BaselineHDCostSpec(10, 1000, 128), count_encoder=False
        )
        assert bhd.parameters_bytes > reghd.parameters_bytes * 4

    def test_dnn_memory_value(self):
        dnn = dnn_memory(DNNCostSpec((4, 8, 1)))
        # weights 4*8 + 8*1 = 40, biases 8 + 1 = 9 -> 49 float32.
        assert dnn.parameters_bytes == 49 * 4

    def test_invalid_float_bits(self):
        with pytest.raises(HardwareModelError):
            dnn_memory(DNNCostSpec((4, 8, 1)), float_bits=0)

    def test_invalid_baseline_bits(self):
        with pytest.raises(HardwareModelError):
            baseline_hd_memory(BaselineHDCostSpec(4, 100, 8), int_bits=-1)
