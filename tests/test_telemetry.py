"""Telemetry subsystem tests: registry, spans, exporters, instrumentation.

Covers the observability acceptance criteria:

* the disabled path is a true no-op — predictions are bit-identical and
  no metrics are recorded;
* histogram bucket edges follow Prometheus ``le`` (inclusive) semantics;
* counters and histograms stay exact under concurrent writers;
* the Prometheus/JSON exporters match checked-in golden files;
* backend, plan, cache, trainer, serving, streaming and reliability
  instrumentation all emit their catalogued metrics;
* watchdog rollbacks round-trip through ``StreamHistory`` state.
"""

from __future__ import annotations

import json
import pathlib
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import telemetry
from repro.core.config import RegHDConfig
from repro.core.multi import MultiModelRegHD
from repro.core.quantization import ClusterQuant, PredictQuant
from repro.exceptions import ConfigurationError
from repro.telemetry import metrics as metrics_mod
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import _NULL_SPAN

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "telemetry"

#: fixed provenance for the golden exports (the real default_meta() would
#: churn the fixtures on every version bump).
GOLDEN_META = {
    "package_version": "0.0.0-test",
    "runtime_version": "0-test",
    "backend": "dense",
}


@pytest.fixture(autouse=True)
def _isolated_sink():
    """Every test starts and ends with the process-wide sink disabled."""
    previous = metrics_mod.active()
    metrics_mod.disable()
    yield
    if previous is not None:
        metrics_mod.enable(previous)
    else:
        metrics_mod.disable()


def _golden_registry() -> MetricsRegistry:
    """A deterministic registry (no wall-clock reads) for export tests."""
    reg = MetricsRegistry()
    reg.counter(
        "reghd_kernel_calls_total", backend="dense", kernel="model_dots"
    ).inc(3)
    reg.counter("reghd_serving_rows_total").inc(128)
    reg.gauge("reghd_train_last_mse").set(0.25)
    hist = reg.histogram(
        "reghd_serving_latency_seconds",
        buckets=(0.001, 0.01, 0.1),
        stage="encode",
    )
    for value in (0.0005, 0.001, 0.05, 0.2):
        hist.observe(value)
    reg.record_event(
        "checkpoint_write", batch=5, checkpoint_id="ckpt-00000005-deadbeef"
    )
    return reg


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("reghd_serving_rows_total")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42.0

    def test_same_labels_return_same_metric(self):
        reg = MetricsRegistry()
        a = reg.counter("reghd_kernel_calls_total", backend="dense", kernel="x")
        b = reg.counter("reghd_kernel_calls_total", kernel="x", backend="dense")
        assert a is b
        c = reg.counter("reghd_kernel_calls_total", backend="packed", kernel="x")
        assert c is not a
        assert len(reg) == 2

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("reghd_train_last_mse")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("reghd_serving_rows_total")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("reghd_serving_rows_total")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.histogram("reghd_serving_rows_total")

    def test_events_are_bounded_and_ordered(self):
        reg = MetricsRegistry(max_events=3)
        for i in range(5):
            reg.record_event("tick", i=i)
        events = reg.events
        assert [e["i"] for e in events] == [2, 3, 4]
        assert [e["seq"] for e in events] == [3, 4, 5]
        assert all(e["kind"] == "tick" for e in events)

    def test_invalid_histogram_bounds(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="at least one"):
            reg.histogram("h_empty", buckets=())
        with pytest.raises(ConfigurationError, match="finite"):
            reg.histogram("h_inf", buckets=(1.0, np.inf))
        with pytest.raises(ConfigurationError, match="increasing"):
            reg.histogram("h_dec", buckets=(1.0, 1.0))


class TestHistogramEdges:
    """Prometheus ``le`` semantics: upper bounds are inclusive."""

    def _hist(self):
        return MetricsRegistry().histogram("h", buckets=(1.0, 2.0))

    @pytest.mark.parametrize(
        "value, expected",
        [
            (0.5, [1, 0, 0]),   # below first bound
            (1.0, [1, 0, 0]),   # exactly on a bound -> that bucket
            (1.5, [0, 1, 0]),
            (2.0, [0, 1, 0]),   # last finite bound, still inclusive
            (2.0000001, [0, 0, 1]),  # just above -> overflow (+Inf) only
        ],
    )
    def test_bucket_edges(self, value, expected):
        hist = self._hist()
        hist.observe(value)
        counts, total, n = hist.snapshot()
        assert counts.tolist() == expected
        assert total == pytest.approx(value)
        assert n == 1

    def test_cumulative_export(self):
        reg = MetricsRegistry()
        hist = reg.histogram("reghd_train_epoch_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            hist.observe(value)
        text = telemetry.to_prometheus(reg, meta=GOLDEN_META)
        assert 'reghd_train_epoch_seconds_bucket{le="1"} 2' in text
        assert 'reghd_train_epoch_seconds_bucket{le="2"} 4' in text
        assert 'reghd_train_epoch_seconds_bucket{le="+Inf"} 5' in text
        assert "reghd_train_epoch_seconds_count 5" in text


class TestHistogramQuantile:
    """Prometheus histogram_quantile semantics on the bucket counts."""

    def _hist(self, buckets=(1.0, 2.0, 4.0)):
        return MetricsRegistry().histogram("h", buckets=buckets)

    def test_empty_histogram_is_nan(self):
        import math

        assert math.isnan(self._hist().quantile(0.5))

    def test_interpolates_within_a_bucket(self):
        hist = self._hist()
        for v in (0.5, 1.5, 1.6, 3.0):
            hist.observe(v)
        # Median target = 2 of 4; cumulative crosses in bucket (1, 2].
        assert hist.quantile(0.5) == pytest.approx(1.5)

    def test_first_bucket_interpolates_from_zero(self):
        hist = self._hist()
        hist.observe(0.5)
        hist.observe(0.5)
        assert 0.0 < hist.quantile(0.5) <= 1.0

    def test_overflow_only_data_is_nan(self):
        # Every observation landed past the last finite bound: the
        # quantile is unknowable from the buckets, and clamping to the
        # last bound would fabricate a misleadingly small number.
        import math

        hist = self._hist()
        for _ in range(10):
            hist.observe(100.0)
        assert math.isnan(hist.quantile(0.99))

    def test_overflow_clamps_when_finite_data_exists(self):
        # With finite-bucket data present the tail quantile still clamps
        # to the last finite bound (standard histogram_quantile).
        hist = self._hist()
        hist.observe(0.5)
        for _ in range(10):
            hist.observe(100.0)
        assert hist.quantile(0.99) == 4.0

    def test_quantiles_are_monotone(self):
        hist = self._hist()
        for v in (0.2, 0.7, 1.3, 1.9, 2.5, 3.8):
            hist.observe(v)
        qs = [hist.quantile(q) for q in (0.1, 0.5, 0.9, 1.0)]
        assert qs == sorted(qs)

    def test_invalid_q_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            self._hist().quantile(1.5)


class TestThreadSafety:
    def test_concurrent_counter_is_exact(self):
        reg = MetricsRegistry()
        counter = reg.counter("reghd_serving_rows_total")

        def work(_):
            for _ in range(10_000):
                counter.inc()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(8)))
        assert counter.value == 80_000.0

    def test_concurrent_histogram_is_exact(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(0.5,))

        def work(worker):
            value = 0.25 if worker % 2 == 0 else 0.75
            for _ in range(5_000):
                hist.observe(value)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(8)))
        counts, total, n = hist.snapshot()
        assert n == 40_000
        assert counts.tolist() == [20_000, 20_000]
        assert total == pytest.approx(0.25 * 20_000 + 0.75 * 20_000)


class TestSink:
    def test_enable_disable_cycle(self):
        assert not telemetry.enabled()
        reg = telemetry.enable()
        assert telemetry.active() is reg
        assert telemetry.enable() is reg  # idempotent
        telemetry.disable()
        assert telemetry.active() is None

    def test_set_enabled_mirrors_config_pin(self):
        metrics_mod.set_enabled(True)
        assert telemetry.enabled()
        metrics_mod.set_enabled(False)
        assert not telemetry.enabled()

    def test_env_var_truthy_values(self):
        for raw, expected in [
            ("1", True), ("true", True), ("ON", True), ("yes", True),
            ("", False), ("0", False), ("off", False),
        ]:
            actual = raw.strip().lower() in metrics_mod._TRUTHY
            assert actual is expected, raw

    def test_config_telemetry_field_flips_sink(self):
        MultiModelRegHD(3, RegHDConfig(dim=32, n_models=2, telemetry=True))
        assert telemetry.enabled()
        MultiModelRegHD(3, RegHDConfig(dim=32, n_models=2, telemetry=False))
        assert not telemetry.enabled()

    def test_config_telemetry_validation_and_meta(self):
        with pytest.raises(ConfigurationError, match="telemetry"):
            RegHDConfig(telemetry="yes")  # type: ignore[arg-type]
        cfg = RegHDConfig(telemetry=True)
        assert RegHDConfig.from_meta(cfg.to_meta()).telemetry is True
        assert RegHDConfig.from_meta(RegHDConfig().to_meta()).telemetry is None


class TestDisabledPath:
    def test_span_is_shared_null_object(self):
        assert telemetry.span("anything") is _NULL_SPAN
        assert telemetry.span("other") is _NULL_SPAN
        with telemetry.span("noop"):
            pass

    def test_no_metrics_recorded_when_disabled(self, tiny_regression):
        X_train, y_train, X_test, _ = tiny_regression
        reg = telemetry.enable()
        telemetry.disable()  # registry exists but sink is off
        model = MultiModelRegHD(
            X_train.shape[1], RegHDConfig(dim=128, n_models=2, seed=0)
        )
        model.partial_fit(X_train, y_train)
        model.predict(X_test)
        model.compile().predict(X_test)
        assert len(reg) == 0
        assert reg.events == []

    def test_predictions_bit_identical_on_and_off(self, tiny_regression):
        X_train, y_train, X_test, _ = tiny_regression
        cfg = RegHDConfig(dim=128, n_models=4, seed=3)

        def run() -> np.ndarray:
            model = MultiModelRegHD(X_train.shape[1], cfg)
            model.partial_fit(X_train, y_train)
            return np.concatenate(
                [model.predict(X_test), model.compile().predict(X_test)]
            )

        baseline = run()
        telemetry.enable()
        instrumented = run()
        telemetry.disable()
        assert np.array_equal(baseline, instrumented)


class TestSpans:
    def test_nested_span_paths(self):
        reg = telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        paths = sorted(
            dict(m.labels)["span"]
            for m in reg.metrics()
            if m.name == "reghd_span_seconds"
        )
        assert paths == ["outer", "outer/inner"]

    def test_span_records_on_exception(self):
        reg = telemetry.enable()
        with pytest.raises(RuntimeError):
            with telemetry.span("boom"):
                raise RuntimeError("x")
        hist = reg.histogram("reghd_span_seconds", span="boom")
        _, _, n = hist.snapshot()
        assert n == 1


class TestExporters:
    def test_prometheus_golden(self):
        text = telemetry.to_prometheus(_golden_registry(), meta=GOLDEN_META)
        assert text == (FIXTURES / "golden.prom").read_text()

    def test_json_golden(self):
        payload = telemetry.to_json(_golden_registry(), meta=GOLDEN_META)
        assert payload == json.loads((FIXTURES / "golden.json").read_text())

    def test_default_meta_stamps_provenance(self):
        import repro
        from repro.runtime import RUNTIME_VERSION

        meta = telemetry.default_meta()
        assert meta["package_version"] == repro.__version__
        assert meta["runtime_version"] == RUNTIME_VERSION
        assert meta["backend"] in ("dense", "packed", "packed_v2")

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c\nd').inc()
        text = telemetry.to_prometheus(reg, meta=GOLDEN_META)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_write_metrics_format_by_extension(self, tmp_path):
        reg = _golden_registry()
        prom = telemetry.write_metrics(reg, tmp_path / "m.prom", meta=GOLDEN_META)
        as_json = telemetry.write_metrics(reg, tmp_path / "m.json", meta=GOLDEN_META)
        assert prom.read_text().startswith("# HELP reghd_build_info")
        assert json.loads(as_json.read_text())["meta"] == GOLDEN_META

    def test_export_does_not_mutate(self):
        reg = _golden_registry()
        before = telemetry.to_json(reg, meta=GOLDEN_META)
        telemetry.to_prometheus(reg, meta=GOLDEN_META)
        assert telemetry.to_json(reg, meta=GOLDEN_META) == before


class TestResolveBackendErrors:
    """Satellite: unknown backend names fail with the registered list."""

    def test_unknown_name_lists_registered_backends(self):
        from repro.runtime import resolve_backend

        with pytest.raises(ConfigurationError) as excinfo:
            resolve_backend("vulkan")
        message = str(excinfo.value)
        assert "vulkan" in message
        assert "dense" in message and "packed" in message
        assert "explicit backend choice" in message

    def test_unknown_env_var_names_its_source(self, monkeypatch):
        from repro.runtime import resolve_backend
        from repro.runtime.base import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "quantum")
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_backend(None)
        assert BACKEND_ENV_VAR in str(excinfo.value)

    def test_is_a_value_error(self):
        from repro.runtime import resolve_backend

        with pytest.raises(ValueError):
            resolve_backend("bogus")


class TestInstrumentedBackend:
    def test_wrapped_only_when_enabled(self):
        from repro.runtime import resolve_backend
        from repro.runtime.instrumented import InstrumentedBackend

        bare = resolve_backend("dense")
        assert not isinstance(bare, InstrumentedBackend)
        telemetry.enable()
        wrapped = resolve_backend("dense")
        assert isinstance(wrapped, InstrumentedBackend)
        assert wrapped.name == "dense"

    def test_never_double_wraps(self):
        from repro.runtime import resolve_backend
        from repro.runtime.instrumented import InstrumentedBackend

        telemetry.enable()
        wrapped = resolve_backend("dense")
        rewrapped = InstrumentedBackend(wrapped)
        assert rewrapped.inner is wrapped.inner

    def test_kernel_counters_and_bytes(self, tiny_regression):
        X_train, y_train, X_test, _ = tiny_regression
        reg = telemetry.enable()
        model = MultiModelRegHD(
            X_train.shape[1], RegHDConfig(dim=128, n_models=2, seed=0)
        )
        model.partial_fit(X_train, y_train)
        model.predict(X_test)
        calls = {
            dict(m.labels)["kernel"]: m.value
            for m in reg.metrics()
            if m.name == "reghd_kernel_calls_total"
        }
        for kernel in (
            "cluster_similarities",
            "model_dots",
            "weighted_prediction",
            "weighted_model_step",
        ):
            assert calls.get(kernel, 0) > 0, kernel
        nbytes = {
            dict(m.labels)["kernel"]: m.value
            for m in reg.metrics()
            if m.name == "reghd_kernel_bytes_total"
        }
        assert nbytes["cluster_similarities"] > 0


class TestPlanCounters:
    """Satellite: compile vs refresh are distinguishable, stats reset."""

    def _fitted(self, tiny_regression):
        X_train, y_train, _, _ = tiny_regression
        model = MultiModelRegHD(
            X_train.shape[1],
            RegHDConfig(
                dim=128,
                n_models=2,
                seed=0,
                cluster_quant=ClusterQuant.FRAMEWORK,
                predict_quant=PredictQuant.BINARY_BOTH,
            ),
        )
        model.partial_fit(X_train, y_train)
        return model, X_train, y_train

    def test_compile_vs_refresh_counters(self, tiny_regression):
        reg = telemetry.enable()
        model, X_train, y_train = self._fitted(tiny_regression)
        plan = model.compile()
        assert reg.counter("reghd_plan_compiles_total").value == 1
        assert reg.counter("reghd_plan_refreshes_total").value == 0
        model.partial_fit(X_train, y_train)
        plan.refresh(model)
        assert reg.counter("reghd_plan_compiles_total").value == 1
        assert reg.counter("reghd_plan_refreshes_total").value == 1

    def test_refresh_stats_reset(self, tiny_regression):
        model, X_train, y_train = self._fitted(tiny_regression)
        plan = model.compile()
        stats = plan.refresh_stats
        assert stats["compiles"] == 1
        assert stats["refreshes"] == 0
        model.partial_fit(X_train, y_train)
        plan.refresh(model)
        stats = plan.refresh_stats
        assert stats["refreshes"] == 1
        assert stats["rows_refreshed"] + stats["rows_reused"] > 0
        stats.reset()
        assert stats["refreshes"] == 0
        assert stats["rows_refreshed"] == 0
        assert stats["rows_reused"] == 0
        assert plan.refresh_stats["refreshes"] == 0
        # compile provenance survives a counter reset
        assert plan.refresh_stats["compiles"] == 1
        assert dict(plan.refresh_stats)  # still a plain dict for consumers


class TestTrainingAndCacheMetrics:
    def test_trainer_and_cache_metrics(self, tiny_regression):
        X_train, y_train, _, _ = tiny_regression
        reg = telemetry.enable()
        model = MultiModelRegHD(
            X_train.shape[1],
            RegHDConfig(
                dim=128,
                n_models=2,
                seed=0,
                backend="packed",
                cluster_quant=ClusterQuant.FRAMEWORK,
                predict_quant=PredictQuant.BINARY_BOTH,
            ),
        )
        model.fit(X_train, y_train)
        assert reg.counter("reghd_train_sessions_total").value == 1
        epochs = reg.counter("reghd_train_epochs_total").value
        assert epochs >= 1
        _, _, n = reg.histogram("reghd_train_epoch_seconds").snapshot()
        assert n == epochs
        assert reg.gauge("reghd_train_lr").value == model.config.lr
        assert reg.gauge("reghd_train_last_mse").value >= 0
        hits = reg.counter(
            "reghd_cache_events_total", cache="query", event="hit"
        ).value
        builds = reg.counter(
            "reghd_cache_events_total", cache="query", event="build"
        ).value
        assert builds >= 1  # begin_training built the epoch cache
        assert hits >= 1  # every batch after that served from it


class TestServingMetrics:
    def test_latency_histograms_and_row_counter(self, tiny_regression):
        X_train, y_train, X_test, _ = tiny_regression
        reg = telemetry.enable()
        model = MultiModelRegHD(
            X_train.shape[1], RegHDConfig(dim=128, n_models=2, seed=0)
        )
        model.partial_fit(X_train, y_train)
        model.compile().predict(X_test)
        assert reg.counter("reghd_serving_rows_total").value == len(X_test)
        for stage in ("encode", "search", "accumulate"):
            _, _, n = reg.histogram(
                "reghd_serving_latency_seconds", stage=stage
            ).snapshot()
            assert n >= 1, stage

    def test_multithreaded_serving_counts_all_tiles(self, tiny_regression):
        X_train, y_train, X_test, _ = tiny_regression
        reg = telemetry.enable()
        model = MultiModelRegHD(
            X_train.shape[1], RegHDConfig(dim=128, n_models=2, seed=0)
        )
        model.partial_fit(X_train, y_train)
        plan = model.compile()
        plan.predict(X_test, tile_rows=16, n_workers=4)
        n_tiles = -(-len(X_test) // 16)
        _, _, n = reg.histogram(
            "reghd_serving_latency_seconds", stage="encode"
        ).snapshot()
        assert n == n_tiles


class TestStreamingAndReliabilityMetrics:
    def test_rollback_metrics_events_and_history_roundtrip(self, tmp_path):
        from repro.reliability.resilient import (
            ResilientBatchReport,
            ResilientStreamingRegHD,
        )
        from repro.reliability.watchdog import Watchdog
        from repro.streaming import StreamHistory

        reg = telemetry.enable()
        rng = np.random.default_rng(0)
        stream = ResilientStreamingRegHD(
            4,
            RegHDConfig(dim=64, n_models=2, seed=0),
            guard="repair",
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
            watchdog=Watchdog(baseline_batches=2, window=2, fail_factor=2.0),
            scrub_every=2,
        )
        coef = np.array([1.0, 2.0, 3.0, 4.0])
        for batch in range(6):
            X = rng.normal(size=(16, 4))
            y = X @ coef + (1e6 if batch == 4 else 0.0)
            report = stream.update(X, y)

        # the rollback report carries its provenance
        rolled = [r for r in stream.history.reports if r.rolled_back]
        assert len(rolled) == 1
        report = rolled[0]
        assert report.restored_checkpoint == stream.rollbacks[-1].checkpoint_id
        assert report.restored_checkpoint.startswith("ckpt-")
        assert report.trigger_error == pytest.approx(
            stream.rollbacks[-1].trigger_error
        )
        assert np.isfinite(report.trigger_error)

        # counters + structured events
        assert reg.counter("reghd_stream_batches_total").value == 6
        assert reg.counter("reghd_watchdog_rollbacks_total").value == 1
        assert reg.counter("reghd_checkpoint_writes_total").value >= 1
        assert reg.counter("reghd_checkpoint_restores_total").value == 1
        assert reg.counter("reghd_scrub_passes_total").value >= 1
        kinds = [e["kind"] for e in reg.events]
        assert "watchdog_rollback" in kinds
        assert "checkpoint_write" in kinds
        rollback_event = next(
            e for e in reg.events if e["kind"] == "watchdog_rollback"
        )
        assert rollback_event["checkpoint_id"] == report.restored_checkpoint
        assert rollback_event["trigger_error"] == pytest.approx(
            report.trigger_error
        )

        # satellite: the rollback report round-trips through history state
        state = stream.history.get_state()
        json.dumps(state)  # must be JSON-serialisable
        restored = StreamHistory()
        restored.set_state(state)
        assert len(restored.reports) == len(stream.history.reports)
        match = [r for r in restored.reports if r.rolled_back]
        assert len(match) == 1
        assert isinstance(match[0], ResilientBatchReport)
        assert match[0] == report

    def test_checkpoint_restores_full_history(self, tmp_path):
        from repro.reliability.resilient import ResilientStreamingRegHD

        rng = np.random.default_rng(1)
        stream = ResilientStreamingRegHD(
            3,
            RegHDConfig(dim=64, n_models=2, seed=0),
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        for _ in range(4):
            X = rng.normal(size=(8, 3))
            stream.update(X, X.sum(axis=1))
        recovered = ResilientStreamingRegHD.recover(tmp_path)
        assert recovered.history.n_batches == 4
        assert [r.batch for r in recovered.history.reports] == [1, 2, 3, 4]

    def test_guard_outcome_counters(self):
        from repro.reliability.guards import InputGuard

        reg = telemetry.enable()
        guard = InputGuard(2, policy="repair")
        guard.check(np.zeros((3, 2)), np.zeros(3))
        X_bad = np.array([[1.0, np.nan], [2.0, 3.0]])
        guard.check(X_bad, np.array([1.0, np.nan]))
        assert reg.counter(
            "reghd_guard_batches_total", outcome="clean"
        ).value == 1
        assert reg.counter(
            "reghd_guard_batches_total", outcome="repaired"
        ).value == 1
        assert reg.counter("reghd_guard_values_repaired_total").value == 1
        assert reg.counter("reghd_guard_rows_dropped_total").value == 1
        event = next(e for e in reg.events if e["kind"] == "guard_batch")
        assert "non-finite" in event["issues"]

    def test_drift_counter(self):
        from repro.streaming import PageHinkley, StreamingRegHD

        reg = telemetry.enable()
        rng = np.random.default_rng(2)
        stream = StreamingRegHD(
            3,
            RegHDConfig(dim=64, n_models=2, seed=0),
            detector=PageHinkley(delta=0.0, threshold=0.5),
        )
        X = rng.normal(size=(16, 3))
        stream.update(X, X.sum(axis=1))
        for _ in range(5):
            X = rng.normal(size=(16, 3))
            stream.update(X, X.sum(axis=1) + rng.normal(size=16) * 50)
        assert reg.counter("reghd_stream_drift_total").value >= 1
        assert reg.gauge("reghd_stream_prequential_mse").value > 0


class TestStreamHistoryState:
    def test_plain_reports_roundtrip(self):
        from repro.streaming import StreamBatchReport, StreamHistory

        history = StreamHistory(max_reports=4)
        for i in range(6):
            history.reports.append(
                StreamBatchReport(
                    batch=i + 1,
                    prequential_mse=None if i == 0 else float(i),
                    drift_detected=(i == 3),
                )
            )
        state = history.get_state()
        json.dumps(state)
        restored = StreamHistory()
        restored.set_state(state)
        assert restored.max_reports == 4
        assert list(restored.reports) == list(history.reports)
        assert restored.drift_events == history.drift_events
