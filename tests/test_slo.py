"""SLO windows, burn-rate telemetry, snapshots, and the top renderer."""

from __future__ import annotations

import io
import json
import math

import pytest

from repro import telemetry
from repro.telemetry import flight as flight_mod
from repro.telemetry import metrics as metrics_mod
from repro.telemetry import slo as slo_mod
from repro.telemetry import tracing as tracing_mod
from repro.telemetry.slo import (
    SLOTracker,
    SLOWindow,
    SnapshotWriter,
    read_snapshot,
    render_top,
    run_top,
)
from repro.workloads.replay import ReplayEngine


@pytest.fixture(autouse=True)
def _isolated_sinks():
    flight_mod.disable_flight()
    tracing_mod.disable_tracing()
    metrics_mod.disable()
    yield
    flight_mod.disable_flight()
    tracing_mod.disable_tracing()
    metrics_mod.disable()


class TestSLOWindow:
    def test_requires_a_limit(self):
        with pytest.raises(ValueError, match="ceiling or a floor"):
            SLOWindow("rmse")

    def test_validates_budget_and_window(self):
        with pytest.raises(ValueError, match="budget"):
            SLOWindow("rmse", ceiling=1.0, budget=0.0)
        with pytest.raises(ValueError, match="window"):
            SLOWindow("rmse", ceiling=1.0, window=0)

    def test_ceiling_burn_rate(self):
        window = SLOWindow("rmse", ceiling=1.0, budget=0.5, window=4)
        assert window.observe(0.5) == 0.0
        # 1 bad of 2 at budget 0.5 -> burning exactly at the limit
        assert window.observe(2.0) == pytest.approx(1.0)
        assert not window.breaching
        assert window.observe(2.0) == pytest.approx((2 / 3) / 0.5)
        assert window.breaching

    def test_floor_counts_undershoot_as_bad(self):
        window = SLOWindow("coverage", floor=0.9, budget=0.5, window=4)
        window.observe(0.95)
        assert window.bad == 0
        window.observe(0.5)
        assert window.bad == 1

    def test_nan_counts_as_bad(self):
        window = SLOWindow("latency_ms", ceiling=10.0, budget=0.5, window=4)
        window.observe(math.nan)
        assert window.bad == 1
        assert window.breaching

    def test_ring_eviction_keeps_incremental_count(self):
        window = SLOWindow("rmse", ceiling=1.0, budget=0.5, window=2)
        window.observe(5.0)  # bad
        window.observe(5.0)  # bad
        assert window.bad == 2
        window.observe(0.1)  # evicts a bad one
        window.observe(0.1)  # evicts the other
        assert window.bad == 0
        assert window.burn_rate == 0.0

    def test_state_is_json_ready(self):
        window = SLOWindow("rmse", ceiling=1.0, budget=0.1, window=8)
        window.observe(0.5)
        state = window.state()
        assert state["gate"] == "rmse"
        assert state["total"] == 1
        assert state["bad"] == 0
        assert state["last"] == 0.5
        assert state["breaching"] is False
        json.dumps(state)  # must serialise

    def test_state_before_observations_has_null_last(self):
        assert SLOWindow("rmse", ceiling=1.0).state()["last"] is None


class _Gate:
    rmse_ceiling = 1.0
    coverage_floor = 0.9
    p99_latency_ms = None


class TestSLOTracker:
    def test_from_gate_duck_types_limits(self):
        tracker = SLOTracker.from_gate(_Gate(), workload="wine")
        assert sorted(tracker.windows) == ["coverage", "rmse"]
        assert tracker.windows["rmse"].ceiling == 1.0
        assert tracker.windows["coverage"].floor == 0.9

    def test_observe_ignores_unknown_names(self):
        tracker = SLOTracker.from_gate(_Gate(), workload="wine")
        burns = tracker.observe(rmse=0.5, latency_ms=3.0)
        assert sorted(burns) == ["rmse"]

    def test_breach_transition_counts_once_and_emits_event(self):
        reg = telemetry.enable()
        gate = _Gate()
        tracker = SLOTracker(
            "wine",
            {"rmse": SLOWindow("rmse", ceiling=gate.rmse_ceiling,
                               budget=0.5, window=4)},
        )
        tracker.observe(rmse=5.0)  # 1/1 bad -> breach transition
        tracker.observe(rmse=5.0)  # still breaching: no second count
        counter = reg.counter(
            "reghd_slo_breaches_total", gate="rmse", workload="wine"
        )
        assert counter.value == 1
        events = [e for e in reg.events if e["kind"] == "slo_breach"]
        assert len(events) == 1
        assert events[0]["gate"] == "rmse"
        # recovery then re-breach counts again
        for _ in range(4):
            tracker.observe(rmse=0.1)
        assert tracker.breaching == []
        tracker.observe(rmse=5.0)
        tracker.observe(rmse=5.0)
        tracker.observe(rmse=5.0)  # 3/4 bad at budget 0.5 -> burn 1.5
        assert counter.value == 2

    def test_observe_updates_burn_gauge_and_flight_samples(self):
        reg = telemetry.enable()
        recorder = flight_mod.enable_flight()
        tracker = SLOTracker.from_gate(_Gate(), workload="wine")
        tracker.observe(rmse=5.0)
        gauge = reg.gauge("reghd_slo_burn_rate", gate="rmse", workload="wine")
        assert gauge.value > 1.0
        samples = recorder.bundle("t")["samples"]
        assert samples[0]["name"] == "burn_rate"
        assert samples[0]["gate"] == "rmse"

    def test_state_sorted_by_gate(self):
        tracker = SLOTracker.from_gate(_Gate(), workload="wine")
        assert [s["gate"] for s in tracker.state()] == ["coverage", "rmse"]


class TestSnapshotWriter:
    def test_write_is_atomic_and_readable(self, tmp_path):
        path = tmp_path / "live.json"
        writer = SnapshotWriter(path)
        writer.write({"kind": slo_mod.SNAPSHOT_KIND, "workload": "wine"})
        assert read_snapshot(path)["workload"] == "wine"
        assert not path.with_name("live.json.tmp").exists()

    def test_every_throttles_but_force_flushes(self, tmp_path):
        path = tmp_path / "live.json"
        writer = SnapshotWriter(path, every=3)
        kinds = [
            writer.write({"kind": slo_mod.SNAPSHOT_KIND, "batch": i})
            for i in range(5)
        ]
        assert kinds == [True, False, False, True, False]
        writer.write({"kind": slo_mod.SNAPSHOT_KIND, "batch": 99}, force=True)
        assert read_snapshot(path)["batch"] == 99

    def test_every_validates(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            SnapshotWriter(tmp_path / "x.json", every=0)

    def test_read_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a reghd-slo-snapshot"):
            read_snapshot(path)


def _snapshot(**overrides) -> dict:
    base = {
        "kind": slo_mod.SNAPSHOT_KIND,
        "workload": "wine",
        "batches": 7,
        "rows": 448,
        "qps": 1234.5,
        "p50_ms": 1.2,
        "p99_ms": 4.8,
        "slo": [
            {"gate": "rmse", "burn_rate": 0.4, "bad": 2, "total": 50,
             "breaching": False},
            {"gate": "latency_ms", "burn_rate": 1.6, "bad": 8, "total": 50,
             "breaching": True},
        ],
        "caches": [{"cache": "plan", "hits": 9, "misses": 1}],
        "kernels": [{"kernel": "dense/encode", "calls": 42}],
    }
    base.update(overrides)
    return base


class TestRenderTop:
    def test_renders_headline_slo_caches_kernels(self):
        frame = render_top(_snapshot())
        assert "workload wine" in frame
        assert "qps 1234.50" in frame
        assert "p99 4.80ms" in frame
        assert "rmse" in frame and "latency_ms" in frame
        assert "BREACH" in frame  # only the breaching gate
        assert frame.count("BREACH") == 1
        assert "9/10 hits" in frame
        assert "dense/encode" in frame

    def test_burn_bar_fills_and_overflows(self):
        assert slo_mod._burn_bar(0.0) == "[....................]  "
        assert slo_mod._burn_bar(0.5) == "[##########..........]  "
        assert slo_mod._burn_bar(2.0) == "[####################] !"

    def test_none_percentiles_render_as_dashes(self):
        frame = render_top(_snapshot(p50_ms=None, p99_ms=None))
        assert "p50 --" in frame
        assert "p99 --" in frame

    def test_no_gate_notice(self):
        frame = render_top(_snapshot(slo=[]))
        assert "(no SLO gate attached)" in frame


class TestRunTop:
    def test_renders_requested_iterations_without_clear(self, tmp_path):
        path = tmp_path / "live.json"
        SnapshotWriter(path).write(_snapshot())
        out = io.StringIO()
        frames = run_top(path, iterations=1, clear=False, out=out)
        assert frames == 1
        assert "workload wine" in out.getvalue()
        assert "\x1b[2J" not in out.getvalue()

    def test_clear_prepends_ansi_home(self, tmp_path):
        path = tmp_path / "live.json"
        SnapshotWriter(path).write(_snapshot())
        out = io.StringIO()
        run_top(path, iterations=1, clear=True, out=out)
        assert out.getvalue().startswith("\x1b[2J\x1b[H")

    def test_missing_snapshot_renders_waiting_notice(self, tmp_path):
        out = io.StringIO()
        run_top(tmp_path / "absent.json", iterations=1, clear=False, out=out)
        assert "waiting for snapshot" in out.getvalue()

    def test_unreadable_snapshot_renders_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "nope"}))
        out = io.StringIO()
        run_top(path, iterations=1, clear=False, out=out)
        assert "unreadable snapshot" in out.getvalue()


class TestReplayLiveSnapshot:
    def test_replay_writes_live_snapshot(self, tmp_path):
        path = tmp_path / "live.json"
        engine = ReplayEngine(quick=True, seed=0, live_out=str(path))
        report = engine.run("airfoil_steady")
        snapshot = read_snapshot(path)
        assert snapshot["workload"] == "airfoil_steady"
        assert snapshot["batches"] == report.n_batches
        assert snapshot["rows"] == report.n_rows
        assert snapshot["qps"] > 0
        assert {s["gate"] for s in snapshot["slo"]} >= {"rmse"}
        # the final frame renders cleanly
        assert "workload airfoil_steady" in render_top(snapshot)
