"""Unit tests for the ModelDelta protocol primitives.

Covers the Chan moment algebra (including the zero-count-shard
regression case), TargetScaler merge/freeze semantics, the recorder,
the counts-weighted merge, delta serialisation, and per-shard seed
derivation.
"""

import numpy as np
import pytest

from repro.core import SingleModelRegHD, derive_shard_seed
from repro.core.delta import (
    DeltaRecorder,
    ModelDelta,
    TargetMoments,
    merge_deltas,
    merge_moments,
)
from repro.core.estimator import TargetScaler
from repro.exceptions import ConfigurationError
from repro.serialization import load_delta, load_model, save_delta, save_model


# -- TargetMoments / Chan merge ---------------------------------------------


def test_moments_from_values_match_numpy():
    y = np.random.default_rng(0).normal(3.0, 2.0, size=257)
    m = TargetMoments.from_values(y)
    assert m.count == 257
    assert m.mean == pytest.approx(np.mean(y))
    assert m.variance == pytest.approx(np.var(y))
    assert m.std == pytest.approx(np.std(y))


def test_chan_merge_is_exact_for_any_split():
    y = np.random.default_rng(1).normal(-1.0, 5.0, size=400)
    pooled = TargetMoments.from_values(y)
    for cut in (1, 13, 200, 399):
        merged = TargetMoments.from_values(y[:cut]).merge(
            TargetMoments.from_values(y[cut:])
        )
        assert merged.count == pooled.count
        assert merged.mean == pytest.approx(pooled.mean, rel=1e-12)
        assert merged.m2 == pytest.approx(pooled.m2, rel=1e-12)


def test_zero_count_shard_is_bitexact_merge_identity():
    """Regression: a shard that saw no samples must not perturb the
    pooled moments at all — not even at float-rounding level."""
    y = np.random.default_rng(2).normal(size=100)
    m = TargetMoments.from_values(y)
    empty = TargetMoments()
    assert m.merge(empty) == m
    assert empty.merge(m) == m
    assert empty.merge(empty) == empty
    assert merge_moments([empty, m, empty]) == m


def test_moments_meta_roundtrip():
    m = TargetMoments.from_values(np.array([1.0, 2.0, 4.0]))
    assert TargetMoments.from_meta(m.to_meta()) == m


# -- TargetScaler streaming-freeze semantics under merge --------------------


def test_scaler_merge_equals_pooled_fit():
    rng = np.random.default_rng(3)
    parts = [rng.normal(2.0, 3.0, size=n) for n in (50, 1, 200)]
    shards = [TargetScaler().fit(p) for p in parts]
    merged = TargetScaler.merge(shards)
    pooled = TargetScaler().fit(np.concatenate(parts))
    assert merged.fitted
    assert merged.mean == pytest.approx(pooled.mean, rel=1e-12)
    assert merged.scale == pytest.approx(pooled.scale, rel=1e-12)


def test_scaler_merge_with_zero_count_shard():
    """An unfitted (or legacy, moment-less) scaler is a merge identity."""
    y = np.random.default_rng(4).normal(size=64)
    fitted = TargetScaler().fit(y)
    merged = TargetScaler.merge([TargetScaler(), fitted, TargetScaler()])
    assert merged.mean == fitted.mean
    assert merged.scale == fitted.scale
    assert merged.count == fitted.count


def test_scaler_merge_of_nothing_is_identity_map():
    merged = TargetScaler.merge([TargetScaler(), TargetScaler()])
    assert not merged.fitted
    assert merged.transform(np.array([5.0]))[0] == 5.0


def test_scaler_merge_constant_targets_falls_back_to_unit_scale():
    merged = TargetScaler.merge(
        [TargetScaler().fit(np.full(10, 7.0)) for _ in range(2)]
    )
    assert merged.mean == pytest.approx(7.0)
    assert merged.scale == 1.0


def test_scaler_freeze_once_is_frozen_against_merge_adoption():
    """apply_delta must not re-standardise a scaler that already froze."""
    model = SingleModelRegHD(3, dim=64, seed=0)
    model.scaler.freeze_once(np.array([1.0, 2.0, 3.0]))
    before = model.scaler.get_state()
    model.begin_delta()
    rng = np.random.default_rng(0)
    model.partial_fit(rng.normal(size=(20, 3)), rng.normal(100.0, 9.0, 20))
    delta = model.capture_delta()
    fresh = SingleModelRegHD(3, dim=64, seed=0)
    fresh.scaler.freeze_once(np.array([1.0, 2.0, 3.0]))
    fresh.apply_delta(delta)
    assert fresh.scaler.get_state() == before


def test_scaler_legacy_state_restores_as_zero_count():
    s = TargetScaler()
    s.set_state({"mean": 1.0, "scale": 2.0, "fitted": True})
    assert s.count == 0 and s.m2 == 0.0
    assert s.moments.count == 0  # merge identity


# -- recorder + merge algebra -----------------------------------------------


def _make_delta(seed: int, n_samples: int, counts=None) -> ModelDelta:
    rng = np.random.default_rng(seed)
    rec = DeltaRecorder(
        "multi",
        {"fp": 1},
        {"clusters_integer": (3, 4), "models_integer": (3, 4)},
        counted=("clusters_integer",),
    )
    rec.observe_targets(rng.normal(size=n_samples))
    rec.accumulate("models_integer", rng.normal(size=(3, 4)))
    rec.accumulate(
        "clusters_integer",
        rng.normal(size=(3, 4)),
        np.array(counts if counts is not None else [n_samples, 0, 0]),
    )
    return rec.finish()


def test_singleton_merge_is_exact_copy():
    d = _make_delta(0, 10)
    merged = merge_deltas([d])
    assert merged is not d
    for name in d.arrays:
        assert np.array_equal(merged.arrays[name], d.arrays[name])
    assert merged.n_samples == d.n_samples
    assert merged.moments == d.moments


def test_merge_weights_by_sample_share():
    a, b = _make_delta(1, 30), _make_delta(2, 10)
    merged = merge_deltas([a, b])
    expected = (30 * a.arrays["models_integer"] + 10 * b.arrays["models_integer"]) / 40
    np.testing.assert_allclose(merged.arrays["models_integer"], expected)
    assert merged.n_samples == 40


def test_merge_weights_counted_arrays_per_row():
    a = _make_delta(3, 20, counts=[10, 10, 0])
    b = _make_delta(4, 20, counts=[0, 10, 0])
    merged = merge_deltas([a, b])
    # Row 0: only shard a contributed -> exactly a's row.
    np.testing.assert_allclose(
        merged.arrays["clusters_integer"][0], a.arrays["clusters_integer"][0]
    )
    # Row 1: equal counts -> plain average.
    np.testing.assert_allclose(
        merged.arrays["clusters_integer"][1],
        0.5 * (a.arrays["clusters_integer"][1] + b.arrays["clusters_integer"][1]),
    )
    # Row 2: nobody touched it -> stays zero (0/0 guard).
    np.testing.assert_array_equal(merged.arrays["clusters_integer"][2], 0.0)
    np.testing.assert_array_equal(merged.row_counts["clusters_integer"], [10, 20, 0])


def test_merge_refuses_incompatible_deltas():
    a = _make_delta(5, 10)
    b = _make_delta(6, 10)
    b.fingerprint = {"fp": 2}
    with pytest.raises(ConfigurationError):
        merge_deltas([a, b])
    b.fingerprint = {"fp": 1}
    b.model_type = "single"
    with pytest.raises(ConfigurationError):
        merge_deltas([a, b])
    with pytest.raises(ConfigurationError):
        merge_deltas([])


def test_touched_rows_masks():
    d = _make_delta(7, 10)
    d.arrays["clusters_integer"][1] = 0.0
    mask = d.touched_rows("clusters_integer")
    assert mask.tolist() == [True, False, True]
    one_d = ModelDelta("single", {}, arrays={"v": np.zeros(4)})
    assert one_d.touched_rows("v").tolist() == [False]
    one_d.arrays["v"][2] = 1.0
    assert one_d.touched_rows("v").tolist() == [True]


def test_scaled_rescales_updates_but_not_evidence():
    d = _make_delta(8, 10)
    half = d.scaled(0.5)
    np.testing.assert_allclose(
        half.arrays["models_integer"], 0.5 * d.arrays["models_integer"]
    )
    assert half.n_samples == d.n_samples
    assert half.moments == d.moments


# -- span discipline ---------------------------------------------------------


def test_delta_spans_do_not_nest_and_apply_refuses_open_span():
    model = SingleModelRegHD(2, dim=32, seed=0)
    model.begin_delta()
    with pytest.raises(ConfigurationError):
        model.begin_delta()
    with pytest.raises(ConfigurationError):
        model.apply_delta(_make_delta(0, 1))
    model.capture_delta()
    with pytest.raises(ConfigurationError):
        model.capture_delta()


def test_apply_delta_refuses_wrong_type_and_fingerprint():
    rng = np.random.default_rng(0)
    model = SingleModelRegHD(2, dim=32, seed=0)
    model.begin_delta()
    model.partial_fit(rng.normal(size=(8, 2)), rng.normal(size=8))
    delta = model.capture_delta()
    other_dim = SingleModelRegHD(2, dim=64, seed=0)
    with pytest.raises(ConfigurationError):
        other_dim.apply_delta(delta)
    delta.model_type = "multi"
    with pytest.raises(ConfigurationError):
        model.apply_delta(delta)


# -- serialisation -----------------------------------------------------------


def test_delta_file_roundtrip(tmp_path):
    rng = np.random.default_rng(0)
    model = SingleModelRegHD(4, dim=128, seed=0)
    model.begin_delta()
    model.partial_fit(rng.normal(size=(50, 4)), rng.normal(size=50))
    delta = model.capture_delta()

    path = save_delta(delta, tmp_path / "delta.npz")
    restored = load_delta(path)
    assert restored.model_type == delta.model_type
    assert restored.fingerprint == delta.fingerprint
    assert restored.n_samples == delta.n_samples
    assert restored.moments == delta.moments
    np.testing.assert_array_equal(
        restored.arrays["model_vector"], delta.arrays["model_vector"]
    )

    fresh = SingleModelRegHD(4, dim=128, seed=0)
    fresh.apply_delta(restored)
    np.testing.assert_array_equal(fresh.model, model.model)


def test_model_and_delta_loaders_refuse_each_other(tmp_path):
    rng = np.random.default_rng(0)
    model = SingleModelRegHD(4, dim=64, seed=0)
    model.partial_fit(rng.normal(size=(20, 4)), rng.normal(size=20))
    model.begin_delta()
    model.partial_fit(rng.normal(size=(20, 4)), rng.normal(size=20))
    delta = model.capture_delta()

    model_path = save_model(model, tmp_path / "model.npz")
    delta_path = save_delta(delta, tmp_path / "delta.npz")
    with pytest.raises(ConfigurationError, match="use load_delta"):
        load_model(delta_path)
    with pytest.raises(ConfigurationError, match="use load_model"):
        load_delta(model_path)


# -- per-shard seeding --------------------------------------------------------


def test_derive_shard_seed_is_deterministic_and_distinct():
    seeds = [derive_shard_seed(42, shard) for shard in range(16)]
    assert seeds == [derive_shard_seed(42, shard) for shard in range(16)]
    assert len(set(seeds)) == 16
    assert derive_shard_seed(43, 0) != seeds[0]


def test_derive_shard_seed_none_passes_through():
    assert derive_shard_seed(None, 3) is None


def test_derive_shard_seed_rejects_negative_shard():
    with pytest.raises(ConfigurationError):
        derive_shard_seed(0, -1)


def test_derive_shard_seed_disjoint_from_model_streams():
    """Shard seeds must not collide with the per-purpose derive_generator
    streams models already consume (encoder bases key 0, shuffling 1)."""
    from repro.utils.rng import derive_generator

    shard_rng = np.random.default_rng(derive_shard_seed(0, 0))
    encoder_rng = derive_generator(0, 0)
    assert not np.array_equal(
        shard_rng.normal(size=8), encoder_rng.normal(size=8)
    )
