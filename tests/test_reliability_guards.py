"""Tests for input-sanitisation guards."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataGuardError
from repro.reliability import GuardPolicy, InputGuard
from repro.reliability.guards import coerce_policy
from repro.robust import MahalanobisGate


@pytest.fixture
def clean_batch(rng):
    X = rng.normal(size=(10, 3))
    y = rng.normal(size=10)
    return X, y


class TestStructuralChecks:
    """Wrong rank / width / dtype always raise, under every policy."""

    @pytest.mark.parametrize("policy", list(GuardPolicy))
    def test_wrong_feature_count(self, policy, rng):
        guard = InputGuard(3, policy=policy)
        with pytest.raises(DataGuardError, match="features"):
            guard.check(rng.normal(size=(5, 4)), np.zeros(5))

    @pytest.mark.parametrize("policy", list(GuardPolicy))
    def test_wrong_rank(self, policy):
        guard = InputGuard(3, policy=policy)
        with pytest.raises(DataGuardError, match="2-d"):
            guard.check(np.zeros(3), np.zeros(1))

    def test_non_numeric_dtype(self):
        guard = InputGuard(2, policy="repair")
        with pytest.raises(DataGuardError, match="convertible"):
            guard.check([["a", "b"]], np.zeros(1))

    def test_length_mismatch(self, rng):
        guard = InputGuard(3)
        with pytest.raises(DataGuardError, match="rows"):
            guard.check(rng.normal(size=(5, 3)), np.zeros(4))

    def test_invalid_in_features(self):
        with pytest.raises(ConfigurationError):
            InputGuard(0)

    def test_invalid_value_range(self):
        with pytest.raises(ConfigurationError):
            InputGuard(3, value_range=(1.0, -1.0))


class TestCleanBatches:
    def test_pass_through_untouched(self, clean_batch):
        X, y = clean_batch
        X_out, y_out, report = InputGuard(3).check(X, y)
        assert report.clean
        np.testing.assert_array_equal(X_out, X)
        np.testing.assert_array_equal(y_out, y)

    def test_inference_only_batch(self, clean_batch):
        X, _ = clean_batch
        X_out, y_out, report = InputGuard(3).check(X)
        assert y_out is None
        assert report.clean


class TestRaisePolicy:
    def test_nan_rejected(self, clean_batch):
        X, y = clean_batch
        X[2, 1] = np.nan
        with pytest.raises(DataGuardError, match="non-finite feature"):
            InputGuard(3, policy="raise").check(X, y)

    def test_inf_rejected(self, clean_batch):
        X, y = clean_batch
        X[0, 0] = np.inf
        with pytest.raises(DataGuardError):
            InputGuard(3).check(X, y)

    def test_bad_target_rejected(self, clean_batch):
        X, y = clean_batch
        y[4] = np.nan
        with pytest.raises(DataGuardError, match="target"):
            InputGuard(3).check(X, y)

    def test_out_of_range_rejected(self, clean_batch):
        X, y = clean_batch
        X[1, 2] = 1e6
        with pytest.raises(DataGuardError, match="out-of-range"):
            InputGuard(3, value_range=(-100.0, 100.0)).check(X, y)


class TestRepairPolicy:
    def test_nan_filled(self, clean_batch):
        X, y = clean_batch
        X[2, 1] = np.nan
        X[5, 0] = -np.inf
        X_out, y_out, report = InputGuard(
            3, policy="repair", fill_value=0.0
        ).check(X, y)
        assert np.isfinite(X_out).all()
        assert X_out[2, 1] == 0.0 and X_out[5, 0] == 0.0
        assert report.n_repaired_values == 2
        assert len(X_out) == len(y_out) == 10  # no rows lost

    def test_out_of_range_clipped(self, clean_batch):
        X, y = clean_batch
        X[1, 2] = 1e6
        X_out, _, report = InputGuard(
            3, policy="repair", value_range=(-10.0, 10.0)
        ).check(X, y)
        assert X_out[1, 2] == 10.0
        assert report.n_repaired_values == 1

    def test_bad_target_row_dropped(self, clean_batch):
        X, y = clean_batch
        y[4] = np.nan
        X_out, y_out, report = InputGuard(3, policy="repair").check(X, y)
        assert len(X_out) == len(y_out) == 9
        assert report.n_dropped_rows == 1
        assert np.isfinite(y_out).all()

    def test_input_not_mutated(self, clean_batch):
        X, y = clean_batch
        X[0, 0] = np.nan
        X_copy = X.copy()
        InputGuard(3, policy="repair").check(X, y)
        np.testing.assert_array_equal(X, X_copy)


class TestDropPolicy:
    def test_offending_rows_dropped(self, clean_batch):
        X, y = clean_batch
        X[2, 1] = np.nan
        y[7] = np.inf
        X_out, y_out, report = InputGuard(3, policy="drop").check(X, y)
        assert len(X_out) == len(y_out) == 8
        assert report.n_dropped_rows == 2
        assert np.isfinite(X_out).all() and np.isfinite(y_out).all()

    def test_all_rows_dropped(self, rng):
        X = np.full((4, 3), np.nan)
        X_out, y_out, report = InputGuard(3, policy="drop").check(
            X, np.zeros(4)
        )
        assert len(X_out) == 0
        assert report.n_rows_out == 0


class TestAccumulation:
    def test_totals_accumulate_across_batches(self, rng):
        guard = InputGuard(3, policy="drop")
        for _ in range(3):
            X = rng.normal(size=(5, 3))
            X[0, 0] = np.nan
            guard.check(X, np.zeros(5))
        assert guard.total.n_rows_in == 15
        assert guard.total.n_dropped_rows == 3


def _linear_batches(rng, n=300, d=3):
    X = rng.normal(size=(n, d))
    y = X @ np.arange(1, d + 1, dtype=float) + 0.1 * rng.normal(size=n)
    return X, y


def _warm_guard(rng, n=300, d=3, **gate_kwargs):
    """A mahalanobis guard warmed on clean correlated data."""
    gate = MahalanobisGate(d, **gate_kwargs) if gate_kwargs else None
    guard = InputGuard(d, policy="mahalanobis", gate=gate)
    X, y = _linear_batches(rng, n, d)
    for start in range(0, n, 50):
        guard.check(X[start : start + 50], y[start : start + 50])
    return guard


class TestUnknownPolicy:
    def test_error_lists_valid_policies(self):
        with pytest.raises(ConfigurationError, match="mahalanobis"):
            InputGuard(3, policy="bogus")
        with pytest.raises(ConfigurationError, match="'raise', 'repair'"):
            coerce_policy("nope")

    def test_coerce_accepts_enum_and_string(self):
        assert coerce_policy("drop") is GuardPolicy.DROP
        assert coerce_policy(GuardPolicy.RAISE) is GuardPolicy.RAISE


class TestMahalanobisPolicy:
    def test_default_gate_constructed(self):
        guard = InputGuard(4, policy="mahalanobis")
        assert guard.gate is not None
        assert guard.gate.in_features == 4

    def test_gate_dimension_mismatch(self):
        with pytest.raises(ConfigurationError, match="features"):
            InputGuard(4, gate=MahalanobisGate(3))

    def test_clean_batches_pass_during_warmup(self, rng):
        guard = InputGuard(3, policy="mahalanobis")
        X, y = _linear_batches(rng, 20)
        X_out, y_out, report = guard.check(X, y)
        assert len(X_out) == 20
        assert report.n_gated_rows == 0

    def test_leverage_outliers_gated(self, rng):
        guard = _warm_guard(rng)
        X, y = _linear_batches(rng, 40)
        X[:4] += 50.0  # far outside the input distribution
        _, _, report = guard.check(X, y)
        assert report.n_gated_rows >= 4
        assert any("gated" in issue for issue in report.issues)

    def test_residual_outliers_gated(self, rng):
        guard = _warm_guard(rng)
        X, y = _linear_batches(rng, 40)
        y[:4] += 100.0  # plausible inputs, impossible targets
        _, _, report = guard.check(X, y)
        assert report.n_gated_rows >= 4

    def test_nonfinite_dropped_before_gating(self, rng):
        guard = _warm_guard(rng)
        X, y = _linear_batches(rng, 40)
        X[0, 0] = np.nan
        X[1] += 50.0
        _, _, report = guard.check(X, y)
        assert report.n_dropped_rows == 1
        assert report.n_gated_rows >= 1
        assert report.n_rows_out == 40 - report.n_dropped_rows - report.n_gated_rows

    def test_inference_batches_scored_not_learned(self, rng):
        guard = _warm_guard(rng)
        weight_before = guard.gate.tracker.weight
        X, _ = _linear_batches(rng, 20)
        X[:3] += 50.0
        X_out, y_out, report = guard.check(X)
        assert y_out is None
        assert report.n_gated_rows >= 3
        assert guard.gate.tracker.weight == weight_before

    def test_sustained_contamination_does_not_drag_estimate(self, rng):
        """Once warm, repeated outliers are excluded from the moments, so
        the gate keeps rejecting them instead of adapting to them."""
        guard = _warm_guard(rng)
        mean_before = guard.gate.tracker.mean.copy()
        for _ in range(5):
            X, y = _linear_batches(rng, 40)
            X[:8] += 50.0
            guard.check(X, y)
        drift = np.abs(guard.gate.tracker.mean - mean_before).max()
        assert drift < 1.0  # a 50-sigma burst admitted even once would move it far

    def test_totals_track_gated_rows(self, rng):
        guard = _warm_guard(rng)
        X, y = _linear_batches(rng, 40)
        X[:5] += 50.0
        guard.check(X, y)
        assert guard.total.n_gated_rows >= 5


class TestDegenerateCovariance:
    def test_constant_feature_deviation_gated(self, rng):
        """A zero-variance column puts deviations along it in the null
        space — they must score infinite, not crash the pseudo-inverse."""
        guard = InputGuard(3, policy="mahalanobis")
        n = 200
        X = rng.normal(size=(n, 3))
        X[:, 2] = 5.0  # constant column
        y = X[:, 0] + 0.1 * rng.normal(size=n)
        for start in range(0, n, 50):
            guard.check(X[start : start + 50], y[start : start + 50])
        probe_X, probe_y = _linear_batches(rng, 10)
        probe_X[:, 2] = 5.0
        probe_X[0, 2] = 9.0  # moves along the dead direction
        probe_y = probe_X[:, 0]
        _, _, report = guard.check(probe_X, probe_y)
        assert report.n_gated_rows >= 1

    def test_fewer_rows_than_features(self, rng):
        """n < d batches keep the covariance singular; scoring must stay
        finite-or-inf, never raise."""
        guard = InputGuard(6, policy="mahalanobis")
        for _ in range(4):
            X = rng.normal(size=(3, 6))
            y = X[:, 0]
            X_out, _, report = guard.check(X, y)
            assert len(X_out) == 3  # warmup admits everything

    def test_all_rows_gated_reports_empty_batch(self, rng):
        gate = MahalanobisGate(3, warmup=8, leverage_p=0.9)
        guard = InputGuard(3, policy="mahalanobis", gate=gate)
        X, y = _linear_batches(rng, 100)
        for start in range(0, 100, 25):
            guard.check(X[start : start + 25], y[start : start + 25])
        X_bad = np.full((5, 3), 80.0) + rng.normal(size=(5, 3))
        y_bad = np.zeros(5)
        X_out, y_out, report = guard.check(X_bad, y_bad)
        assert len(X_out) == len(y_out) == 0
        assert report.n_rows_out == 0
        assert report.n_gated_rows == 5

    def test_single_feature_guard(self, rng):
        guard = InputGuard(1, policy="mahalanobis")
        X = rng.normal(size=(200, 1))
        y = 2.0 * X[:, 0]
        for start in range(0, 200, 50):
            guard.check(X[start : start + 50], y[start : start + 50])
        X_probe = np.vstack([rng.normal(size=(9, 1)), [[30.0]]])
        y_probe = 2.0 * X_probe[:, 0]
        _, _, report = guard.check(X_probe, y_probe)
        assert report.n_gated_rows >= 1
