"""Tests for input-sanitisation guards."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataGuardError
from repro.reliability import GuardPolicy, InputGuard


@pytest.fixture
def clean_batch(rng):
    X = rng.normal(size=(10, 3))
    y = rng.normal(size=10)
    return X, y


class TestStructuralChecks:
    """Wrong rank / width / dtype always raise, under every policy."""

    @pytest.mark.parametrize("policy", list(GuardPolicy))
    def test_wrong_feature_count(self, policy, rng):
        guard = InputGuard(3, policy=policy)
        with pytest.raises(DataGuardError, match="features"):
            guard.check(rng.normal(size=(5, 4)), np.zeros(5))

    @pytest.mark.parametrize("policy", list(GuardPolicy))
    def test_wrong_rank(self, policy):
        guard = InputGuard(3, policy=policy)
        with pytest.raises(DataGuardError, match="2-d"):
            guard.check(np.zeros(3), np.zeros(1))

    def test_non_numeric_dtype(self):
        guard = InputGuard(2, policy="repair")
        with pytest.raises(DataGuardError, match="convertible"):
            guard.check([["a", "b"]], np.zeros(1))

    def test_length_mismatch(self, rng):
        guard = InputGuard(3)
        with pytest.raises(DataGuardError, match="rows"):
            guard.check(rng.normal(size=(5, 3)), np.zeros(4))

    def test_invalid_in_features(self):
        with pytest.raises(ConfigurationError):
            InputGuard(0)

    def test_invalid_value_range(self):
        with pytest.raises(ConfigurationError):
            InputGuard(3, value_range=(1.0, -1.0))


class TestCleanBatches:
    def test_pass_through_untouched(self, clean_batch):
        X, y = clean_batch
        X_out, y_out, report = InputGuard(3).check(X, y)
        assert report.clean
        np.testing.assert_array_equal(X_out, X)
        np.testing.assert_array_equal(y_out, y)

    def test_inference_only_batch(self, clean_batch):
        X, _ = clean_batch
        X_out, y_out, report = InputGuard(3).check(X)
        assert y_out is None
        assert report.clean


class TestRaisePolicy:
    def test_nan_rejected(self, clean_batch):
        X, y = clean_batch
        X[2, 1] = np.nan
        with pytest.raises(DataGuardError, match="non-finite feature"):
            InputGuard(3, policy="raise").check(X, y)

    def test_inf_rejected(self, clean_batch):
        X, y = clean_batch
        X[0, 0] = np.inf
        with pytest.raises(DataGuardError):
            InputGuard(3).check(X, y)

    def test_bad_target_rejected(self, clean_batch):
        X, y = clean_batch
        y[4] = np.nan
        with pytest.raises(DataGuardError, match="target"):
            InputGuard(3).check(X, y)

    def test_out_of_range_rejected(self, clean_batch):
        X, y = clean_batch
        X[1, 2] = 1e6
        with pytest.raises(DataGuardError, match="out-of-range"):
            InputGuard(3, value_range=(-100.0, 100.0)).check(X, y)


class TestRepairPolicy:
    def test_nan_filled(self, clean_batch):
        X, y = clean_batch
        X[2, 1] = np.nan
        X[5, 0] = -np.inf
        X_out, y_out, report = InputGuard(
            3, policy="repair", fill_value=0.0
        ).check(X, y)
        assert np.isfinite(X_out).all()
        assert X_out[2, 1] == 0.0 and X_out[5, 0] == 0.0
        assert report.n_repaired_values == 2
        assert len(X_out) == len(y_out) == 10  # no rows lost

    def test_out_of_range_clipped(self, clean_batch):
        X, y = clean_batch
        X[1, 2] = 1e6
        X_out, _, report = InputGuard(
            3, policy="repair", value_range=(-10.0, 10.0)
        ).check(X, y)
        assert X_out[1, 2] == 10.0
        assert report.n_repaired_values == 1

    def test_bad_target_row_dropped(self, clean_batch):
        X, y = clean_batch
        y[4] = np.nan
        X_out, y_out, report = InputGuard(3, policy="repair").check(X, y)
        assert len(X_out) == len(y_out) == 9
        assert report.n_dropped_rows == 1
        assert np.isfinite(y_out).all()

    def test_input_not_mutated(self, clean_batch):
        X, y = clean_batch
        X[0, 0] = np.nan
        X_copy = X.copy()
        InputGuard(3, policy="repair").check(X, y)
        np.testing.assert_array_equal(X, X_copy)


class TestDropPolicy:
    def test_offending_rows_dropped(self, clean_batch):
        X, y = clean_batch
        X[2, 1] = np.nan
        y[7] = np.inf
        X_out, y_out, report = InputGuard(3, policy="drop").check(X, y)
        assert len(X_out) == len(y_out) == 8
        assert report.n_dropped_rows == 2
        assert np.isfinite(X_out).all() and np.isfinite(y_out).all()

    def test_all_rows_dropped(self, rng):
        X = np.full((4, 3), np.nan)
        X_out, y_out, report = InputGuard(3, policy="drop").check(
            X, np.zeros(4)
        )
        assert len(X_out) == 0
        assert report.n_rows_out == 0


class TestAccumulation:
    def test_totals_accumulate_across_batches(self, rng):
        guard = InputGuard(3, policy="drop")
        for _ in range(3):
            X = rng.normal(size=(5, 3))
            X[0, 0] = np.nan
            guard.check(X, np.zeros(5))
        assert guard.total.n_rows_in == 15
        assert guard.total.n_dropped_rows == 3
