"""Tests for the CART regression tree."""

import numpy as np
import pytest

from repro.baselines.tree import DecisionTreeRegressor, _best_split
from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import r2_score


class TestBestSplit:
    def test_finds_obvious_split(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([0.0, 0.0, 0.0, 5.0, 5.0, 5.0])
        feature, threshold, gain = _best_split(X, y, min_leaf=1)
        assert feature == 0
        assert 2.0 < threshold < 10.0
        assert gain > 0

    def test_no_split_for_constant_feature(self):
        X = np.ones((6, 1))
        y = np.arange(6.0)
        assert _best_split(X, y, min_leaf=1) is None

    def test_min_leaf_respected(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 0.0, 10.0])
        # min_leaf=2 forbids isolating the single outlier.
        result = _best_split(X, y, min_leaf=2)
        assert result is None or result[1] < 3.0


class TestDecisionTree:
    def test_fits_step_function_exactly(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 3.0
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)

    def test_depth_zero_predicts_mean(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        y = rng.normal(size=50)
        model = DecisionTreeRegressor(max_depth=0).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y.mean())

    def test_deeper_fits_better_on_train(self, tiny_regression):
        X, y, _, _ = tiny_regression
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=10, min_samples_leaf=1).fit(X, y)
        assert r2_score(y, deep.predict(X)) > r2_score(y, shallow.predict(X))

    def test_unbounded_depth_interpolates_unique_rows(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 2))
        y = rng.normal(size=40)
        model = DecisionTreeRegressor(
            max_depth=None, min_samples_split=2, min_samples_leaf=1
        ).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-12)

    def test_min_impurity_decrease_prunes(self, tiny_regression):
        X, y, _, _ = tiny_regression
        full = DecisionTreeRegressor(max_depth=8).fit(X, y)
        pruned = DecisionTreeRegressor(max_depth=8, min_impurity_decrease=1e3).fit(X, y)
        assert pruned.n_nodes_ < full.n_nodes_

    def test_node_count_and_depth_tracked(self):
        X = np.linspace(0, 1, 32).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert model.depth_ == 1
        assert model.n_nodes_ == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_depth": -1},
            {"min_samples_split": 1},
            {"min_samples_leaf": 0},
            {"min_impurity_decrease": -0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor(**kwargs)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        y = np.full(20, 3.0)
        model = DecisionTreeRegressor().fit(X, y)
        assert model.n_nodes_ == 1
        np.testing.assert_allclose(model.predict(X), 3.0)

    def test_learns_tiny_regression(self, tiny_regression):
        X, y, Xte, yte = tiny_regression
        model = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert r2_score(yte, model.predict(Xte)) > 0.0
