"""Tests for atomic, checksummed, rotating checkpoints."""

import numpy as np
import pytest

from repro import MultiModelRegHD, RegHDConfig
from repro.core import ConvergencePolicy
from repro.exceptions import CheckpointCorruptError, RecoveryError
from repro.reliability import CheckpointManager, file_crc

CONFIG = RegHDConfig(
    dim=128, n_models=3, seed=0, convergence=ConvergencePolicy(max_epochs=4, patience=2)
)


@pytest.fixture
def model(rng):
    X = rng.normal(size=(80, 4))
    y = np.sin(X[:, 0]) + X[:, 1]
    return MultiModelRegHD(4, CONFIG).fit(X, y)


class TestSaveAndNaming:
    def test_name_embeds_batch_and_crc(self, model, tmp_path):
        info = CheckpointManager(tmp_path).save(model, batch=7)
        assert info.path.name == f"ckpt-00000007-{info.crc:08x}.npz"
        assert file_crc(info.path) == info.crc

    def test_no_temp_files_left_behind(self, model, tmp_path):
        CheckpointManager(tmp_path).save(model, batch=1)
        assert not list(tmp_path.glob("*.tmp*"))

    def test_extra_state_roundtrip(self, model, tmp_path):
        manager = CheckpointManager(tmp_path)
        info = manager.save(model, batch=3, extra={"stream": {"batch": 3}})
        _, extra = manager.load(info)
        assert extra == {"stream": {"batch": 3}}

    def test_load_restores_bit_exact(self, model, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        info = manager.save(model, batch=1)
        loaded, _ = manager.load(info)
        X = rng.normal(size=(16, 4))
        np.testing.assert_array_equal(loaded.predict(X), model.predict(X))

    def test_negative_batch_rejected(self, model, tmp_path):
        with pytest.raises(RecoveryError):
            CheckpointManager(tmp_path).save(model, batch=-1)

    def test_invalid_keep_rejected(self, tmp_path):
        with pytest.raises(RecoveryError):
            CheckpointManager(tmp_path, keep=0)


class TestRotation:
    def test_keeps_newest_k(self, model, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for batch in range(1, 6):
            manager.save(model, batch=batch)
        assert [c.batch for c in manager.checkpoints()] == [4, 5]

    def test_foreign_files_ignored(self, model, tmp_path):
        (tmp_path / "notes.txt").write_text("keep me")
        manager = CheckpointManager(tmp_path, keep=1)
        manager.save(model, batch=1)
        manager.save(model, batch=2)
        assert (tmp_path / "notes.txt").exists()
        assert len(manager.checkpoints()) == 1


class TestValidationAndRecovery:
    def test_latest_valid_returns_newest(self, model, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(model, batch=1)
        manager.save(model, batch=2)
        assert manager.latest_valid().batch == 2

    def test_corrupt_newest_is_skipped(self, model, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(model, batch=1)
        newest = manager.save(model, batch=2)
        data = bytearray(newest.path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.path.write_bytes(bytes(data))
        assert manager.latest_valid().batch == 1

    def test_truncated_newest_is_skipped(self, model, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(model, batch=1)
        newest = manager.save(model, batch=2)
        newest.path.write_bytes(newest.path.read_bytes()[:100])
        assert manager.latest_valid().batch == 1

    def test_verify_raises_on_corruption(self, model, tmp_path):
        manager = CheckpointManager(tmp_path)
        info = manager.save(model, batch=1)
        info.path.write_bytes(b"garbage")
        with pytest.raises(CheckpointCorruptError, match="CRC mismatch"):
            manager.verify(info)

    def test_no_checkpoints_means_none(self, tmp_path):
        assert CheckpointManager(tmp_path).latest_valid() is None

    def test_load_latest_raises_when_empty(self, tmp_path):
        with pytest.raises(RecoveryError, match="no valid checkpoint"):
            CheckpointManager(tmp_path).load_latest()

    def test_load_latest_raises_when_all_corrupt(self, model, tmp_path):
        manager = CheckpointManager(tmp_path)
        info = manager.save(model, batch=1)
        info.path.write_bytes(b"junk")
        with pytest.raises(RecoveryError):
            manager.load_latest()
