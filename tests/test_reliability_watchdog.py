"""Tests for the prequential-error health watchdog."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.reliability import HealthState, Watchdog


def make(**kwargs):
    defaults = dict(
        baseline_batches=5, window=3, warn_factor=2.0, fail_factor=4.0
    )
    defaults.update(kwargs)
    return Watchdog(**defaults)


class TestStates:
    def test_initializing_until_baseline(self):
        dog = make()
        for _ in range(4):
            assert dog.update(1.0) is HealthState.INITIALIZING
        assert dog.update(1.0) is HealthState.HEALTHY
        assert dog.baseline == pytest.approx(1.0)

    def test_healthy_within_envelope(self):
        dog = make()
        for _ in range(5):
            dog.update(1.0)
        for _ in range(10):
            assert dog.update(1.5) is HealthState.HEALTHY

    def test_warn_between_envelopes(self):
        dog = make()
        for _ in range(5):
            dog.update(1.0)
        for _ in range(3):
            state = dog.update(3.0)
        assert state is HealthState.WARN

    def test_failed_beyond_fail_envelope(self):
        dog = make()
        for _ in range(5):
            dog.update(1.0)
        for _ in range(3):
            state = dog.update(50.0)
        assert state is HealthState.FAILED

    def test_single_spike_absorbed_by_window(self):
        """One wild batch must not trigger a rollback on its own."""
        dog = make(window=5)
        for _ in range(5):
            dog.update(1.0)
        for _ in range(4):
            dog.update(1.0)
        assert dog.update(10.0) is not HealthState.FAILED

    def test_non_finite_error_fails_immediately(self):
        dog = make()
        for _ in range(5):
            dog.update(1.0)
        assert dog.update(np.nan) is HealthState.FAILED
        assert dog.update(np.inf) is HealthState.FAILED

    def test_zero_error_warmup_uses_floor(self):
        dog = make(floor=1e-6)
        for _ in range(5):
            dog.update(0.0)
        assert dog.baseline == 1e-6
        # Tiny later errors are judged against the floor, not zero.
        for _ in range(3):
            state = dog.update(1e-8)
        assert state is HealthState.HEALTHY


class TestReset:
    def test_reset_keep_baseline(self):
        dog = make()
        for _ in range(5):
            dog.update(1.0)
        for _ in range(3):
            dog.update(50.0)
        dog.reset(keep_baseline=True)
        assert dog.state is HealthState.HEALTHY
        assert dog.baseline == pytest.approx(1.0)
        # Window is clear: one healthy error keeps it healthy.
        assert dog.update(1.0) is HealthState.HEALTHY

    def test_full_reset_relearns_baseline(self):
        dog = make()
        for _ in range(5):
            dog.update(1.0)
        dog.reset()
        assert dog.baseline is None
        assert dog.update(2.0) is HealthState.INITIALIZING


class TestStateRoundtrip:
    def test_get_set_state(self):
        dog = make()
        for e in [1.0, 1.1, 0.9, 1.0, 1.2, 1.3]:
            dog.update(e)
        snapshot = dog.get_state()
        other = make()
        other.set_state(snapshot)
        assert other.baseline == dog.baseline
        assert list(other._recent) == list(dog._recent)
        assert other.update(1.0) is dog.update(1.0)

    def test_mid_warmup_roundtrip(self):
        dog = make()
        dog.update(1.0)
        other = make()
        other.set_state(dog.get_state())
        assert other.state is HealthState.INITIALIZING
        for _ in range(4):
            other.update(1.0)
        assert other.baseline is not None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"baseline_batches": 0},
        {"window": 0},
        {"warn_factor": 0.5},
        {"warn_factor": 5.0, "fail_factor": 4.0},
        {"floor": 0.0},
    ],
)
def test_invalid_config(kwargs):
    with pytest.raises(ConfigurationError):
        make(**kwargs)
