"""Tests for input-validation helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionalityError
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_matching_lengths,
    check_positive,
    check_probability,
    check_unit_interval,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 0.5)

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        check_positive("x", 0.0, strict=False)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1.0, strict=False)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        check_probability("p", value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5.0])
    def test_rejects_invalid(self, value):
        with pytest.raises(ConfigurationError):
            check_probability("p", value)


class TestCheckUnitInterval:
    def test_accepts_one(self):
        check_unit_interval("f", 1.0)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_unit_interval("f", 0.0)


class TestCheck1d:
    def test_passthrough(self):
        out = check_1d("y", [1, 2, 3])
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_rejects_2d(self):
        with pytest.raises(DimensionalityError, match="y"):
            check_1d("y", [[1, 2], [3, 4]])

    def test_contiguous(self):
        base = np.arange(10.0)[::2]
        assert check_1d("y", base).flags.c_contiguous


class TestCheck2d:
    def test_promotes_1d_row(self):
        out = check_2d("X", [1.0, 2.0, 3.0])
        assert out.shape == (1, 3)

    def test_passthrough_2d(self):
        out = check_2d("X", [[1, 2], [3, 4]])
        assert out.shape == (2, 2)

    def test_rejects_3d(self):
        with pytest.raises(DimensionalityError):
            check_2d("X", np.zeros((2, 2, 2)))


class TestMatchingLengths:
    def test_accepts_match(self):
        check_matching_lengths("X", np.zeros((3, 2)), "y", np.zeros(3))

    def test_rejects_mismatch(self):
        with pytest.raises(DimensionalityError, match="X and y"):
            check_matching_lengths("X", np.zeros((3, 2)), "y", np.zeros(4))
