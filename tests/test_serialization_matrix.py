"""Serialization round-trip matrix + format-v1 compatibility.

Complements ``test_serialization.py`` (error paths, tamper detection):
this module proves that *every* registered estimator — including the
composites that became serialisable with the registry-driven v2 format —
round-trips bit-exactly through ``save_model``/``load_model``, across
the full ClusterQuant × PredictQuant matrix, and that the checked-in v1
fixture files keep loading forever.
"""

import pathlib

import numpy as np
import pytest

from repro import MultiModelRegHD, RegHDConfig, load_model, save_model
from repro.core import (
    ClusterQuant,
    ConvergencePolicy,
    HDClassifier,
    MultiOutputRegHD,
    PredictQuant,
    RegHDEnsemble,
)
from repro.serialization import read_metadata

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

DIM = 96
SEED = 1234
CONV = ConvergencePolicy(max_epochs=4, patience=2)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(SEED)
    X = rng.normal(size=(72, 4))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] * X[:, 2] - X[:, 3]
    X_query = rng.normal(size=(16, 4))
    return X, y, X_query


def multi_config(cq: ClusterQuant, pq: PredictQuant) -> RegHDConfig:
    return RegHDConfig(
        dim=DIM,
        n_models=3,
        seed=SEED,
        convergence=CONV,
        cluster_quant=cq,
        predict_quant=pq,
    )


@pytest.mark.parametrize("cq", list(ClusterQuant))
@pytest.mark.parametrize("pq", list(PredictQuant))
def test_round_trip_matrix(tmp_path, data, cq, pq):
    """Every quantisation combination reloads bit-exactly (format v2)."""
    X, y, X_query = data
    model = MultiModelRegHD(4, multi_config(cq, pq)).fit(X, y)
    path = save_model(model, tmp_path / "m.npz")
    clone = load_model(path)
    assert read_metadata(path)["format_version"] == 2
    assert clone.config.cluster_quant is cq
    assert clone.config.predict_quant is pq
    np.testing.assert_array_equal(
        clone.predict(X_query), model.predict(X_query)
    )


def test_partial_fit_model_round_trips_frozen_scaler(tmp_path, data):
    """A streaming model reloads with its frozen target scaling intact and
    keeps learning bit-exactly from where it left off."""
    X, y, X_query = data
    model = MultiModelRegHD(
        4, multi_config(ClusterQuant.FRAMEWORK, PredictQuant.BINARY_QUERY)
    )
    model.partial_fit(X[:24], y[:24])
    model.partial_fit(X[24:48], y[24:48])
    path = save_model(model, tmp_path / "stream.npz")
    clone = load_model(path)
    assert clone.scaler.fitted
    assert clone.scaler.mean == model.scaler.mean
    assert clone.scaler.scale == model.scaler.scale
    np.testing.assert_array_equal(
        clone.predict(X_query), model.predict(X_query)
    )
    # Continue the stream on both; they must stay in lockstep.
    model.partial_fit(X[48:], y[48:])
    clone.partial_fit(X[48:], y[48:])
    np.testing.assert_array_equal(
        clone.predict(X_query), model.predict(X_query)
    )


def test_multioutput_round_trip(tmp_path, data):
    """MultiOutputRegHD is serialisable via the registry (new in v2)."""
    X, y, X_query = data
    Y = np.column_stack([y, -2.0 * y + 1.0])
    model = MultiOutputRegHD(
        4, 2, RegHDConfig(dim=DIM, n_models=2, seed=SEED, convergence=CONV)
    ).fit(X, Y)
    path = save_model(model, tmp_path / "mo.npz")
    clone = load_model(path)
    assert isinstance(clone, MultiOutputRegHD)
    assert clone.n_outputs == 2
    # Heads share one encoder object after reload, as at construction.
    assert clone.heads[0].encoder is clone.heads[1].encoder
    np.testing.assert_array_equal(
        clone.predict(X_query), model.predict(X_query)
    )


def test_ensemble_round_trip(tmp_path, data):
    """RegHDEnsemble is serialisable via the registry (new in v2); member
    encoders are regenerated from the seeds rather than stored."""
    X, y, X_query = data
    model = RegHDEnsemble(
        4,
        RegHDConfig(dim=DIM, n_models=2, seed=SEED, convergence=CONV),
        n_members=3,
    ).fit(X, y)
    path = save_model(model, tmp_path / "ens.npz")
    clone = load_model(path)
    assert isinstance(clone, RegHDEnsemble)
    assert clone.n_members == 3
    np.testing.assert_array_equal(
        clone.predict(X_query), model.predict(X_query)
    )
    mean, std = model.predict_with_uncertainty(X_query)
    mean_c, std_c = clone.predict_with_uncertainty(X_query)
    np.testing.assert_array_equal(mean_c, mean)
    np.testing.assert_array_equal(std_c, std)


def test_classifier_round_trip(tmp_path):
    rng = np.random.default_rng(SEED)
    X = rng.normal(size=(60, 4))
    labels = (X[:, 0] > 0).astype(int) + 2 * (X[:, 1] > 0).astype(int)
    model = HDClassifier(4, dim=DIM, seed=SEED, convergence=CONV)
    model.fit(X, labels)
    path = save_model(model, tmp_path / "clf.npz")
    clone = load_model(path)
    X_query = rng.normal(size=(10, 4))
    np.testing.assert_array_equal(
        clone.predict(X_query), model.predict(X_query)
    )
    np.testing.assert_array_equal(
        clone.decision_scores(X_query), model.decision_scores(X_query)
    )


class TestV1Compat:
    """The checked-in v1 fixtures were written by the pre-registry
    serializer; the compat loader must keep reading them, and their
    predictions must equal the golden entries recorded at write time."""

    @pytest.fixture(scope="class")
    def golden(self):
        return np.load(FIXTURES / "golden_predictions.npz")

    @pytest.fixture(scope="class")
    def query(self):
        rng = np.random.default_rng(SEED)
        rng.normal(size=(72, 4))  # skip past the fixture training draw
        return rng.normal(size=(16, 4))

    @pytest.mark.parametrize(
        ("fixture", "golden_key"),
        [
            ("v1_single.npz", "single"),
            ("v1_baseline.npz", "baseline_hd"),
            ("v1_multi_quant.npz", "multi_framework_binary_query"),
            ("v1_projection.npz", "single_projection"),
        ],
    )
    def test_v1_file_loads_and_predicts_bit_exactly(
        self, golden, query, fixture, golden_key
    ):
        path = FIXTURES / fixture
        assert read_metadata(path)["format_version"] == 1
        model = load_model(path)
        np.testing.assert_array_equal(model.predict(query), golden[golden_key])

    def test_v1_extra_metadata_survives(self):
        meta = read_metadata(FIXTURES / "v1_multi_quant.npz")
        assert meta["extra"] == {"stream": {"batch": 7, "forgetting": 0.97}}

    def test_v1_model_resaves_as_v2(self, tmp_path, query):
        """Loading a v1 file and saving it again upgrades the format
        without changing the predictions."""
        model = load_model(FIXTURES / "v1_multi_quant.npz")
        path = save_model(model, tmp_path / "upgraded.npz")
        assert read_metadata(path)["format_version"] == 2
        np.testing.assert_array_equal(
            load_model(path).predict(query), model.predict(query)
        )
