"""Tests for multi-output RegHD."""

import numpy as np
import pytest

from repro import RegHDConfig
from repro.core import ConvergencePolicy
from repro.core.multioutput import MultiOutputRegHD
from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import r2_score

CONFIG = RegHDConfig(
    dim=512, n_models=4, seed=0,
    convergence=ConvergencePolicy(max_epochs=10, patience=3),
)


@pytest.fixture(scope="module")
def task():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 5))
    Y = np.column_stack(
        [
            np.sin(2 * X[:, 0]) + X[:, 1],
            X[:, 2] * X[:, 3],
            np.cos(X[:, 4]),
        ]
    )
    Xte = rng.normal(size=(200, 5))
    Yte = np.column_stack(
        [
            np.sin(2 * Xte[:, 0]) + Xte[:, 1],
            Xte[:, 2] * Xte[:, 3],
            np.cos(Xte[:, 4]),
        ]
    )
    return X, Y, Xte, Yte


class TestMultiOutput:
    def test_shapes(self, task):
        X, Y, Xte, _ = task
        model = MultiOutputRegHD(5, 3, CONFIG).fit(X, Y)
        assert model.predict(Xte).shape == (200, 3)

    def test_learns_every_output(self, task):
        X, Y, Xte, Yte = task
        model = MultiOutputRegHD(5, 3, CONFIG).fit(X, Y)
        pred = model.predict(Xte)
        for output in range(3):
            assert r2_score(Yte[:, output], pred[:, output]) > 0.3, output

    def test_heads_share_one_encoder(self, task):
        X, Y, _, _ = task
        model = MultiOutputRegHD(5, 3, CONFIG)
        assert all(head.encoder is model.encoder for head in model.heads)

    def test_single_output_matches_multimodel(self, task):
        """A 1-output wrapper must reproduce MultiModelRegHD exactly."""
        from repro.core.multi import MultiModelRegHD

        X, Y, Xte, _ = task
        wrapper = MultiOutputRegHD(5, 1, CONFIG).fit(X, Y[:, :1])
        solo = MultiModelRegHD(5, CONFIG).fit(X, Y[:, 0])
        np.testing.assert_allclose(
            wrapper.predict(Xte)[:, 0], solo.predict(Xte)
        )

    def test_1d_targets_accepted_for_single_output(self, task):
        X, Y, Xte, _ = task
        model = MultiOutputRegHD(5, 1, CONFIG).fit(X, Y[:, 0])
        assert model.predict(Xte).shape == (200, 1)

    def test_wrong_output_count_rejected(self, task):
        X, Y, _, _ = task
        with pytest.raises(ConfigurationError):
            MultiOutputRegHD(5, 2, CONFIG).fit(X, Y)  # Y has 3 columns

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            MultiOutputRegHD(5, 2, CONFIG).predict(np.zeros((1, 5)))

    def test_partial_fit(self, task):
        X, Y, Xte, Yte = task
        model = MultiOutputRegHD(5, 3, CONFIG)
        for start in range(0, 400, 100):
            model.partial_fit(X[start : start + 100], Y[start : start + 100])
        assert np.isfinite(model.predict(Xte)).all()

    def test_validation_forwarded(self, task):
        X, Y, Xte, Yte = task
        model = MultiOutputRegHD(5, 3, CONFIG)
        model.fit(X, Y, X_val=Xte, Y_val=Yte)
        for head in model.heads:
            assert head.history_ is not None
            assert head.history_.records[0].val_mse is not None

    @pytest.mark.parametrize("n_outputs", [0, -1])
    def test_invalid_outputs(self, n_outputs):
        with pytest.raises(ConfigurationError):
            MultiOutputRegHD(5, n_outputs, CONFIG)

    def test_requires_integer_seed(self):
        with pytest.raises(ConfigurationError):
            MultiOutputRegHD(5, 2, CONFIG.with_overrides(seed=None))

    def test_repr(self):
        assert "MultiOutputRegHD" in repr(MultiOutputRegHD(5, 2, CONFIG))
