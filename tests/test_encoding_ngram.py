"""Tests for the n-gram text encoder."""

import numpy as np
import pytest

from repro.encoding.ngram import NGramTextEncoder
from repro.exceptions import EncodingError
from repro.ops.similarity import cosine_similarity


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs", [{"dim": 0}, {"n": 0}, {"alphabet": ""}, {"alphabet": "aa"}]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(EncodingError):
            NGramTextEncoder(**{"dim": 64, **kwargs})

    def test_properties(self):
        enc = NGramTextEncoder(128, n=2, alphabet="ab ")
        assert enc.dim == 128
        assert enc.n == 2
        assert enc.alphabet == "ab "


class TestEncoding:
    def test_deterministic(self):
        a = NGramTextEncoder(256, seed=1).encode("hello world")
        b = NGramTextEncoder(256, seed=1).encode("hello world")
        np.testing.assert_array_equal(a, b)

    def test_case_insensitive(self):
        enc = NGramTextEncoder(256, seed=0)
        np.testing.assert_array_equal(
            enc.encode("Hello"), enc.encode("hELLO")
        )

    def test_unknown_characters_dropped(self):
        enc = NGramTextEncoder(256, seed=0)
        np.testing.assert_array_equal(
            enc.encode("a1b2c3d!"), enc.encode("abcd")
        )

    def test_too_short_raises(self):
        enc = NGramTextEncoder(64, n=3, seed=0)
        with pytest.raises(EncodingError):
            enc.encode("ab")
        with pytest.raises(EncodingError):
            enc.encode("1234!")  # all dropped

    def test_order_sensitive(self):
        """Position binding inside n-grams: character-reversed text is
        nearly orthogonal, and texts sharing letters but not trigrams
        diverge.  (Note: swapping whole words with identical 3-character
        context keeps the trigram *multiset* — and hence the encoding —
        unchanged; that is correct bag-of-n-grams behaviour.)"""
        enc = NGramTextEncoder(2048, seed=0)
        a = enc.encode("the cat sat on the mat")
        reversed_text = enc.encode("tam eht no tas tac eht")
        assert cosine_similarity(a, reversed_text) < 0.3
        scrambled = enc.encode("ta ech tat son htem ta")
        assert cosine_similarity(a, scrambled) < 0.9

    def test_similar_texts_more_similar(self):
        enc = NGramTextEncoder(4096, seed=0)
        base = enc.encode("the quick brown fox jumps over the lazy dog")
        near = enc.encode("the quick brown fox jumped over a lazy dog")
        far = enc.encode("zzyzx qwrk vvv mmmnnn ppqq xyxyxy zzz kkk jjj jjj")
        assert cosine_similarity(base, near) > cosine_similarity(base, far)

    def test_batch(self):
        enc = NGramTextEncoder(128, seed=0)
        out = enc.encode_batch(["hello", "world"])
        assert out.shape == (2, 128)
        np.testing.assert_array_equal(out[0], enc.encode("hello"))

    def test_empty_batch(self):
        with pytest.raises(EncodingError):
            NGramTextEncoder(64).encode_batch([])

    def test_matches_manual_trigram_construction(self):
        """Cross-check one trigram against the by-hand binding formula."""
        enc = NGramTextEncoder(256, n=3, seed=0, alphabet="abc")
        a, b, c = (enc._items[ch] for ch in "abc")
        expected = np.roll(a, 2) * np.roll(b, 1) * c
        np.testing.assert_allclose(enc.encode("abc"), expected)


class TestLanguageSeparation:
    def test_two_synthetic_languages_separate(self):
        """Texts from two different character Markov chains cluster by
        source — the random-indexing result [38] in miniature."""
        alphabet = "abcdefghij "

        def make_language(seed):
            lang_rng = np.random.default_rng(seed)
            transition = lang_rng.dirichlet(
                np.full(len(alphabet), 0.2), size=len(alphabet)
            )
            def sample(length=200):
                idx = [int(lang_rng.integers(len(alphabet)))]
                for _ in range(length - 1):
                    idx.append(
                        int(lang_rng.choice(len(alphabet), p=transition[idx[-1]]))
                    )
                return "".join(alphabet[i] for i in idx)
            return sample

        lang_a, lang_b = make_language(1), make_language(2)
        enc = NGramTextEncoder(4096, seed=0, alphabet=alphabet)
        a_texts = [enc.encode(lang_a()) for _ in range(4)]
        b_texts = [enc.encode(lang_b()) for _ in range(4)]
        within = np.mean(
            [cosine_similarity(a_texts[0], t) for t in a_texts[1:]]
        )
        across = np.mean(
            [cosine_similarity(a_texts[0], t) for t in b_texts]
        )
        assert within > across
