"""The scenario layer: workload declarations, registry, traffic, replay.

The replay end-to-end tests run one small synthetic workload in quick
mode — the full catalogue replay lives in ``benchmarks/test_workloads.py``
where its runtime belongs.
"""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads import (
    BENCHMARK_NAME,
    DriftProfile,
    FaultSpec,
    QualityGate,
    ReplayEngine,
    TrafficShape,
    WORKLOAD_REGISTRY,
    Workload,
    available_workloads,
    compare_workload_records,
    get_workload,
    register_workload,
    unregister_workload,
    workload_bench_record,
)

# --- drift profiles --------------------------------------------------------


def test_no_drift_is_identity():
    y = np.array([1.0, -2.0, 3.0])
    profile = DriftProfile()
    assert profile.severity(0.99) == 0.0
    np.testing.assert_array_equal(profile.apply(y, 0.99), y)


def test_abrupt_drift_steps_at_the_change_point():
    profile = DriftProfile(kind="abrupt", at=0.5, target_scale=-1.0,
                           target_offset=2.0)
    assert profile.severity(0.49) == 0.0
    assert profile.severity(0.5) == 1.0
    y = np.array([1.0, 3.0])
    np.testing.assert_allclose(profile.apply(y, 0.8), -y + 2.0)


def test_gradual_drift_ramps_linearly():
    profile = DriftProfile(kind="gradual", at=0.4, width=0.2)
    assert profile.severity(0.3) == 0.0
    assert profile.severity(0.5) == pytest.approx(0.5)
    assert profile.severity(0.9) == 1.0


@pytest.mark.parametrize(
    "kwargs",
    [{"kind": "sawtooth"}, {"at": 1.5}, {"width": 0.0}],
)
def test_invalid_drift_profiles_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        DriftProfile(**kwargs)


# --- fault specs -----------------------------------------------------------


def test_fault_fires_only_inside_its_progress_window():
    fault = FaultSpec("gaussian", rate=0.1, start=0.25, stop=0.75)
    assert not fault.active(0.1, 0)
    assert fault.active(0.5, 0)
    assert not fault.active(0.75, 0)  # stop is exclusive


def test_fault_every_skips_batches():
    fault = FaultSpec("gaussian", rate=0.1, every=3)
    fired = [i for i in range(9) if fault.active(0.5, i)]
    assert fired == [0, 3, 6]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"injector": "nonexistent", "rate": 0.1},
        {"injector": "gaussian", "rate": 1.5},
        {"injector": "gaussian", "rate": 0.1, "target": "weights"},
        {"injector": "gaussian", "rate": 0.1, "start": 0.8, "stop": 0.2},
        {"injector": "gaussian", "rate": 0.1, "every": 0},
    ],
)
def test_invalid_fault_specs_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        FaultSpec(**kwargs)


# --- quality gates ---------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"tail_fraction": 0.0},
        {"coverage_floor": 1.2},
        {"rmse_ceiling": -1.0},
        {"p99_latency_ms": 0.0},
    ],
)
def test_invalid_gates_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        QualityGate(**kwargs)


# --- traffic shapes --------------------------------------------------------

N_ROWS = 500


@pytest.mark.parametrize("kind", ["steady", "bursty", "diurnal", "adversarial"])
def test_schedule_covers_every_row_exactly_once(kind):
    schedule = TrafficShape(kind=kind, batch_size=32).schedule(N_ROWS, seed=0)
    covered = []
    for batch in schedule:
        assert batch.size == len(batch.arrivals)
        covered.extend(range(batch.start, batch.start + batch.size))
    assert covered == list(range(N_ROWS))


@pytest.mark.parametrize("kind", ["steady", "bursty", "diurnal", "adversarial"])
def test_arrival_timestamps_strictly_increase(kind):
    schedule = TrafficShape(kind=kind).schedule(N_ROWS, seed=3)
    all_arrivals = np.concatenate([b.arrivals for b in schedule])
    assert np.all(np.diff(all_arrivals) > 0)


def test_schedule_is_deterministic_per_seed():
    shape = TrafficShape(kind="bursty", batch_size=16, burst_size=64)
    a = shape.schedule(N_ROWS, seed=5)
    b = shape.schedule(N_ROWS, seed=5)
    c = shape.schedule(N_ROWS, seed=6)
    assert [x.size for x in a] == [x.size for x in b]
    np.testing.assert_array_equal(a[0].arrivals, b[0].arrivals)
    assert any(
        x.size != y.size for x, y in zip(a, c)
    ) or not np.array_equal(a[0].arrivals, c[0].arrivals)


def test_adversarial_alternates_starve_and_flood():
    schedule = TrafficShape(kind="adversarial", batch_size=8).schedule(
        400, seed=0
    )
    assert schedule[0].size == 1
    assert schedule[1].size == 64  # batch_size * 8


def test_batch_rows_slice_matches_geometry():
    batch = TrafficShape().schedule(100, seed=0)[1]
    assert batch.rows == slice(batch.start, batch.start + batch.size)


@pytest.mark.parametrize(
    "kwargs",
    [{"kind": "tidal"}, {"batch_size": 0}, {"rate_hz": 0.0},
     {"burst_prob": 2.0}, {"period": 1}, {"amplitude": 1.0}],
)
def test_invalid_traffic_shapes_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        TrafficShape(**kwargs)


def test_schedule_rejects_empty_stream():
    with pytest.raises(ConfigurationError):
        TrafficShape().schedule(0)


# --- workload declarations -------------------------------------------------


def _tiny_workload(name="tiny_test_workload", **overrides):
    defaults = dict(
        name=name,
        description="unit-test scenario",
        dataset="linear",
        dataset_kwargs={"n_samples": 400, "n_features": 4},
        quick_kwargs={"n_samples": 200},
        traffic=TrafficShape(kind="steady", batch_size=25),
        gate=QualityGate(rmse_ceiling=5.0),
        dim=128,
        n_models=2,
    )
    defaults.update(overrides)
    return Workload(**defaults)


def test_quick_kwargs_shrink_the_dataset():
    workload = _tiny_workload()
    assert workload.load(quick=False, seed=0).n_samples == 400
    assert workload.load(quick=True, seed=0).n_samples == 200


def test_max_rows_caps_by_subsampling():
    workload = _tiny_workload(max_rows=150, quick_max_rows=50)
    assert workload.load(quick=False, seed=0).n_samples == 150
    assert workload.load(quick=True, seed=0).n_samples == 50


def test_has_model_faults_flag():
    clean = _tiny_workload()
    faulty = _tiny_workload(
        faults=(FaultSpec("bit_flip", rate=0.01, target="model"),)
    )
    assert not clean.has_model_faults
    assert faulty.has_model_faults


@pytest.mark.parametrize(
    "kwargs",
    [{"name": ""}, {"encoder": "fourier"}, {"dim": 8}, {"n_models": 0}],
)
def test_invalid_workloads_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        _tiny_workload(**kwargs)


# --- workload registry -----------------------------------------------------


def test_builtin_catalogue_is_registered():
    names = available_workloads()
    assert len(names) >= 6
    assert "airfoil_steady" in names
    assert get_workload("airfoil_steady").dataset == "airfoil"


def test_register_decorator_and_unregister():
    @register_workload
    def _factory():
        return _tiny_workload(name="registry_test_workload")

    try:
        assert "registry_test_workload" in WORKLOAD_REGISTRY
        with pytest.raises(ConfigurationError):
            register_workload(
                lambda: _tiny_workload(name="registry_test_workload")
            )
        register_workload(
            lambda: _tiny_workload(name="registry_test_workload"),
            replace=True,
        )
    finally:
        unregister_workload("registry_test_workload")
    assert "registry_test_workload" not in WORKLOAD_REGISTRY


def test_get_workload_unknown_name_lists_available():
    with pytest.raises(ConfigurationError, match="airfoil_steady"):
        get_workload("no_such_workload")


def test_factory_must_return_a_workload():
    with pytest.raises(ConfigurationError):
        register_workload(lambda: "not a workload")


# --- replay end-to-end -----------------------------------------------------


@pytest.fixture(scope="module")
def tiny_report():
    workload = _tiny_workload(
        name="replay_unit_workload",
        drift=DriftProfile(kind="abrupt", at=0.6, target_offset=1.0),
        faults=(FaultSpec("gaussian", rate=0.05, target="x", start=0.3),),
        gate=QualityGate(rmse_ceiling=50.0, p99_latency_ms=10_000.0),
    )
    return ReplayEngine(quick=True, seed=0).run(workload)


def test_replay_report_geometry(tiny_report):
    assert tiny_report.workload == "replay_unit_workload"
    assert tiny_report.quick
    assert tiny_report.n_rows == 200
    assert tiny_report.n_batches == 8  # 200 rows / 25-row batches
    assert tiny_report.sim_seconds > 0
    assert np.isfinite(tiny_report.tail_rmse)
    assert tiny_report.faults_injected > 0
    assert tiny_report.p99_latency_ms >= tiny_report.p50_latency_ms >= 0


def test_replay_scores_declared_gates(tiny_report):
    gates = {c.gate for c in tiny_report.checks}
    assert gates == {"rmse_ceiling", "p99_latency_ms"}
    assert tiny_report.passed == all(c.passed for c in tiny_report.checks)


def test_replay_quality_is_deterministic_per_seed(tiny_report):
    workload = _tiny_workload(
        name="replay_unit_workload",
        drift=DriftProfile(kind="abrupt", at=0.6, target_offset=1.0),
        faults=(FaultSpec("gaussian", rate=0.05, target="x", start=0.3),),
        gate=QualityGate(rmse_ceiling=50.0, p99_latency_ms=10_000.0),
    )
    again = ReplayEngine(quick=True, seed=0).run(workload)
    assert again.tail_rmse == tiny_report.tail_rmse
    assert again.faults_injected == tiny_report.faults_injected

    other_seed = ReplayEngine(quick=True, seed=7).run(workload)
    assert other_seed.tail_rmse != tiny_report.tail_rmse


def test_replay_accepts_registered_names():
    report = ReplayEngine(quick=True, seed=0).run("airfoil_steady")
    assert report.workload == "airfoil_steady"
    assert report.dataset == "airfoil"


def test_report_round_trips_through_json(tiny_report):
    payload = tiny_report.to_dict()
    assert json.loads(json.dumps(payload)) == payload


# --- the regression gate ---------------------------------------------------


def _record(reports):
    return workload_bench_record(reports, quick=True, seed=0)


def test_self_compare_is_clean(tiny_report):
    record = _record([tiny_report])
    report = compare_workload_records(record, record)
    assert report["strict"]
    assert report["compared"] == 1
    assert not report["regressions"]


def test_rmse_regression_is_flagged(tiny_report):
    baseline = _record([tiny_report])
    current = json.loads(json.dumps(baseline))
    current["results"][0]["tail_rmse"] = tiny_report.tail_rmse * 2.0
    report = compare_workload_records(baseline, current, threshold=0.10)
    assert len(report["regressions"]) == 1


def test_gate_flip_is_flagged_even_with_better_rmse(tiny_report):
    baseline = _record([tiny_report])
    current = json.loads(json.dumps(baseline))
    current["results"][0]["tail_rmse"] = tiny_report.tail_rmse * 0.5
    current["results"][0]["passed"] = False
    report = compare_workload_records(baseline, current)
    assert len(report["regressions"]) == 1


def test_mismatched_modes_are_incomparable(tiny_report):
    baseline = _record([tiny_report])
    current = json.loads(json.dumps(baseline))
    current["seed"] = 99
    report = compare_workload_records(baseline, current)
    assert not report["strict"]
    assert report["compared"] == 0
    assert report["note"]


def test_different_benchmark_kinds_are_incomparable(tiny_report):
    baseline = _record([tiny_report])
    current = json.loads(json.dumps(baseline))
    current["benchmark"] = "reghd-distributed-scaling"
    report = compare_workload_records(baseline, current)
    assert report["compared"] == 0


def test_bench_record_shape(tiny_report):
    record = _record([tiny_report])
    assert record["benchmark"] == BENCHMARK_NAME
    assert record["params"]["n_workloads"] == 1
    assert record["results"][0]["workload"] == "replay_unit_workload"
