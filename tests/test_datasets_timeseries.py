"""Tests for the time-series generators."""

import numpy as np
import pytest

from repro.datasets.timeseries import (
    regime_switching_signal,
    sensor_signal,
    windowed_forecasting_dataset,
)
from repro.exceptions import DatasetError


class TestSensorSignal:
    def test_length_and_determinism(self):
        a = sensor_signal(500, seed=3)
        b = sensor_signal(500, seed=3)
        assert a.shape == (500,)
        np.testing.assert_array_equal(a, b)

    def test_periodicity_visible(self):
        """Autocorrelation at the daily period beats a random lag."""
        signal = sensor_signal(2000, noise=0.05, drift_per_step=0.0, seed=0)
        def autocorr(lag):
            return float(np.corrcoef(signal[:-lag], signal[lag:])[0, 1])
        assert autocorr(48) > autocorr(29)
        assert autocorr(48) > 0.5

    def test_drift_raises_mean(self):
        drifting = sensor_signal(2000, drift_per_step=0.01, noise=0.0, seed=0)
        assert drifting[-200:].mean() > drifting[:200].mean() + 5.0

    def test_invalid(self):
        with pytest.raises(DatasetError):
            sensor_signal(0)
        with pytest.raises(DatasetError):
            sensor_signal(10, daily_period=0.0)


class TestRegimeSwitchingSignal:
    def test_length(self):
        assert regime_switching_signal(1000, seed=0).shape == (1000,)

    def test_statistics_change_at_switch(self):
        signal = regime_switching_signal(
            800, switch_every=400, n_regimes=2, noise=0.01, seed=0
        )
        first, second = signal[:400], signal[400:]
        # Means or variances must differ across the regime boundary.
        assert (
            abs(first.mean() - second.mean()) > 0.1
            or abs(first.std() - second.std()) > 0.1
        )

    def test_invalid(self):
        with pytest.raises(DatasetError):
            regime_switching_signal(0)
        with pytest.raises(DatasetError):
            regime_switching_signal(10, switch_every=0)
        with pytest.raises(DatasetError):
            regime_switching_signal(10, n_regimes=0)


class TestWindowedDataset:
    def test_shapes(self):
        series = np.arange(20.0)
        ds = windowed_forecasting_dataset(series, window=5)
        assert ds.X.shape == (15, 5)
        assert ds.y.shape == (15,)

    def test_alignment_one_step(self):
        series = np.arange(10.0)
        ds = windowed_forecasting_dataset(series, window=3)
        np.testing.assert_array_equal(ds.X[0], [0.0, 1.0, 2.0])
        assert ds.y[0] == 3.0
        np.testing.assert_array_equal(ds.X[-1], [6.0, 7.0, 8.0])
        assert ds.y[-1] == 9.0

    def test_alignment_multi_horizon(self):
        series = np.arange(10.0)
        ds = windowed_forecasting_dataset(series, window=3, horizon=2)
        np.testing.assert_array_equal(ds.X[0], [0.0, 1.0, 2.0])
        assert ds.y[0] == 4.0

    def test_too_short_raises(self):
        with pytest.raises(DatasetError):
            windowed_forecasting_dataset(np.arange(4.0), window=4)

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            windowed_forecasting_dataset(np.arange(10.0), window=0)
        with pytest.raises(DatasetError):
            windowed_forecasting_dataset(np.arange(10.0), window=2, horizon=0)

    def test_feature_names(self):
        ds = windowed_forecasting_dataset(np.arange(10.0), window=3)
        assert ds.feature_names == ("lag3", "lag2", "lag1")
