"""Tests for the time-series generators."""

import numpy as np
import pytest

from repro.datasets.timeseries import (
    load_multihorizon_forecast,
    load_regime_forecast,
    load_sensor_forecast,
    multihorizon_forecasting_dataset,
    regime_switching_signal,
    sensor_signal,
    windowed_forecasting_dataset,
)
from repro.exceptions import DatasetError


class TestSensorSignal:
    def test_length_and_determinism(self):
        a = sensor_signal(500, seed=3)
        b = sensor_signal(500, seed=3)
        assert a.shape == (500,)
        np.testing.assert_array_equal(a, b)

    def test_periodicity_visible(self):
        """Autocorrelation at the daily period beats a random lag."""
        signal = sensor_signal(2000, noise=0.05, drift_per_step=0.0, seed=0)
        def autocorr(lag):
            return float(np.corrcoef(signal[:-lag], signal[lag:])[0, 1])
        assert autocorr(48) > autocorr(29)
        assert autocorr(48) > 0.5

    def test_drift_raises_mean(self):
        drifting = sensor_signal(2000, drift_per_step=0.01, noise=0.0, seed=0)
        assert drifting[-200:].mean() > drifting[:200].mean() + 5.0

    def test_invalid(self):
        with pytest.raises(DatasetError):
            sensor_signal(0)
        with pytest.raises(DatasetError):
            sensor_signal(10, daily_period=0.0)


class TestRegimeSwitchingSignal:
    def test_length(self):
        assert regime_switching_signal(1000, seed=0).shape == (1000,)

    def test_statistics_change_at_switch(self):
        signal = regime_switching_signal(
            800, switch_every=400, n_regimes=2, noise=0.01, seed=0
        )
        first, second = signal[:400], signal[400:]
        # Means or variances must differ across the regime boundary.
        assert (
            abs(first.mean() - second.mean()) > 0.1
            or abs(first.std() - second.std()) > 0.1
        )

    def test_invalid(self):
        with pytest.raises(DatasetError):
            regime_switching_signal(0)
        with pytest.raises(DatasetError):
            regime_switching_signal(10, switch_every=0)
        with pytest.raises(DatasetError):
            regime_switching_signal(10, n_regimes=0)


class TestWindowedDataset:
    def test_shapes(self):
        series = np.arange(20.0)
        ds = windowed_forecasting_dataset(series, window=5)
        assert ds.X.shape == (15, 5)
        assert ds.y.shape == (15,)

    def test_alignment_one_step(self):
        series = np.arange(10.0)
        ds = windowed_forecasting_dataset(series, window=3)
        np.testing.assert_array_equal(ds.X[0], [0.0, 1.0, 2.0])
        assert ds.y[0] == 3.0
        np.testing.assert_array_equal(ds.X[-1], [6.0, 7.0, 8.0])
        assert ds.y[-1] == 9.0

    def test_alignment_multi_horizon(self):
        series = np.arange(10.0)
        ds = windowed_forecasting_dataset(series, window=3, horizon=2)
        np.testing.assert_array_equal(ds.X[0], [0.0, 1.0, 2.0])
        assert ds.y[0] == 4.0

    def test_too_short_raises(self):
        with pytest.raises(DatasetError):
            windowed_forecasting_dataset(np.arange(4.0), window=4)

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            windowed_forecasting_dataset(np.arange(10.0), window=0)
        with pytest.raises(DatasetError):
            windowed_forecasting_dataset(np.arange(10.0), window=2, horizon=0)

    def test_feature_names(self):
        ds = windowed_forecasting_dataset(np.arange(10.0), window=3)
        assert ds.feature_names == ("lag3", "lag2", "lag1")

    def test_window_longer_than_series_raises(self):
        with pytest.raises(DatasetError):
            windowed_forecasting_dataset(np.arange(5.0), window=10)

    def test_window_filling_the_whole_series_leaves_no_target(self):
        """window == len(series) leaves no row even at horizon 1."""
        with pytest.raises(DatasetError):
            windowed_forecasting_dataset(np.arange(6.0), window=6)

    def test_single_usable_row(self):
        """The minimal series yields exactly one (window, target) pair."""
        ds = windowed_forecasting_dataset(np.arange(4.0), window=3)
        assert ds.X.shape == (1, 3)
        assert ds.y[0] == 3.0


class TestMultihorizonDataset:
    def test_one_row_per_anchor_per_horizon(self):
        series = np.arange(20.0)
        ds = multihorizon_forecasting_dataset(
            series, window=4, horizons=(1, 2, 4)
        )
        usable = 20 - 4 - 4 + 1  # anchors limited by the largest horizon
        assert ds.X.shape == (usable * 3, 5)  # lags + horizon feature
        assert ds.feature_names[-1] == "horizon"

    def test_targets_align_per_horizon(self):
        series = np.arange(12.0)
        ds = multihorizon_forecasting_dataset(
            series, window=3, horizons=(1, 2)
        )
        # First anchor is rows 0-1: lags [0,1,2], horizons 1 then 2.
        np.testing.assert_array_equal(ds.X[0][:3], [0.0, 1.0, 2.0])
        assert ds.y[0] == 3.0  # t+1
        assert ds.y[1] == 4.0  # t+2
        assert ds.X[0][3] == 0.5  # h / h_max
        assert ds.X[1][3] == 1.0

    def test_horizons_deduplicated_and_sorted(self):
        ds = multihorizon_forecasting_dataset(
            np.arange(20.0), window=4, horizons=(4, 1, 4, 2)
        )
        assert ds.y[0] < ds.y[1] < ds.y[2]  # horizons applied as 1, 2, 4

    def test_window_longer_than_series_raises(self):
        with pytest.raises(DatasetError):
            multihorizon_forecasting_dataset(np.arange(5.0), window=10)

    def test_invalid_horizons_rejected(self):
        with pytest.raises(DatasetError):
            multihorizon_forecasting_dataset(
                np.arange(20.0), window=4, horizons=()
            )
        with pytest.raises(DatasetError):
            multihorizon_forecasting_dataset(
                np.arange(20.0), window=4, horizons=(0, 1)
            )


class TestRegistryLoaders:
    @pytest.mark.parametrize(
        "loader,name",
        [
            (load_sensor_forecast, "sensor_forecast"),
            (load_regime_forecast, "regime_forecast"),
            (load_multihorizon_forecast, "forecast_multi"),
        ],
    )
    def test_loader_named_and_deterministic(self, loader, name):
        a = loader(seed=3, n=400)
        b = loader(seed=3, n=400)
        assert a.name == name
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = load_sensor_forecast(seed=0, n=400)
        b = load_sensor_forecast(seed=1, n=400)
        assert not np.array_equal(a.y, b.y)

    def test_row_budget_flows_through_n(self):
        ds = load_sensor_forecast(seed=0, n=300, window=10)
        assert ds.n_samples == 300 - 10  # horizon 1
        assert ds.n_features == 10
