"""Merge-vs-sequential golden parity suite (ISSUE acceptance criteria).

Three escalating guarantees, proven on a Table-1 dataset (boston)
across every quantisation combination:

1. **1-shard replay** — ``ShardTrainer(n_shards=1)`` reproduces
   sequential ``partial_fit`` within 1e-9 for every one of the 12
   cluster × predict quant combos (single-model is bit-exact; the
   clustered recorder accumulates batch sums where the live path
   scatters per sample, so its bits may differ in the last ulp).
2. **Bit stability** — repeating a multi-shard run from a fresh model
   produces identical bits (the ordered reduction leaves scheduling no
   way in), again across all 12 combos.
3. **Quality parity** — shard-parallel training with the ``sum``
   (bundling) reduction lands within 1% of the sequential reference
   RMSE for the clustered model, and within 1e-9 for the single model.
"""

import numpy as np
import pytest

from repro.core import (
    ClusterQuant,
    MultiModelRegHD,
    PredictQuant,
    RegHDConfig,
    SingleModelRegHD,
)
from repro.datasets import load_dataset, train_test_split
from repro.datasets.preprocessing import StandardScaler
from repro.distributed import ShardTrainer
from repro.metrics import root_mean_squared_error

DIM = 256
SEED = 7
BATCH = 64

QUANT_COMBOS = [
    pytest.param(cq, pq, id=f"{cq.value}-{pq.value}")
    for cq in ClusterQuant
    for pq in PredictQuant
]


@pytest.fixture(scope="module")
def boston():
    dataset = load_dataset("boston")
    split = train_test_split(dataset, seed=SEED)
    scaler = StandardScaler().fit(split.X_train)
    return (
        scaler.transform(split.X_train),
        split.y_train,
        scaler.transform(split.X_test),
        split.y_test,
    )


def _config(cq: ClusterQuant, pq: PredictQuant) -> RegHDConfig:
    return RegHDConfig(
        dim=DIM,
        n_models=4,
        seed=SEED,
        cluster_quant=cq,
        predict_quant=pq,
    )


def _sequential(model, X, y, *, passes=1, batch=BATCH):
    for _ in range(passes):
        for lo in range(0, len(y), batch):
            model.partial_fit(X[lo : lo + batch], y[lo : lo + batch])
    return model


# -- 1. one-shard replay, all 12 combos --------------------------------------


@pytest.mark.parametrize("cq,pq", QUANT_COMBOS)
def test_one_shard_replay_all_quant_combos(boston, cq, pq):
    X, y, X_test, _ = boston
    seq = _sequential(MultiModelRegHD(X.shape[1], _config(cq, pq)), X, y)

    sharded = MultiModelRegHD(X.shape[1], _config(cq, pq))
    ShardTrainer(sharded, n_shards=1, batch_rows=BATCH).train(X, y)

    np.testing.assert_allclose(
        sharded.models.integer, seq.models.integer, rtol=1e-9, atol=1e-12
    )
    np.testing.assert_allclose(
        sharded.clusters.integer, seq.clusters.integer, rtol=1e-9, atol=1e-12
    )
    np.testing.assert_allclose(
        sharded.predict(X_test), seq.predict(X_test), rtol=1e-9, atol=1e-9
    )


def test_one_shard_replay_single_model_is_bitexact(boston):
    X, y, X_test, _ = boston
    seq = _sequential(SingleModelRegHD(X.shape[1], dim=DIM, seed=SEED), X, y)

    sharded = SingleModelRegHD(X.shape[1], dim=DIM, seed=SEED)
    ShardTrainer(sharded, n_shards=1, batch_rows=BATCH).train(X, y)

    np.testing.assert_array_equal(sharded.model, seq.model)
    np.testing.assert_array_equal(sharded.predict(X_test), seq.predict(X_test))


# -- 2. multi-shard bit stability, all 12 combos -----------------------------


@pytest.mark.parametrize("cq,pq", QUANT_COMBOS)
def test_four_shard_runs_are_bit_stable(boston, cq, pq):
    """Two fresh 4-shard runs produce identical bits: the ordered
    reduction (sort by shard id before merging) removes every scheduling
    degree of freedom, and shard seeding is derived deterministically."""
    X, y, _, _ = boston

    def run():
        model = MultiModelRegHD(X.shape[1], _config(cq, pq))
        ShardTrainer(model, n_shards=4, batch_rows=BATCH).train(X, y)
        return model

    a, b = run(), run()
    np.testing.assert_array_equal(a.models.integer, b.models.integer)
    np.testing.assert_array_equal(a.clusters.integer, b.clusters.integer)


def test_merge_order_cannot_change_bits(boston):
    """merge_deltas folds in list order; the trainer always hands it the
    shard-id order, so a permuted delta list re-sorted by shard id must
    reduce to the same bits as the original order."""
    X, y, _, _ = boston
    model = MultiModelRegHD(X.shape[1], _config(ClusterQuant.NONE, PredictQuant.FULL))
    trainer = ShardTrainer(model, n_shards=4, batch_rows=BATCH)
    deltas = trainer.map(X, y)
    merged = trainer.reduce(deltas)
    shuffled = [deltas[i] for i in (3, 1, 0, 2)]
    order = {id(d): i for i, d in enumerate(deltas)}
    shuffled.sort(key=lambda d: order[id(d)])
    again = trainer.reduce(shuffled)
    for name in merged.arrays:
        np.testing.assert_array_equal(merged.arrays[name], again.arrays[name])


# -- 3. quality parity -------------------------------------------------------


def test_clustered_quality_within_one_percent_of_sequential(boston):
    """Shard-parallel training with the bundling (sum) reduction merges
    after every super-batch — the coordinator cadence — and must land
    within 1% of the sequential RMSE on the Table-1 dataset."""
    X, y, X_test, y_test = boston
    passes = 5
    config = RegHDConfig(dim=1024, n_models=4, seed=SEED)

    seq = _sequential(
        MultiModelRegHD(X.shape[1], config), X, y, passes=passes
    )
    seq_rmse = root_mean_squared_error(y_test, seq.predict(X_test))

    sharded = MultiModelRegHD(X.shape[1], config)
    trainer = ShardTrainer(sharded, n_shards=4, reduction="sum")
    for _ in range(passes):
        for lo in range(0, len(y), BATCH):
            trainer.train(X[lo : lo + BATCH], y[lo : lo + BATCH])
    sharded_rmse = root_mean_squared_error(y_test, sharded.predict(X_test))

    assert sharded_rmse <= 1.01 * seq_rmse, (
        f"sharded RMSE {sharded_rmse:.4f} vs sequential {seq_rmse:.4f} "
        f"(ratio {sharded_rmse / seq_rmse:.4f})"
    )


def test_single_model_quality_within_1e9_of_sequential(boston):
    """For the single model the 1-shard map-reduce *is* the sequential
    run — RMSE agrees to 1e-9 (bit-stable ordered reduction)."""
    X, y, X_test, y_test = boston
    seq = _sequential(
        SingleModelRegHD(X.shape[1], dim=1024, seed=SEED), X, y, passes=3
    )
    sharded = SingleModelRegHD(X.shape[1], dim=1024, seed=SEED)
    trainer = ShardTrainer(sharded, n_shards=1, batch_rows=BATCH)
    for _ in range(3):
        trainer.train(X, y)
    seq_rmse = root_mean_squared_error(y_test, seq.predict(X_test))
    sharded_rmse = root_mean_squared_error(y_test, sharded.predict(X_test))
    assert abs(sharded_rmse - seq_rmse) < 1e-9
