"""Tests for the associative item memory."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.noise import flip_signs
from repro.ops.bundling import bundle
from repro.ops.item_memory import ItemMemory


class TestItemMemory:
    def test_add_and_get_roundtrip(self):
        memory = ItemMemory(64, seed=0)
        stored = memory.add("a")
        np.testing.assert_array_equal(memory.get("a"), stored)

    def test_auto_vectors_are_bipolar(self):
        memory = ItemMemory(128, seed=0)
        vec = memory.add("x")
        assert set(np.unique(vec)) <= {-1.0, 1.0}

    def test_explicit_vector_stored_copy(self):
        memory = ItemMemory(4, seed=0)
        original = np.array([1.0, -1.0, 1.0, 1.0])
        memory.add("v", original)
        original[0] = 99.0
        assert memory.get("v")[0] == 1.0

    def test_duplicate_name_rejected(self):
        memory = ItemMemory(8, seed=0)
        memory.add("a")
        with pytest.raises(ConfigurationError):
            memory.add("a")

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            ItemMemory(8).get("ghost")

    def test_wrong_shape_rejected(self):
        memory = ItemMemory(8, seed=0)
        with pytest.raises(ConfigurationError):
            memory.add("bad", np.ones(9))

    def test_len_and_contains(self):
        memory = ItemMemory(8, seed=0)
        memory.add("a")
        memory.add("b")
        assert len(memory) == 2
        assert "a" in memory and "c" not in memory
        assert memory.names == ("a", "b")


class TestCleanup:
    def test_exact_recall(self):
        memory = ItemMemory(256, seed=0)
        for name in "abcdef":
            memory.add(name)
        name, sim = memory.cleanup(memory.get("d"))
        assert name == "d"
        assert sim == pytest.approx(1.0)

    def test_noisy_recall(self):
        """Cleanup survives 20 % sign flips — the holographic robustness
        property."""
        memory = ItemMemory(2048, seed=0)
        for name in "abcdefgh":
            memory.add(name)
        noisy = flip_signs(memory.get("c"), 0.2, seed=1)
        name, sim = memory.cleanup(noisy)
        assert name == "c"
        assert 0.4 < sim < 0.8  # ~1 - 2*0.2

    def test_bundle_members_recoverable(self):
        """Each member of a small bundle cleans up to itself (Sec.-2.3
        capacity: P = 3 patterns at D = 2048 is far under capacity)."""
        memory = ItemMemory(2048, seed=0)
        members = [memory.add(n) for n in ("x", "y", "z")]
        for name in ("q", "r", "s", "t"):
            memory.add(name)  # distractors
        bundled = bundle(np.stack(members))
        # The bundle is similar to each member; cleaning up member+noise
        # still lands on the right item.
        for name in ("x", "y", "z"):
            recovered, _ = memory.cleanup(
                memory.get(name) + 0.3 * bundled
            )
            assert recovered == name

    def test_cleanup_empty_memory(self):
        with pytest.raises(ConfigurationError):
            ItemMemory(8).cleanup(np.ones(8))

    def test_cleanup_shape_validation(self):
        memory = ItemMemory(8, seed=0)
        memory.add("a")
        with pytest.raises(ConfigurationError):
            memory.cleanup(np.ones(9))

    def test_cleanup_batch(self):
        memory = ItemMemory(512, seed=0)
        for name in "abcd":
            memory.add(name)
        queries = np.stack([memory.get("b"), memory.get("d")])
        results = memory.cleanup_batch(queries)
        assert [r[0] for r in results] == ["b", "d"]

    def test_cleanup_batch_validation(self):
        memory = ItemMemory(8, seed=0)
        memory.add("a")
        with pytest.raises(ConfigurationError):
            memory.cleanup_batch(np.ones(8))
