"""Tests for the SparseHD-style sparsification extension."""

import numpy as np
import pytest

from repro import MultiModelRegHD, RegHDConfig, SingleModelRegHD
from repro.core import ConvergencePolicy
from repro.core.sparsify import (
    apply_sparsity,
    density_of,
    fine_tune_sparse,
    sparsify_rows,
)
from repro.exceptions import ConfigurationError
from repro.metrics import mean_squared_error

CONV = ConvergencePolicy(max_epochs=8, patience=3)


class TestSparsifyRows:
    def test_density_one_is_identity(self):
        m = np.random.default_rng(0).normal(size=(3, 16))
        np.testing.assert_array_equal(sparsify_rows(m, 1.0), m)

    def test_density_enforced_per_row(self):
        m = np.random.default_rng(0).normal(size=(4, 100))
        out = sparsify_rows(m, 0.25)
        for row in out:
            assert np.count_nonzero(row) == 25

    def test_keeps_largest_magnitudes(self):
        row = np.array([0.1, -5.0, 0.2, 4.0, -0.3, 0.05])
        out = sparsify_rows(row, 0.34)  # keep 2 of 6
        assert set(np.flatnonzero(out)) == {1, 3}

    def test_at_least_one_survives(self):
        row = np.array([1.0, 2.0, 3.0])
        out = sparsify_rows(row, 0.01)
        assert np.count_nonzero(out) == 1
        assert out[2] == 3.0

    def test_input_not_mutated(self):
        m = np.ones((2, 8))
        sparsify_rows(m, 0.5)
        np.testing.assert_array_equal(m, 1.0)

    def test_single_vector_shape(self):
        out = sparsify_rows(np.arange(8.0), 0.5)
        assert out.shape == (8,)

    @pytest.mark.parametrize("density", [0.0, -0.5, 1.5])
    def test_invalid_density(self, density):
        with pytest.raises(ConfigurationError):
            sparsify_rows(np.ones(4), density)


class TestDensityOf:
    def test_full(self):
        assert density_of(np.ones((2, 4))) == 1.0

    def test_half(self):
        m = np.array([1.0, 0.0, 2.0, 0.0])
        assert density_of(m) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            density_of(np.zeros((0,)))


class TestApplySparsity:
    def test_single_model(self, tiny_regression):
        X, y, Xte, yte = tiny_regression
        model = SingleModelRegHD(5, dim=512, seed=0, convergence=CONV).fit(X, y)
        apply_sparsity(model, 0.2)
        assert density_of(model.model) == pytest.approx(0.2, abs=0.01)

    def test_multi_model_rebinarizes(self, tiny_regression):
        X, y, _, _ = tiny_regression
        model = MultiModelRegHD(
            5, RegHDConfig(dim=256, n_models=4, seed=0, convergence=CONV)
        ).fit(X, y)
        apply_sparsity(model, 0.3)
        assert density_of(model.models.integer) == pytest.approx(0.3, abs=0.01)
        # Binary copy stays in sync with the sparsified integer copy.
        from repro.core.quantization import binarize_preserving_scale

        np.testing.assert_allclose(
            model.models.binary,
            binarize_preserving_scale(model.models.integer),
        )

    def test_clusters_untouched(self, tiny_regression):
        X, y, _, _ = tiny_regression
        model = MultiModelRegHD(
            5, RegHDConfig(dim=256, n_models=4, seed=0, convergence=CONV)
        ).fit(X, y)
        before = model.clusters.integer.copy()
        apply_sparsity(model, 0.2)
        np.testing.assert_array_equal(model.clusters.integer, before)

    def test_moderate_sparsity_keeps_quality(self, tiny_regression):
        """Half-density pruning must not destroy the model."""
        X, y, Xte, yte = tiny_regression
        model = SingleModelRegHD(5, dim=1024, seed=0, convergence=CONV).fit(X, y)
        dense_mse = mean_squared_error(yte, model.predict(Xte))
        apply_sparsity(model, 0.5)
        sparse_mse = mean_squared_error(yte, model.predict(Xte))
        assert sparse_mse < dense_mse * 2.0

    def test_unsupported_model(self):
        with pytest.raises(ConfigurationError):
            apply_sparsity(object(), 0.5)  # type: ignore[arg-type]


class TestFineTuneSparse:
    def test_density_constraint_holds_after_tuning(self, tiny_regression):
        X, y, _, _ = tiny_regression
        model = SingleModelRegHD(5, dim=512, seed=0, convergence=CONV).fit(X, y)
        fine_tune_sparse(model, X, y, density=0.25, epochs=3)
        assert density_of(model.model) <= 0.26

    def test_tuning_beats_one_shot_pruning(self, tiny_regression):
        """The SparseHD claim: masked retraining recovers pruning loss."""
        X, y, Xte, yte = tiny_regression
        density = 0.1

        one_shot = SingleModelRegHD(5, dim=1024, seed=0, convergence=CONV).fit(X, y)
        apply_sparsity(one_shot, density)
        one_shot_mse = mean_squared_error(yte, one_shot.predict(Xte))

        tuned = SingleModelRegHD(5, dim=1024, seed=0, convergence=CONV).fit(X, y)
        fine_tune_sparse(tuned, X, y, density=density, epochs=5)
        tuned_mse = mean_squared_error(yte, tuned.predict(Xte))

        assert tuned_mse < one_shot_mse

    def test_multi_model_supported(self, tiny_regression):
        X, y, Xte, _ = tiny_regression
        model = MultiModelRegHD(
            5, RegHDConfig(dim=256, n_models=4, seed=0, convergence=CONV)
        ).fit(X, y)
        fine_tune_sparse(model, X, y, density=0.3, epochs=2)
        assert density_of(model.models.integer) <= 0.31
        assert np.all(np.isfinite(model.predict(Xte)))

    def test_requires_fitted_model(self, tiny_regression):
        X, y, _, _ = tiny_regression
        with pytest.raises(ConfigurationError):
            fine_tune_sparse(
                SingleModelRegHD(5, dim=64), X, y, density=0.5
            )

    def test_invalid_epochs(self, tiny_regression):
        X, y, _, _ = tiny_regression
        model = SingleModelRegHD(5, dim=64, seed=0, convergence=CONV).fit(X, y)
        with pytest.raises(ConfigurationError):
            fine_tune_sparse(model, X, y, density=0.5, epochs=0)


class TestSparseCostModel:
    def test_density_scales_prediction_cost(self):
        from repro.hardware import FPGA_KINTEX7, RegHDCostSpec, estimate, reghd_infer_cost

        dense = RegHDCostSpec(10, 2000, 8)
        sparse = RegHDCostSpec(10, 2000, 8, model_density=0.1)
        e_dense = estimate(reghd_infer_cost(dense, 100), FPGA_KINTEX7)
        e_sparse = estimate(reghd_infer_cost(sparse, 100), FPGA_KINTEX7)
        assert e_sparse.energy_j < e_dense.energy_j

    def test_invalid_density(self):
        from repro.exceptions import HardwareModelError
        from repro.hardware import RegHDCostSpec

        with pytest.raises(HardwareModelError):
            RegHDCostSpec(10, 100, 8, model_density=0.0)
