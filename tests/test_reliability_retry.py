"""Tests for the seeded-jitter retry/backoff helper."""

import pytest

from repro.exceptions import ConfigurationError
from repro.reliability import backoff_delays, retry, retry_call


class TestBackoffDelays:
    def test_count_is_attempts_minus_one(self):
        assert len(backoff_delays(4, seed=0)) == 3
        assert backoff_delays(1, seed=0) == []

    def test_deterministic_under_seed(self):
        assert backoff_delays(5, seed=7) == backoff_delays(5, seed=7)

    def test_grows_and_caps(self):
        delays = backoff_delays(
            6, base_delay=0.1, growth=2.0, max_delay=0.4, jitter=0.0, seed=0
        )
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_bounds(self):
        delays = backoff_delays(
            20, base_delay=0.1, growth=1.0, jitter=0.5, seed=3
        )
        assert all(0.1 <= d <= 0.15 for d in delays)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"attempts": 3, "base_delay": -1.0},
            {"attempts": 3, "growth": 0.5},
            {"attempts": 3, "jitter": -0.1},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            backoff_delays(**kwargs)


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        slept = []

        @retry(attempts=3, retry_on=(OSError,), sleep=slept.append)
        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        assert flaky() == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2

    def test_raises_after_exhausting_attempts(self):
        @retry(attempts=2, retry_on=(OSError,), sleep=lambda s: None)
        def always_fails():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            always_fails()

    def test_non_retryable_errors_propagate_immediately(self):
        calls = {"n": 0}

        @retry(attempts=5, retry_on=(OSError,), sleep=lambda s: None)
        def wrong_error():
            calls["n"] += 1
            raise KeyError("not retried")

        with pytest.raises(KeyError):
            wrong_error()
        assert calls["n"] == 1

    def test_no_sleep_on_first_success(self):
        slept = []

        @retry(attempts=3, sleep=slept.append)
        def fine():
            return 42

        assert fine() == 42
        assert slept == []

    def test_retry_call_functional_form(self):
        calls = {"n": 0}

        def flaky(value):
            calls["n"] += 1
            if calls["n"] < 2:
                raise OSError("blip")
            return value

        assert retry_call(flaky, 7, sleep=lambda s: None) == 7
