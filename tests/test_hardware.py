"""Tests for the hardware cost model."""

import pytest

from repro.core.quantization import ClusterQuant, PredictQuant
from repro.exceptions import HardwareModelError
from repro.hardware import (
    ARM_A53,
    FPGA_KINTEX7,
    BaselineHDCostSpec,
    DNNCostSpec,
    DeviceProfile,
    OpCounts,
    OpKind,
    RegHDCostSpec,
    baseline_hd_infer_cost,
    baseline_hd_train_cost,
    dnn_infer_cost,
    dnn_train_cost,
    estimate,
    format_table,
    get_profile,
    normalize_to,
    reghd_infer_cost,
    reghd_train_cost,
    relative_table,
)


class TestOpCounts:
    def test_add(self):
        a = OpCounts({OpKind.INT_MUL: 5.0})
        b = OpCounts({OpKind.INT_MUL: 3.0, OpKind.INT_ADD: 2.0})
        total = a + b
        assert total.get(OpKind.INT_MUL) == 8.0
        assert total.get(OpKind.INT_ADD) == 2.0

    def test_mul_scalar(self):
        c = OpCounts({OpKind.CMP: 4.0}) * 2.5
        assert c.get(OpKind.CMP) == 10.0

    def test_rmul(self):
        c = 3 * OpCounts({OpKind.CMP: 2.0})
        assert c.get(OpKind.CMP) == 6.0

    def test_zero_counts_dropped(self):
        c = OpCounts({OpKind.CMP: 0.0, OpKind.INT_ADD: 1.0})
        assert OpKind.CMP not in c.counts

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OpCounts({OpKind.CMP: -1.0})
        with pytest.raises(ValueError):
            OpCounts({OpKind.CMP: 1.0}) * -2.0

    def test_total(self):
        c = OpCounts({OpKind.CMP: 1.0, OpKind.INT_ADD: 2.0})
        assert c.total == 3.0

    def test_zero_and_single(self):
        assert OpCounts.zero().total == 0.0
        assert OpCounts.single(OpKind.TRIG, 7.0).get(OpKind.TRIG) == 7.0


class TestProfiles:
    def test_builtin_profiles_complete(self):
        from repro.hardware import PROFILES

        for profile in PROFILES.values():
            counts = OpCounts({k: 1.0 for k in OpKind})
            assert profile.latency_s(counts) > 0
            assert profile.energy_j(counts) > 0

    def test_bit_ops_cheapest(self):
        from repro.hardware import PROFILES

        for profile in PROFILES.values():
            assert profile.energy_pj[OpKind.BIT_OP] < profile.energy_pj[OpKind.INT_ADD]
            assert profile.energy_pj[OpKind.INT_ADD] < profile.energy_pj[OpKind.INT_MUL]

    def test_pim_rewards_binary_search_most(self):
        """In-memory bit operations make the *similarity-search* phase
        almost free on the PIM profile: its integer-vs-binary search gain
        must exceed the FPGA's."""
        from repro.hardware import PIM_ACCELERATOR, reghd_cluster_search_cost

        full = RegHDCostSpec(10, 2000, 8, cluster_quant=ClusterQuant.NONE)
        binary = RegHDCostSpec(
            10, 2000, 8, cluster_quant=ClusterQuant.FRAMEWORK
        )
        gains = {}
        for profile in (FPGA_KINTEX7, PIM_ACCELERATOR):
            e_full = estimate(reghd_cluster_search_cost(full), profile)
            e_bin = estimate(reghd_cluster_search_cost(binary), profile)
            gains[profile.name] = e_full.energy_j / e_bin.energy_j
        assert gains["pim-accelerator"] > gains["fpga-kintex7"] > 1.0

    def test_embedded_cheaper_than_desktop_energy(self):
        from repro.hardware import DESKTOP_X86

        spec = RegHDCostSpec(10, 2000, 8)
        counts = reghd_infer_cost(spec, 100)
        assert ARM_A53.energy_j(counts) < DESKTOP_X86.energy_j(counts)

    def test_get_profile(self):
        assert get_profile("fpga-kintex7") is FPGA_KINTEX7
        with pytest.raises(HardwareModelError):
            get_profile("tpu")

    def test_incomplete_profile_rejected(self):
        with pytest.raises(HardwareModelError):
            DeviceProfile("bad", latency_ns={}, energy_pj={})

    def test_parallelism_divides_latency_only(self):
        counts = OpCounts({OpKind.INT_MUL: 1000.0})
        slow = DeviceProfile(
            "slow",
            latency_ns=dict(FPGA_KINTEX7.latency_ns),
            energy_pj=dict(FPGA_KINTEX7.energy_pj),
            parallelism=1.0,
        )
        assert slow.latency_s(counts) == pytest.approx(
            FPGA_KINTEX7.latency_s(counts) * FPGA_KINTEX7.parallelism
        )
        assert slow.energy_j(counts) == FPGA_KINTEX7.energy_j(counts)


class TestRegHDCosts:
    def test_training_scales_linearly_with_k(self):
        """Paper: 'Increasing the number of hypervectors linearly increases
        RegHD computation cost.'"""
        costs = []
        for k in (2, 8, 32):
            spec = RegHDCostSpec(10, 2000, k)
            costs.append(reghd_train_cost(spec, 100, 10).total)
        # Slope between successive k-values should be near-proportional.
        ratio_a = costs[1] / costs[0]
        ratio_b = costs[2] / costs[1]
        assert 2.0 < ratio_a < 4.5
        assert 3.0 < ratio_b < 4.5

    def test_binary_cluster_search_cheaper(self):
        full = RegHDCostSpec(10, 2000, 8, cluster_quant=ClusterQuant.NONE)
        binary = RegHDCostSpec(10, 2000, 8, cluster_quant=ClusterQuant.FRAMEWORK)
        e_full = estimate(reghd_train_cost(full, 100, 10), FPGA_KINTEX7)
        e_bin = estimate(reghd_train_cost(binary, 100, 10), FPGA_KINTEX7)
        assert e_bin.energy_j < e_full.energy_j
        assert e_bin.latency_s < e_full.latency_s

    def test_prediction_quant_ordering(self):
        """binQ-binM must be the cheapest, FULL the most expensive."""
        energies = {}
        for pq in PredictQuant:
            spec = RegHDCostSpec(10, 2000, 8, predict_quant=pq)
            energies[pq] = estimate(reghd_infer_cost(spec, 100), FPGA_KINTEX7).energy_j
        assert energies[PredictQuant.BINARY_BOTH] < energies[PredictQuant.BINARY_QUERY]
        assert energies[PredictQuant.BINARY_QUERY] < energies[PredictQuant.FULL]
        assert energies[PredictQuant.BINARY_MODEL] < energies[PredictQuant.FULL]

    def test_inference_cheaper_than_training(self):
        spec = RegHDCostSpec(10, 2000, 8)
        assert (
            reghd_infer_cost(spec, 100).total
            < reghd_train_cost(spec, 100, 10).total
        )

    def test_amortized_encoding_cheaper(self):
        spec = RegHDCostSpec(10, 2000, 8)
        amortized = reghd_train_cost(spec, 100, 10, amortize_encoding=True)
        full = reghd_train_cost(spec, 100, 10, amortize_encoding=False)
        assert amortized.total < full.total

    def test_dimension_scaling(self):
        """Table 2: cost scales ~linearly with D."""
        small = reghd_infer_cost(RegHDCostSpec(10, 500, 8), 10).total
        large = reghd_infer_cost(RegHDCostSpec(10, 4000, 8), 10).total
        assert large / small == pytest.approx(8.0, rel=0.1)

    def test_invalid_args(self):
        with pytest.raises(HardwareModelError):
            RegHDCostSpec(0, 100, 8)
        with pytest.raises(HardwareModelError):
            reghd_train_cost(RegHDCostSpec(1, 10, 1), 0, 1)
        with pytest.raises(HardwareModelError):
            reghd_infer_cost(RegHDCostSpec(1, 10, 1), 0)

    def test_from_config(self):
        from repro.core.config import RegHDConfig

        cfg = RegHDConfig(dim=256, n_models=2)
        spec = RegHDCostSpec.from_config(5, cfg)
        assert spec.dim == 256
        assert spec.n_models == 2
        assert spec.n_features == 5


class TestDNNCosts:
    def test_forward_macs(self):
        spec = DNNCostSpec((10, 64, 1))
        assert spec.forward_macs == 10 * 64 + 64

    def test_training_about_4x_inference(self):
        spec = DNNCostSpec((10, 64, 64, 1))
        train = dnn_train_cost(spec, 100, 1)
        infer = dnn_infer_cost(spec, 100)
        ratio = train.get(OpKind.FLOAT_MUL) / infer.get(OpKind.FLOAT_MUL)
        assert ratio == pytest.approx(4.0)

    def test_invalid_layers(self):
        with pytest.raises(HardwareModelError):
            DNNCostSpec((10,))
        with pytest.raises(HardwareModelError):
            DNNCostSpec((10, 0, 1))

    def test_reghd_trains_faster_than_dnn(self):
        """Fig. 8's headline direction on the FPGA profile."""
        reghd = RegHDCostSpec(10, 4000, 8, cluster_quant=ClusterQuant.FRAMEWORK)
        dnn = DNNCostSpec((10, 256, 256, 1))
        e_hd = estimate(reghd_train_cost(reghd, 1000, 15), FPGA_KINTEX7)
        e_dnn = estimate(dnn_train_cost(dnn, 1000, 60), FPGA_KINTEX7)
        assert e_hd.speedup_vs(e_dnn) > 1.0
        assert e_hd.efficiency_vs(e_dnn) > 1.0


class TestBaselineHDCosts:
    def test_search_scales_with_bins(self):
        few = baseline_hd_infer_cost(BaselineHDCostSpec(10, 2000, 8), 10)
        many = baseline_hd_infer_cost(BaselineHDCostSpec(10, 2000, 256), 10)
        assert many.total > few.total * 10

    def test_reghd_cheaper_than_baseline_hd(self):
        reghd = RegHDCostSpec(10, 4000, 8)
        bhd = BaselineHDCostSpec(10, 4000, 128)
        e_hd = estimate(reghd_train_cost(reghd, 100, 10), FPGA_KINTEX7)
        e_bhd = estimate(baseline_hd_train_cost(bhd, 100, 10), FPGA_KINTEX7)
        assert e_hd.energy_j < e_bhd.energy_j

    def test_invalid(self):
        with pytest.raises(HardwareModelError):
            BaselineHDCostSpec(10, 100, 1)


class TestAnalysis:
    def _estimates(self):
        spec_a = RegHDCostSpec(10, 1000, 8)
        spec_b = RegHDCostSpec(10, 1000, 8, cluster_quant=ClusterQuant.FRAMEWORK)
        return {
            "full": estimate(reghd_train_cost(spec_a, 100, 10), FPGA_KINTEX7),
            "binary": estimate(reghd_train_cost(spec_b, 100, 10), FPGA_KINTEX7),
        }

    def test_relative_table_baseline_is_one(self):
        rows = relative_table("full", self._estimates())
        full_row = next(r for r in rows if r.label == "full")
        assert full_row.speedup == pytest.approx(1.0)
        assert full_row.efficiency == pytest.approx(1.0)

    def test_binary_faster(self):
        rows = relative_table("full", self._estimates())
        binary_row = next(r for r in rows if r.label == "binary")
        assert binary_row.speedup > 1.0

    def test_missing_baseline_raises(self):
        with pytest.raises(HardwareModelError):
            relative_table("nope", self._estimates())

    def test_normalize_to(self):
        rows = relative_table("full", self._estimates())
        renorm = normalize_to(rows, "binary")
        binary_row = next(r for r in renorm if r.label == "binary")
        assert binary_row.speedup == pytest.approx(1.0)

    def test_normalize_unknown_label(self):
        rows = relative_table("full", self._estimates())
        with pytest.raises(HardwareModelError):
            normalize_to(rows, "zzz")

    def test_format_table_contains_labels(self):
        text = format_table(relative_table("full", self._estimates()), title="T")
        assert "T" in text
        assert "full" in text and "binary" in text
