"""Tests for single-model RegHD (paper Sec. 2.3)."""

import numpy as np
import pytest

from repro.core.config import ConvergencePolicy
from repro.core.single import SingleModelRegHD
from repro.encoding.nonlinear import NonlinearEncoder
from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import mean_squared_error, r2_score


class TestConstruction:
    def test_defaults(self):
        model = SingleModelRegHD(5, dim=128)
        assert model.dim == 128
        assert model.in_features == 5
        np.testing.assert_array_equal(model.model, 0.0)

    @pytest.mark.parametrize("lr", [0.0, -0.5, 2.0, 5.0])
    def test_lr_bounds(self, lr):
        with pytest.raises(ConfigurationError):
            SingleModelRegHD(5, lr=lr)

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            SingleModelRegHD(5, batch_size=0)

    def test_custom_encoder(self):
        enc = NonlinearEncoder(5, 64, seed=0)
        model = SingleModelRegHD(5, encoder=enc)
        assert model.encoder is enc
        assert model.dim == 64

    def test_encoder_feature_mismatch(self):
        enc = NonlinearEncoder(4, 64, seed=0)
        with pytest.raises(ConfigurationError):
            SingleModelRegHD(5, encoder=enc)


class TestFitPredict:
    def test_learns_nonlinear_function(self, tiny_regression):
        X, y, Xte, yte = tiny_regression
        model = SingleModelRegHD(
            5,
            dim=1024,
            seed=1,
            convergence=ConvergencePolicy(max_epochs=20, patience=3),
        ).fit(X, y)
        assert r2_score(yte, model.predict(Xte)) > 0.5

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            SingleModelRegHD(5, dim=64).predict(np.zeros((1, 5)))

    def test_history_populated(self, tiny_regression, fast_convergence):
        X, y, _, _ = tiny_regression
        model = SingleModelRegHD(
            5, dim=256, seed=0, convergence=fast_convergence
        ).fit(X, y)
        assert model.history_ is not None
        assert model.history_.n_epochs >= 1

    def test_iterative_training_improves_over_single_pass(self, tiny_regression):
        """Fig. 3a: more retraining iterations -> lower error."""
        X, y, Xte, yte = tiny_regression
        one = SingleModelRegHD(
            5, dim=512, seed=0,
            convergence=ConvergencePolicy(max_epochs=1, patience=1),
        ).fit(X, y)
        many = SingleModelRegHD(
            5, dim=512, seed=0,
            convergence=ConvergencePolicy(max_epochs=20, patience=20),
        ).fit(X, y)
        assert mean_squared_error(yte, many.predict(Xte)) < mean_squared_error(
            yte, one.predict(Xte)
        )

    def test_deterministic(self, tiny_regression, fast_convergence):
        X, y, Xte, _ = tiny_regression
        a = SingleModelRegHD(5, dim=256, seed=4, convergence=fast_convergence).fit(X, y)
        b = SingleModelRegHD(5, dim=256, seed=4, convergence=fast_convergence).fit(X, y)
        np.testing.assert_allclose(a.predict(Xte), b.predict(Xte))

    def test_validation_drives_convergence(self, tiny_regression, fast_convergence):
        X, y, Xte, yte = tiny_regression
        model = SingleModelRegHD(5, dim=256, seed=0, convergence=fast_convergence)
        model.fit(X, y, X_val=Xte, y_val=yte)
        assert model.history_ is not None
        assert all(r.val_mse is not None for r in model.history_.records)

    def test_target_units_preserved(self, tiny_regression, fast_convergence):
        """Internal standardisation must be invisible: predictions live in
        original target units."""
        X, y, _, _ = tiny_regression
        y_shifted = 1000.0 + 50.0 * y
        model = SingleModelRegHD(
            5, dim=512, seed=0, convergence=fast_convergence
        ).fit(X, y_shifted)
        pred = model.predict(X)
        assert abs(np.mean(pred) - np.mean(y_shifted)) < 50.0

    def test_constant_target(self, fast_convergence):
        X = np.random.default_rng(0).normal(size=(30, 3))
        y = np.full(30, 7.0)
        model = SingleModelRegHD(3, dim=128, seed=0, convergence=fast_convergence)
        model.fit(X, y)
        np.testing.assert_allclose(model.predict(X), 7.0, atol=1e-6)

    def test_shape_checks(self, fast_convergence):
        model = SingleModelRegHD(3, dim=64, convergence=fast_convergence)
        with pytest.raises(Exception):
            model.fit(np.zeros((4, 3)), np.zeros(5))

    def test_batch_size_one_matches_online_equation(self, fast_convergence):
        """batch_size=1 is the paper's Eq. (2): verify a single update by
        hand."""
        model = SingleModelRegHD(
            2, dim=32, lr=0.5, batch_size=1, seed=0, convergence=fast_convergence
        )
        S = np.array([[1.0] + [0.0] * 31])
        S /= np.linalg.norm(S)
        y = np.array([2.0])
        model.fit_epoch(S, y, np.array([0]))
        # M was zero, so update = lr * y * S.
        np.testing.assert_allclose(model.model, 0.5 * 2.0 * S[0])


class TestPartialFit:
    def test_streaming_improves(self, tiny_regression):
        X, y, Xte, yte = tiny_regression
        model = SingleModelRegHD(5, dim=512, seed=0)
        model.partial_fit(X[:50], y[:50])
        early = mean_squared_error(yte, model.predict(Xte))
        for start in range(50, 200, 50):
            model.partial_fit(X[start : start + 50], y[start : start + 50])
        late = mean_squared_error(yte, model.predict(Xte))
        assert late < early

    def test_partial_fit_enables_predict(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 3))
        y = X[:, 0]
        model = SingleModelRegHD(3, dim=64, seed=0)
        model.partial_fit(X, y)
        assert model.predict(X).shape == (20,)

    def test_repr(self):
        assert "SingleModelRegHD" in repr(SingleModelRegHD(3, dim=64))
