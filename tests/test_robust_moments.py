"""Tests for streaming robust moments and Mahalanobis gating."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.robust import (
    MahalanobisGate,
    RobustMomentTracker,
    chi2_quantile,
    normal_quantile,
)
from repro.robust.moments import clipped_eigh, mahalanobis2_from


class TestQuantileApproximations:
    @pytest.mark.parametrize(
        "p, expected",
        [
            (0.5, 0.0),
            (0.975, 1.959964),
            (0.995, 2.575829),
            (0.001, -3.090232),
        ],
    )
    def test_normal_quantile(self, p, expected):
        assert normal_quantile(p) == pytest.approx(expected, abs=1e-6)

    def test_normal_quantile_endpoints(self):
        assert normal_quantile(0.0) == float("-inf")
        assert normal_quantile(1.0) == float("inf")
        with pytest.raises(ConfigurationError):
            normal_quantile(1.5)

    @pytest.mark.parametrize(
        "p, k, expected",
        [
            # Reference values from scipy.stats.chi2.ppf; Wilson-Hilferty
            # is only good to a few parts in a thousand, hence rel=0.03.
            (0.95, 1, 3.8415),
            (0.975, 4, 11.1433),
            (0.995, 8, 21.9550),
            (0.9, 2, 4.6052),
        ],
    )
    def test_chi2_quantile(self, p, k, expected):
        assert chi2_quantile(p, k) == pytest.approx(expected, rel=0.03)

    def test_chi2_invalid(self):
        with pytest.raises(ConfigurationError):
            chi2_quantile(0.95, 0)
        with pytest.raises(ConfigurationError):
            chi2_quantile(0.0, 2)


class TestClippedEigh:
    def test_full_rank(self, rng):
        A = rng.normal(size=(4, 4))
        cov = A @ A.T + 0.1 * np.eye(4)
        eigvals, eigvecs, kept = clipped_eigh(cov)
        assert kept.all()
        d2 = mahalanobis2_from(eigvals, eigvecs, kept, np.zeros((1, 4)))
        assert d2[0] == 0.0

    def test_null_space_scores_inf(self):
        cov = np.diag([1.0, 0.0])  # second direction never moved
        eigvals, eigvecs, kept = clipped_eigh(cov)
        assert kept.sum() == 1
        delta = np.array([[0.0, 1.0], [1.0, 0.0]])
        d2 = mahalanobis2_from(eigvals, eigvecs, kept, delta)
        assert np.isinf(d2[0])  # movement along the dead direction
        assert d2[1] == pytest.approx(1.0)  # ordinary direction unaffected


class TestRobustMomentTracker:
    def test_converges_to_true_moments(self, rng):
        true_mean = np.array([1.0, -2.0, 0.5])
        L = np.array([[1.0, 0, 0], [0.5, 1.2, 0], [-0.3, 0.1, 0.8]])
        X = true_mean + rng.normal(size=(5000, 3)) @ L.T
        tracker = RobustMomentTracker(3)
        tracker.update(X)
        np.testing.assert_allclose(tracker.mean, true_mean, atol=0.1)
        np.testing.assert_allclose(tracker.covariance, L @ L.T, atol=0.15)

    def test_batch_vs_incremental_merge(self, rng):
        """Chan merges over many small batches match one big update."""
        X = rng.normal(size=(1000, 4)) * [1.0, 2.0, 0.5, 3.0]
        whole = RobustMomentTracker(4)
        whole.update(X)
        pieces = RobustMomentTracker(4)
        for start in range(0, 1000, 37):  # deliberately ragged batches
            pieces.update(X[start : start + 37])
        np.testing.assert_allclose(pieces.mean, whole.mean, atol=1e-10)
        np.testing.assert_allclose(
            pieces.covariance, whole.covariance, atol=1e-10
        )

    def test_reweighting_excludes_outliers(self, rng):
        tracker = RobustMomentTracker(2, warmup=32)
        tracker.update(rng.normal(size=(200, 2)))
        assert tracker.warm
        mean_before = tracker.mean.copy()
        X_bad = np.full((20, 2), 100.0)
        tracker.score_and_update(X_bad)
        assert tracker.n_rejected == 20
        np.testing.assert_allclose(tracker.mean, mean_before)

    def test_warmup_absorbs_everything(self, rng):
        tracker = RobustMomentTracker(2, warmup=100)
        tracker.score_and_update(rng.normal(size=(10, 2)))
        assert not tracker.warm
        assert tracker.n_rejected == 0
        assert tracker.weight == 10.0

    def test_constant_feature_inf_scoring(self, rng):
        X = rng.normal(size=(100, 3))
        X[:, 1] = 7.0
        tracker = RobustMomentTracker(3)
        tracker.update(X)
        probe = X[:1].copy()
        probe[0, 1] = 8.0  # moves the frozen coordinate
        assert np.isinf(tracker.mahalanobis2(probe))[0]
        assert np.isfinite(tracker.mahalanobis2(X[:1]))[0]

    def test_decay_forgets_old_regime(self, rng):
        tracker = RobustMomentTracker(2, decay=0.5)
        for _ in range(20):
            tracker.update(np.zeros((10, 2)) + [10.0, 10.0])
        for _ in range(20):
            tracker.update(rng.normal(size=(10, 2)))
        np.testing.assert_allclose(tracker.mean, [0.0, 0.0], atol=0.5)

    def test_zero_weight_batch_is_noop(self, rng):
        tracker = RobustMomentTracker(2)
        tracker.update(rng.normal(size=(50, 2)))
        mean = tracker.mean.copy()
        tracker.update(np.full((5, 2), 1e6), weights=np.zeros(5))
        np.testing.assert_array_equal(tracker.mean, mean)

    def test_state_roundtrip(self, rng):
        tracker = RobustMomentTracker(3, reweight_p=0.99, decay=0.999)
        tracker.score_and_update(rng.normal(size=(100, 3)))
        clone = RobustMomentTracker.from_state(tracker.get_state())
        np.testing.assert_array_equal(clone.mean, tracker.mean)
        np.testing.assert_array_equal(clone.covariance, tracker.covariance)
        probe = rng.normal(size=(5, 3))
        np.testing.assert_array_equal(
            clone.mahalanobis2(probe), tracker.mahalanobis2(probe)
        )

    def test_state_dim_mismatch(self, rng):
        tracker = RobustMomentTracker(3)
        with pytest.raises(ConfigurationError, match="dim"):
            RobustMomentTracker(2).set_state(tracker.get_state())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim": 0},
            {"dim": 2, "reweight_p": 1.0},
            {"dim": 2, "warmup": 0},
            {"dim": 2, "decay": 0.0},
        ],
    )
    def test_invalid_config(self, kwargs):
        dim = kwargs.pop("dim")
        with pytest.raises(ConfigurationError):
            RobustMomentTracker(dim, **kwargs)


def _joint_task(rng, n=400, d=3):
    X = rng.normal(size=(n, d))
    y = X @ np.arange(1, d + 1, dtype=float) + 0.1 * rng.normal(size=n)
    return X, y


class TestMahalanobisGate:
    def test_warm_gate_admits_clean_rows(self, rng):
        gate = MahalanobisGate(3)
        X, y = _joint_task(rng)
        gate.filter(X, y)
        X2, y2 = _joint_task(rng, 50)
        scores = gate.score(X2, y2)
        assert scores.active
        assert scores.keep.mean() > 0.9

    def test_leverage_and_residual_channels(self, rng):
        gate = MahalanobisGate(3)
        X, y = _joint_task(rng)
        gate.filter(X, y)
        X2, y2 = _joint_task(rng, 10)
        X2[0] += 30.0  # leverage outlier
        y2[1] += 50.0  # residual outlier
        scores = gate.score(X2, y2)
        assert not scores.keep[0] and scores.leverage[0] > scores.leverage[2]
        assert not scores.keep[1] and scores.residual[1] > scores.residual[2]
        assert scores.keep[2:].all()

    def test_inference_scoring_skips_residual(self, rng):
        gate = MahalanobisGate(3)
        X, y = _joint_task(rng)
        gate.filter(X, y)
        scores = gate.score(X[:5])
        assert scores.residual is None
        assert scores.keep.all()

    def test_filter_counts_gated(self, rng):
        gate = MahalanobisGate(3, warmup=32)
        X, y = _joint_task(rng)
        gate.filter(X, y)
        X2, y2 = _joint_task(rng, 20)
        X2[:3] += 30.0
        scores = gate.filter(X2, y2)
        assert scores.n_gated >= 3
        assert gate.n_gated >= 3

    def test_state_roundtrip(self, rng):
        gate = MahalanobisGate(3, leverage_p=0.99, warmup=32)
        X, y = _joint_task(rng)
        gate.filter(X, y)
        clone = MahalanobisGate.from_state(gate.get_state())
        assert clone.n_gated == gate.n_gated
        X2, y2 = _joint_task(rng, 20)
        X2[0] += 30.0
        np.testing.assert_array_equal(
            clone.score(X2, y2).keep, gate.score(X2, y2).keep
        )

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            MahalanobisGate(0)
        with pytest.raises(ConfigurationError):
            MahalanobisGate(3, leverage_p=0.0)
        with pytest.raises(ConfigurationError):
            MahalanobisGate(3, residual_p=1.0)
