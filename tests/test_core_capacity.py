"""Tests for the Eq.-(3)/(4) capacity analysis."""

import pytest

from repro.core.capacity import (
    capacity,
    empirical_false_positive_rate,
    empirical_true_positive_rate,
    false_positive_probability,
    true_positive_probability,
)
from repro.exceptions import ConfigurationError


class TestFalsePositiveProbability:
    def test_paper_worked_example(self):
        """D=100,000, T=0.5, P=10,000 -> 5.7 % (paper Sec. 2.3)."""
        p = false_positive_probability(100_000, 10_000, 0.5)
        assert p == pytest.approx(0.057, abs=0.001)

    def test_monotone_in_patterns(self):
        probs = [
            false_positive_probability(10_000, p, 0.5)
            for p in (10, 100, 1000, 5000)
        ]
        assert probs == sorted(probs)

    def test_monotone_in_dim(self):
        probs = [
            false_positive_probability(d, 1000, 0.5)
            for d in (1000, 4000, 16_000)
        ]
        assert probs == sorted(probs, reverse=True)

    def test_monotone_in_threshold(self):
        lo = false_positive_probability(10_000, 100, 0.2)
        hi = false_positive_probability(10_000, 100, 0.8)
        assert hi < lo

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            false_positive_probability(0, 10, 0.5)
        with pytest.raises(ConfigurationError):
            false_positive_probability(10, 0, 0.5)
        with pytest.raises(ConfigurationError):
            false_positive_probability(10, 10, 0.0)


class TestTruePositiveProbability:
    def test_single_pattern_always_detected(self):
        assert true_positive_probability(1000, 1, 0.5) == 1.0

    def test_near_one_for_few_patterns(self):
        assert true_positive_probability(10_000, 10, 0.5) > 0.999

    def test_degrades_with_many_patterns(self):
        few = true_positive_probability(1000, 10, 0.5)
        many = true_positive_probability(1000, 10_000, 0.5)
        assert many < few


class TestCapacity:
    def test_inverts_false_positive(self):
        p_max = capacity(100_000, 0.5, 0.057)
        # The paper example: ~10k patterns at 5.7 % error.
        assert p_max == pytest.approx(10_000, rel=0.05)

    def test_larger_dim_more_capacity(self):
        assert capacity(20_000, 0.5, 0.05) > capacity(5_000, 0.5, 0.05)

    def test_capacity_respects_error_bound(self):
        d, t, err = 50_000, 0.5, 0.02
        p = capacity(d, t, err)
        assert false_positive_probability(d, p, t) <= err + 1e-9
        assert false_positive_probability(d, p + max(1, p // 20), t) > err

    def test_invalid_error(self):
        with pytest.raises(ConfigurationError):
            capacity(1000, 0.5, 0.6)
        with pytest.raises(ConfigurationError):
            capacity(1000, 0.5, 0.0)


class TestEmpiricalRates:
    def test_false_positive_matches_analytic(self):
        d, p, t = 2000, 200, 0.5
        analytic = false_positive_probability(d, p, t)
        measured = empirical_false_positive_rate(
            d, p, t, n_queries=4000, seed=0
        )
        assert measured == pytest.approx(analytic, abs=0.02)

    def test_true_positive_matches_analytic(self):
        d, p, t = 2000, 50, 0.5
        analytic = true_positive_probability(d, p, t)
        measured = empirical_true_positive_rate(d, p, t, n_trials=150, seed=0)
        assert measured == pytest.approx(analytic, abs=0.08)

    def test_deterministic(self):
        a = empirical_false_positive_rate(500, 50, 0.5, n_queries=500, seed=1)
        b = empirical_false_positive_rate(500, 50, 0.5, n_queries=500, seed=1)
        assert a == b

    def test_invalid_queries(self):
        with pytest.raises(ConfigurationError):
            empirical_false_positive_rate(100, 10, 0.5, n_queries=0)
        with pytest.raises(ConfigurationError):
            empirical_true_positive_rate(100, 10, 0.5, n_trials=0)
