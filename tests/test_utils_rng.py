"""Tests for the seeded RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, derive_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(8)
        b = as_generator(42).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(8)
        b = as_generator(2).random(8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen


class TestDeriveGenerator:
    def test_deterministic_for_same_key(self):
        a = derive_generator(5, 1).random(8)
        b = derive_generator(5, 1).random(8)
        np.testing.assert_array_equal(a, b)

    def test_keys_give_independent_streams(self):
        a = derive_generator(5, 1).random(8)
        b = derive_generator(5, 2).random(8)
        assert not np.array_equal(a, b)

    def test_differs_from_parent_stream(self):
        parent = as_generator(5).random(8)
        child = derive_generator(5, 0).random(8)
        assert not np.array_equal(parent, child)

    def test_multi_part_key(self):
        a = derive_generator(5, 1, 2).random(4)
        b = derive_generator(5, 1, 3).random(4)
        assert not np.array_equal(a, b)

    def test_generator_input_spawns(self):
        gen = np.random.default_rng(0)
        child = derive_generator(gen, 0)
        assert isinstance(child, np.random.Generator)
        assert child is not gen


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(3, 5)
        assert len(gens) == 5

    def test_streams_are_independent(self):
        gens = spawn_generators(3, 2)
        assert not np.array_equal(gens[0].random(8), gens[1].random(8))

    def test_deterministic(self):
        a = [g.random(4) for g in spawn_generators(3, 3)]
        b = [g.random(4) for g in spawn_generators(3, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_zero_count(self):
        assert spawn_generators(3, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(3, -1)

    def test_from_generator(self):
        gens = spawn_generators(np.random.default_rng(0), 2)
        assert len(gens) == 2
