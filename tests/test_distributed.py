"""Tests for shard map-reduce training (repro.distributed).

The load-bearing guarantees:

* 1-shard map-reduce replays sequential ``partial_fit`` bit-for-bit
  (singleton merge is an exact copy);
* inline (``n_workers=0``) and process-pool (``n_workers>0``) execution
  produce identical bits for any shard count;
* the reduction is ordered by shard id, so merge bits cannot depend on
  worker scheduling;
* ``absorb_delta`` refreshes the long-lived serving plan with the
  delta's row hint — only delta-touched rows re-copy.
"""

import numpy as np
import pytest

from repro.core import MultiModelRegHD, RegHDConfig, SingleModelRegHD
from repro.distributed import (
    DeltaCoordinator,
    ShardTrainer,
    shard_indices,
    train_sharded,
)
from repro.exceptions import ConfigurationError
from repro.reliability.resilient import ResilientStreamingRegHD
from repro.streaming import StreamingRegHD


def _data(n=200, features=5, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, features))
    y = X @ rng.normal(size=features) + 0.1 * rng.normal(size=n)
    return X, y


# -- sharding ----------------------------------------------------------------


def test_shard_indices_contiguous_and_exhaustive():
    parts = shard_indices(10, 3)
    assert [p.tolist() for p in parts] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
    np.testing.assert_array_equal(np.concatenate(parts), np.arange(10))


def test_shard_indices_tolerates_more_shards_than_rows():
    parts = shard_indices(2, 4)
    assert len(parts) == 4
    assert sum(len(p) for p in parts) == 2


def test_shard_indices_rejects_bad_count():
    with pytest.raises(ConfigurationError):
        shard_indices(10, 0)


# -- constructor validation --------------------------------------------------


def test_trainer_rejects_models_without_partial_fit():
    class NoPartial:
        supports_partial_fit = False

    with pytest.raises(ConfigurationError, match="partial_fit"):
        ShardTrainer(NoPartial(), n_shards=2)


@pytest.mark.parametrize(
    "kwargs",
    [{"n_shards": 0}, {"n_shards": 2, "n_workers": -1},
     {"n_shards": 2, "batch_rows": 0}],
)
def test_trainer_rejects_bad_parameters(kwargs):
    model = SingleModelRegHD(3, dim=32, seed=0)
    with pytest.raises(ConfigurationError):
        ShardTrainer(model, **kwargs)


def test_train_sharded_rejects_bad_rounds():
    model = SingleModelRegHD(3, dim=32, seed=0)
    with pytest.raises(ConfigurationError):
        train_sharded(model, *_data(20), n_shards=2, rounds=0)


# -- parity: 1-shard replays the sequential stream ---------------------------


def test_one_shard_single_model_is_bitexact_vs_sequential():
    X, y = _data()
    batch = 32
    seq = SingleModelRegHD(5, dim=512, seed=0)
    for lo in range(0, len(y), batch):
        seq.partial_fit(X[lo : lo + batch], y[lo : lo + batch])

    sharded = SingleModelRegHD(5, dim=512, seed=0)
    ShardTrainer(sharded, n_shards=1, batch_rows=batch).train(X, y)

    np.testing.assert_array_equal(sharded.model, seq.model)
    assert sharded.scaler.get_state() == seq.scaler.get_state()
    np.testing.assert_array_equal(sharded.predict(X[:7]), seq.predict(X[:7]))


def test_one_shard_multi_model_replays_sequential():
    """The 1-shard clustered replay is exact up to summation order: the
    recorder accumulates batch sums while the live path scatters per
    sample, so bits may differ in the last ulp — the acceptance bound
    is 1e-9 and the observed drift is ~1e-15."""
    X, y = _data()
    batch = 32
    config = RegHDConfig(dim=256, n_models=4, seed=0)
    seq = MultiModelRegHD(5, config)
    for lo in range(0, len(y), batch):
        seq.partial_fit(X[lo : lo + batch], y[lo : lo + batch])

    sharded = MultiModelRegHD(5, config)
    ShardTrainer(sharded, n_shards=1, batch_rows=batch).train(X, y)

    np.testing.assert_allclose(
        sharded.models.integer, seq.models.integer, rtol=1e-9, atol=1e-12
    )
    np.testing.assert_allclose(
        sharded.clusters.integer, seq.clusters.integer, rtol=1e-9, atol=1e-12
    )
    np.testing.assert_allclose(
        sharded.predict(X[:7]), seq.predict(X[:7]), rtol=1e-9
    )


# -- parity: worker processes change nothing ---------------------------------


def test_process_pool_matches_inline_bit_for_bit():
    X, y = _data()
    config = RegHDConfig(dim=256, n_models=4, seed=0)
    inline = MultiModelRegHD(5, config)
    ShardTrainer(inline, n_shards=2, n_workers=0, batch_rows=32).train(X, y)

    pooled = MultiModelRegHD(5, config)
    ShardTrainer(pooled, n_shards=2, n_workers=2, batch_rows=32).train(X, y)

    np.testing.assert_array_equal(pooled.models.integer, inline.models.integer)
    np.testing.assert_array_equal(
        pooled.clusters.integer, inline.clusters.integer
    )


def test_merge_is_scheduling_independent():
    """Reducing a shuffled delta list after re-sorting by shard id gives
    the same bits — the trainer sorts, so completion order is moot."""
    X, y = _data()
    model = SingleModelRegHD(5, dim=256, seed=0)
    trainer = ShardTrainer(model, n_shards=4, batch_rows=25)
    deltas = trainer.map(X, y)
    merged = trainer.reduce(deltas)
    # Simulate out-of-order completion, then the trainer's ordered sort.
    order = {id(d): i for i, d in enumerate(deltas)}
    reordered = [deltas[i] for i in (2, 0, 3, 1)]
    reordered.sort(key=lambda d: order[id(d)])
    again = trainer.reduce(reordered)
    np.testing.assert_array_equal(
        merged.arrays["model_vector"], again.arrays["model_vector"]
    )


def test_empty_shards_are_merge_identities():
    X, y = _data(n=3)
    model = SingleModelRegHD(5, dim=128, seed=0)
    report = ShardTrainer(model, n_shards=8).train(X, y)
    assert len(report.shard_samples) == 8
    assert sum(report.shard_samples) == 3
    assert model.fitted


def test_round_report_accounting():
    X, y = _data()
    model = MultiModelRegHD(5, RegHDConfig(dim=128, n_models=2, seed=0))
    report = ShardTrainer(model, n_shards=3, batch_rows=16).train(X, y)
    assert report.n_shards == 3 and report.n_workers == 0
    assert sum(report.shard_samples) == len(y)
    assert report.shard_bytes > report.merged_bytes > 0
    assert report.merged is not None
    assert report.merged.n_samples == len(y)


def test_multiple_rounds_refine_the_merged_model():
    X, y = _data(n=400)
    config = RegHDConfig(dim=512, n_models=4, seed=0)
    one = MultiModelRegHD(5, config)
    train_sharded(one, X, y, n_shards=4, batch_rows=32, rounds=1)
    many = MultiModelRegHD(5, config)
    train_sharded(many, X, y, n_shards=4, batch_rows=32, rounds=5)
    mse_one = float(np.mean((one.predict(X) - y) ** 2))
    mse_many = float(np.mean((many.predict(X) - y) ** 2))
    assert mse_many < mse_one


# -- coordinator -------------------------------------------------------------


def test_coordinator_rounds_are_prequential():
    X, y = _data(n=300)
    stream = StreamingRegHD(5, RegHDConfig(dim=256, n_models=4, seed=0))
    coord = DeltaCoordinator(stream, n_shards=2, batch_rows=25)
    first = coord.round(X[:100], y[:100])
    assert first.prequential_mse is None  # nothing to predict with yet
    second = coord.round(X[100:200], y[100:200])
    assert second.prequential_mse is not None
    third = coord.round(X[200:], y[200:])
    assert coord.n_rounds == 3
    curve = coord.mse_curve()
    assert np.isnan(curve[0]) and np.all(np.isfinite(curve[1:]))
    assert third.merged_bytes > 0 and sum(third.shard_samples) == 100


def test_coordinator_checkpoints_every_n_rounds(tmp_path):
    X, y = _data(n=300)
    stream = ResilientStreamingRegHD(
        5,
        RegHDConfig(dim=128, n_models=2, seed=0),
        checkpoint_dir=tmp_path,
    )
    coord = DeltaCoordinator(stream, n_shards=2, checkpoint_every=2)
    flags = [coord.round(X[i : i + 100], y[i : i + 100]).checkpointed
             for i in range(0, 300, 100)]
    assert flags == [False, True, False]
    assert stream.checkpoints.latest_valid() is not None


def test_coordinator_validates_checkpoint_configuration():
    stream = StreamingRegHD(5, RegHDConfig(dim=64, n_models=2, seed=0))
    with pytest.raises(ConfigurationError, match="checkpoint"):
        DeltaCoordinator(stream, n_shards=2, checkpoint_every=0)
    with pytest.raises(ConfigurationError, match="checkpoint"):
        # Plain StreamingRegHD has no checkpoint() method.
        DeltaCoordinator(stream, n_shards=2, checkpoint_every=1)


# -- delta-hinted plan refresh -----------------------------------------------


def test_absorb_delta_refreshes_only_touched_rows():
    X, y = _data(n=200, features=5)
    stream = StreamingRegHD(5, RegHDConfig(dim=256, n_models=8, seed=0))
    trainer = ShardTrainer(stream.model, n_shards=2, batch_rows=25)

    # Round 1 trains broadly; predicting afterwards compiles the plan.
    stream.absorb_delta(trainer.reduce(trainer.map(X, y)))
    stream.predict(X[:4])
    before = dict(stream._plan.refresh_stats)

    # A 2-row super-batch touches at most 2 of the 8 cluster centres
    # (each sample moves only its own cluster); the model hypervectors
    # all move (the LMS step is confidence-weighted across models).
    # The delta-hinted refresh must re-copy exactly the touched rows.
    X2, y2 = X[:2], y[:2]
    merged = trainer.reduce(trainer.map(X2, y2))
    c_touched = int(merged.touched_rows("clusters_integer").sum())
    m_touched = int(merged.touched_rows("models_integer").sum())
    assert 0 < c_touched <= 2
    touched = c_touched + m_touched
    assert touched < 16  # strictly fewer than the 16 operand rows
    stream.absorb_delta(merged)

    after = dict(stream._plan.refresh_stats)
    assert after["refreshes"] == before["refreshes"] + 1
    assert after["rows_refreshed"] - before["rows_refreshed"] == touched
    assert after["rows_reused"] - before["rows_reused"] == 16 - touched

    # And the refreshed plan serves the post-merge model's predictions.
    np.testing.assert_allclose(
        stream.predict(X[:4]), stream.model.predict(X[:4])
    )


def test_absorb_delta_without_plan_marks_stale_only():
    X, y = _data(n=60)
    stream = StreamingRegHD(5, RegHDConfig(dim=128, n_models=2, seed=0))
    trainer = ShardTrainer(stream.model, n_shards=2)
    stream.absorb_delta(trainer.reduce(trainer.map(X, y)))
    assert stream._plan is None and stream._plan_stale
    assert np.all(np.isfinite(stream.predict(X[:3])))


# -- telemetry ---------------------------------------------------------------


def test_distributed_metric_family_records_round_trips():
    from repro import telemetry

    X, y = _data(n=100)
    reg = telemetry.enable()
    try:
        stream = StreamingRegHD(5, RegHDConfig(dim=128, n_models=2, seed=0))
        coord = DeltaCoordinator(stream, n_shards=2, batch_rows=25)
        coord.round(X, y)
    finally:
        telemetry.disable()
    assert reg.counter(
        "reghd_distributed_shards_total", mode="inline"
    ).value == 2
    assert reg.counter("reghd_distributed_samples_total").value == 100
    assert reg.counter(
        "reghd_distributed_delta_bytes_total", direction="shard"
    ).value > 0
    assert reg.counter(
        "reghd_distributed_delta_bytes_total", direction="merged"
    ).value > 0
    assert reg.counter("reghd_distributed_absorbs_total").value == 1
    # Spans nest under the coordinator: the map/reduce paths carry the
    # distributed/coordinate prefix.
    paths = {
        dict(m.labels)["span"]
        for m in reg.metrics()
        if m.name == "reghd_span_seconds"
    }
    assert "distributed/coordinate" in paths
    assert any(p.endswith("distributed/map") for p in paths)
    assert any(p.endswith("distributed/reduce") for p in paths)


def test_trainer_round_counter_increments():
    from repro import telemetry

    X, y = _data(n=60)
    reg = telemetry.enable()
    try:
        model = SingleModelRegHD(5, dim=128, seed=0)
        ShardTrainer(model, n_shards=2).train(X, y)
    finally:
        telemetry.disable()
    assert reg.counter("reghd_distributed_rounds_total").value == 1
    assert all(
        name in {m.name for m in reg.metrics()}
        for name in (
            "reghd_distributed_rounds_total",
            "reghd_distributed_shards_total",
            "reghd_distributed_samples_total",
            "reghd_distributed_delta_bytes_total",
        )
    )


# -- CLI ---------------------------------------------------------------------


class TestCLI:
    def test_train_with_shards_and_merge_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.serialization import load_delta, load_model

        model_path = tmp_path / "model.npz"
        delta_dir = tmp_path / "deltas"
        code = main(
            [
                "train",
                "--dataset", "boston",
                "--k", "2",
                "--dim", "128",
                "--max-samples", "200",
                "--shards", "2",
                "--shard-rounds", "2",
                "--save", str(model_path),
                "--save-shard-deltas", str(delta_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 shard rounds x 2 shards" in out
        assert model_path.exists()
        shard_files = sorted(delta_dir.glob("shard_*.npz"))
        assert len(shard_files) == 2
        assert load_delta(shard_files[0]).n_samples > 0

        merged_path = tmp_path / "merged.npz"
        merged_delta = tmp_path / "merged_delta.npz"
        code = main(
            [
                "merge",
                *[str(p) for p in shard_files],
                "--base", str(model_path),
                "--output", str(merged_path),
                "--delta-out", str(merged_delta),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "merged      : 2 delta(s)" in out
        assert load_model(merged_path).fitted
        assert load_delta(merged_delta).n_samples > 0

    def test_sequential_train_unaffected_by_new_flags(self, capsys):
        from repro.cli import main

        code = main(
            [
                "train",
                "--dataset", "boston",
                "--k", "2",
                "--dim", "128",
                "--epochs", "3",
                "--max-samples", "200",
            ]
        )
        assert code == 0
        assert "test MSE" in capsys.readouterr().out
