"""Shared fixtures: small, fast, seeded datasets and configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConvergencePolicy, RegHDConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh seeded generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_regression(rng: np.random.Generator):
    """A small nonlinear regression problem: (X_train, y_train, X_test, y_test)."""

    def f(X: np.ndarray) -> np.ndarray:
        return np.sin(2.0 * X[:, 0]) + 0.5 * X[:, 1] * X[:, 2] + 0.3 * X[:, 3]

    X_train = rng.normal(size=(200, 5))
    X_test = rng.normal(size=(100, 5))
    return X_train, f(X_train), X_test, f(X_test)


@pytest.fixture
def clustered_regression(rng: np.random.Generator):
    """A regime-mixture problem where multi-model clustering matters."""
    n_regimes, n_features = 4, 5
    centers = rng.normal(size=(n_regimes, n_features)) * 3.0
    coefs = rng.normal(size=(n_regimes, n_features)) * 2.0

    def gen(n: int):
        z = rng.integers(0, n_regimes, n)
        X = centers[z] + rng.normal(size=(n, n_features)) * 0.7
        y = np.einsum("ij,ij->i", X - centers[z], coefs[z]) + 3.0 * z
        return X, y

    X_train, y_train = gen(400)
    X_test, y_test = gen(200)
    return X_train, y_train, X_test, y_test


@pytest.fixture
def fast_convergence() -> ConvergencePolicy:
    """A short training budget for unit tests."""
    return ConvergencePolicy(max_epochs=8, patience=2, tol=1e-3)


@pytest.fixture
def fast_config(fast_convergence: ConvergencePolicy) -> RegHDConfig:
    """A small, fast RegHD configuration for unit tests."""
    return RegHDConfig(
        dim=256, n_models=4, seed=7, convergence=fast_convergence
    )
