"""Tests for the staged RegHD autotuner."""

import numpy as np
import pytest

from repro import RegHDConfig
from repro.core import ConvergencePolicy
from repro.evaluation.autotune import AutotuneResult, autotune_reghd
from repro.exceptions import ConfigurationError

BASE = RegHDConfig(
    seed=0, convergence=ConvergencePolicy(max_epochs=5, patience=2)
)


@pytest.fixture(scope="module")
def task():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 4))
    y = np.sin(2 * X[:, 0]) + X[:, 1]
    return X, y


class TestAutotune:
    def test_returns_valid_config(self, task):
        X, y = task
        result = autotune_reghd(
            X, y,
            base_config=BASE,
            k_grid=(1, 4),
            temp_grid=(10.0, 30.0),
            dim_ladder=(512, 128),
            probe_dim=128,
            seed=0,
        )
        assert isinstance(result, AutotuneResult)
        assert result.config.n_models in (1, 4)
        assert result.config.dim in (512, 128)
        assert np.isfinite(result.best_val_mse)

    def test_trials_cover_all_stages(self, task):
        X, y = task
        result = autotune_reghd(
            X, y,
            base_config=BASE,
            k_grid=(2, 4),
            temp_grid=(10.0, 30.0),
            dim_ladder=(256, 128),
            probe_dim=128,
            seed=0,
        )
        stages = {t.stage for t in result.trials}
        assert stages == {"k", "temperature", "dimension"}
        assert result.n_trials == 2 + 2 + 2

    def test_k1_skips_temperature_stage(self, task):
        X, y = task
        result = autotune_reghd(
            X, y,
            base_config=BASE,
            k_grid=(1,),
            temp_grid=(10.0, 30.0),
            dim_ladder=(128,),
            probe_dim=128,
            seed=0,
        )
        assert "temperature" not in {t.stage for t in result.trials}

    def test_budget_prefers_smaller_dim(self, task):
        """With an enormous budget the smallest D on the ladder wins."""
        X, y = task
        result = autotune_reghd(
            X, y,
            base_config=BASE,
            k_grid=(2,),
            temp_grid=(20.0,),
            dim_ladder=(512, 64),
            probe_dim=128,
            quality_budget=100.0,
            seed=0,
        )
        assert result.config.dim == 64

    def test_zero_budget_takes_best(self, task):
        X, y = task
        result = autotune_reghd(
            X, y,
            base_config=BASE,
            k_grid=(2,),
            temp_grid=(20.0,),
            dim_ladder=(512, 64),
            probe_dim=128,
            quality_budget=0.0,
            seed=0,
        )
        # The chosen dim must achieve the ladder's best MSE exactly.
        ladder = {
            t.params["dim"]: t.val_mse
            for t in result.trials
            if t.stage == "dimension"
        }
        assert result.best_val_mse == min(ladder.values())

    def test_deterministic(self, task):
        X, y = task
        kwargs = dict(
            base_config=BASE, k_grid=(1, 2), temp_grid=(20.0,),
            dim_ladder=(128,), probe_dim=128, seed=3,
        )
        a = autotune_reghd(X, y, **kwargs)
        b = autotune_reghd(X, y, **kwargs)
        assert a.config == b.config
        assert a.best_val_mse == b.best_val_mse

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"val_fraction": 0.0},
            {"quality_budget": -0.1},
            {"k_grid": ()},
            {"dim_ladder": (128, 512)},  # not descending
        ],
    )
    def test_invalid(self, task, kwargs):
        X, y = task
        defaults = dict(
            base_config=BASE, k_grid=(2,), temp_grid=(20.0,),
            dim_ladder=(128,), probe_dim=128,
        )
        defaults.update(kwargs)
        with pytest.raises(ConfigurationError):
            autotune_reghd(X, y, **defaults)
