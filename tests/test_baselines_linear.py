"""Tests for the linear baselines."""

import numpy as np
import pytest

from repro.baselines.linear import RidgeRegression, SGDLinearRegression
from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import r2_score


def _linear_data(n=200, d=4, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    coef = np.arange(1, d + 1, dtype=float)
    y = X @ coef + 2.5 + noise * rng.normal(size=n)
    return X, y, coef


class TestRidgeRegression:
    def test_recovers_coefficients(self):
        X, y, coef = _linear_data()
        model = RidgeRegression(alpha=1e-8).fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=0.05)
        assert model.intercept_ == pytest.approx(2.5, abs=0.05)

    def test_ols_via_alpha_zero(self):
        X, y, coef = _linear_data(noise=0.0)
        model = RidgeRegression(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-8)

    def test_regularisation_shrinks(self):
        X, y, _ = _linear_data()
        small = RidgeRegression(alpha=1e-6).fit(X, y)
        large = RidgeRegression(alpha=1e4).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_no_intercept(self):
        X, y, _ = _linear_data()
        model = RidgeRegression(alpha=1.0, fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0

    def test_rank_deficient_design(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(10, 20))  # more features than samples
        y = X[:, 0]
        model = RidgeRegression(alpha=0.0).fit(X, y)
        assert np.all(np.isfinite(model.predict(X)))

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            RidgeRegression(alpha=-1.0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RidgeRegression().predict(np.zeros((1, 3)))

    def test_feature_count_check(self):
        X, y, _ = _linear_data()
        model = RidgeRegression().fit(X, y)
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, X.shape[1] + 1)))

    def test_score(self):
        X, y, _ = _linear_data()
        assert RidgeRegression(1e-6).fit(X, y).score(X, y) > 0.99


class TestSGDLinearRegression:
    def test_converges_to_linear_solution(self):
        X, y, _ = _linear_data()
        model = SGDLinearRegression(epochs=80, lr=0.1, seed=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.98

    def test_deterministic(self):
        X, y, _ = _linear_data()
        a = SGDLinearRegression(epochs=10, seed=1).fit(X, y).predict(X)
        b = SGDLinearRegression(epochs=10, seed=1).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)

    def test_l2_penalty_shrinks(self):
        X, y, _ = _linear_data()
        plain = SGDLinearRegression(epochs=60, seed=0).fit(X, y)
        penalised = SGDLinearRegression(epochs=60, alpha=1.0, seed=0).fit(X, y)
        assert np.linalg.norm(penalised.coef_) < np.linalg.norm(plain.coef_)

    @pytest.mark.parametrize(
        "kwargs",
        [{"lr": 0.0}, {"epochs": 0}, {"batch_size": 0}, {"alpha": -0.1}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SGDLinearRegression(**kwargs)

    def test_constant_feature_handled(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.normal(size=50), np.ones(50)])
        y = X[:, 0]
        model = SGDLinearRegression(epochs=40, seed=0).fit(X, y)
        assert np.all(np.isfinite(model.predict(X)))
