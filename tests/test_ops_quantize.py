"""Tests for the quantisers."""

import numpy as np
import pytest

from repro.ops.quantize import (
    binarize,
    binary_to_bipolar,
    bipolar_to_binary,
    bipolarize,
    quantization_error,
    stochastic_binarize,
)


class TestBinarize:
    def test_threshold_zero(self):
        out = binarize([-1.0, 0.0, 0.5, 2.0])
        np.testing.assert_array_equal(out, [0, 0, 1, 1])
        assert out.dtype == np.uint8

    def test_custom_threshold(self):
        np.testing.assert_array_equal(
            binarize([0.4, 0.6], threshold=0.5), [0, 1]
        )

    def test_idempotent_on_binary_above_half(self):
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        np.testing.assert_array_equal(
            binarize(bits, threshold=0.5), bits
        )

    def test_2d(self):
        out = binarize(np.array([[-1.0, 1.0], [2.0, -2.0]]))
        np.testing.assert_array_equal(out, [[0, 1], [1, 0]])


class TestBipolarize:
    def test_sign(self):
        np.testing.assert_array_equal(
            bipolarize([-2.0, 3.0, -0.1]), [-1, 1, -1]
        )

    def test_zero_maps_to_tie_value(self):
        np.testing.assert_array_equal(bipolarize([0.0]), [1])
        np.testing.assert_array_equal(bipolarize([0.0], tie_value=-1), [-1])

    def test_invalid_tie_value(self):
        with pytest.raises(ValueError):
            bipolarize([1.0], tie_value=0)

    def test_output_never_contains_zero(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=100)
        v[::10] = 0.0
        assert 0 not in bipolarize(v)


class TestConversions:
    def test_roundtrip_binary(self):
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        np.testing.assert_array_equal(
            bipolar_to_binary(binary_to_bipolar(bits)), bits
        )

    def test_roundtrip_bipolar(self):
        vec = np.array([-1, 1, 1, -1], dtype=np.int8)
        np.testing.assert_array_equal(
            binary_to_bipolar(bipolar_to_binary(vec)), vec
        )

    def test_binary_to_bipolar_rejects_other_values(self):
        with pytest.raises(ValueError):
            binary_to_bipolar([0, 2])

    def test_bipolar_to_binary_rejects_zero(self):
        with pytest.raises(ValueError):
            bipolar_to_binary([-1, 0, 1])


class TestStochasticBinarize:
    def test_output_binary(self):
        out = stochastic_binarize(np.random.default_rng(0).normal(size=64), seed=1)
        assert set(np.unique(out)) <= {0, 1}

    def test_deterministic_given_seed(self):
        v = np.random.default_rng(0).normal(size=64)
        np.testing.assert_array_equal(
            stochastic_binarize(v, seed=5), stochastic_binarize(v, seed=5)
        )

    def test_extreme_values_deterministic(self):
        v = np.array([1e6, -1e6])
        np.testing.assert_array_equal(
            stochastic_binarize(v, seed=0, scale=1.0), [1, 0]
        )

    def test_unbiased_at_zero(self):
        out = stochastic_binarize(np.zeros(20_000), seed=2, scale=1.0)
        assert abs(out.mean() - 0.5) < 0.02

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            stochastic_binarize(np.ones(4), scale=-1.0)


class TestQuantizationError:
    def test_zero_for_already_binary_direction(self):
        v = np.array([2.0, -2.0, 2.0, -2.0])
        assert quantization_error(v, bipolarize(v)) == pytest.approx(0.0, abs=1e-12)

    def test_zero_vector(self):
        assert quantization_error(np.zeros(8), np.zeros(8)) == 0.0

    def test_positive_for_lossy_quantisation(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=256)
        err = quantization_error(v, bipolarize(v))
        assert 0.0 < err < 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            quantization_error(np.ones(4), np.ones(5))
