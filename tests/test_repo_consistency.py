"""Structural guards against re-cloning deduplicated primitives.

The estimator-stack refactor collapsed four private ``_normalize_rows``
clones, two ``_softmax`` clones and five copies of the y-standardisation
logic into :mod:`repro.ops.normalize` and
:class:`repro.core.estimator.TargetScaler`.  These tests grep the source
tree and fail if a clone reappears, so the dedup cannot silently erode.
"""

import pathlib
import re

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: the single allowed definition site of the shared row ops
SHARED_OPS = SRC / "repro" / "ops" / "normalize.py"
#: the single allowed definition site of the target-scaling state machine
SCALER_MODULE = SRC / "repro" / "core" / "estimator.py"
#: the execution runtime — the only place kernel arithmetic may live
RUNTIME_DIR = SRC / "repro" / "runtime"
#: symbolic HD binding (uint8 XOR) — an ops primitive, not a packed kernel
BINDING_OPS = SRC / "repro" / "ops" / "binding.py"
#: the telemetry layer — the only sanctioned wall-clock site
TELEMETRY_DIR = SRC / "repro" / "telemetry"
#: robust statistics — the only sanctioned covariance/Mahalanobis site
ROBUST_DIR = SRC / "repro" / "robust"
#: the core estimators — delta hooks/sinks are the mutation protocol
CORE_DIR = SRC / "repro" / "core"
#: fault injection — *deliberately* out-of-band hypervector writes
NOISE_DIR = SRC / "repro" / "noise"


def _python_sources():
    return sorted(SRC.rglob("*.py"))


def _runtime_sources() -> set[pathlib.Path]:
    return set(RUNTIME_DIR.rglob("*.py"))


def _offending_lines(pattern: str, *, exclude: set[pathlib.Path] = frozenset()):
    regex = re.compile(pattern)
    hits = []
    for path in _python_sources():
        if path in exclude:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if regex.search(line):
                hits.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    return hits


def test_sources_exist():
    assert SHARED_OPS.exists()
    assert SCALER_MODULE.exists()
    assert len(_python_sources()) > 50


def test_no_private_normalize_rows_clone():
    hits = _offending_lines(r"def\s+_normalize_rows")
    assert not hits, (
        "private _normalize_rows clone found — use "
        "repro.ops.normalize.normalize_rows instead:\n" + "\n".join(hits)
    )


def test_normalize_rows_defined_only_in_shared_ops():
    hits = _offending_lines(
        r"def\s+normalize_rows", exclude={SHARED_OPS}
    )
    assert not hits, (
        "normalize_rows must have exactly one definition "
        "(repro/ops/normalize.py):\n" + "\n".join(hits)
    )


def test_no_private_softmax_clone():
    hits = _offending_lines(r"def\s+_softmax")
    assert not hits, (
        "private _softmax clone found — use repro.ops.normalize.softmax "
        "instead:\n" + "\n".join(hits)
    )


def test_softmax_defined_only_in_shared_ops():
    hits = _offending_lines(r"def\s+softmax\(", exclude={SHARED_OPS})
    assert not hits, (
        "softmax must have exactly one definition (repro/ops/normalize.py):\n"
        + "\n".join(hits)
    )


def test_no_ad_hoc_target_scaling_state():
    """``_y_mean`` / ``_y_scale`` attribute pairs were the signature of the
    per-model y-standardisation clones; all target scaling goes through
    TargetScaler now."""
    hits = _offending_lines(r"_y_mean|_y_scale")
    assert not hits, (
        "ad-hoc target-scaling state found — use "
        "repro.core.estimator.TargetScaler instead:\n" + "\n".join(hits)
    )


def test_no_isinstance_ladder_in_serialization():
    """The serializer is registry-driven; a returning isinstance ladder
    means a model type is being special-cased again."""
    serialization = SRC / "repro" / "serialization.py"
    assert "isinstance(model" not in serialization.read_text()


def test_no_bit_packing_outside_runtime():
    """XOR + popcount kernels live in repro/runtime only.  The uint8 XOR
    in the symbolic binding op is an HD algebra primitive, not a packed
    arithmetic kernel, and stays exempt."""
    hits = _offending_lines(
        r"np\.(packbits|unpackbits|bitwise_xor|bitwise_count)"
        r"|_POPCOUNT_TABLE|\.bit_count\(|_popcount\w*\(",
        exclude=_runtime_sources() | {BINDING_OPS},
    )
    assert not hits, (
        "bit-packing/popcount arithmetic outside repro/runtime — move it "
        "into the kernel layer:\n" + "\n".join(hits)
    )


def test_no_unbuffered_scatter_outside_runtime():
    """``np.add.at`` calls go through KernelBackend.scatter_add."""
    hits = _offending_lines(
        r"np\.add\.at", exclude=_runtime_sources()
    )
    assert not hits, (
        "np.add.at outside repro/runtime — use the backend scatter/segment "
        "kernels:\n" + "\n".join(hits)
    )


def test_no_sign_matmul_outside_runtime():
    """The ±1 similarity matmul has one definition (runtime kernels)."""
    hits = _offending_lines(
        r"signs\s*@|@\s*\w*signsT", exclude=_runtime_sources()
    )
    assert not hits, (
        "sign matmul outside repro/runtime — use "
        "KernelBackend.cluster_similarities:\n" + "\n".join(hits)
    )


def test_no_softmax_calls_outside_runtime():
    """Confidence computation dispatches through KernelBackend.confidences;
    only the shared definition site and the runtime kernels may invoke
    ``softmax(`` directly."""
    hits = _offending_lines(
        r"\bsoftmax\(", exclude=_runtime_sources() | {SHARED_OPS}
    )
    assert not hits, (
        "direct softmax call outside repro/runtime — use "
        "KernelBackend.confidences:\n" + "\n".join(hits)
    )


def test_no_ad_hoc_timing_outside_telemetry():
    """Wall-clock reads go through ``repro.telemetry.timing.monotonic`` —
    one sanctioned site keeps every duration a span/histogram can capture
    on the same clock.  ``time.sleep`` (retry backoff) is unaffected."""
    hits = _offending_lines(
        r"time\.perf_counter|time\.monotonic|\btime\.time\(",
        exclude=set(TELEMETRY_DIR.rglob("*.py")),
    )
    assert not hits, (
        "ad-hoc wall-clock read outside repro/telemetry — use "
        "repro.telemetry.timing.monotonic (or a span):\n" + "\n".join(hits)
    )


def test_no_ad_hoc_covariance_outside_robust():
    """Covariance estimation, matrix (pseudo-)inversion and Mahalanobis
    scoring live in repro/robust only.  ``np.linalg.solve`` (ridge normal
    equations), ``lstsq`` and ``norm`` are ordinary linear algebra and
    stay unaffected; *mentioning* the mahalanobis guard policy is fine,
    re-implementing the scoring is not."""
    hits = _offending_lines(
        r"np\.cov\(|np\.linalg\.(pinvh?|inv|eigh?|cholesky)\(|def\s+\w*mahalanobis",
        exclude=set(ROBUST_DIR.rglob("*.py")),
    )
    assert not hits, (
        "ad-hoc covariance/Mahalanobis code outside repro/robust — use "
        "RobustMomentTracker / MahalanobisGate:\n" + "\n".join(hits)
    )


def test_no_hypervector_mutation_outside_delta_protocol():
    """Learned hypervector arrays mutate only through the ModelDelta
    protocol: the ``_push_*`` sinks and delta hooks in ``repro/core``
    (which both apply the live update and feed the recorder) and the
    ``DualCopy`` mutators in ``repro/runtime``.  Direct ``+=`` /
    slice-assignment into ``.model`` / ``.class_vectors`` /
    ``.integer`` / ``.signs`` / ``.binary`` anywhere else would train
    invisibly to a recording span, so shard deltas would silently drop
    those updates.  ``repro/noise`` stays exempt: fault injection
    *deliberately* writes out of band to simulate memory corruption."""
    hits = _offending_lines(
        r"(\.model|\.class_vectors|\.integer|\.signs|\.binary)"
        r"((\[[^\]]*\])?\s*[-+*/]=|\[[^\]]*\]\s*=[^=])",
        exclude=set(CORE_DIR.rglob("*.py"))
        | _runtime_sources()
        | set(NOISE_DIR.rglob("*.py")),
    )
    assert not hits, (
        "direct hypervector mutation outside the ModelDelta protocol — "
        "route it through the estimator's _push_update/_push_replace/"
        "_push_scatter sinks (or a DualCopy mutator):\n" + "\n".join(hits)
    )


@pytest.mark.parametrize("name", ["dense", "packed", "packed_v2"])
def test_every_backend_registered(name):
    from repro.registry import BACKEND_REGISTRY

    assert name in BACKEND_REGISTRY


@pytest.mark.parametrize(
    "name", ["single", "multi", "baseline_hd", "classifier", "multioutput", "ensemble"]
)
def test_every_model_registered(name):
    from repro.registry import MODEL_REGISTRY

    assert name in MODEL_REGISTRY


@pytest.mark.parametrize("name", ["nonlinear", "projection", "sequence"])
def test_every_encoder_registered(name):
    from repro.registry import ENCODER_REGISTRY

    assert name in ENCODER_REGISTRY


# --- scenario-layer guards: data flows through the registry ----------------

ROOT = SRC.parent
EXAMPLES_DIR = ROOT / "examples"
BENCHMARKS_DIR = ROOT / "benchmarks"

#: non-regression demos whose data is symbolic (text n-grams, RL episodes)
#: rather than a regression dataset — nothing for the registry to serve.
DATA_GUARD_EXEMPT = {"language_identification.py", "hd_reinforcement_learning.py"}

#: every dataset-producing callable in repro.datasets; calling one
#: directly bypasses the registry (and the workload layer built on it).
_GENERATOR_CALL = re.compile(
    r"\b(friedman[123]|sinusoid|piecewise|linear|nonlinear_interaction"
    r"|high_cardinality|regime_mixture|sensor_signal"
    r"|regime_switching_signal|windowed_forecasting_dataset"
    r"|multihorizon_forecasting_dataset|load_(?:diabetes|boston|airfoil"
    r"|wine|facebook|ccpp|forest|sensor_forecast|regime_forecast"
    r"|multihorizon_forecast)|Dataset)\s*\("
)


def _scenario_sources(directory):
    return [
        p for p in sorted(directory.glob("*.py"))
        if p.name not in DATA_GUARD_EXEMPT
    ]


def _generator_hits(paths):
    hits = []
    for path in paths:
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if _GENERATOR_CALL.search(line):
                hits.append(f"{path.relative_to(ROOT)}:{lineno}: {line.strip()}")
    return hits


def test_examples_resolve_data_through_registry():
    """Examples call ``load_dataset``/workloads, never a generator directly,
    so every scenario an example demonstrates is discoverable by name."""
    hits = _generator_hits(_scenario_sources(EXAMPLES_DIR))
    assert not hits, (
        "direct dataset construction in examples/ — resolve it through "
        "repro.datasets.load_dataset or the workload registry:\n"
        + "\n".join(hits)
    )


def test_examples_do_not_hand_roll_datasets():
    """``np.random.default_rng`` in an example is a hand-rolled dataset the
    registry cannot name; register a generator instead."""
    hits = []
    for path in _scenario_sources(EXAMPLES_DIR):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if "default_rng" in line:
                hits.append(f"{path.relative_to(ROOT)}:{lineno}: {line.strip()}")
    assert not hits, (
        "hand-rolled data in examples/ — load it via "
        "repro.datasets.load_dataset so the scenario has a name:\n"
        + "\n".join(hits)
    )


def test_benchmarks_resolve_data_through_registry():
    """Benchmark *datasets* come from the registry.  Raw ``default_rng``
    operands for kernel micro-benchmarks (throughput matrices, packed
    words) are not datasets and stay unaffected."""
    hits = _generator_hits(_scenario_sources(BENCHMARKS_DIR))
    assert not hits, (
        "direct dataset construction in benchmarks/ — resolve it through "
        "repro.datasets.load_dataset:\n" + "\n".join(hits)
    )
