"""Tests for the shared row-normalisation and softmax ops.

These two functions replaced four per-module private clones; every
training and serving path now routes through them, so their numerics are
load-bearing for bit-exactness across the codebase.
"""

import numpy as np

from repro.ops.normalize import normalize_rows, softmax


class TestNormalizeRows:
    def test_rows_become_unit_norm(self):
        rng = np.random.default_rng(0)
        S = rng.normal(size=(32, 50))
        N = normalize_rows(S)
        assert np.allclose(np.linalg.norm(N, axis=1), 1.0)

    def test_zero_row_stays_zero(self):
        S = np.zeros((3, 8))
        S[1] = 1.0
        N = normalize_rows(S)
        assert np.array_equal(N[0], np.zeros(8))
        assert np.array_equal(N[2], np.zeros(8))

    def test_does_not_mutate_input(self):
        S = np.arange(12, dtype=np.float64).reshape(3, 4)
        before = S.copy()
        normalize_rows(S)
        assert np.array_equal(S, before)

    def test_matches_manual_division(self):
        rng = np.random.default_rng(1)
        S = rng.normal(size=(10, 20))
        norms = np.linalg.norm(S, axis=1, keepdims=True)
        assert np.array_equal(normalize_rows(S), S / np.maximum(norms, 1e-12))

    def test_eps_floor_is_configurable(self):
        S = np.full((1, 4), 1e-20)
        loose = normalize_rows(S, eps=1e-6)
        assert np.all(np.abs(loose) < 1e-12)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(2)
        scores = rng.normal(size=(16, 5)) * 10
        probs = softmax(scores)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_shift_invariance(self):
        """The stabilising per-row max shift leaves the result unchanged."""
        rng = np.random.default_rng(3)
        scores = rng.normal(size=(8, 4))
        shifted = scores + rng.normal(size=(8, 1)) * 100
        assert np.allclose(softmax(scores), softmax(shifted))

    def test_large_scores_do_not_overflow(self):
        scores = np.array([[1e4, 1e4 - 1.0, 0.0]])
        probs = softmax(scores)
        assert np.all(np.isfinite(probs))
        assert probs[0, 0] > probs[0, 1] > probs[0, 2]

    def test_matches_naive_formula_on_small_scores(self):
        rng = np.random.default_rng(4)
        scores = rng.normal(size=(6, 3))
        naive = np.exp(scores) / np.exp(scores).sum(axis=1, keepdims=True)
        assert np.allclose(softmax(scores), naive)

    def test_uniform_scores_give_uniform_probabilities(self):
        probs = softmax(np.zeros((2, 5)))
        assert np.allclose(probs, 0.2)


class TestSharedUsage:
    def test_engine_confidences_use_shared_softmax(self):
        """The serving path's confidences equal the training path's by
        construction (same function), not merely approximately."""
        from repro.runtime.kernels import confidences as softmax_confidences

        rng = np.random.default_rng(5)
        sims = rng.uniform(-1, 1, size=(10, 4))
        temp = 3.7
        assert np.array_equal(
            softmax_confidences(sims, temp), softmax(temp * sims)
        )
