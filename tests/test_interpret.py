"""Tests for the interpretability utilities."""

import numpy as np
import pytest

from repro import MultiModelRegHD, RegHDConfig, SingleModelRegHD
from repro.core import ConvergencePolicy
from repro.datasets import friedman1
from repro.exceptions import ConfigurationError, NotFittedError
from repro.interpret import (
    cluster_profile,
    feature_importance,
    prediction_breakdown,
)

CONV = ConvergencePolicy(max_epochs=12, patience=4)


@pytest.fixture(scope="module")
def friedman_model():
    """RegHD trained on Friedman #1 with 3 distractor features."""
    ds = friedman1(600, n_features=8, noise=0.2, seed=0)
    model = MultiModelRegHD(
        8, RegHDConfig(dim=1000, n_models=4, seed=0, convergence=CONV)
    ).fit(ds.X, ds.y)
    return model, ds


class TestFeatureImportance:
    def test_distractors_score_low(self, friedman_model):
        """Friedman #1 uses features 0-4; 5-7 are noise. The pipeline
        sensitivity must reflect that."""
        model, ds = friedman_model
        imp = feature_importance(model, ds.X[:100])
        informative = imp[:5].mean()
        distractor = imp[5:].mean()
        assert informative > 3.0 * distractor

    def test_strongest_feature_is_informative(self, friedman_model):
        model, ds = friedman_model
        imp = feature_importance(model, ds.X[:100])
        assert int(np.argmax(imp)) < 5

    def test_shape_and_nonnegative(self, friedman_model):
        model, ds = friedman_model
        imp = feature_importance(model, ds.X[:20])
        assert imp.shape == (8,)
        assert np.all(imp >= 0)

    def test_single_model_supported(self):
        ds = friedman1(200, n_features=6, seed=1)
        model = SingleModelRegHD(6, dim=512, seed=0, convergence=CONV).fit(
            ds.X, ds.y
        )
        imp = feature_importance(model, ds.X[:20])
        assert imp.shape == (6,)

    def test_requires_fitted(self):
        with pytest.raises(NotFittedError):
            feature_importance(SingleModelRegHD(3, dim=64), np.zeros((2, 3)))

    def test_invalid_epsilon(self, friedman_model):
        model, ds = friedman_model
        with pytest.raises(ConfigurationError):
            feature_importance(model, ds.X[:5], epsilon=0.0)


class TestPredictionBreakdown:
    def test_contributions_sum_to_prediction(self, friedman_model):
        model, ds = friedman_model
        explanation = prediction_breakdown(model, ds.X[0])
        assert explanation.check_sums() == pytest.approx(
            explanation.prediction, rel=1e-9
        )

    def test_confidences_form_distribution(self, friedman_model):
        model, ds = friedman_model
        explanation = prediction_breakdown(model, ds.X[3])
        total_conf = sum(c.confidence for c in explanation.contributions)
        assert total_conf == pytest.approx(1.0)
        assert all(c.confidence >= 0 for c in explanation.contributions)

    def test_dominant_cluster_matches_assignment(self, friedman_model):
        model, ds = friedman_model
        explanation = prediction_breakdown(model, ds.X[7])
        assigned = model.cluster_assignments(ds.X[7:8])[0]
        # Dominant softmax confidence coincides with the argmax-similarity
        # assignment (softmax is monotone in similarity).
        assert explanation.dominant_cluster == assigned

    def test_one_row_only(self, friedman_model):
        model, ds = friedman_model
        with pytest.raises(ConfigurationError):
            prediction_breakdown(model, ds.X[:2])

    def test_requires_fitted(self):
        model = MultiModelRegHD(3, RegHDConfig(dim=64, n_models=2))
        with pytest.raises(NotFittedError):
            prediction_breakdown(model, np.zeros(3))


class TestClusterProfile:
    def test_counts_sum_to_dataset(self, friedman_model):
        model, ds = friedman_model
        profiles = cluster_profile(model, ds.X[:200])
        assert sum(p.count for p in profiles) == 200
        assert sum(p.share for p in profiles) == pytest.approx(1.0)

    def test_one_profile_per_cluster(self, friedman_model):
        model, ds = friedman_model
        profiles = cluster_profile(model, ds.X[:50])
        assert len(profiles) == model.n_models
        assert [p.cluster for p in profiles] == list(range(model.n_models))

    def test_empty_cluster_reports_nan(self):
        """With k far larger than the data's structure some clusters go
        unused and must report NaN stats rather than crash."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 3)) * 0.01  # tight blob -> one cluster
        y = X[:, 0]
        model = MultiModelRegHD(
            3, RegHDConfig(dim=256, n_models=16, seed=0, convergence=CONV)
        ).fit(X, y)
        profiles = cluster_profile(model, X)
        empty = [p for p in profiles if p.count == 0]
        assert empty, "expected at least one unused cluster"
        assert np.isnan(empty[0].mean_prediction)

    def test_feature_means_shape(self, friedman_model):
        model, ds = friedman_model
        profiles = cluster_profile(model, ds.X[:50])
        for p in profiles:
            assert p.feature_means.shape == (8,)

    def test_requires_fitted(self):
        model = MultiModelRegHD(3, RegHDConfig(dim=64, n_models=2))
        with pytest.raises(NotFittedError):
            cluster_profile(model, np.zeros((2, 3)))
