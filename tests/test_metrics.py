"""Tests for regression metrics."""

import numpy as np
import pytest

from repro.exceptions import DimensionalityError
from repro.metrics import (
    mean_absolute_error,
    mean_squared_error,
    normalized_quality,
    quality_loss,
    r2_score,
    root_mean_squared_error,
)


class TestMSE:
    def test_perfect(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_shape_mismatch(self):
        with pytest.raises(DimensionalityError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(DimensionalityError):
            mean_squared_error([], [])

    def test_symmetric(self):
        a, b = [1.0, 5.0], [2.0, 3.0]
        assert mean_squared_error(a, b) == mean_squared_error(b, a)


class TestRMSEAndMAE:
    def test_rmse_is_sqrt_mse(self):
        y, p = [0.0, 0.0], [3.0, 4.0]
        assert root_mean_squared_error(y, p) == pytest.approx(
            np.sqrt(mean_squared_error(y, p))
        )

    def test_mae_known(self):
        assert mean_absolute_error([0.0, 0.0], [1.0, -3.0]) == pytest.approx(2.0)

    def test_mae_le_rmse(self):
        rng = np.random.default_rng(0)
        y, p = rng.normal(size=50), rng.normal(size=50)
        assert mean_absolute_error(y, p) <= root_mean_squared_error(y, p) + 1e-12


class TestR2:
    def test_perfect_prediction(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        assert r2_score([1.0, 2.0, 3.0], [3.0, 1.0, -2.0]) < 0.0

    def test_constant_target_perfect(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0

    def test_constant_target_imperfect(self):
        assert r2_score([2.0, 2.0], [2.0, 3.0]) == 0.0


class TestNormalizedQuality:
    def test_reference_scores_one(self):
        assert normalized_quality(10.0, 10.0) == pytest.approx(1.0)

    def test_worse_scores_below_one(self):
        assert normalized_quality(20.0, 10.0) == pytest.approx(0.5)

    def test_better_scores_above_one(self):
        assert normalized_quality(5.0, 10.0) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            normalized_quality(0.0, 1.0)
        with pytest.raises(ValueError):
            normalized_quality(1.0, -1.0)


class TestQualityLoss:
    def test_no_loss_at_reference(self):
        assert quality_loss(10.0, 10.0) == pytest.approx(0.0)

    def test_fifty_percent(self):
        assert quality_loss(20.0, 10.0) == pytest.approx(50.0)

    def test_clipped_at_zero_when_better(self):
        assert quality_loss(5.0, 10.0) == 0.0
