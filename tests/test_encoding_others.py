"""Tests for the projection, ID-level and sequence encoders."""

import numpy as np
import pytest

from repro.encoding.idlevel import IDLevelEncoder
from repro.encoding.permutation import SequenceEncoder
from repro.encoding.projection import RandomProjectionEncoder
from repro.exceptions import EncodingError
from repro.ops.similarity import cosine_similarity


class TestRandomProjectionEncoder:
    def test_linearity(self):
        """Unlike the nonlinear encoder, the raw projection IS linear."""
        enc = RandomProjectionEncoder(4, 256, seed=0)
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=4), rng.normal(size=4)
        np.testing.assert_allclose(
            enc.encode(x + y), enc.encode(x) + enc.encode(y), atol=1e-10
        )

    def test_quantized_output_is_bipolar(self):
        enc = RandomProjectionEncoder(4, 128, seed=0, quantize=True)
        out = enc.encode_batch(np.random.default_rng(1).normal(size=(5, 4)))
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_quantize_flag_property(self):
        assert RandomProjectionEncoder(4, 64, quantize=True).quantize
        assert not RandomProjectionEncoder(4, 64).quantize

    def test_deterministic(self):
        x = np.ones(4)
        a = RandomProjectionEncoder(4, 64, seed=5).encode(x)
        b = RandomProjectionEncoder(4, 64, seed=5).encode(x)
        np.testing.assert_array_equal(a, b)

    def test_invalid_base(self):
        with pytest.raises(EncodingError):
            RandomProjectionEncoder(4, 64, base="weird")

    def test_gaussian_base(self):
        enc = RandomProjectionEncoder(4, 64, seed=0, base="gaussian")
        assert enc.encode(np.ones(4)).shape == (64,)


class TestIDLevelEncoder:
    def test_shape(self):
        enc = IDLevelEncoder(6, 256, seed=0)
        assert enc.encode_batch(np.zeros((3, 6))).shape == (3, 256)

    def test_levels_property(self):
        assert IDLevelEncoder(4, 64, levels=16).levels == 16

    def test_level_index_clipping(self):
        enc = IDLevelEncoder(2, 64, seed=0, levels=8, feature_range=(-1, 1))
        idx = enc.level_index(np.array([[-99.0, 99.0]]))
        assert idx[0, 0] == 0
        assert idx[0, 1] == 7

    def test_similar_inputs_similar_encodings(self):
        enc = IDLevelEncoder(4, 4096, seed=0, levels=64)
        rng = np.random.default_rng(1)
        x = rng.normal(size=4) * 0.5
        sim_near = cosine_similarity(enc.encode(x), enc.encode(x + 0.05))
        sim_far = cosine_similarity(enc.encode(x), enc.encode(-x + 2.0))
        assert sim_near > sim_far

    def test_invalid_levels(self):
        with pytest.raises(EncodingError):
            IDLevelEncoder(4, 64, levels=1)

    def test_invalid_range(self):
        with pytest.raises(EncodingError):
            IDLevelEncoder(4, 64, feature_range=(1.0, -1.0))

    def test_deterministic(self):
        x = np.linspace(-1, 1, 5)
        a = IDLevelEncoder(5, 128, seed=2).encode(x)
        b = IDLevelEncoder(5, 128, seed=2).encode(x)
        np.testing.assert_array_equal(a, b)


class TestSequenceEncoder:
    def test_window_property(self):
        enc = SequenceEncoder(8, 128, seed=0)
        assert enc.window == 8
        assert enc.in_features == 8

    def test_shape(self):
        enc = SequenceEncoder(5, 256, seed=0)
        assert enc.encode_batch(np.zeros((4, 5))).shape == (4, 256)

    def test_order_sensitivity(self):
        """Reversing a sequence must change the encoding — position is
        bound via permutation."""
        enc = SequenceEncoder(6, 2048, seed=0)
        rng = np.random.default_rng(2)
        seq = rng.uniform(-1, 1, 6)
        fwd = enc.encode(seq)
        rev = enc.encode(seq[::-1])
        assert cosine_similarity(fwd, rev) < 0.9

    def test_similar_sequences_similar(self):
        enc = SequenceEncoder(6, 4096, seed=0)
        rng = np.random.default_rng(3)
        seq = rng.uniform(-1, 1, 6)
        near = seq + 0.02
        far = rng.uniform(-1, 1, 6) * 2.5
        assert cosine_similarity(enc.encode(seq), enc.encode(near)) > (
            cosine_similarity(enc.encode(seq), enc.encode(far))
        )

    def test_invalid_levels(self):
        with pytest.raises(EncodingError):
            SequenceEncoder(4, 64, levels=0)

    def test_invalid_range(self):
        with pytest.raises(EncodingError):
            SequenceEncoder(4, 64, value_range=(2.0, 2.0))

    def test_deterministic(self):
        seq = np.linspace(-1, 1, 4)
        a = SequenceEncoder(4, 128, seed=9).encode(seq)
        b = SequenceEncoder(4, 128, seed=9).encode(seq)
        np.testing.assert_array_equal(a, b)


class TestBinaryViews:
    def test_encode_binary_values(self):
        enc = RandomProjectionEncoder(4, 128, seed=0)
        out = enc.encode_binary(np.random.default_rng(0).normal(size=(3, 4)))
        assert set(np.unique(out)) <= {0, 1}

    def test_encode_bipolar_values(self):
        enc = RandomProjectionEncoder(4, 128, seed=0)
        out = enc.encode_bipolar(np.random.default_rng(0).normal(size=(3, 4)))
        assert set(np.unique(out)) <= {-1, 1}

    def test_single_row_binary(self):
        enc = RandomProjectionEncoder(4, 128, seed=0)
        assert enc.encode_binary(np.ones(4)).shape == (128,)
