"""Tests for memory scrubbing: rematerialisation and majority voting."""

import numpy as np
import pytest

from repro import MultiModelRegHD, RegHDConfig
from repro.core import ClusterQuant, ConvergencePolicy, PredictQuant
from repro.exceptions import ConfigurationError
from repro.noise.injection import flip_signs
from repro.reliability import ModelScrubber, majority_vote, rematerialize

# A binary-quantised model: its binary working copies are live (served to
# queries and refreshed per epoch), which is the scenario scrubbing exists
# for — and what makes rematerialisation exactly idempotent when healthy.
CONFIG = RegHDConfig(
    dim=1024,
    n_models=4,
    seed=0,
    cluster_quant=ClusterQuant.FRAMEWORK,
    predict_quant=PredictQuant.BINARY_MODEL,
    convergence=ConvergencePolicy(max_epochs=5, patience=2),
)


@pytest.fixture
def model(rng):
    X = rng.normal(size=(150, 5))
    y = np.sin(X[:, 0]) + X[:, 1]
    return MultiModelRegHD(5, CONFIG).fit(X, y)


class TestMajorityVote:
    def test_identity_on_agreeing_replicas(self, rng):
        v = rng.normal(size=(3, 8))
        np.testing.assert_array_equal(
            majority_vote([v, v.copy(), v.copy()]), v
        )

    def test_outvotes_single_corrupt_replica(self, rng):
        clean = rng.normal(size=(2, 100))
        corrupt = flip_signs(clean, 0.5, seed=0)
        voted = majority_vote([corrupt, clean.copy(), clean.copy()])
        np.testing.assert_array_equal(voted, clean)

    def test_even_replica_count_rejected(self, rng):
        v = rng.normal(size=(2, 4))
        with pytest.raises(ConfigurationError, match="odd"):
            majority_vote([v, v])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            majority_vote([])


class TestRematerialize:
    def test_idempotent_on_healthy_model(self, model):
        assert rematerialize(model) == 0

    def test_restores_corrupted_binary_copy(self, model):
        clean_binary = model.models.binary.copy()
        model.models.binary = flip_signs(clean_binary, 0.1, seed=1)
        changed = rematerialize(model)
        assert changed > 0
        np.testing.assert_array_equal(model.models.binary, clean_binary)

    def test_restores_all_binary_flips(self, model):
        """The binary copy is a pure function of the intact shadow, so
        rematerialisation erases 100% of working-copy faults."""
        clean = model.models.binary.copy()
        corrupt = flip_signs(clean, 0.05, seed=2)
        n_injected = int(np.sum(corrupt != clean))
        model.models.binary = corrupt
        rematerialize(model)
        restored = n_injected - int(np.sum(model.models.binary != clean))
        assert restored == n_injected


class TestModelScrubber:
    def test_invalid_replica_counts(self, model):
        for replicas in (0, 2, 4):
            with pytest.raises(ConfigurationError):
                ModelScrubber(model, replicas=replicas)

    def test_noop_on_healthy_model(self, model):
        scrubber = ModelScrubber(model, replicas=3)
        report = scrubber.scrub()
        assert not report.repaired_anything

    def test_scrub_does_not_change_healthy_predictions(self, model, rng):
        X = rng.normal(size=(20, 5))
        before = model.predict(X)
        scrubber = ModelScrubber(model, replicas=3)
        scrubber.scrub()
        np.testing.assert_array_equal(model.predict(X), before)

    def test_live_corruption_voted_out(self, model):
        scrubber = ModelScrubber(model, replicas=3)
        clean = model.models.integer.copy()
        model.models.integer[:] = flip_signs(clean, 0.05, seed=3)
        report = scrubber.scrub()
        assert report.shadow_elements_repaired > 0
        np.testing.assert_array_equal(model.models.integer, clean)

    def test_sync_after_training_keeps_updates(self, model, rng):
        scrubber = ModelScrubber(model, replicas=3)
        X = rng.normal(size=(30, 5))
        y = np.sin(X[:, 0])
        model.partial_fit(X, y)  # legitimate update: live != shadows now
        scrubber.sync()  # hardware mirrors the write
        after_update = model.models.integer.copy()
        scrubber.scrub()
        # Scrubbing must not vote out genuine training progress.
        np.testing.assert_array_equal(model.models.integer, after_update)

    def test_replicas_one_degrades_to_rematerialisation(self, model):
        scrubber = ModelScrubber(model, replicas=1)
        clean_binary = model.models.binary.copy()
        model.models.binary = flip_signs(clean_binary, 0.1, seed=4)
        report = scrubber.scrub()
        assert report.shadow_elements_repaired == 0
        assert report.binary_elements_refreshed > 0
        np.testing.assert_array_equal(model.models.binary, clean_binary)

    def test_acceptance_bit_flip_restoration(self, model):
        """Acceptance criterion: >= 99% of model-hypervector bit flips at
        rate 0.05 are restored with R=3 replicas."""
        scrubber = ModelScrubber(model, replicas=3)
        clean_int = model.models.integer.copy()
        clean_bin = model.models.binary.copy()
        # Working-copy faults: the binary copy hardware serves queries from.
        model.models.binary = flip_signs(clean_bin, 0.05, seed=5)
        # Shadow faults on the live integer copy.
        model.models.integer[:] = flip_signs(clean_int, 0.05, seed=6)
        n_injected = int(np.sum(model.models.binary != clean_bin)) + int(
            np.sum(model.models.integer != clean_int)
        )
        scrubber.scrub()
        n_left = int(np.sum(model.models.binary != clean_bin)) + int(
            np.sum(model.models.integer != clean_int)
        )
        assert n_injected > 0
        assert (n_injected - n_left) / n_injected >= 0.99

    def test_independent_replica_corruption_mostly_repaired(self, model):
        """Coincident faults across replicas survive voting with
        probability O(rate^2); at rate 0.05 most flips are repaired and
        the surviving fraction is small."""
        scrubber = ModelScrubber(model, replicas=3, include_clusters=False)
        clean = model.models.integer.copy()
        model.models.integer[:] = flip_signs(clean, 0.05, seed=7)
        for i, shadow in enumerate(scrubber._model_shadows):
            shadow[:] = flip_signs(clean, 0.05, seed=10 + i)
        scrubber.scrub()
        wrong = int(np.sum(model.models.integer != clean))
        assert wrong / clean.size < 0.01  # ~3 * 0.05^2 expected
