"""Tests for bit-packed binary hypervector operations."""

import numpy as np
import pytest

from repro.exceptions import DimensionalityError
from repro.ops.generate import random_binary
from repro.ops.packing import (
    pack_bits,
    packed_hamming_distance,
    packed_hamming_similarity,
    unpack_bits,
)
from repro.ops.similarity import hamming_distance, hamming_similarity


class TestPackUnpack:
    def test_roundtrip_single(self):
        bits = random_binary(1, 100, seed=0)[0]
        packed, dim = pack_bits(bits)
        np.testing.assert_array_equal(unpack_bits(packed, dim), bits)

    def test_roundtrip_batch(self):
        bits = random_binary(5, 77, seed=1)
        packed, dim = pack_bits(bits)
        assert packed.shape == (5, 10)  # ceil(77/8)
        np.testing.assert_array_equal(unpack_bits(packed, dim), bits)

    def test_exact_byte_multiple(self):
        bits = random_binary(2, 64, seed=2)
        packed, dim = pack_bits(bits)
        assert packed.shape == (2, 8)
        np.testing.assert_array_equal(unpack_bits(packed, dim), bits)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0, 2, 1]))

    def test_rejects_3d(self):
        with pytest.raises(DimensionalityError):
            pack_bits(np.zeros((2, 2, 2), dtype=np.uint8))

    def test_unpack_dim_validation(self):
        packed, _ = pack_bits(random_binary(1, 16, seed=0)[0])
        with pytest.raises(DimensionalityError):
            unpack_bits(packed, 0)
        with pytest.raises(DimensionalityError):
            unpack_bits(packed, 99)


class TestPackedHamming:
    def test_matches_unpacked_single(self):
        a = random_binary(1, 123, seed=0)[0]
        b = random_binary(1, 123, seed=1)[0]
        pa, dim = pack_bits(a)
        pb, _ = pack_bits(b)
        assert packed_hamming_distance(pa, pb) == hamming_distance(a, b)

    def test_matches_unpacked_batch(self):
        a = random_binary(4, 200, seed=2)
        b = random_binary(6, 200, seed=3)
        pa, dim = pack_bits(a)
        pb, _ = pack_bits(b)
        np.testing.assert_allclose(
            packed_hamming_distance(pa, pb), hamming_distance(a, b)
        )

    def test_similarity_matches(self):
        a = random_binary(3, 500, seed=4)
        b = random_binary(3, 500, seed=5)
        pa, dim = pack_bits(a)
        pb, _ = pack_bits(b)
        np.testing.assert_allclose(
            packed_hamming_similarity(pa, pb, dim), hamming_similarity(a, b)
        )

    def test_self_distance_zero(self):
        a = random_binary(1, 64, seed=6)[0]
        pa, _ = pack_bits(a)
        assert packed_hamming_distance(pa, pa) == 0.0

    def test_padding_bits_cancel(self):
        """Non-multiple-of-8 dims must not leak padding into the count."""
        a = np.ones(9, dtype=np.uint8)
        b = np.zeros(9, dtype=np.uint8)
        pa, _ = pack_bits(a)
        pb, _ = pack_bits(b)
        assert packed_hamming_distance(pa, pb) == 9.0

    def test_width_mismatch(self):
        pa, _ = pack_bits(random_binary(1, 64, seed=0)[0])
        pb, _ = pack_bits(random_binary(1, 128, seed=0)[0])
        with pytest.raises(DimensionalityError):
            packed_hamming_distance(pa, pb)

    def test_similarity_dim_validation(self):
        pa, _ = pack_bits(random_binary(1, 64, seed=0)[0])
        with pytest.raises(DimensionalityError):
            packed_hamming_similarity(pa, pa, 0)
