"""Tests for bit-packed binary hypervector operations."""

import numpy as np
import pytest

from repro.exceptions import DimensionalityError
from repro.ops.generate import random_binary

# The implementation module (tile budget / popcount knobs live there); the
# ``repro.ops.packing`` imports below exercise the compatibility shim.
from repro.runtime import packing
from repro.ops.packing import (
    pack_bits,
    pack_sign_words,
    packed_hamming_distance,
    packed_hamming_similarity,
    packed_sign_products,
    unpack_bits,
)
from repro.ops.similarity import hamming_distance, hamming_similarity


class TestPackUnpack:
    def test_roundtrip_single(self):
        bits = random_binary(1, 100, seed=0)[0]
        packed, dim = pack_bits(bits)
        np.testing.assert_array_equal(unpack_bits(packed, dim), bits)

    def test_roundtrip_batch(self):
        bits = random_binary(5, 77, seed=1)
        packed, dim = pack_bits(bits)
        assert packed.shape == (5, 10)  # ceil(77/8)
        np.testing.assert_array_equal(unpack_bits(packed, dim), bits)

    def test_exact_byte_multiple(self):
        bits = random_binary(2, 64, seed=2)
        packed, dim = pack_bits(bits)
        assert packed.shape == (2, 8)
        np.testing.assert_array_equal(unpack_bits(packed, dim), bits)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0, 2, 1]))

    def test_rejects_negative_ints(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0, -1, 1], dtype=np.int32))

    def test_rejects_fractional_floats(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0.0, 0.5, 1.0]))

    def test_rejects_exotic_dtypes(self):
        with pytest.raises(ValueError):
            pack_bits(np.array(["0", "1"]))
        with pytest.raises(ValueError):
            pack_bits(np.array([0 + 0j, 1 + 0j]))

    def test_accepts_bool_and_exact_floats(self):
        for arr in (
            np.array([True, False, True]),
            np.array([1.0, 0.0, 1.0]),
            np.array([1, 0, 1], dtype=np.int64),
        ):
            packed, dim = pack_bits(arr)
            np.testing.assert_array_equal(
                unpack_bits(packed, dim), arr.astype(np.uint8)
            )

    def test_empty_input_allowed(self):
        packed, dim = pack_bits(np.empty((3, 0), dtype=np.uint8))
        assert dim == 0 and packed.shape == (3, 0)

    def test_rejects_3d(self):
        with pytest.raises(DimensionalityError):
            pack_bits(np.zeros((2, 2, 2), dtype=np.uint8))

    def test_unpack_dim_validation(self):
        packed, _ = pack_bits(random_binary(1, 16, seed=0)[0])
        with pytest.raises(DimensionalityError):
            unpack_bits(packed, 0)
        with pytest.raises(DimensionalityError):
            unpack_bits(packed, 99)


class TestPackedHamming:
    def test_matches_unpacked_single(self):
        a = random_binary(1, 123, seed=0)[0]
        b = random_binary(1, 123, seed=1)[0]
        pa, dim = pack_bits(a)
        pb, _ = pack_bits(b)
        assert packed_hamming_distance(pa, pb) == hamming_distance(a, b)

    def test_matches_unpacked_batch(self):
        a = random_binary(4, 200, seed=2)
        b = random_binary(6, 200, seed=3)
        pa, dim = pack_bits(a)
        pb, _ = pack_bits(b)
        np.testing.assert_allclose(
            packed_hamming_distance(pa, pb), hamming_distance(a, b)
        )

    def test_similarity_matches(self):
        a = random_binary(3, 500, seed=4)
        b = random_binary(3, 500, seed=5)
        pa, dim = pack_bits(a)
        pb, _ = pack_bits(b)
        np.testing.assert_allclose(
            packed_hamming_similarity(pa, pb, dim), hamming_similarity(a, b)
        )

    def test_self_distance_zero(self):
        a = random_binary(1, 64, seed=6)[0]
        pa, _ = pack_bits(a)
        assert packed_hamming_distance(pa, pa) == 0.0

    def test_padding_bits_cancel(self):
        """Non-multiple-of-8 dims must not leak padding into the count."""
        a = np.ones(9, dtype=np.uint8)
        b = np.zeros(9, dtype=np.uint8)
        pa, _ = pack_bits(a)
        pb, _ = pack_bits(b)
        assert packed_hamming_distance(pa, pb) == 9.0

    def test_width_mismatch(self):
        pa, _ = pack_bits(random_binary(1, 64, seed=0)[0])
        pb, _ = pack_bits(random_binary(1, 128, seed=0)[0])
        with pytest.raises(DimensionalityError):
            packed_hamming_distance(pa, pb)

    def test_similarity_dim_validation(self):
        pa, _ = pack_bits(random_binary(1, 64, seed=0)[0])
        with pytest.raises(DimensionalityError):
            packed_hamming_similarity(pa, pa, 0)

    def test_column_tiling_matches_untiled(self):
        """A tiny cache-block budget forces many blocks yet changes nothing."""
        a = random_binary(7, 300, seed=10)
        b = random_binary(31, 300, seed=11)
        pa, _ = pack_bits(a)
        pb, _ = pack_bits(b)
        whole = packed_hamming_distance(pa, pb)
        packing.set_popcount_block_kib(1)
        try:
            np.testing.assert_array_equal(packed_hamming_distance(pa, pb), whole)
        finally:
            packing.set_popcount_block_kib(None)
        np.testing.assert_array_equal(whole, hamming_distance(a, b))

    def test_table_fallback_matches_bitwise_count(self, monkeypatch):
        """The uint8-view table path must agree with np.bitwise_count."""
        a = random_binary(4, 515, seed=12)
        b = random_binary(9, 515, seed=13)
        pa, _ = pack_bits(a)
        pb, _ = pack_bits(b)
        fast = packed_hamming_distance(pa, pb)
        monkeypatch.setattr(packing, "_HAS_BITWISE_COUNT", False)
        np.testing.assert_array_equal(packed_hamming_distance(pa, pb), fast)


class TestPackedSignProducts:
    def test_matches_float_sign_matmul_exactly(self):
        rng = np.random.default_rng(20)
        A = rng.normal(size=(11, 333))
        B = rng.normal(size=(5, 333))
        sa = np.where(A >= 0, 1.0, -1.0)
        sb = np.where(B >= 0, 1.0, -1.0)
        got = packed_sign_products(pack_sign_words(A), pack_sign_words(B), 333)
        np.testing.assert_array_equal(got, sa @ sb.T)

    def test_tie_value_is_plus_one(self):
        """Exact zeros pack as +1, matching np.sign's 0 -> +1 fixup."""
        A = np.zeros((1, 64))
        B = np.ones((1, 64))
        got = packed_sign_products(pack_sign_words(A), pack_sign_words(B), 64)
        assert got[0, 0] == 64.0

    def test_out_bits_scratch(self):
        rng = np.random.default_rng(21)
        A = rng.normal(size=(6, 128))
        scratch = np.empty((8, 128), dtype=bool)
        np.testing.assert_array_equal(
            pack_sign_words(A, out_bits=scratch), pack_sign_words(A)
        )

    def test_validation(self):
        words = pack_sign_words(np.zeros((2, 64)))
        with pytest.raises(DimensionalityError):
            pack_sign_words(np.zeros(64))
        with pytest.raises(DimensionalityError):
            packed_sign_products(words, words, 0)
        with pytest.raises(DimensionalityError):
            packed_sign_products(words, pack_sign_words(np.zeros((2, 128))), 64)
