"""Tests for streaming RegHD and the Page-Hinkley detector."""

import numpy as np
import pytest

from repro import RegHDConfig
from repro.exceptions import ConfigurationError
from repro.streaming import PageHinkley, StreamingRegHD


class TestPageHinkley:
    def test_stable_stream_no_drift(self):
        detector = PageHinkley(threshold=2.0)
        rng = np.random.default_rng(0)
        fired = [detector.update(abs(e)) for e in 0.1 * rng.normal(size=500)]
        assert not any(fired)

    def test_error_jump_detected(self):
        detector = PageHinkley(threshold=2.0)
        rng = np.random.default_rng(0)
        for _ in range(200):
            detector.update(abs(0.1 * rng.normal()))
        fired_at = None
        for i in range(100):
            if detector.update(abs(2.0 + 0.1 * rng.normal())):
                fired_at = i
                break
        assert fired_at is not None
        assert fired_at < 50  # detects within a few dozen samples

    def test_resets_after_detection(self):
        detector = PageHinkley(threshold=0.5, delta=0.0)
        for _ in range(50):
            detector.update(0.0)
        assert detector.update(10.0)  # huge spike fires immediately-ish
        # After the automatic reset the internal state is clean.
        assert detector._count == 0

    def test_negative_error_rejected(self):
        with pytest.raises(ConfigurationError):
            PageHinkley().update(-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [{"delta": -0.1}, {"threshold": 0.0}],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            PageHinkley(**kwargs)


def _stream_batches(concept: int, n_batches: int, batch: int, seed: int):
    """Yield (X, y) batches; the target map flips with ``concept``."""
    rng = np.random.default_rng(seed)
    for _ in range(n_batches):
        X = rng.normal(size=(batch, 4))
        if concept == 0:
            y = np.sin(2 * X[:, 0]) + X[:, 1]
        else:
            y = -np.sin(2 * X[:, 0]) - X[:, 1] + 2.0
        yield X, y


CONFIG = RegHDConfig(dim=512, n_models=4, seed=0)


class TestStreamingRegHD:
    def test_first_batch_has_no_prequential(self):
        stream = StreamingRegHD(4, CONFIG)
        report = stream.update(np.zeros((8, 4)), np.zeros(8))
        assert report.prequential_mse is None

    def test_prequential_error_decreases_on_stationary_stream(self):
        stream = StreamingRegHD(4, CONFIG, forgetting=1.0)
        for X, y in _stream_batches(0, 30, 64, seed=0):
            stream.update(X, y)
        curve = stream.history.mse_curve()
        assert np.nanmean(curve[-5:]) < np.nanmean(curve[1:6])

    def test_drift_detector_fires_on_concept_change(self):
        stream = StreamingRegHD(
            4, CONFIG, detector=PageHinkley(threshold=1.0), forgetting=1.0
        )
        for X, y in _stream_batches(0, 25, 64, seed=0):
            stream.update(X, y)
        for X, y in _stream_batches(1, 25, 64, seed=1):
            stream.update(X, y)
        events = stream.history.drift_events
        assert events, "drift should have been detected"
        assert min(events) > 25  # not during the first concept

    def test_adaptation_recovers_faster_with_drift_handling(self):
        """After an abrupt concept flip the drift-aware learner must get
        back to low error faster than the frozen-memory one."""

        def final_error(adaptive: bool) -> float:
            stream = StreamingRegHD(
                4,
                CONFIG,
                detector=PageHinkley(threshold=1.0) if adaptive else None,
                forgetting=0.99 if adaptive else 1.0,
                drift_shrink=0.0,
            )
            for X, y in _stream_batches(0, 25, 64, seed=0):
                stream.update(X, y)
            for X, y in _stream_batches(1, 15, 64, seed=1):
                stream.update(X, y)
            return float(np.nanmean(stream.history.mse_curve()[-5:]))

        assert final_error(adaptive=True) < final_error(adaptive=False)

    def test_forgetting_bounds_model_norm(self):
        heavy = StreamingRegHD(4, CONFIG, forgetting=0.9)
        frozen = StreamingRegHD(4, CONFIG, forgetting=1.0)
        for X, y in _stream_batches(0, 20, 64, seed=0):
            heavy.update(X, y)
            frozen.update(X, y)
        assert np.linalg.norm(heavy.model.models.integer) < np.linalg.norm(
            frozen.model.models.integer
        )

    def test_history_bookkeeping(self):
        stream = StreamingRegHD(4, CONFIG)
        for X, y in _stream_batches(0, 5, 16, seed=0):
            stream.update(X, y)
        assert stream.history.n_batches == 5
        assert len(stream.history.mse_curve()) == 5

    @pytest.mark.parametrize(
        "kwargs", [{"forgetting": 0.0}, {"forgetting": 1.5}, {"drift_shrink": -0.1}]
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            StreamingRegHD(4, CONFIG, **kwargs)

    def test_predict_delegates(self):
        stream = StreamingRegHD(4, CONFIG)
        X = np.random.default_rng(0).normal(size=(16, 4))
        stream.update(X, X[:, 0])
        assert stream.predict(X).shape == (16,)


class TestPageHinkleyEdgeCases:
    def test_zero_error_stream_never_fires(self):
        detector = PageHinkley(threshold=1.0, delta=0.0)
        assert not any(detector.update(0.0) for _ in range(1000))
        assert detector._mean == 0.0

    def test_zero_then_spike_fires(self):
        detector = PageHinkley(threshold=0.5, delta=0.0)
        for _ in range(100):
            detector.update(0.0)
        fired = [detector.update(1.0) for _ in range(5)]
        assert any(fired)

    def test_detection_reset_redetection_cycle(self):
        """The detector must stay usable across repeated drifts."""
        detector = PageHinkley(threshold=1.0, delta=0.01)
        rng = np.random.default_rng(0)
        detections = 0
        for _cycle in range(3):
            # Calm regime: small errors re-establish the running mean.
            for _ in range(150):
                detector.update(abs(0.05 * rng.normal()))
            # Shifted regime: errors jump; the detector must fire and,
            # having auto-reset, fire again on the next cycle.
            for _ in range(100):
                if detector.update(abs(2.0 + 0.1 * rng.normal())):
                    detections += 1
                    break
        assert detections == 3

    def test_state_roundtrip_is_bit_exact(self):
        detector = PageHinkley(threshold=2.0)
        rng = np.random.default_rng(1)
        for _ in range(50):
            detector.update(abs(rng.normal()))
        clone = PageHinkley(threshold=2.0)
        clone.set_state(detector.get_state())
        tail = [abs(e) for e in rng.normal(size=100)]
        assert [detector.update(e) for e in tail] == [
            clone.update(e) for e in tail
        ]


class TestDriftShrinkAdaptation:
    def test_drift_shrink_reduces_post_drift_error(self):
        """On a synthetic concept shift, the shrink-on-drift path must
        reach lower post-drift prequential error than a learner that
        merely averages the two concepts (no detector, no forgetting)."""

        def post_drift_error(detector: PageHinkley | None) -> float:
            stream = StreamingRegHD(
                4, CONFIG, detector=detector,
                forgetting=1.0, drift_shrink=0.1,
            )
            for X, y in _stream_batches(0, 25, 64, seed=0):
                stream.update(X, y)
            for X, y in _stream_batches(1, 20, 64, seed=1):
                stream.update(X, y)
            return float(np.nanmean(stream.history.mse_curve()[-8:]))

        with_shrink = post_drift_error(PageHinkley(threshold=1.0))
        without = post_drift_error(None)
        assert with_shrink < without


class TestStreamHistoryBounds:
    def test_unbounded_by_default(self):
        stream = StreamingRegHD(4, CONFIG)
        for X, y in _stream_batches(0, 30, 16, seed=0):
            stream.update(X, y)
        assert stream.history.n_batches == 30

    def test_max_history_bounds_retention(self):
        stream = StreamingRegHD(4, CONFIG, max_history=10)
        for X, y in _stream_batches(0, 30, 16, seed=0):
            stream.update(X, y)
        assert stream.history.n_batches == 10
        assert len(stream.history.mse_curve()) == 10
        # The retained window is the newest 10 batches.
        assert [r.batch for r in stream.history.reports] == list(
            range(21, 31)
        )

    def test_drift_events_over_retained_window(self):
        from repro.streaming import StreamBatchReport, StreamHistory

        history = StreamHistory(max_reports=5)
        for batch in range(1, 11):
            history.reports.append(
                StreamBatchReport(
                    batch=batch,
                    prequential_mse=1.0,
                    drift_detected=(batch % 4 == 0),
                )
            )
        # Batches 6..10 retained; drift at 4 has been evicted.
        assert history.drift_events == [8]

    def test_invalid_max_reports(self):
        from repro.streaming import StreamHistory

        with pytest.raises(ConfigurationError):
            StreamHistory(max_reports=0)
        with pytest.raises(ConfigurationError):
            StreamingRegHD(4, CONFIG, max_history=-1)
