"""Tests for the compiled inference engine (repro.engine)."""

import numpy as np
import pytest

from repro import (
    CompiledPlan,
    MultiModelRegHD,
    RegHDConfig,
    SingleModelRegHD,
    compile_model,
)
from repro.core import ClusterQuant, ConvergencePolicy, PredictQuant
from repro.engine import (
    auto_tile_rows,
    compare_inference_records,
    run_inference_benchmark,
)
from repro.engine.kernels import TileScratch
from repro.exceptions import (
    ConfigurationError,
    EncodingError,
    NotFittedError,
)
from repro.reliability import ResilientStreamingRegHD
from repro.streaming import StreamingRegHD

CONV = ConvergencePolicy(max_epochs=3, patience=2)


def _task(seed=0, n=120, d=5):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = np.sin(X[:, 0]) + X[:, 1]
    return X, y


def _fitted(cq=ClusterQuant.FRAMEWORK, pq=PredictQuant.BINARY_BOTH, dim=128):
    X, y = _task()
    cfg = RegHDConfig(
        dim=dim,
        n_models=4,
        seed=0,
        convergence=CONV,
        cluster_quant=cq,
        predict_quant=pq,
    )
    return MultiModelRegHD(5, cfg).fit(X, y)


class TestCompile:
    def test_unfitted_raises(self):
        model = MultiModelRegHD(5, RegHDConfig(dim=64, n_models=2))
        with pytest.raises(NotFittedError):
            compile_model(model)

    def test_rejects_other_model_types(self):
        X, y = _task()
        single = SingleModelRegHD(5, dim=64, convergence=CONV).fit(X, y)
        with pytest.raises(ConfigurationError):
            compile_model(single)

    def test_knob_validation(self):
        model = _fitted()
        with pytest.raises(ConfigurationError):
            model.compile(tile_rows=0)
        with pytest.raises(ConfigurationError):
            model.compile(n_workers=0)

    def test_auto_packing_follows_quantisation(self):
        assert _fitted().compile().packed
        assert not _fitted(
            ClusterQuant.NONE, PredictQuant.FULL
        ).compile().packed

    def test_operands_are_read_only(self):
        plan = _fitted().compile()
        for arr in (plan.cluster_words, plan.model_words, plan.model_scales):
            assert arr is not None
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_plan_is_frozen_against_further_training(self):
        model = _fitted()
        plan = model.compile()
        X, y = _task(seed=3)
        before = plan.predict(X)
        model.partial_fit(X, y)  # mutates the model, not the plan
        np.testing.assert_array_equal(plan.predict(X), before)
        assert not np.allclose(model.predict(X), before)

    def test_repr_and_nbytes(self):
        plan = _fitted().compile()
        assert "packed-sims" in repr(plan) and "packed-dots" in repr(plan)
        assert plan.nbytes > 0
        # Packed cluster operands are 64x smaller than their float form.
        assert plan.cluster_words.nbytes * 8 <= plan.dim * plan.n_models

    def test_auto_tile_rows_bounds(self):
        assert auto_tile_rows(10) == 4096
        assert auto_tile_rows(10_000_000) == 64
        assert 64 <= auto_tile_rows(4000) <= 4096


class TestPredict:
    def test_matches_model_all_backends(self):
        model = _fitted()
        X, _ = _task(seed=1, n=67)
        ref = model.predict(X)
        for packed in (True, False):
            plan = model.compile(packed=packed)
            np.testing.assert_allclose(
                plan.predict(X), ref, rtol=1e-9, atol=1e-10
            )

    def test_tiling_is_invisible(self):
        """Tile sizes that do not divide the batch change nothing.

        BLAS picks shape-dependent kernels, so the encode matmul can
        differ by an ulp between tile heights — hence allclose, not
        array_equal (threading with a fixed tile size IS bit-exact).
        """
        plan = _fitted().compile()
        X, _ = _task(seed=2, n=101)
        whole = plan.predict(X, tile_rows=101)
        for tile_rows in (1, 7, 32, 100, 500):
            np.testing.assert_allclose(
                plan.predict(X, tile_rows=tile_rows), whole, rtol=1e-12
            )

    def test_threading_is_invisible(self):
        plan = _fitted().compile()
        X, _ = _task(seed=4, n=90)
        single = plan.predict(X, tile_rows=16, n_workers=1)
        threaded = plan.predict(X, tile_rows=16, n_workers=4)
        np.testing.assert_array_equal(single, threaded)

    def test_empty_batch(self):
        plan = _fitted().compile()
        out = plan.predict(np.empty((0, 5)))
        assert out.shape == (0,)

    def test_feature_mismatch_raises(self):
        plan = _fitted().compile()
        with pytest.raises(EncodingError):
            plan.predict(np.zeros((3, 4)))

    def test_custom_encoder_fallback(self):
        """Non-NonlinearEncoder models fall back to encode_batch."""
        from repro.encoding.projection import RandomProjectionEncoder

        X, y = _task()
        enc = RandomProjectionEncoder(5, 128, seed=0)
        model = MultiModelRegHD(
            5,
            RegHDConfig(dim=128, n_models=4, seed=0, convergence=CONV),
            encoder=enc,
        ).fit(X, y)
        plan = model.compile(tile_rows=33)
        assert plan.encoder is enc and plan.enc_bases is None
        np.testing.assert_allclose(
            plan.predict(X), model.predict(X), rtol=1e-9, atol=1e-10
        )


class TestTileScratch:
    def test_footprint_is_bounded_by_tile(self):
        scratch = TileScratch(64, 1000)
        # two float64 buffers + one bool buffer
        assert scratch.nbytes == 64 * 1000 * (8 + 8 + 1)


class TestPlanRefresh:
    def test_refresh_tracks_further_training(self):
        model = _fitted()
        plan = model.compile()
        X, y = _task(seed=3)
        model.partial_fit(X, y)
        plan.refresh(model)
        np.testing.assert_allclose(
            plan.predict(X), model.predict(X), rtol=1e-9, atol=1e-10
        )

    def test_refresh_without_change_touches_nothing(self):
        model = _fitted()
        plan = model.compile()
        refreshed, reused = plan.refresh(model)
        assert refreshed == 0 and reused > 0
        stats = plan.refresh_stats
        assert stats["refreshes"] == 1
        assert stats["rows_refreshed"] == 0

    def test_decay_only_update_repacks_no_model_words(self):
        """Pure magnitude decay keeps every sign, so no word re-packs."""
        model = _fitted()
        plan = model.compile()
        before = plan.refresh_stats
        model.models.update_all(-0.5 * model.models.integer)
        model.models.rebinarize()
        plan.refresh(model)
        after = plan.refresh_stats
        # model words: sign patterns unchanged => zero rows re-packed;
        # cluster operands untouched entirely.
        assert after["rows_refreshed"] == before["rows_refreshed"]
        # the decayed scales still reach the plan
        np.testing.assert_allclose(
            plan.model_scales, model.models.scales
        )

    def test_refresh_rejects_foreign_model(self):
        plan = _fitted().compile()
        other = _fitted(dim=128)
        with pytest.raises(ConfigurationError):
            plan.refresh(other)

    def test_compile_backend_name_selects_kernels(self):
        model = _fitted()
        dense = model.compile(backend="dense")
        packed = model.compile(backend="packed")
        assert not dense.packed and packed.packed
        assert dense.backend_name == "dense"
        assert packed.backend_name == "packed"
        X, _ = _task(seed=5, n=41)
        np.testing.assert_allclose(
            dense.predict(X), packed.predict(X), rtol=1e-9, atol=1e-10
        )


class TestServingIntegration:
    def test_streaming_predict_reuses_refreshed_plan(self):
        X, y = _task(n=96)
        stream = StreamingRegHD(
            5, RegHDConfig(dim=128, n_models=4, seed=0)
        )
        stream.update(X[:48], y[:48])
        first = stream.predict(X[48:])
        assert isinstance(stream._plan, CompiledPlan)
        np.testing.assert_allclose(
            first, stream.model.predict(X[48:]), rtol=1e-9, atol=1e-10
        )
        plan_before = stream._plan
        stream.update(X[48:], y[48:])
        assert stream._plan_stale  # marked stale, not discarded
        second = stream.predict(X[:48])
        # the plan object persists; its operands were refreshed in place
        assert stream._plan is plan_before
        assert not stream._plan_stale
        assert stream._plan.refresh_stats["refreshes"] >= 1
        np.testing.assert_allclose(
            second, stream.model.predict(X[:48]), rtol=1e-9, atol=1e-10
        )

    def test_resilient_restore_marks_plan_stale(self, tmp_path):
        X, y = _task(n=128)
        stream = ResilientStreamingRegHD(
            5,
            RegHDConfig(dim=128, n_models=4, seed=0),
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
        )
        stream.update(X[:64], y[:64])
        stream.predict(X[64:])
        assert stream._plan is not None
        stream.update(X[64:], y[64:])
        stream.predict(X[:64])
        assert stream._rollback()  # restores the checkpointed weights
        assert stream._plan is not None and stream._plan_stale
        np.testing.assert_allclose(
            stream.predict(X[:64]),
            stream.model.predict(X[:64]),
            rtol=1e-9,
            atol=1e-10,
        )


class TestBenchHarness:
    def test_quick_benchmark_schema(self):
        record = run_inference_benchmark(
            dims=(64, 96), batch_rows=32, repeats=2, features=4, n_workers=2
        )
        assert record["schema"] == 1
        assert {r["variant"] for r in record["results"]} == {
            "float",
            "packed",
            "packed_v2",
            "packed_mt",
        }
        assert len(record["results"]) == 8
        for stats in record["results"]:
            assert stats["rows_per_s"] > 0
            assert stats["p50_ms"] <= stats["p99_ms"] + 1e-9
        assert set(record["speedups"]) == {"64", "96"}

    def test_quick_flag_shrinks_sweep(self):
        record = run_inference_benchmark(
            dims=(64, 8192), batch_rows=1024, repeats=10, features=4, quick=True
        )
        assert record["params"]["dims"] == [64]
        assert record["params"]["batch_rows"] <= 512
        assert record["params"]["repeats"] <= 3


class TestCompareGate:
    @staticmethod
    def _record(**overrides):
        record = {
            "params": {
                "batch_rows": 32,
                "repeats": 2,
                "features": 4,
                "n_workers": 2,
            },
            "machine": {"cpu_count": 4},
            "runtime": {"backend": "packed"},
            "results": [
                {"dim": 64, "variant": v, "rows_per_s": r}
                for v, r in (
                    ("float", 100.0),
                    ("packed", 200.0),
                    ("packed_v2", 300.0),
                    ("packed_mt", 310.0),
                )
            ],
            "speedups": {
                "64": {
                    "packed_vs_float": 2.0,
                    "packed_v2_vs_float": 3.0,
                    "packed_v2_vs_packed": 1.5,
                    "packed_mt_vs_float": 3.1,
                }
            },
        }
        for key, val in overrides.items():
            record[key] = {**record[key], **val}
        return record

    def test_strict_mode_flags_rows_per_s_drop(self):
        import copy

        current = copy.deepcopy(self._record())
        for row in current["results"]:
            row["rows_per_s"] *= 0.5
        report = compare_inference_records(self._record(), current)
        assert report["strict"] and report["note"] is None
        assert len(report["regressions"]) == 4

    def test_quick_records_get_doubled_slack(self):
        import copy

        baseline = self._record()
        baseline["quick"] = True
        current = copy.deepcopy(baseline)
        for row in current["results"]:
            row["rows_per_s"] *= 0.85  # -15%: noise at smoke scale
        report = compare_inference_records(baseline, current)
        assert report["strict"] and not report["regressions"]
        for row in current["results"]:
            row["rows_per_s"] *= 0.85  # -28% compounded: real regression
        report = compare_inference_records(baseline, current)
        assert len(report["regressions"]) == 4

    def test_params_mismatch_is_incomparable(self):
        current = self._record(params={"batch_rows": 2048})
        report = compare_inference_records(self._record(), current)
        assert report["compared"] == 0 and not report["regressions"]
        assert "workload-dependent" in report["note"]

    def test_cross_machine_falls_back_to_ratios_with_doubled_slack(self):
        current = self._record(machine={"cpu_count": 8})
        current["speedups"]["64"]["packed_v2_vs_packed"] = 1.3  # -13% < 20%
        current["speedups"]["64"]["packed_vs_float"] = 1.0  # -50%
        report = compare_inference_records(self._record(), current)
        assert not report["strict"]
        assert len(report["regressions"]) == 1
        assert "packed_vs_float" in report["regressions"][0]

    def test_backend_mismatch_skips_packed_cells(self):
        current = self._record(runtime={"backend": "dense"})
        current["speedups"]["64"]["packed_vs_float"] = 0.1
        current["speedups"]["64"]["packed_v2_vs_packed"] = 30.0
        for row in current["results"]:
            if row["variant"] == "packed":
                row["rows_per_s"] = 1.0
        strict = compare_inference_records(self._record(), current)
        assert strict["strict"] and not strict["regressions"]
        assert strict["compared"] == 3 and "skipped" in strict["note"]
        cross = self._record(machine={"cpu_count": 8})
        ratio = compare_inference_records(cross, current)
        assert not ratio["strict"] and not ratio["regressions"]
        assert ratio["compared"] == 2  # packed_v2/packed_mt vs float only
