"""Trace-context propagation, exemplars, and Chrome trace export.

Covers the tracing acceptance criteria:

* the disabled path is a shared no-op (no contextvar reads, no
  allocation) and predictions are bit-identical with tracing on or off;
* trace/span ids are deterministic sequence numbers, parent/child
  structure follows span nesting, and a trace opened inside another
  joins it instead of minting a second id;
* latency histograms record the slowest observation's trace id per
  bucket (exemplars) while a trace is open;
* the Chrome trace-event export matches a checked-in golden file under
  a pinned monotonic clock.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro import telemetry
from repro.core.config import RegHDConfig
from repro.core.multi import MultiModelRegHD
from repro.streaming import StreamingRegHD
from repro.telemetry import metrics as metrics_mod
from repro.telemetry import tracing as tracing_mod
from repro.telemetry.tracing import _NULL_TRACE

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "telemetry"

GOLDEN_META = {
    "package_version": "0.0.0-test",
    "runtime_version": "0-test",
    "backend": "dense",
}


@pytest.fixture(autouse=True)
def _isolated_sinks():
    """Every test starts and ends with tracing and metrics disabled."""
    tracing_mod.disable_tracing()
    metrics_mod.disable()
    yield
    tracing_mod.disable_tracing()
    metrics_mod.disable()


def _fake_clock():
    """A deterministic monotonic clock: 1ms per read, starting at 0."""
    state = {"t": 0.0}

    def monotonic() -> float:
        value = state["t"]
        state["t"] += 0.001
        return value

    return monotonic


class TestDisabledPath:
    def test_trace_returns_shared_null(self):
        a = telemetry.trace("batch")
        b = telemetry.trace("other", attr=1)
        assert a is b is _NULL_TRACE

    def test_null_trace_exposes_none_ids(self):
        with telemetry.trace("batch") as t:
            assert t.trace_id is None
            assert t.root_id is None
        assert telemetry.current_trace_id() is None

    def test_enabling_metrics_alone_records_no_trace(self):
        telemetry.enable()
        with telemetry.trace("batch"):
            with telemetry.span("inner"):
                pass
        assert telemetry.active_tracer() is None


class TestTraceStructure:
    def test_deterministic_ids(self):
        tracer = telemetry.enable_tracing()
        with telemetry.trace("a") as ta:
            pass
        with telemetry.trace("b") as tb:
            pass
        assert ta.trace_id == "t00000001"
        assert tb.trace_id == "t00000002"
        fresh = telemetry.enable_tracing(tracing_mod.Tracer())
        with telemetry.trace("c") as tc:
            pass
        assert tc.trace_id == "t00000001"
        assert fresh is telemetry.active_tracer()
        assert tracer is not fresh

    def test_parent_child_structure(self):
        tracer = telemetry.enable_tracing()
        with telemetry.trace("batch") as ctx:
            with telemetry.span("predict"):
                with telemetry.span("encode"):
                    pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["batch"].parent_id is None
        assert by_name["predict"].parent_id == by_name["batch"].span_id
        assert by_name["encode"].parent_id == by_name["predict"].span_id
        assert {r.trace_id for r in tracer.records} == {ctx.trace_id}

    def test_nested_trace_joins_instead_of_forking(self):
        tracer = telemetry.enable_tracing()
        with telemetry.trace("replay/batch") as outer:
            with telemetry.trace("stream/batch") as inner:
                assert inner is outer  # joined: same context object
                with telemetry.span("train"):
                    pass
        assert {r.trace_id for r in tracer.records} == {outer.trace_id}
        assert tracer.n_traces == 1
        by_name = {r.name: r for r in tracer.records}
        # the joined trace became a child span of the outer root
        joined = by_name["stream/batch"]
        assert joined.parent_id == by_name["replay/batch"].span_id
        assert by_name["train"].parent_id == joined.span_id

    def test_span_outside_trace_records_with_empty_trace_id(self):
        tracer = telemetry.enable_tracing()
        with telemetry.span("orphan"):
            pass
        (rec,) = tracer.records
        assert rec.trace_id == ""
        assert rec.parent_id is None

    def test_trace_counters(self):
        telemetry.enable_tracing()
        reg = metrics_mod.active()
        with telemetry.trace("a"):
            with telemetry.span("x"):
                pass
        assert reg.counter("reghd_trace_traces_total").value == 1
        # root span + inner span
        assert reg.counter("reghd_trace_spans_total").value == 2

    def test_record_stage_attaches_to_root(self):
        tracer = telemetry.enable_tracing()
        with telemetry.trace("batch") as ctx:
            tracer.record_stage(ctx, "tile/encode", 0.0, 0.5, rows=64)
        stage = next(r for r in tracer.records if r.name == "tile/encode")
        assert stage.trace_id == ctx.trace_id
        assert stage.parent_id == ctx.root_id
        assert stage.attrs == {"rows": 64}


class TestExemplars:
    def test_slowest_observation_per_bucket_keeps_trace_id(self):
        telemetry.enable_tracing()
        reg = metrics_mod.active()
        hist = reg.histogram("reghd_replay_batch_seconds", workload="w")
        with telemetry.trace("one") as t1:
            hist.observe(0.52)
        with telemetry.trace("two") as t2:
            hist.observe(0.6)  # same bucket, slower: wins
        with telemetry.trace("three"):
            hist.observe(0.55)  # same bucket, not slower: ignored
        exemplars = hist.exemplars()
        assert len(exemplars) == 1
        ((value, trace_id),) = exemplars.values()
        assert value == 0.6
        assert trace_id == t2.trace_id != t1.trace_id

    def test_no_exemplars_outside_traces(self):
        telemetry.enable_tracing()
        reg = metrics_mod.active()
        hist = reg.histogram("reghd_replay_batch_seconds", workload="w")
        hist.observe(0.5)
        assert hist.exemplars() == {}

    def test_exemplars_exported_in_json(self):
        telemetry.enable_tracing()
        reg = metrics_mod.active()
        hist = reg.histogram("reghd_replay_batch_seconds", workload="w")
        with telemetry.trace("one") as ctx:
            hist.observe(0.5)
        payload = telemetry.to_json(reg, meta=GOLDEN_META)
        entry = next(
            m
            for m in payload["metrics"]
            if m["name"] == "reghd_replay_batch_seconds"
        )
        assert entry["exemplars"] == [
            {"bucket": pytest.approx(entry["exemplars"][0]["bucket"]),
             "value": 0.5, "trace_id": ctx.trace_id}
        ]

    def test_disabling_tracing_stops_exemplars(self):
        telemetry.enable_tracing()
        telemetry.disable_tracing()
        reg = telemetry.enable()
        hist = reg.histogram("reghd_replay_batch_seconds", workload="w")
        hist.observe(0.5)
        assert hist.exemplars() == {}


class TestBitIdenticalPredictions:
    def test_streaming_predictions_identical_tracing_on_and_off(
        self, tiny_regression
    ):
        X_train, y_train, X_test, _ = tiny_regression
        cfg = RegHDConfig(dim=128, n_models=4, seed=3)

        def run() -> np.ndarray:
            stream = StreamingRegHD(X_train.shape[1], cfg)
            out = []
            for lo in range(0, len(y_train), 16):
                stream.update(X_train[lo : lo + 16], y_train[lo : lo + 16])
                out.append(stream.predict(X_test))
            return np.concatenate(out)

        baseline = run()
        telemetry.enable_tracing()
        traced = run()
        telemetry.disable_tracing()
        metrics_mod.disable()
        again = run()
        assert np.array_equal(baseline, traced)
        assert np.array_equal(baseline, again)

    def test_compiled_predictions_identical_tracing_on_and_off(
        self, tiny_regression
    ):
        X_train, y_train, X_test, _ = tiny_regression
        cfg = RegHDConfig(dim=128, n_models=2, seed=0)
        model = MultiModelRegHD(X_train.shape[1], cfg)
        model.partial_fit(X_train, y_train)
        plan = model.compile()
        baseline = plan.predict(X_test)
        tracer = telemetry.enable_tracing()
        with telemetry.trace("serve"):
            traced = plan.predict(X_test)
        assert np.array_equal(baseline, traced)
        # tile stage records attached to the trace root
        stages = {r.name for r in tracer.records}
        assert "tile/encode" in stages
        assert "tile/search" in stages


def _golden_trace_tracer(clock) -> tracing_mod.Tracer:
    """The deterministic trace the golden Chrome export is built from."""
    tracer = telemetry.enable_tracing(tracing_mod.Tracer())
    with telemetry.trace("replay/batch", workload="wine", batch=0):
        with telemetry.span("guard"):
            pass
        with telemetry.span("predict"):
            with telemetry.span("encode"):
                pass
            with telemetry.span("search"):
                pass
    with telemetry.trace("replay/batch", workload="wine", batch=1):
        with telemetry.span("train"):
            pass
    return tracer


class TestChromeExport:
    def test_golden_chrome_trace(self, monkeypatch):
        monkeypatch.setattr(
            "repro.telemetry.timing.monotonic", _fake_clock()
        )
        tracer = _golden_trace_tracer(None)
        payload = tracing_mod.to_chrome_trace(tracer, meta=GOLDEN_META)
        golden = json.loads(
            (FIXTURES / "golden_chrome_trace.json").read_text()
        )
        assert payload == golden

    def test_complete_events_with_relative_microseconds(self, monkeypatch):
        monkeypatch.setattr(
            "repro.telemetry.timing.monotonic", _fake_clock()
        )
        tracer = _golden_trace_tracer(None)
        payload = tracing_mod.to_chrome_trace(tracer)
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        assert min(e["ts"] for e in payload["traceEvents"]) == 0.0
        assert all(e["tid"] == 0 for e in payload["traceEvents"])
        assert payload["otherData"]["n_traces"] == 2

    def test_write_chrome_trace_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.telemetry.timing.monotonic", _fake_clock()
        )
        tracer = _golden_trace_tracer(None)
        path = tracing_mod.write_chrome_trace(
            tracer, tmp_path / "trace.json", meta=GOLDEN_META
        )
        assert json.loads(path.read_text()) == tracing_mod.to_chrome_trace(
            tracer, meta=GOLDEN_META
        )
