"""Tests for training-phase fault injection."""

import numpy as np
import pytest

from repro import MultiModelRegHD, RegHDConfig
from repro.baselines import MLPRegressor
from repro.exceptions import ConfigurationError
from repro.noise.training_faults import (
    TrainingFaultCurve,
    train_mlp_with_faults,
    train_reghd_with_faults,
)


@pytest.fixture(scope="module")
def task():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 4))
    y = np.sin(2 * X[:, 0]) + X[:, 1]
    Xte = rng.normal(size=(150, 4))
    yte = np.sin(2 * Xte[:, 0]) + Xte[:, 1]
    return X, y, Xte, yte


def _reghd_factory():
    return MultiModelRegHD(4, RegHDConfig(dim=512, n_models=4, seed=0))


def _mlp_factory():
    return MLPRegressor(
        hidden=(32, 32), optimizer="sgd", lr=0.05, epochs=1,
        early_stopping_patience=0, seed=0,
    )


class TestRegHDTrainingFaults:
    def test_curve_structure(self, task):
        X, y, Xte, yte = task
        curve = train_reghd_with_faults(
            _reghd_factory, X, y, Xte, yte, rates=[0.0, 0.1], epochs=4
        )
        assert isinstance(curve, TrainingFaultCurve)
        assert len(curve.points) == 2
        assert np.all(np.isfinite(curve.mses))

    def test_faults_degrade_quality(self, task):
        X, y, Xte, yte = task
        curve = train_reghd_with_faults(
            _reghd_factory, X, y, Xte, yte, rates=[0.0, 0.4], epochs=4
        )
        assert curve.points[1].mse >= curve.points[0].mse * 0.9

    def test_graceful_at_moderate_rate(self, task):
        """The headline: RegHD still learns while its parameters are
        corrupted every epoch."""
        X, y, Xte, yte = task
        curve = train_reghd_with_faults(
            _reghd_factory, X, y, Xte, yte, rates=[0.0, 0.05], epochs=6
        )
        assert curve.degradation()[1] < 1.0  # < 100 % MSE growth

    def test_rates_validation(self, task):
        X, y, Xte, yte = task
        with pytest.raises(ConfigurationError):
            train_reghd_with_faults(
                _reghd_factory, X, y, Xte, yte, rates=[0.1], epochs=2
            )
        with pytest.raises(ConfigurationError):
            train_reghd_with_faults(
                _reghd_factory, X, y, Xte, yte, rates=[0.0], epochs=0
            )
        with pytest.raises(ConfigurationError):
            train_reghd_with_faults(
                _reghd_factory, X, y, Xte, yte, rates=[0.0], injector="zap"
            )

    def test_deterministic(self, task):
        X, y, Xte, yte = task
        a = train_reghd_with_faults(
            _reghd_factory, X, y, Xte, yte, rates=[0.0, 0.1], epochs=3, seed=5
        )
        b = train_reghd_with_faults(
            _reghd_factory, X, y, Xte, yte, rates=[0.0, 0.1], epochs=3, seed=5
        )
        np.testing.assert_allclose(a.mses, b.mses)


class TestMLPTrainingFaults:
    def test_curve_structure(self, task):
        X, y, Xte, yte = task
        curve = train_mlp_with_faults(
            _mlp_factory, X, y, Xte, yte, rates=[0.0, 0.05], epochs=4
        )
        assert len(curve.points) == 2
        assert np.all(np.isfinite(curve.mses))

    def test_mlp_more_fragile_than_reghd(self, task):
        """The Sec.-1 claim: training-phase faults hurt the DNN far more."""
        X, y, Xte, yte = task
        rates = [0.0, 0.05]
        hd = train_reghd_with_faults(
            _reghd_factory, X, y, Xte, yte, rates=rates, epochs=6
        )
        mlp = train_mlp_with_faults(
            _mlp_factory, X, y, Xte, yte, rates=rates, epochs=6
        )
        assert mlp.degradation()[1] > hd.degradation()[1]
