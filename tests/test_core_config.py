"""Tests for RegHDConfig and ConvergencePolicy."""

import pytest

from repro.core.config import ConvergencePolicy, RegHDConfig
from repro.core.quantization import ClusterQuant, PredictQuant
from repro.exceptions import ConfigurationError


class TestConvergencePolicy:
    def test_defaults_valid(self):
        policy = ConvergencePolicy()
        assert policy.max_epochs >= 1
        assert policy.patience >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_epochs": 0},
            {"patience": 0},
            {"tol": -1e-3},
            {"min_epochs": 0},
            {"min_epochs": 100, "max_epochs": 10},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            ConvergencePolicy(**kwargs)


class TestRegHDConfig:
    def test_defaults(self):
        cfg = RegHDConfig()
        assert cfg.dim == 4000
        assert cfg.n_models == 8
        assert cfg.cluster_quant is ClusterQuant.NONE
        assert cfg.predict_quant is PredictQuant.FULL

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim": 1},
            {"n_models": 0},
            {"lr": 0.0},
            {"lr": -1.0},
            {"softmax_temp": 0.0},
            {"update_weighting": "nope"},
            {"batch_size": 0},
            {"cluster_quant": "framework"},
            {"predict_quant": "full"},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            RegHDConfig(**kwargs)

    def test_frozen(self):
        cfg = RegHDConfig()
        with pytest.raises(Exception):
            cfg.dim = 128  # type: ignore[misc]

    def test_with_overrides(self):
        cfg = RegHDConfig().with_overrides(dim=512, n_models=2)
        assert cfg.dim == 512
        assert cfg.n_models == 2
        # Original untouched.
        assert RegHDConfig().dim == 4000

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigurationError):
            RegHDConfig().with_overrides(n_models=-1)


class TestPredictQuantProperties:
    def test_query_binary_flags(self):
        assert PredictQuant.BINARY_QUERY.query_is_binary
        assert PredictQuant.BINARY_BOTH.query_is_binary
        assert not PredictQuant.FULL.query_is_binary
        assert not PredictQuant.BINARY_MODEL.query_is_binary

    def test_model_binary_flags(self):
        assert PredictQuant.BINARY_MODEL.model_is_binary
        assert PredictQuant.BINARY_BOTH.model_is_binary
        assert not PredictQuant.FULL.model_is_binary
        assert not PredictQuant.BINARY_QUERY.model_is_binary
