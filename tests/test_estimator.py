"""Tests for the shared estimator runtime (`repro.core.estimator`)."""

import numpy as np
import pytest

from repro.core import MultiModelRegHD, RegHDConfig, SingleModelRegHD
from repro.core.config import ConvergencePolicy
from repro.core.estimator import (
    BaseRegHDEstimator,
    TargetScaler,
    encoder_from_state,
    encoder_state,
    take_array,
)
from repro.encoding import NonlinearEncoder
from repro.exceptions import ConfigurationError


class TestTargetScaler:
    def test_fit_estimates_mean_and_scale(self):
        s = TargetScaler().fit(np.array([1.0, 3.0]))
        assert s.mean == 2.0
        assert s.scale == 1.0  # std of [1, 3]
        assert s.fitted

    def test_constant_targets_fall_back_to_unit_scale(self):
        s = TargetScaler().fit(np.full(10, 7.0))
        assert s.mean == 7.0
        assert s.scale == 1.0

    def test_transform_inverse_round_trip(self):
        rng = np.random.default_rng(0)
        y = rng.normal(3.0, 5.0, size=64)
        s = TargetScaler().fit(y)
        np.testing.assert_allclose(s.inverse(s.transform(y)), y)

    def test_freeze_once_ignores_later_batches(self):
        s = TargetScaler()
        first = np.array([0.0, 2.0])
        s.freeze_once(first)
        mean, scale = s.mean, s.scale
        s.freeze_once(np.array([100.0, 200.0]))
        assert (s.mean, s.scale) == (mean, scale)

    def test_fit_refits_unconditionally(self):
        s = TargetScaler().fit(np.array([0.0, 2.0]))
        s.fit(np.array([10.0, 10.0]))
        assert s.mean == 10.0

    def test_reset_restores_identity(self):
        s = TargetScaler().fit(np.array([5.0, 15.0]))
        s.reset()
        assert not s.fitted
        y = np.array([1.0, 2.0])
        np.testing.assert_array_equal(s.transform(y), y)

    def test_state_round_trip(self):
        s = TargetScaler().fit(np.array([1.0, 5.0, 9.0]))
        clone = TargetScaler()
        clone.set_state(s.get_state())
        assert (clone.mean, clone.scale, clone.fitted) == (
            s.mean,
            s.scale,
            s.fitted,
        )

    def test_unfitted_is_identity(self):
        s = TargetScaler()
        y = np.array([-2.0, 4.0])
        np.testing.assert_array_equal(s.transform(y), y)
        np.testing.assert_array_equal(s.inverse(y), y)


class TestEncoderStateHelpers:
    def test_round_trip_preserves_encodings(self):
        enc = NonlinearEncoder(3, 32, np.random.default_rng(0))
        meta, arrays = encoder_state(enc)
        assert meta["type"] == "nonlinear"
        assert all(key.startswith("encoder_") for key in arrays)
        clone = encoder_from_state(meta, arrays)
        X = np.random.default_rng(1).normal(size=(5, 3))
        np.testing.assert_array_equal(
            enc.encode_batch(X), clone.encode_batch(X)
        )

    def test_take_array_missing_name(self):
        with pytest.raises(ConfigurationError, match="missing array"):
            take_array({}, "model_vector")

    def test_take_array_shape_mismatch(self):
        with pytest.raises(ConfigurationError, match="shape"):
            take_array({"v": np.zeros(3)}, "v", shape=(4,))


class TestBaseEstimatorProtocol:
    def test_resolve_encoder_rejects_feature_mismatch(self):
        enc = NonlinearEncoder(3, 16, np.random.default_rng(0))
        with pytest.raises(ConfigurationError, match="in_features=5"):
            BaseRegHDEstimator.resolve_encoder(5, enc, lambda: None)

    def test_partial_fit_freezes_scaler_on_first_batch(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(32, 4))
        y = rng.normal(size=32) * 10
        model = SingleModelRegHD(4, dim=64, seed=0)
        model.partial_fit(X[:16], y[:16])
        mean, scale = model.scaler.mean, model.scaler.scale
        model.partial_fit(X[16:], y[16:] + 1000.0)
        assert (model.scaler.mean, model.scaler.scale) == (mean, scale)

    def test_fit_refits_scaler(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(24, 4))
        model = SingleModelRegHD(4, dim=64, seed=0)
        model.fit(X, np.zeros(24) + 5.0)
        model.fit(X, np.zeros(24) - 5.0)
        assert model.scaler.mean == -5.0

    def test_unsupported_partial_fit_raises(self):
        from repro.core import BaselineHD

        model = BaselineHD(4, dim=64, n_bins=4)
        with pytest.raises(ConfigurationError, match="partial_fit"):
            model.partial_fit(np.zeros((2, 4)), np.zeros(2))

    def test_get_state_marks_fitted(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(20, 3))
        y = X[:, 0]
        model = MultiModelRegHD(
            3,
            RegHDConfig(
                dim=64,
                n_models=2,
                seed=0,
                convergence=ConvergencePolicy(max_epochs=2, patience=1),
            ),
        ).fit(X, y)
        meta, arrays = model.get_state()
        assert meta["fitted"] is True
        clone = MultiModelRegHD.from_state(meta, arrays)
        assert clone.fitted
        np.testing.assert_array_equal(clone.predict(X), model.predict(X))

    def test_set_state_is_in_place(self):
        """Restoring must write through the existing arrays so external
        references (scrubber shadows, compiled plans) stay valid."""
        rng = np.random.default_rng(5)
        X = rng.normal(size=(20, 3))
        y = X[:, 0]
        cfg = RegHDConfig(
            dim=64,
            n_models=2,
            seed=0,
            convergence=ConvergencePolicy(max_epochs=2, patience=1),
        )
        model = MultiModelRegHD(3, cfg).fit(X, y)
        state = model.get_state()
        models_ref = model.models.integer
        model.partial_fit(X, y + 3.0)  # drift away from the snapshot
        model.set_state(*state)
        assert model.models.integer is models_ref
        np.testing.assert_array_equal(
            model.predict(X), MultiModelRegHD.from_state(*state).predict(X)
        )
