"""Tests for the Baseline-HD comparator."""

import numpy as np
import pytest

from repro.core.baseline_hd import BaselineHD
from repro.core.config import ConvergencePolicy
from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import mean_squared_error, r2_score


@pytest.fixture
def conv():
    return ConvergencePolicy(max_epochs=8, patience=3)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_bins": 1},
            {"lr": 0.0},
            {"batch_size": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            BaselineHD(5, **kwargs)

    def test_properties(self):
        model = BaselineHD(5, dim=128, n_bins=16)
        assert model.dim == 128
        assert model.in_features == 5
        assert model.n_bins == 16

    def test_repr(self):
        assert "BaselineHD" in repr(BaselineHD(3, dim=64))


class TestFitPredict:
    def test_predictions_are_bin_centers(self, tiny_regression, conv):
        X, y, Xte, _ = tiny_regression
        model = BaselineHD(5, dim=256, n_bins=8, seed=0, convergence=conv).fit(X, y)
        pred = model.predict(Xte)
        assert set(np.round(pred, 9)) <= set(np.round(model.bin_centers, 9))

    def test_discretisation_floor(self, tiny_regression, conv):
        """With very few bins the quantisation error alone dominates —
        the structural weakness the paper calls out."""
        X, y, Xte, yte = tiny_regression
        coarse = BaselineHD(5, dim=256, n_bins=2, seed=0, convergence=conv).fit(X, y)
        fine = BaselineHD(5, dim=256, n_bins=64, seed=0, convergence=conv).fit(X, y)
        assert mean_squared_error(yte, fine.predict(Xte)) < mean_squared_error(
            yte, coarse.predict(Xte)
        )

    def test_learns_something(self, tiny_regression, conv):
        X, y, Xte, yte = tiny_regression
        model = BaselineHD(5, dim=512, n_bins=32, seed=0, convergence=conv).fit(X, y)
        assert r2_score(yte, model.predict(Xte)) > -0.5

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            BaselineHD(5, dim=64).predict(np.zeros((1, 5)))

    def test_bin_centers_span_target_range(self, conv):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        y = rng.uniform(10.0, 20.0, 50)
        model = BaselineHD(3, dim=64, n_bins=10, seed=0, convergence=conv).fit(X, y)
        assert model.bin_centers.min() >= 10.0
        assert model.bin_centers.max() <= 20.0

    def test_constant_target(self, conv):
        X = np.random.default_rng(0).normal(size=(30, 3))
        y = np.full(30, 5.0)
        model = BaselineHD(3, dim=64, n_bins=4, seed=0, convergence=conv).fit(X, y)
        pred = model.predict(X)
        assert np.all(np.abs(pred - 5.0) <= 1.0)

    def test_deterministic(self, tiny_regression, conv):
        X, y, Xte, _ = tiny_regression
        a = BaselineHD(5, dim=128, n_bins=8, seed=3, convergence=conv).fit(X, y)
        b = BaselineHD(5, dim=128, n_bins=8, seed=3, convergence=conv).fit(X, y)
        np.testing.assert_allclose(a.predict(Xte), b.predict(Xte))

    def test_history_populated(self, tiny_regression, conv):
        X, y, _, _ = tiny_regression
        model = BaselineHD(5, dim=128, n_bins=8, seed=0, convergence=conv).fit(X, y)
        assert model.history_ is not None
        assert model.history_.n_epochs >= 1
