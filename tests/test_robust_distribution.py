"""Tests for soft-cluster distributional outputs."""

import numpy as np
import pytest

from repro import MultiModelRegHD, RegHDConfig
from repro.core import ConvergencePolicy
from repro.exceptions import ConfigurationError
from repro.robust import (
    AdaptiveConformal,
    DistributionalPrediction,
    mixture_moments,
)


class TestMixtureMoments:
    def test_known_mixture(self):
        resp = np.array([[0.5, 0.5], [1.0, 0.0]])
        comp = np.array([[1.0, 3.0], [2.0, 99.0]])
        mean, var = mixture_moments(resp, comp)
        np.testing.assert_allclose(mean, [2.0, 2.0])
        np.testing.assert_allclose(var, [1.0, 0.0])

    def test_variance_never_negative(self, rng):
        resp = rng.dirichlet(np.ones(4), size=50)
        comp = rng.normal(size=(50, 4)) * 1e-9  # cancellation territory
        _, var = mixture_moments(resp, comp)
        assert (var >= 0.0).all()

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            mixture_moments(np.ones((3, 2)), np.ones((3, 3)))
        with pytest.raises(ConfigurationError):
            mixture_moments(np.ones(3), np.ones(3))


@pytest.fixture(scope="module")
def fitted_model():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 4))
    y = X @ np.array([1.0, -0.5, 0.3, 0.8]) + 0.2 * rng.normal(size=400)
    model = MultiModelRegHD(
        4,
        RegHDConfig(
            dim=512, n_models=4, seed=0,
            convergence=ConvergencePolicy(max_epochs=8, patience=3),
        ),
    ).fit(X, y)
    return model, X, y


class TestResponsibilities:
    def test_rows_sum_to_one(self, fitted_model):
        model, X, _ = fitted_model
        resp = model.responsibilities(X[:20])
        assert resp.shape == (20, 4)
        np.testing.assert_allclose(resp.sum(axis=1), 1.0)
        assert (resp >= 0.0).all()

    def test_larger_temperature_sharpens(self, fitted_model):
        """softmax_temp is an inverse temperature: larger values push
        responsibilities toward the argmax cluster."""
        model, X, _ = fitted_model
        soft = model.responsibilities(X[:20], temperature=1.0)
        sharp = model.responsibilities(X[:20], temperature=100.0)
        assert sharp.max(axis=1).mean() > soft.max(axis=1).mean()

    def test_invalid_temperature(self, fitted_model):
        model, X, _ = fitted_model
        with pytest.raises(ConfigurationError):
            model.responsibilities(X[:5], temperature=0.0)
        with pytest.raises(ConfigurationError):
            model.responsibilities(X[:5], temperature=-1.0)


class TestPredictDist:
    def test_mean_matches_point_prediction(self, fitted_model):
        model, X, _ = fitted_model
        dist = model.predict_dist(X[:50])
        np.testing.assert_array_equal(dist.mean, model.predict(X[:50]))

    def test_structure(self, fitted_model):
        model, X, _ = fitted_model
        dist = model.predict_dist(X[:10], alpha=0.1)
        assert isinstance(dist, DistributionalPrediction)
        assert dist.responsibilities.shape == (10, 4)
        assert (dist.variance >= 0.0).all()
        assert (dist.lower <= dist.mean).all()
        assert (dist.mean <= dist.upper).all()
        np.testing.assert_allclose(dist.std, np.sqrt(dist.variance))

    def test_gaussian_band_width_scales_with_alpha(self, fitted_model):
        model, X, _ = fitted_model
        strict = model.predict_dist(X[:20], alpha=0.05)
        loose = model.predict_dist(X[:20], alpha=0.5)
        assert (strict.interval.width >= loose.interval.width).all()

    def test_conformal_band_overrides_gaussian(self, fitted_model):
        model, X, y = fitted_model
        calibrator = AdaptiveConformal(alpha=0.1, window=256)
        preds = model.predict(X)
        calibrator.observe(y, preds)
        dist = model.predict_dist(X[:20], conformal=calibrator)
        q = calibrator.quantile()
        np.testing.assert_allclose(dist.interval.width, 2.0 * q)

    def test_coverage_of_conformal_band(self, fitted_model):
        model, X, y = fitted_model
        calibrator = AdaptiveConformal(alpha=0.1, window=256)
        calibrator.observe(y[:300], model.predict(X[:300]))
        dist = model.predict_dist(X[300:], conformal=calibrator)
        assert dist.covers(y[300:]).mean() >= 0.8

    def test_gaussian_band_static(self):
        mean = np.array([0.0, 10.0])
        var = np.array([1.0, 4.0])
        lower, upper = DistributionalPrediction.gaussian_band(mean, var, 0.05)
        np.testing.assert_allclose(upper - mean, 1.96 * np.sqrt(var), rtol=1e-3)
        np.testing.assert_allclose(mean - lower, upper - mean)
        with pytest.raises(ConfigurationError):
            DistributionalPrediction.gaussian_band(mean, var, 0.0)
