"""Edge cases for seeded train/test and k-fold splitting."""

import numpy as np
import pytest

from repro.datasets import Dataset, k_fold_splits, train_test_split
from repro.exceptions import DatasetError


def _dataset(n: int) -> Dataset:
    X = np.arange(n * 2, dtype=np.float64).reshape(n, 2)
    return Dataset(name="toy", X=X, y=X[:, 0].copy())


class TestTrainTestSplit:
    def test_partition_is_complete_and_disjoint(self):
        ds = _dataset(40)
        split = train_test_split(ds, test_fraction=0.25, seed=0)
        assert split.n_train == 30
        assert split.n_test == 10
        ids = np.concatenate([split.y_train, split.y_test])
        np.testing.assert_array_equal(np.sort(ids), ds.y)

    def test_single_row_test_split(self):
        """Tiny fractions round up to one test row, never zero."""
        split = train_test_split(_dataset(10), test_fraction=0.01, seed=0)
        assert split.n_test == 1
        assert split.n_train == 9

    def test_two_row_dataset_splits_one_and_one(self):
        split = train_test_split(_dataset(2), test_fraction=0.5, seed=0)
        assert split.n_test == 1
        assert split.n_train == 1

    def test_fraction_leaving_no_training_data_raises(self):
        with pytest.raises(DatasetError):
            train_test_split(_dataset(2), test_fraction=0.9, seed=0)

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_fraction_rejected(self, fraction):
        with pytest.raises(DatasetError):
            train_test_split(_dataset(10), test_fraction=fraction)

    def test_same_seed_reproduces_the_split(self):
        ds = _dataset(50)
        a = train_test_split(ds, seed=7)
        b = train_test_split(ds, seed=7)
        np.testing.assert_array_equal(a.y_test, b.y_test)
        np.testing.assert_array_equal(a.X_train, b.X_train)

    def test_different_seeds_shuffle_differently(self):
        ds = _dataset(50)
        a = train_test_split(ds, seed=0)
        b = train_test_split(ds, seed=1)
        assert not np.array_equal(a.y_test, b.y_test)


class TestKFoldSplits:
    def test_every_row_tested_exactly_once(self):
        ds = _dataset(23)  # deliberately not divisible by k
        tested = np.concatenate(
            [fold.y_test for fold in k_fold_splits(ds, k=5, seed=0)]
        )
        np.testing.assert_array_equal(np.sort(tested), ds.y)

    def test_train_and_test_disjoint_per_fold(self):
        for fold in k_fold_splits(_dataset(20), k=4, seed=1):
            assert not set(fold.y_train) & set(fold.y_test)

    def test_k_equal_to_n_gives_leave_one_out(self):
        folds = list(k_fold_splits(_dataset(5), k=5, seed=0))
        assert len(folds) == 5
        assert all(fold.n_test == 1 for fold in folds)

    def test_k_larger_than_n_raises(self):
        with pytest.raises(DatasetError):
            list(k_fold_splits(_dataset(3), k=4))

    def test_k_below_two_raises(self):
        with pytest.raises(DatasetError):
            list(k_fold_splits(_dataset(10), k=1))

    def test_same_seed_reproduces_the_folds(self):
        ds = _dataset(30)
        a = [f.y_test for f in k_fold_splits(ds, k=3, seed=9)]
        b = [f.y_test for f in k_fold_splits(ds, k=3, seed=9)]
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa, fb)
