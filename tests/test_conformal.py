"""Tests for split-conformal prediction intervals."""

import numpy as np
import pytest

from repro import MultiModelRegHD, RegHDConfig
from repro.baselines import RidgeRegression
from repro.core import ConvergencePolicy
from repro.evaluation.conformal import ConformalRegressor, PredictionInterval
from repro.exceptions import ConfigurationError, NotFittedError


def _task(n=600, seed=0, noise=0.3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = X @ np.array([1.0, -0.5, 0.3, 0.8]) + noise * rng.normal(size=n)
    return X, y


class TestConformalRegressor:
    def test_coverage_near_nominal(self):
        """Empirical coverage on fresh data ~ 1 - alpha."""
        X, y = _task(1200, seed=0)
        Xte, yte = _task(800, seed=1)
        conformal = ConformalRegressor(
            RidgeRegression(1e-6), alpha=0.1, seed=0
        ).fit(X, y)
        interval = conformal.predict_interval(Xte)
        coverage = interval.covers(yte).mean()
        assert 0.85 <= coverage <= 0.97

    def test_smaller_alpha_wider_intervals(self):
        X, y = _task()
        strict = ConformalRegressor(RidgeRegression(), alpha=0.05, seed=0).fit(X, y)
        loose = ConformalRegressor(RidgeRegression(), alpha=0.4, seed=0).fit(X, y)
        assert strict.quantile_ > loose.quantile_

    def test_interval_structure(self):
        X, y = _task()
        conformal = ConformalRegressor(RidgeRegression(), alpha=0.1).fit(X, y)
        interval = conformal.predict_interval(X[:10])
        assert isinstance(interval, PredictionInterval)
        assert np.all(interval.lower <= interval.prediction)
        assert np.all(interval.prediction <= interval.upper)
        np.testing.assert_allclose(
            interval.width, 2.0 * conformal.quantile_
        )

    def test_works_with_reghd(self):
        X, y = _task(400)
        model = MultiModelRegHD(
            4,
            RegHDConfig(
                dim=256, n_models=2, seed=0,
                convergence=ConvergencePolicy(max_epochs=5, patience=2),
            ),
        )
        conformal = ConformalRegressor(model, alpha=0.2, seed=0).fit(X, y)
        interval = conformal.predict_interval(X[:20])
        assert np.isfinite(interval.width).all()

    def test_insufficient_calibration_gives_infinite_interval(self):
        """With too few calibration points for the requested alpha the
        guarantee forces an infinite band (no silent under-coverage)."""
        X, y = _task(12)
        conformal = ConformalRegressor(
            RidgeRegression(), alpha=0.01, calibration_fraction=0.25, seed=0
        ).fit(X, y)
        assert conformal.quantile_ == float("inf")

    def test_predict_before_fit(self):
        conformal = ConformalRegressor(RidgeRegression())
        with pytest.raises(NotFittedError):
            conformal.predict(np.zeros((1, 4)))
        with pytest.raises(NotFittedError):
            conformal.predict_interval(np.zeros((1, 4)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"calibration_fraction": 0.0},
            {"calibration_fraction": 1.0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            ConformalRegressor(RidgeRegression(), **kwargs)

    def test_calibration_count_recorded(self):
        X, y = _task(100)
        conformal = ConformalRegressor(
            RidgeRegression(), calibration_fraction=0.3, seed=0
        ).fit(X, y)
        assert conformal.n_calibration_ == 30
