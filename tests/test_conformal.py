"""Tests for split-conformal and streaming-adaptive prediction intervals."""

import numpy as np
import pytest

from repro import MultiModelRegHD, RegHDConfig
from repro.baselines import RidgeRegression
from repro.core import ConvergencePolicy
from repro.evaluation.conformal import ConformalRegressor, PredictionInterval
from repro.exceptions import ConfigurationError, NotFittedError
from repro.reliability.resilient import ResilientStreamingRegHD
from repro.robust.conformal import AdaptiveConformal


def _task(n=600, seed=0, noise=0.3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = X @ np.array([1.0, -0.5, 0.3, 0.8]) + noise * rng.normal(size=n)
    return X, y


class TestConformalRegressor:
    def test_coverage_near_nominal(self):
        """Empirical coverage on fresh data ~ 1 - alpha."""
        X, y = _task(1200, seed=0)
        Xte, yte = _task(800, seed=1)
        conformal = ConformalRegressor(
            RidgeRegression(1e-6), alpha=0.1, seed=0
        ).fit(X, y)
        interval = conformal.predict_interval(Xte)
        coverage = interval.covers(yte).mean()
        assert 0.85 <= coverage <= 0.97

    def test_smaller_alpha_wider_intervals(self):
        X, y = _task()
        strict = ConformalRegressor(RidgeRegression(), alpha=0.05, seed=0).fit(X, y)
        loose = ConformalRegressor(RidgeRegression(), alpha=0.4, seed=0).fit(X, y)
        assert strict.quantile_ > loose.quantile_

    def test_interval_structure(self):
        X, y = _task()
        conformal = ConformalRegressor(RidgeRegression(), alpha=0.1).fit(X, y)
        interval = conformal.predict_interval(X[:10])
        assert isinstance(interval, PredictionInterval)
        assert np.all(interval.lower <= interval.prediction)
        assert np.all(interval.prediction <= interval.upper)
        np.testing.assert_allclose(
            interval.width, 2.0 * conformal.quantile_
        )

    def test_works_with_reghd(self):
        X, y = _task(400)
        model = MultiModelRegHD(
            4,
            RegHDConfig(
                dim=256, n_models=2, seed=0,
                convergence=ConvergencePolicy(max_epochs=5, patience=2),
            ),
        )
        conformal = ConformalRegressor(model, alpha=0.2, seed=0).fit(X, y)
        interval = conformal.predict_interval(X[:20])
        assert np.isfinite(interval.width).all()

    def test_insufficient_calibration_gives_infinite_interval(self):
        """With too few calibration points for the requested alpha the
        guarantee forces an infinite band (no silent under-coverage)."""
        X, y = _task(12)
        conformal = ConformalRegressor(
            RidgeRegression(), alpha=0.01, calibration_fraction=0.25, seed=0
        ).fit(X, y)
        assert conformal.quantile_ == float("inf")

    def test_predict_before_fit(self):
        conformal = ConformalRegressor(RidgeRegression())
        with pytest.raises(NotFittedError):
            conformal.predict(np.zeros((1, 4)))
        with pytest.raises(NotFittedError):
            conformal.predict_interval(np.zeros((1, 4)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"calibration_fraction": 0.0},
            {"calibration_fraction": 1.0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            ConformalRegressor(RidgeRegression(), **kwargs)

    def test_calibration_count_recorded(self):
        X, y = _task(100)
        conformal = ConformalRegressor(
            RidgeRegression(), calibration_fraction=0.3, seed=0
        ).fit(X, y)
        assert conformal.n_calibration_ == 30


class TestAdaptiveConformal:
    def test_empty_calibrator_gives_infinite_band(self):
        cal = AdaptiveConformal(alpha=0.1)
        assert cal.quantile() == float("inf")
        interval = cal.interval(np.zeros(3))
        assert np.isinf(interval.lower).all() and np.isinf(interval.upper).all()
        assert np.isnan(cal.coverage)

    def test_coverage_near_nominal_prequentially(self):
        """Feeding iid residuals, prequential coverage approaches 1-alpha."""
        rng = np.random.default_rng(0)
        cal = AdaptiveConformal(alpha=0.1, window=512)
        for _ in range(60):
            preds = rng.normal(size=50)
            y = preds + 0.5 * rng.normal(size=50)
            cal.observe(y, preds)
        assert 0.85 <= cal.coverage <= 0.95

    def test_quantile_tracks_residual_scale(self):
        rng = np.random.default_rng(1)
        narrow = AdaptiveConformal(alpha=0.1, window=256)
        wide = AdaptiveConformal(alpha=0.1, window=256)
        for _ in range(20):
            preds = rng.normal(size=40)
            narrow.observe(preds + 0.1 * rng.normal(size=40), preds)
            wide.observe(preds + 2.0 * rng.normal(size=40), preds)
        assert narrow.quantile() < wide.quantile()

    def test_interval_structure(self):
        rng = np.random.default_rng(2)
        cal = AdaptiveConformal(alpha=0.2, window=128)
        preds = rng.normal(size=200)
        cal.observe(preds + rng.normal(size=200), preds)
        interval = cal.interval(np.array([0.0, 1.0]))
        assert isinstance(interval, PredictionInterval)
        q = cal.quantile()
        np.testing.assert_allclose(interval.width, 2.0 * q)
        np.testing.assert_allclose(interval.prediction, [0.0, 1.0])

    def test_aci_widens_under_miscoverage(self):
        """With gamma > 0, sustained misses push the effective alpha down
        (wider bands); the Gibbs & Candes update."""
        rng = np.random.default_rng(3)
        adaptive = AdaptiveConformal(alpha=0.1, window=256, gamma=0.02)
        static = AdaptiveConformal(alpha=0.1, window=256, gamma=0.0)
        # Warm both on small residuals, then shift the noise scale up:
        # the adaptive calibrator should react by widening faster.
        for _ in range(10):
            preds = rng.normal(size=40)
            noise = 0.2 * rng.normal(size=40)
            adaptive.observe(preds + noise, preds)
            static.observe(preds + noise, preds)
        for _ in range(10):
            preds = rng.normal(size=40)
            noise = 3.0 * rng.normal(size=40)
            adaptive.observe(preds + noise, preds)
            static.observe(preds + noise, preds)
        assert adaptive.alpha_t < adaptive.alpha
        assert adaptive.quantile() >= static.quantile()

    @pytest.mark.parametrize(
        "kwargs",
        [{"alpha": 0.0}, {"alpha": 1.0}, {"window": 0}, {"gamma": -0.1}],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveConformal(**kwargs)

    def test_state_roundtrip(self):
        rng = np.random.default_rng(4)
        cal = AdaptiveConformal(alpha=0.1, window=64, gamma=0.01)
        for _ in range(5):
            preds = rng.normal(size=30)
            cal.observe(preds + rng.normal(size=30), preds)
        clone = AdaptiveConformal.from_state(cal.get_state())
        assert clone.quantile() == cal.quantile()
        assert clone.coverage == cal.coverage
        assert clone.alpha_t == cal.alpha_t
        # Identical future observations keep them in lockstep.
        preds = rng.normal(size=30)
        y = preds + rng.normal(size=30)
        cal.observe(y, preds)
        clone.observe(y, preds)
        assert clone.quantile() == cal.quantile()


class TestConformalCheckpointing:
    """The calibrator rides checkpoint / recover / rollback with the model."""

    def _stream(self, tmp_path, **kwargs):
        return ResilientStreamingRegHD(
            4,
            RegHDConfig(dim=256, n_models=2, seed=0),
            conformal=AdaptiveConformal(alpha=0.1, window=128),
            checkpoint_dir=tmp_path,
            **kwargs,
        )

    def test_recover_restores_calibrator(self, tmp_path):
        X, y = _task(300, seed=5)
        stream = self._stream(tmp_path)
        for start in range(0, 300, 50):
            stream.update(X[start : start + 50], y[start : start + 50])
        stream.checkpoint()
        q_before = stream.conformal.quantile()
        cov_before = stream.conformal.coverage

        recovered = ResilientStreamingRegHD.recover(tmp_path)
        assert recovered.conformal is not None
        assert recovered.conformal.quantile() == q_before
        assert recovered.conformal.coverage == cov_before
        interval = recovered.predict_interval(X[:5])
        np.testing.assert_allclose(interval.width, 2.0 * q_before)

    def test_rollback_rewinds_calibration_window(self, tmp_path):
        """A watchdog rollback must restore the calibrator alongside the
        model — otherwise the restored model is scored against residuals
        of the diverged one."""
        X, y = _task(400, seed=6)
        stream = self._stream(tmp_path)
        for start in range(0, 200, 50):
            stream.update(X[start : start + 50], y[start : start + 50])
        stream.checkpoint()
        q_checkpointed = stream.conformal.quantile()

        # Diverge: garbage targets blow up the residual window.
        rng = np.random.default_rng(7)
        for start in range(200, 400, 50):
            stream.update(
                X[start : start + 50], 1e3 * rng.normal(size=50)
            )
        assert stream.conformal.quantile() > q_checkpointed

        assert stream._rollback(trigger_error=1.0)
        assert stream.conformal.quantile() == q_checkpointed
