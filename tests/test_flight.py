"""Flight recorder: bounded rings, post-mortem dumps, determinism.

Covers the flight-recorder acceptance criteria:

* rings are bounded and feeds are zero-cost when the recorder is off;
* a forced watchdog rollback during a replay dumps a bundle whose trace
  tree contains the guard→encode→search→rollback spans under the
  breaching batch's trace id;
* an uncaught exception in ``ResilientStreamingRegHD.update`` dumps
  before propagating;
* the same seed + workload produce byte-identical dump files once the
  sanctioned monotonic clock is pinned.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro import telemetry
from repro.core.config import RegHDConfig
from repro.reliability.resilient import ResilientStreamingRegHD
from repro.telemetry import flight as flight_mod
from repro.telemetry import metrics as metrics_mod
from repro.telemetry import timing as timing_mod
from repro.telemetry import tracing as tracing_mod
from repro.telemetry.tracing import SpanRecord
from repro.workloads.replay import ReplayEngine


@pytest.fixture(autouse=True)
def _isolated_sinks():
    flight_mod.disable_flight()
    tracing_mod.disable_tracing()
    metrics_mod.disable()
    yield
    flight_mod.disable_flight()
    tracing_mod.disable_tracing()
    metrics_mod.disable()


def _record(span_id, parent_id, name, trace_id="t00000001", thread=1):
    return SpanRecord(
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        path=name,
        start=0.0,
        end=1.0,
        thread=thread,
    )


class TestRings:
    def test_span_ring_is_bounded(self):
        recorder = flight_mod.FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record_span(_record(i, None, f"s{i}"))
        bundle = recorder.bundle("test")
        assert [s["name"] for s in bundle["spans"]] == ["s7", "s8", "s9"]

    def test_event_ring_is_bounded_and_copies(self):
        recorder = flight_mod.FlightRecorder(event_capacity=2)
        event = {"seq": 1, "kind": "a"}
        recorder.record_event(event)
        event["kind"] = "mutated"
        recorder.record_event({"seq": 2, "kind": "b"})
        recorder.record_event({"seq": 3, "kind": "c"})
        bundle = recorder.bundle("test")
        assert [e["kind"] for e in bundle["events"]] == ["b", "c"]

    def test_samples_get_deterministic_sequence_numbers(self):
        recorder = flight_mod.FlightRecorder()
        recorder.record_sample("burn_rate", 0.5, gate="rmse")
        recorder.record_sample("burn_rate", 1.5, gate="rmse")
        bundle = recorder.bundle("test")
        assert [s["seq"] for s in bundle["samples"]] == [1, 2]
        assert bundle["samples"][1]["value"] == 1.5

    def test_auto_dump_is_noop_when_off(self):
        assert flight_mod.active_recorder() is None
        assert flight_mod.auto_dump("anything") is None


class TestTraceTree:
    def test_children_nest_under_parents(self):
        records = [
            _record(1, None, "batch"),
            _record(2, 1, "predict"),
            _record(3, 2, "encode"),
            _record(4, 1, "train"),
        ]
        (tree,) = flight_mod.trace_tree(records)
        (root,) = tree["roots"]
        assert root["name"] == "batch"
        names = [c["name"] for c in root["children"]]
        assert names == ["predict", "train"]
        assert root["children"][0]["children"][0]["name"] == "encode"

    def test_orphaned_parents_surface_as_roots(self):
        # parent 1 fell off the ring (or is the still-open batch root)
        records = [_record(2, 1, "predict"), _record(3, 2, "encode")]
        (tree,) = flight_mod.trace_tree(records)
        (root,) = tree["roots"]
        assert root["name"] == "predict"
        assert root["children"][0]["name"] == "encode"

    def test_traces_are_separated(self):
        records = [
            _record(1, None, "a", trace_id="t00000001"),
            _record(2, None, "b", trace_id="t00000002"),
        ]
        trees = flight_mod.trace_tree(records)
        assert [t["trace_id"] for t in trees] == ["t00000001", "t00000002"]


class TestBundle:
    def test_bundle_shape_and_thread_normalisation(self):
        recorder = flight_mod.FlightRecorder()
        recorder.record_span(_record(1, None, "a", thread=987654))
        recorder.record_span(_record(2, 1, "b", thread=123456))
        bundle = recorder.bundle("unit_test", gate="rmse")
        assert bundle["kind"] == "reghd-flight-dump"
        assert bundle["reason"] == "unit_test"
        assert bundle["dump_seq"] == 1
        assert bundle["context"] == {"gate": "rmse"}
        assert [s["tid"] for s in bundle["spans"]] == [0, 1]

    def test_bundle_stamps_open_trace_id(self):
        telemetry.enable_tracing()
        recorder = flight_mod.enable_flight()
        with telemetry.trace("batch") as ctx:
            bundle = recorder.bundle("mid_batch")
        assert bundle["context"]["trace_id"] == ctx.trace_id

    def test_dump_writes_numbered_files(self, tmp_path):
        recorder = flight_mod.FlightRecorder(dump_dir=tmp_path)
        recorder.dump("first reason")
        recorder.dump("second")
        names = sorted(p.name for p in tmp_path.glob("*.json"))
        assert names == [
            "flight-0001-first-reason.json",
            "flight-0002-second.json",
        ]

    def test_metrics_snapshot_has_counters_not_histograms(self):
        reg = telemetry.enable()
        reg.counter("reghd_serving_rows_total").inc(5)
        reg.histogram("reghd_replay_batch_seconds", workload="w").observe(0.1)
        recorder = flight_mod.FlightRecorder()
        snapshot = recorder.bundle("t")["metrics"]
        assert snapshot["reghd_serving_rows_total"] == 5
        assert not any("batch_seconds" in k for k in snapshot)
        assert snapshot["events_dropped"] == 0


class TestEnableDisable:
    def test_enable_subscribes_events_and_spans(self):
        recorder = flight_mod.enable_flight()
        reg = metrics_mod.active()
        assert reg is not None  # arming flight arms metrics+tracing
        reg.record_event("stream_drift", batch=1)
        with telemetry.trace("batch"):
            pass
        bundle = recorder.bundle("t")
        assert [e["kind"] for e in bundle["events"]] == ["stream_drift"]
        assert [s["name"] for s in bundle["spans"]] == ["batch"]

    def test_disable_detaches(self):
        recorder = flight_mod.enable_flight()
        flight_mod.disable_flight()
        reg = metrics_mod.active()
        reg.record_event("stream_drift", batch=1)
        assert recorder.bundle("t")["events"] == []

    def test_auto_dump_counts_by_reason(self):
        flight_mod.enable_flight()
        flight_mod.auto_dump("gate_breach")
        flight_mod.auto_dump("gate_breach")
        reg = metrics_mod.active()
        counter = reg.counter("reghd_flight_dumps_total", reason="gate_breach")
        assert counter.value == 2


class TestExceptionDump:
    def test_uncaught_update_exception_dumps_post_mortem(self, tmp_path):
        recorder = flight_mod.enable_flight(dump_dir=tmp_path)
        stream = ResilientStreamingRegHD(
            4, RegHDConfig(dim=64, n_models=2, seed=0)
        )
        rng = np.random.default_rng(0)
        stream.update(rng.normal(size=(8, 4)), rng.normal(size=8))
        with pytest.raises(Exception):
            # wrong feature width blows up inside the traced pipeline
            stream.update(rng.normal(size=(8, 7)), rng.normal(size=8))
        (dump,) = recorder.dumps
        bundle = json.loads(dump.read_text())
        assert bundle["reason"] == "exception"
        assert "error" in bundle["context"]
        assert bundle["context"]["trace_id"]  # the failing batch's trace


def _forced_breach_run(tmp: pathlib.Path, *, workload: str = "airfoil_steady"):
    """One forced-breach replay with armed flight recorder; returns dumps."""
    flight_dir = tmp / "flight"
    engine = ReplayEngine(
        quick=True, seed=0, force_breach=True, flight_dir=str(flight_dir)
    )
    report = engine.run(workload)
    return report, sorted(flight_dir.glob("*.json"))


class TestRollbackDump:
    def test_forced_rollback_dump_contains_pipeline_spans(self, tmp_path):
        report, dumps = _forced_breach_run(tmp_path)
        assert report.rollbacks > 0
        rollback_dumps = [
            d for d in dumps if "watchdog-rollback" in d.name
        ]
        assert rollback_dumps
        bundle = json.loads(rollback_dumps[0].read_text())
        # gate values / checkpoint id context
        assert bundle["context"]["checkpoint_id"].startswith("ckpt-")
        assert np.isfinite(bundle["context"]["trigger_error"])
        trace_id = bundle["context"]["trace_id"]
        assert trace_id
        # the breaching batch's spans: guard -> encode -> search -> rollback
        names = {
            s["name"] for s in bundle["spans"] if s["trace_id"] == trace_id
        }
        assert {"guard", "encode", "search", "rollback"} <= names
        # and the trace tree carries that trace
        assert any(t["trace_id"] == trace_id for t in bundle["trace"])

    def test_gate_breach_dump_written_at_scoring(self, tmp_path):
        report, dumps = _forced_breach_run(tmp_path)
        assert not report.passed
        breach = [d for d in dumps if "gate-breach" in d.name]
        assert len(breach) == 1
        bundle = json.loads(breach[0].read_text())
        assert bundle["context"]["failed_gates"] == ["rmse_ceiling"]
        assert "burn_rates" in bundle["context"]


class TestDeterminism:
    def _run_pinned(self, tmp: pathlib.Path) -> list[bytes]:
        """A forced-breach replay under a pinned clock; returns dump bytes."""
        state = {"t": 0.0}

        def fake_monotonic() -> float:
            value = state["t"]
            state["t"] += 0.001
            return value

        real = timing_mod.monotonic
        timing_mod.monotonic = fake_monotonic
        try:
            _, dumps = _forced_breach_run(tmp)
        finally:
            timing_mod.monotonic = real
        return [d.read_bytes() for d in dumps]

    def test_same_seed_same_workload_byte_identical_dumps(self, tmp_path):
        first = self._run_pinned(tmp_path / "a")
        # full sink reset between runs: fresh tracer/recorder sequences
        flight_mod.disable_flight()
        tracing_mod.disable_tracing()
        metrics_mod.disable()
        second = self._run_pinned(tmp_path / "b")
        assert len(first) == len(second) > 0
        for a, b in zip(first, second):
            assert a == b
