"""Tests for multi-model RegHD (paper Sec. 2.4 + Sec. 3 quantisation)."""

import numpy as np
import pytest

from repro.core.config import ConvergencePolicy, RegHDConfig
from repro.core.multi import MultiModelRegHD
from repro.core.quantization import ClusterQuant, PredictQuant
from repro.encoding.nonlinear import NonlinearEncoder
from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import mean_squared_error, r2_score


@pytest.fixture
def conv():
    return ConvergencePolicy(max_epochs=10, patience=3)


class TestConstruction:
    def test_defaults_from_config(self, fast_config):
        model = MultiModelRegHD(5, fast_config)
        assert model.dim == fast_config.dim
        assert model.n_models == fast_config.n_models
        assert model.clusters.shape == (4, 256)
        assert model.models.shape == (4, 256)
        np.testing.assert_array_equal(model.models.integer, 0.0)

    def test_kwarg_overrides(self, fast_config):
        model = MultiModelRegHD(5, fast_config, n_models=2)
        assert model.n_models == 2

    def test_cluster_init_random_nonzero(self, fast_config):
        model = MultiModelRegHD(5, fast_config)
        assert np.linalg.norm(model.clusters.integer) > 0

    def test_cluster_rows_unit_norm(self, fast_config):
        model = MultiModelRegHD(5, fast_config)
        norms = np.linalg.norm(model.clusters.integer, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-12)

    def test_encoder_mismatch_raises(self, fast_config):
        enc = NonlinearEncoder(4, fast_config.dim, seed=0)
        with pytest.raises(ConfigurationError):
            MultiModelRegHD(5, fast_config, encoder=enc)

    def test_encoder_dim_mismatch_raises(self, fast_config):
        enc = NonlinearEncoder(5, 64, seed=0)
        with pytest.raises(ConfigurationError):
            MultiModelRegHD(5, fast_config, encoder=enc)

    def test_repr(self, fast_config):
        assert "MultiModelRegHD" in repr(MultiModelRegHD(5, fast_config))


class TestFitPredict:
    def test_learns(self, tiny_regression, fast_config):
        X, y, Xte, yte = tiny_regression
        model = MultiModelRegHD(5, fast_config.with_overrides(dim=512)).fit(X, y)
        assert r2_score(yte, model.predict(Xte)) > 0.3

    def test_predict_before_fit_raises(self, fast_config):
        with pytest.raises(NotFittedError):
            MultiModelRegHD(5, fast_config).predict(np.zeros((1, 5)))

    def test_deterministic(self, tiny_regression, fast_config):
        X, y, Xte, _ = tiny_regression
        a = MultiModelRegHD(5, fast_config).fit(X, y).predict(Xte)
        b = MultiModelRegHD(5, fast_config).fit(X, y).predict(Xte)
        np.testing.assert_allclose(a, b)

    def test_seed_changes_model(self, tiny_regression, fast_config):
        X, y, Xte, _ = tiny_regression
        a = MultiModelRegHD(5, fast_config.with_overrides(seed=1)).fit(X, y).predict(Xte)
        b = MultiModelRegHD(5, fast_config.with_overrides(seed=2)).fit(X, y).predict(Xte)
        assert not np.allclose(a, b)

    def test_history(self, tiny_regression, fast_config):
        X, y, _, _ = tiny_regression
        model = MultiModelRegHD(5, fast_config).fit(X, y)
        assert model.history_ is not None
        assert model.history_.n_epochs >= 1

    def test_refit_resets_state(self, tiny_regression, fast_config):
        X, y, Xte, _ = tiny_regression
        model = MultiModelRegHD(5, fast_config)
        first = model.fit(X, y).predict(Xte)
        second = model.fit(X, y).predict(Xte)
        np.testing.assert_allclose(first, second)

    def test_k1_close_to_single_model_quality(self, tiny_regression, conv):
        """RegHD-1 degenerates to (softmax-weighted) single-model."""
        from repro.core.single import SingleModelRegHD

        X, y, Xte, yte = tiny_regression
        multi1 = MultiModelRegHD(
            5, RegHDConfig(dim=512, n_models=1, seed=0, convergence=conv)
        ).fit(X, y)
        single = SingleModelRegHD(5, dim=512, seed=0, convergence=conv).fit(X, y)
        mse_multi = mean_squared_error(yte, multi1.predict(Xte))
        mse_single = mean_squared_error(yte, single.predict(Xte))
        assert mse_multi == pytest.approx(mse_single, rel=0.5)


class TestClusteringBehaviour:
    def test_assignments_shape_and_range(self, clustered_regression, fast_config):
        X, y, Xte, _ = clustered_regression
        model = MultiModelRegHD(5, fast_config).fit(X, y)
        assign = model.cluster_assignments(Xte)
        assert assign.shape == (len(Xte),)
        assert assign.min() >= 0 and assign.max() < model.n_models

    def test_confidences_are_distributions(self, clustered_regression, fast_config):
        X, y, Xte, _ = clustered_regression
        model = MultiModelRegHD(5, fast_config).fit(X, y)
        conf = model.confidences(Xte)
        assert conf.shape == (len(Xte), model.n_models)
        np.testing.assert_allclose(conf.sum(axis=1), 1.0)
        assert np.all(conf >= 0)

    def test_multiple_clusters_used_on_clustered_data(
        self, clustered_regression, fast_config
    ):
        X, y, Xte, _ = clustered_regression
        model = MultiModelRegHD(5, fast_config).fit(X, y)
        used = np.unique(model.cluster_assignments(Xte))
        assert len(used) >= 2

    def test_before_fit_raises(self, fast_config):
        model = MultiModelRegHD(5, fast_config)
        with pytest.raises(NotFittedError):
            model.cluster_assignments(np.zeros((1, 5)))
        with pytest.raises(NotFittedError):
            model.confidences(np.zeros((1, 5)))

    @pytest.mark.parametrize("weighting", ["confidence", "argmax", "uniform"])
    def test_update_weightings_all_train(self, tiny_regression, conv, weighting):
        X, y, Xte, yte = tiny_regression
        model = MultiModelRegHD(
            5,
            RegHDConfig(
                dim=256,
                n_models=4,
                seed=0,
                convergence=conv,
                update_weighting=weighting,
            ),
        ).fit(X, y)
        assert np.isfinite(model.predict(Xte)).all()

    def test_uniform_weighting_keeps_models_identical(self, tiny_regression, conv):
        """Eq. (7) taken literally gives every model the same update, so
        all k models stay identical — the documented degenerate case."""
        X, y, _, _ = tiny_regression
        model = MultiModelRegHD(
            5,
            RegHDConfig(
                dim=128,
                n_models=3,
                seed=0,
                convergence=conv,
                update_weighting="uniform",
            ),
        ).fit(X, y)
        M = model.models.integer
        np.testing.assert_allclose(M[0], M[1])
        np.testing.assert_allclose(M[0], M[2])


class TestQuantizedConfigs:
    @pytest.mark.parametrize("cq", list(ClusterQuant))
    def test_cluster_quant_variants_train(self, tiny_regression, conv, cq):
        X, y, Xte, yte = tiny_regression
        model = MultiModelRegHD(
            5,
            RegHDConfig(dim=512, n_models=4, seed=0, convergence=conv, cluster_quant=cq),
        ).fit(X, y)
        assert r2_score(yte, model.predict(Xte)) > 0.2

    @pytest.mark.parametrize("pq", list(PredictQuant))
    def test_predict_quant_variants_train(self, tiny_regression, conv, pq):
        X, y, Xte, yte = tiny_regression
        model = MultiModelRegHD(
            5,
            RegHDConfig(dim=512, n_models=4, seed=0, convergence=conv, predict_quant=pq),
        ).fit(X, y)
        assert r2_score(yte, model.predict(Xte)) > 0.1

    def test_framework_binary_copies_refresh_each_epoch(
        self, tiny_regression, conv
    ):
        X, y, _, _ = tiny_regression
        model = MultiModelRegHD(
            5,
            RegHDConfig(
                dim=128,
                n_models=2,
                seed=0,
                convergence=conv,
                cluster_quant=ClusterQuant.FRAMEWORK,
            ),
        ).fit(X, y)
        # Binary copy must match a fresh binarisation of the integer copy.
        from repro.core.quantization import binarize_preserving_scale

        np.testing.assert_allclose(
            model.clusters.binary,
            binarize_preserving_scale(model.clusters.integer),
        )

    def test_naive_clusters_stay_sign_valued(self, tiny_regression, conv):
        X, y, _, _ = tiny_regression
        model = MultiModelRegHD(
            5,
            RegHDConfig(
                dim=128,
                n_models=2,
                seed=0,
                convergence=conv,
                cluster_quant=ClusterQuant.NAIVE,
            ),
        ).fit(X, y)
        magnitudes = np.abs(model.clusters.integer) * np.sqrt(128)
        np.testing.assert_allclose(magnitudes, 1.0, atol=1e-9)

    def test_binary_model_predictions_use_binarized_models(
        self, tiny_regression, conv
    ):
        X, y, Xte, _ = tiny_regression
        model = MultiModelRegHD(
            5,
            RegHDConfig(
                dim=128,
                n_models=2,
                seed=0,
                convergence=conv,
                predict_quant=PredictQuant.BINARY_MODEL,
            ),
        ).fit(X, y)
        effective = model._effective_models()
        # Each row must be sign * per-row scale: exactly 2 magnitudes max.
        for row in effective:
            nonzero = row[row != 0]
            assert len(np.unique(np.abs(nonzero))) <= 1


class TestPartialFit:
    def test_streaming(self, tiny_regression, fast_config):
        X, y, Xte, yte = tiny_regression
        model = MultiModelRegHD(5, fast_config)
        model.partial_fit(X[:100], y[:100])
        first = mean_squared_error(yte, model.predict(Xte))
        model.partial_fit(X[100:], y[100:])
        second = mean_squared_error(yte, model.predict(Xte))
        assert np.isfinite(second)
        assert second <= first * 1.5  # no catastrophic forgetting
