"""Public-API surface checks: every exported name exists and is documented."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.encoding",
    "repro.ops",
    "repro.baselines",
    "repro.datasets",
    "repro.engine",
    "repro.runtime",
    "repro.hardware",
    "repro.noise",
    "repro.evaluation",
    "repro.rl",
    "repro.robust",
    "repro.telemetry",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    """Every name in __all__ must be importable from the module."""
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_exports_have_docstrings(module_name):
    """Every exported class/function carries a docstring."""
    module = importlib.import_module(module_name)
    import typing

    for name in module.__all__:
        obj = getattr(module, name)
        if isinstance(obj, typing._GenericAlias | type(typing.Callable)):
            continue  # type aliases carry no docstring
        if callable(obj) or isinstance(obj, type):
            assert obj.__doc__, f"{module_name}.{name} has no docstring"


@pytest.mark.parametrize(
    "module_name",
    PUBLIC_MODULES
    + [
        "repro.streaming",
        "repro.interpret",
        "repro.serialization",
        "repro.cli",
        "repro.metrics",
        "repro.types",
        "repro.exceptions",
    ],
)
def test_module_docstrings(module_name):
    """Every public module explains itself."""
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_no_duplicate_exports():
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        assert len(module.__all__) == len(set(module.__all__)), module_name


def test_exceptions_hierarchy():
    from repro import exceptions

    for name in (
        "ConfigurationError",
        "DimensionalityError",
        "NotFittedError",
        "DatasetError",
        "EncodingError",
        "HardwareModelError",
    ):
        exc = getattr(exceptions, name)
        assert issubclass(exc, exceptions.ReproError)
