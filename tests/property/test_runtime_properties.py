"""Property tests for the execution-runtime kernel layer (repro.runtime).

The backend-dispatch contract of the ISSUE-4 refactor:

* packed XOR + popcount similarities are **bit-exact** replacements for
  the dense ±1 sign matmul (the products are small integers);
* the fully-binary packed dots agree with the dense binarised matmul to
  float rounding (the only kernel allowed to differ);
* the segment-sum that replaced ``np.add.at`` in the cluster update is
  bit-identical to it on a zero target;
* :class:`PackedWordsCache` incremental re-packing is indistinguishable
  from packing from scratch, and its counters account for every row;
* :class:`Query` yields identical derivations whether operands are
  precomputed (serving) or derived lazily (training).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import PackedWordsCache, Query, pack_sign_words
from repro.runtime.kernels import (
    hamming_similarities,
    packed_scaled_dots,
    segment_sum,
    sign_similarities,
)
from repro.runtime.quantization import DualCopy, binarize_preserving_scale


class TestPackedKernelExactness:
    @given(
        seed=st.integers(min_value=0, max_value=100),
        n=st.integers(min_value=1, max_value=30),
        k=st.integers(min_value=1, max_value=9),
        dim=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_hamming_similarities_bit_exact_vs_dense(self, seed, n, k, dim):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(n, dim))
        B = rng.normal(size=(k, dim))
        signs_b = np.where(B >= 0, 1.0, -1.0)
        dense = sign_similarities(
            np.where(A >= 0, 1.0, -1.0), signs_b.T, dim
        )
        packed = hamming_similarities(
            pack_sign_words(A), pack_sign_words(B), dim
        )
        np.testing.assert_array_equal(packed, dense)

    @given(
        seed=st.integers(min_value=0, max_value=100),
        n=st.integers(min_value=1, max_value=30),
        k=st.integers(min_value=1, max_value=9),
        dim=st.integers(min_value=2, max_value=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_packed_scaled_dots_match_dense_binarised(self, seed, n, k, dim):
        """BINARY_BOTH: same value to rounding, not bit-equal by contract."""
        rng = np.random.default_rng(seed)
        Q = rng.normal(size=(n, dim))
        M = rng.normal(size=(k, dim))
        dense = binarize_preserving_scale(Q) @ binarize_preserving_scale(M).T
        packed = packed_scaled_dots(
            pack_sign_words(Q),
            pack_sign_words(M),
            np.mean(np.abs(Q), axis=1),
            np.mean(np.abs(M), axis=1),
            dim,
        )
        # atol covers true-zero products: the packed path yields exact 0
        # while the dense accumulation leaves ~1e-15 rounding residue.
        np.testing.assert_allclose(packed, dense, rtol=1e-12, atol=1e-12)


class TestSegmentSum:
    @given(
        seed=st.integers(min_value=0, max_value=100),
        n=st.integers(min_value=1, max_value=60),
        k=st.integers(min_value=1, max_value=8),
        dim=st.integers(min_value=2, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_np_add_at_bit_exactly(self, seed, n, k, dim):
        rng = np.random.default_rng(seed)
        rows = rng.normal(size=(n, dim))
        indices = rng.integers(0, k, size=n)
        expected = np.zeros((k, dim))
        np.add.at(expected, indices, rows)
        np.testing.assert_array_equal(
            segment_sum(indices, rows, k), expected
        )

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_single_column_fallback(self, seed):
        """D = 1 switches numpy reduce to pairwise; the fallback covers it."""
        rng = np.random.default_rng(seed)
        rows = rng.normal(size=(50, 1))
        indices = rng.integers(0, 3, size=50)
        expected = np.zeros((3, 1))
        np.add.at(expected, indices, rows)
        np.testing.assert_array_equal(
            segment_sum(indices, rows, 3), expected
        )


class TestPackedWordsCache:
    @given(
        seed=st.integers(min_value=0, max_value=50),
        k=st.integers(min_value=1, max_value=8),
        dim=st.integers(min_value=2, max_value=150),
        touched=st.lists(
            st.integers(min_value=0, max_value=7), max_size=5
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_incremental_equals_full_repack(self, seed, k, dim, touched):
        rng = np.random.default_rng(seed)
        dual = DualCopy(rng.normal(size=(k, dim)))
        cache = PackedWordsCache(dual)
        cache.words()  # initial full pack
        for row in touched:
            dual.update(row % k, rng.normal(size=dim))
        dual.rebinarize()
        got = cache.words()
        np.testing.assert_array_equal(got, pack_sign_words(dual.signs))
        # every row is accounted for on every words() call
        assert cache.rows_repacked + cache.rows_reused == 2 * k

    def test_sign_preserving_update_repacks_nothing(self):
        rng = np.random.default_rng(3)
        dual = DualCopy(rng.normal(size=(4, 64)))
        cache = PackedWordsCache(dual)
        cache.words()
        dual.update_all(-0.5 * dual.integer)  # decay: signs survive
        dual.rebinarize()
        cache.words()
        assert cache.rows_repacked == 4  # only the initial pack
        assert cache.rows_reused == 4


class TestQueryConsistency:
    @given(
        seed=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=1, max_value=20),
        dim=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_precomputed_matches_lazy(self, seed, n, dim):
        rng = np.random.default_rng(seed)
        S = rng.normal(size=(n, dim))
        lazy = Query(S)
        served = Query(
            S,
            signs=lazy.signs.copy(),
            words=lazy.words.copy(),
            scales=lazy.scales.copy(),
            binarized=lazy.binarized.copy(),
        )
        np.testing.assert_array_equal(served.signs, lazy.signs)
        np.testing.assert_array_equal(served.words, lazy.words)
        np.testing.assert_array_equal(served.scales, lazy.scales)
        np.testing.assert_array_equal(served.binarized, lazy.binarized)
        # lazy derivations are self-consistent with each other
        np.testing.assert_array_equal(
            lazy.binarized, lazy.signs * lazy.scales[:, np.newaxis]
        )

class TestCacheBlockedPopcount:
    @given(
        seed=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=1, max_value=40),
        k=st.integers(min_value=1, max_value=12),
        dim=st.integers(min_value=1, max_value=300),
        block_kib=st.sampled_from([1, 2, 16, 4096]),
    )
    @settings(max_examples=30, deadline=None)
    def test_block_size_never_changes_results(
        self, seed, n, k, dim, block_kib
    ):
        """Any block budget yields the exact naive popcount counts."""
        from repro.runtime import packing

        rng = np.random.default_rng(seed)
        A = rng.normal(size=(n, dim))
        B = rng.normal(size=(k, dim))
        signs_a = np.where(A >= 0, 1, -1)
        signs_b = np.where(B >= 0, 1, -1)
        naive = (dim - signs_a @ signs_b.T) // 2  # exact Hamming counts
        packing.set_popcount_block_kib(block_kib)
        try:
            got = packing._pairwise_popcount_xor(
                pack_sign_words(A), pack_sign_words(B)
            )
        finally:
            packing.set_popcount_block_kib(None)
        np.testing.assert_array_equal(got, naive)

    @given(
        seed=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=1, max_value=30),
        dim=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=20, deadline=None)
    def test_lut_fallback_matches_bitwise_count(self, seed, n, dim):
        """The numpy<2 byte-table path agrees with np.bitwise_count."""
        from repro.runtime import packing

        rng = np.random.default_rng(seed)
        pa = pack_sign_words(rng.normal(size=(n, dim)))
        pb = pack_sign_words(rng.normal(size=(5, dim)))
        fast = packing._pairwise_popcount_xor(pa, pb)
        had = packing._HAS_BITWISE_COUNT
        packing._HAS_BITWISE_COUNT = False
        try:
            table = packing._pairwise_popcount_xor(pa, pb)
        finally:
            packing._HAS_BITWISE_COUNT = had
        np.testing.assert_array_equal(table, fast)


class TestFusedEncodePack:
    @given(
        seed=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=1, max_value=30),
        features=st.integers(min_value=1, max_value=8),
        dim=st.integers(min_value=1, max_value=300),
        block_cols=st.sampled_from([64, 128, 1024]),
    )
    @settings(max_examples=30, deadline=None)
    def test_words_bit_identical_to_unfused_pipeline(
        self, seed, n, features, dim, block_cols
    ):
        """Fused encode→pack emits the same sign words as encoding then
        packing, and scales matching mean(|S|)/norm to float rounding —
        under every column-block size."""
        from repro.encoding.nonlinear import NonlinearEncoder
        from repro.runtime import (
            EncoderOperands,
            FusedScratch,
            encode_pack_tile,
            set_fused_block_cols,
        )

        rng = np.random.default_rng(seed)
        enc = NonlinearEncoder(features, dim, seed + 1)
        operands = EncoderOperands(
            np.asarray(enc.bases),
            np.asarray(enc.phases),
            float(enc.scale),
            np.sin(enc.phases),
        )
        X = rng.normal(size=(n, features))
        set_fused_block_cols(block_cols)
        try:
            words, scales = encode_pack_tile(
                X, operands, FusedScratch(n, dim)
            )
        finally:
            set_fused_block_cols(None)
        S = enc.encode_batch(X)
        np.testing.assert_array_equal(words, pack_sign_words(S))
        norms = np.maximum(np.linalg.norm(S, axis=1), 1e-12)
        np.testing.assert_allclose(
            scales, np.mean(np.abs(S), axis=1) / norms, rtol=1e-12
        )
