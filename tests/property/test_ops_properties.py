"""Property-based tests for the HD operations substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ops.binding import bind, permute, unbind, xor_bind
from repro.ops.bundling import bundle, majority_bundle, weighted_bundle
from repro.ops.generate import random_binary, random_bipolar
from repro.ops.similarity import (
    cosine_similarity,
    dot_similarity,
    hamming_distance,
    hamming_similarity,
)

finite_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=64),
    elements=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


@st.composite
def vector_pairs(draw):
    dim = draw(st.integers(min_value=2, max_value=64))
    elems = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
    a = draw(hnp.arrays(np.float64, dim, elements=elems))
    b = draw(hnp.arrays(np.float64, dim, elements=elems))
    return a, b


@st.composite
def bipolar_pairs(draw):
    dim = draw(st.integers(min_value=2, max_value=128))
    seed_a = draw(st.integers(min_value=0, max_value=2**31))
    seed_b = draw(st.integers(min_value=0, max_value=2**31))
    a = random_bipolar(1, dim, seed_a)[0]
    b = random_bipolar(1, dim, seed_b)[0]
    return a, b


class TestSimilarityProperties:
    @given(vector_pairs())
    def test_dot_symmetry(self, pair):
        a, b = pair
        assert dot_similarity(a, b) == dot_similarity(b, a)

    @given(vector_pairs())
    def test_cosine_symmetry(self, pair):
        a, b = pair
        assert cosine_similarity(a, b) == cosine_similarity(b, a)

    @given(vector_pairs())
    def test_cosine_bounded(self, pair):
        a, b = pair
        assert -1.0 - 1e-9 <= cosine_similarity(a, b) <= 1.0 + 1e-9

    @given(finite_vectors)
    def test_cosine_self_is_one_or_zero(self, v):
        sim = cosine_similarity(v, v)
        norm = np.linalg.norm(v)
        if norm > 1e-6:
            assert abs(sim - 1.0) < 1e-9
        else:
            # Below the epsilon floor the similarity degrades toward 0 by
            # design (zero-vector safety); it must stay in [0, 1].
            assert 0.0 <= sim <= 1.0 + 1e-9

    @given(
        finite_vectors,
        st.floats(min_value=0.01, max_value=1000.0, allow_nan=False),
    )
    def test_cosine_scale_invariant(self, v, scale):
        # Stay above the zero-vector epsilon floor (1e-12 on the product
        # of norms) so clamping does not distort the comparison.
        if np.linalg.norm(v) < 1e-3:
            return
        w = v[::-1].copy()
        assert (
            abs(cosine_similarity(v, w) - cosine_similarity(v * scale, w))
            < 1e-6
        )

    @given(bipolar_pairs())
    def test_hamming_triangle_like_bounds(self, pair):
        a, b = pair
        from repro.ops.quantize import bipolar_to_binary

        bin_a, bin_b = bipolar_to_binary(a), bipolar_to_binary(b)
        dist = hamming_distance(bin_a, bin_b)
        assert 0.0 <= dist <= len(a)

    @given(bipolar_pairs())
    def test_hamming_similarity_matches_bipolar_dot(self, pair):
        a, b = pair
        from repro.ops.quantize import bipolar_to_binary

        expected = float(a.astype(np.float64) @ b.astype(np.float64)) / len(a)
        got = hamming_similarity(bipolar_to_binary(a), bipolar_to_binary(b))
        assert abs(got - expected) < 1e-9


class TestBindingProperties:
    @given(bipolar_pairs())
    def test_bind_unbind_roundtrip(self, pair):
        a, b = pair
        recovered = unbind(bind(a.astype(float), b.astype(float)), b.astype(float))
        np.testing.assert_allclose(recovered, a.astype(float))

    @given(bipolar_pairs())
    def test_bind_commutative(self, pair):
        a, b = pair
        np.testing.assert_allclose(
            bind(a.astype(float), b.astype(float)),
            bind(b.astype(float), a.astype(float)),
        )

    @given(st.integers(min_value=2, max_value=64), st.integers(0, 2**31))
    def test_xor_self_is_zero(self, dim, seed):
        v = random_binary(1, dim, seed)[0]
        assert xor_bind(v, v).sum() == 0

    @given(
        finite_vectors,
        st.integers(min_value=-100, max_value=100),
    )
    def test_permute_preserves_multiset(self, v, shift):
        out = permute(v, shift)
        np.testing.assert_allclose(np.sort(out), np.sort(v))

    @given(finite_vectors, st.integers(min_value=-20, max_value=20))
    def test_permute_invertible(self, v, shift):
        np.testing.assert_allclose(permute(permute(v, shift), -shift), v)


class TestBundlingProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=2, max_value=32),
            ),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        )
    )
    def test_bundle_linearity(self, batch):
        np.testing.assert_allclose(
            bundle(batch) + bundle(batch), bundle(np.vstack([batch, batch])),
            rtol=1e-9, atol=1e-9,
        )

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=2, max_value=32),
            ),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        )
    )
    def test_weighted_bundle_with_unit_weights_is_bundle(self, batch):
        np.testing.assert_allclose(
            weighted_bundle(batch, np.ones(batch.shape[0])), bundle(batch)
        )

    @given(st.integers(min_value=1, max_value=15), st.integers(0, 2**31))
    @settings(max_examples=25)
    def test_majority_bundle_sign_of_sum(self, count, seed):
        vecs = random_bipolar(count, 32, seed)
        out = majority_bundle(vecs, tie_value=1)
        total = vecs.astype(np.float64).sum(axis=0)
        expected = np.where(total == 0, 1, np.sign(total))
        np.testing.assert_array_equal(out, expected)
