"""Property-based tests for encoders and capacity analysis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.capacity import (
    capacity,
    false_positive_probability,
    true_positive_probability,
)
from repro.encoding.nonlinear import NonlinearEncoder
from repro.encoding.projection import RandomProjectionEncoder


@st.composite
def encoder_inputs(draw):
    n_features = draw(st.integers(min_value=1, max_value=8))
    dim = draw(st.integers(min_value=8, max_value=128))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    x = draw(
        hnp.arrays(
            np.float64,
            n_features,
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        )
    )
    return n_features, dim, seed, x


class TestEncoderProperties:
    @given(encoder_inputs())
    @settings(max_examples=40)
    def test_nonlinear_output_bounded(self, args):
        n, d, seed, x = args
        out = NonlinearEncoder(n, d, seed=seed).encode(x)
        assert out.shape == (d,)
        assert np.all(np.abs(out) <= 1.0 + 1e-12)

    @given(encoder_inputs())
    @settings(max_examples=40)
    def test_encoding_deterministic(self, args):
        n, d, seed, x = args
        a = NonlinearEncoder(n, d, seed=seed).encode(x)
        b = NonlinearEncoder(n, d, seed=seed).encode(x)
        np.testing.assert_array_equal(a, b)

    @given(encoder_inputs())
    @settings(max_examples=40)
    def test_batch_consistent_with_single(self, args):
        n, d, seed, x = args
        enc = NonlinearEncoder(n, d, seed=seed)
        batch = enc.encode_batch(np.stack([x, x]))
        np.testing.assert_allclose(batch[0], enc.encode(x))
        np.testing.assert_allclose(batch[0], batch[1])

    @given(encoder_inputs())
    @settings(max_examples=40)
    def test_projection_encoder_linear(self, args):
        n, d, seed, x = args
        enc = RandomProjectionEncoder(n, d, seed=seed)
        np.testing.assert_allclose(
            enc.encode(2.0 * x), 2.0 * enc.encode(x), rtol=1e-9, atol=1e-9
        )

    @given(encoder_inputs())
    @settings(max_examples=40)
    def test_binary_view_matches_sign_of_dense(self, args):
        n, d, seed, x = args
        enc = NonlinearEncoder(n, d, seed=seed)
        dense = enc.encode(x)
        binary = enc.encode_binary(x)
        np.testing.assert_array_equal(binary, (dense > 0).astype(np.uint8))


class TestCapacityProperties:
    @given(
        st.integers(min_value=100, max_value=100_000),
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=0.05, max_value=0.95),
    )
    def test_false_positive_is_probability(self, dim, patterns, threshold):
        p = false_positive_probability(dim, patterns, threshold)
        assert 0.0 <= p <= 0.5 + 1e-12

    @given(
        st.integers(min_value=100, max_value=50_000),
        st.integers(min_value=2, max_value=5_000),
        st.floats(min_value=0.05, max_value=0.95),
    )
    def test_true_positive_is_probability(self, dim, patterns, threshold):
        p = true_positive_probability(dim, patterns, threshold)
        assert 0.0 <= p <= 1.0

    @given(
        st.integers(min_value=1_000, max_value=100_000),
        st.floats(min_value=0.1, max_value=0.9),
        st.floats(min_value=0.001, max_value=0.4),
    )
    @settings(max_examples=30)
    def test_capacity_error_bound_holds(self, dim, threshold, max_error):
        p = capacity(dim, threshold, max_error)
        if p >= 1:
            assert (
                false_positive_probability(dim, p, threshold)
                <= max_error + 1e-9
            )

    @given(
        st.integers(min_value=1_000, max_value=50_000),
        st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=30)
    def test_capacity_monotone_in_error_budget(self, dim, threshold):
        strict = capacity(dim, threshold, 0.01)
        loose = capacity(dim, threshold, 0.2)
        assert loose >= strict
