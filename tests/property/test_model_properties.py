"""Property-based tests for model-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MultiModelRegHD, RegHDConfig, SingleModelRegHD
from repro.core import ConvergencePolicy

CONV = ConvergencePolicy(max_epochs=3, patience=2)


def _task(seed: int, n: int = 40, d: int = 3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = np.sin(X[:, 0]) + X[:, 1]
    return X, y


class TestAffineEquivariance:
    """Internal target standardisation must make RegHD exactly affine-
    equivariant in y: fitting a*y + b shifts predictions by the same map."""

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=-1000.0, max_value=1000.0),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=10, deadline=None)
    def test_single_model(self, scale, offset, seed):
        X, y = _task(seed)
        base = SingleModelRegHD(3, dim=128, seed=0, convergence=CONV).fit(X, y)
        shifted = SingleModelRegHD(3, dim=128, seed=0, convergence=CONV).fit(
            X, scale * y + offset
        )
        np.testing.assert_allclose(
            shifted.predict(X),
            scale * base.predict(X) + offset,
            rtol=1e-8,
            atol=1e-6 * max(1.0, abs(offset), scale),
        )

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=-1000.0, max_value=1000.0),
    )
    @settings(max_examples=6, deadline=None)
    def test_multi_model(self, scale, offset):
        X, y = _task(1)
        cfg = RegHDConfig(dim=128, n_models=3, seed=0, convergence=CONV)
        base = MultiModelRegHD(3, cfg).fit(X, y)
        shifted = MultiModelRegHD(3, cfg).fit(X, scale * y + offset)
        np.testing.assert_allclose(
            shifted.predict(X),
            scale * base.predict(X) + offset,
            rtol=1e-8,
            atol=1e-6 * max(1.0, abs(offset), scale),
        )


class TestDeterminismProperties:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_predictions(self, seed):
        X, y = _task(0)
        cfg = RegHDConfig(dim=64, n_models=2, seed=seed, convergence=CONV)
        a = MultiModelRegHD(3, cfg).fit(X, y).predict(X)
        b = MultiModelRegHD(3, cfg).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_prediction_finite_for_any_k(self, k):
        X, y = _task(2)
        cfg = RegHDConfig(dim=64, n_models=k, seed=0, convergence=CONV)
        preds = MultiModelRegHD(3, cfg).fit(X, y).predict(X)
        assert np.all(np.isfinite(preds))


class TestConfidenceProperties:
    @given(st.integers(min_value=2, max_value=8), st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_confidences_always_normalised(self, k, seed):
        X, y = _task(seed % 5)
        cfg = RegHDConfig(dim=64, n_models=k, seed=0, convergence=CONV)
        model = MultiModelRegHD(3, cfg).fit(X, y)
        conf = model.confidences(X[:10])
        np.testing.assert_allclose(conf.sum(axis=1), 1.0, rtol=1e-9)
        assert np.all(conf >= 0.0)
        assert np.all(conf <= 1.0)

    @given(st.floats(min_value=0.5, max_value=200.0))
    @settings(max_examples=8, deadline=None)
    def test_temperature_controls_sharpness(self, temp):
        """Higher temperature never *decreases* the max confidence."""
        X, y = _task(3)
        cold = MultiModelRegHD(
            3,
            RegHDConfig(
                dim=64, n_models=4, seed=0, convergence=CONV, softmax_temp=temp
            ),
        ).fit(X, y)
        hot = MultiModelRegHD(
            3,
            RegHDConfig(
                dim=64, n_models=4, seed=0, convergence=CONV,
                softmax_temp=temp * 4.0,
            ),
        ).fit(X, y)
        # Same data, same seed; sharper softmax at prediction time.  The
        # *training* also differs, so compare the mean max-confidence,
        # which should not collapse.
        cold_sharpness = cold.confidences(X[:20]).max(axis=1).mean()
        hot_sharpness = hot.confidences(X[:20]).max(axis=1).mean()
        assert hot_sharpness >= cold_sharpness - 0.15


class TestDatasetGeneratorProperties:
    @given(
        st.integers(min_value=10, max_value=200),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_regime_mixture_contract(self, n, d, regimes, seed):
        from repro.datasets import regime_mixture

        ds = regime_mixture(n, d, n_regimes=regimes, seed=seed)
        assert ds.X.shape == (n, d)
        assert ds.y.shape == (n,)
        assert np.all(np.isfinite(ds.X))
        assert np.all(np.isfinite(ds.y))
        assert abs(float(ds.y.mean())) < 1e-8

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_surrogates_deterministic_per_seed(self, seed):
        from repro.datasets import load_dataset

        a = load_dataset("boston", seed=seed)
        b = load_dataset("boston", seed=seed)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)
