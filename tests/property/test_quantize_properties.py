"""Property-based tests for quantisers and the dual-copy framework."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quantization import DualCopy, binarize_preserving_scale
from repro.ops.quantize import (
    binarize,
    binary_to_bipolar,
    bipolar_to_binary,
    bipolarize,
)

# Element magnitudes are either exactly 0 or >= 1e-6: subnormal values
# can flip sign to +0.0 under scalar multiplication, which would make the
# homogeneity property fail for reasons unrelated to the quantisers.
_elements = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    st.floats(min_value=-1e6, max_value=-1e-6, allow_nan=False),
)

vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=128),
    elements=_elements,
)


class TestQuantizerProperties:
    @given(vectors)
    def test_binarize_output_in_01(self, v):
        out = binarize(v)
        assert set(np.unique(out)) <= {0, 1}

    @given(vectors)
    def test_bipolarize_output_in_pm1(self, v):
        out = bipolarize(v)
        assert set(np.unique(out)) <= {-1, 1}

    @given(vectors)
    def test_binarize_bipolarize_consistent(self, v):
        """Where v is strictly positive/negative, both quantisers agree."""
        bits = binarize(v)
        signs = bipolarize(v)
        nonzero = v != 0
        np.testing.assert_array_equal(
            bits[nonzero], bipolar_to_binary(signs[nonzero])
        )

    @given(vectors)
    def test_conversion_roundtrip(self, v):
        signs = bipolarize(v)
        np.testing.assert_array_equal(
            binary_to_bipolar(bipolar_to_binary(signs)), signs
        )

    @given(vectors)
    def test_binarize_preserving_scale_idempotent(self, v):
        once = binarize_preserving_scale(v)
        twice = binarize_preserving_scale(once)
        np.testing.assert_allclose(once, twice, rtol=1e-12, atol=1e-12)

    @given(vectors)
    def test_binarize_preserving_scale_sign_pattern(self, v):
        out = binarize_preserving_scale(v)
        scale = np.mean(np.abs(v))
        if scale == 0:
            np.testing.assert_array_equal(out, 0.0)
        else:
            # Every component maps to ±scale; exact zeros tie-break to
            # +scale (the bipolarize convention), nonzeros keep their sign.
            np.testing.assert_allclose(np.abs(out), scale)
            nonzero = v != 0
            assert np.all((out[nonzero] > 0) == (v[nonzero] > 0))
            assert np.all(out[~nonzero] > 0)

    @given(vectors, st.floats(min_value=0.1, max_value=100.0))
    def test_binarize_preserving_scale_homogeneous(self, v, factor):
        """Positive scaling of the input scales the output linearly."""
        a = binarize_preserving_scale(v)
        b = binarize_preserving_scale(v * factor)
        np.testing.assert_allclose(b, a * factor, rtol=1e-6, atol=1e-9)


class TestDualCopyProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(
                st.integers(min_value=1, max_value=4),
                st.integers(min_value=2, max_value=32),
            ),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        ),
        hnp.arrays(
            np.float64,
            st.integers(min_value=2, max_value=32),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        ),
    )
    @settings(max_examples=40)
    def test_update_then_rebinarize_consistent(self, matrix, delta):
        if matrix.shape[1] != delta.shape[0]:
            return
        dc = DualCopy(matrix.copy())
        dc.update(0, delta)
        dc.rebinarize()
        np.testing.assert_allclose(
            dc.binary, binarize_preserving_scale(dc.integer)
        )

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.just(2), st.integers(min_value=2, max_value=16)),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        )
    )
    def test_binary_stale_until_rebinarize(self, matrix):
        dc = DualCopy(matrix.copy())
        snapshot = dc.binary.copy()
        dc.update_all(np.ones_like(matrix) * 37.0)
        np.testing.assert_array_equal(dc.binary, snapshot)
