"""Property tests for packing, item memory, streaming, and RL substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ops.generate import random_binary
from repro.ops.packing import (
    pack_bits,
    packed_hamming_distance,
    unpack_bits,
)
from repro.ops.similarity import hamming_distance
from repro.rl.envs import CartPole, GridWorld
from repro.streaming import PageHinkley


class TestPackingProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40)
    def test_roundtrip(self, rows, dim, seed):
        bits = random_binary(rows, dim, seed)
        packed, out_dim = pack_bits(bits)
        assert out_dim == dim
        np.testing.assert_array_equal(unpack_bits(packed, dim), bits)

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40)
    def test_packed_distance_matches_unpacked(self, dim, seed_a, seed_b):
        a = random_binary(1, dim, seed_a)[0]
        b = random_binary(1, dim, seed_b)[0]
        pa, _ = pack_bits(a)
        pb, _ = pack_bits(b)
        assert packed_hamming_distance(pa, pb) == hamming_distance(a, b)

    @given(st.integers(min_value=1, max_value=200), st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_distance_symmetry_and_identity(self, dim, seed):
        a = random_binary(2, dim, seed)
        pa, _ = pack_bits(a)
        assert packed_hamming_distance(pa[0], pa[0]) == 0.0
        assert packed_hamming_distance(pa[0], pa[1]) == packed_hamming_distance(
            pa[1], pa[0]
        )


class TestPageHinkleyProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=30)
    def test_bounded_noise_with_high_threshold_never_fires(self, errors):
        detector = PageHinkley(delta=0.05, threshold=100.0)
        assert not any(detector.update(e) for e in errors)

    @given(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    @settings(max_examples=20)
    def test_constant_stream_never_fires(self, level):
        detector = PageHinkley(delta=0.0, threshold=0.5)
        fired = [detector.update(level) for _ in range(200)]
        assert not any(fired)


class TestEnvironmentProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=30)
    def test_gridworld_observations_always_in_unit_square(self, actions, size):
        env = GridWorld(size, obstacles=())
        obs = env.reset()
        for action in actions:
            obs, reward, done = env.step(action)
            assert 0.0 <= obs[0] <= 1.0 and 0.0 <= obs[1] <= 1.0
            assert reward in (1.0, -1.0, -0.01)
            if done:
                break

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=50),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30)
    def test_cartpole_deterministic_given_seed(self, actions, seed):
        def rollout():
            env = CartPole()
            env.reset(seed=seed)
            trace = []
            for action in actions:
                obs, _, done = env.step(action)
                trace.append(obs.copy())
                if done:
                    break
            return np.array(trace)

        np.testing.assert_array_equal(rollout(), rollout())

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20)
    def test_cartpole_reset_bounded(self, seed):
        env = CartPole()
        obs = env.reset(seed=seed)
        assert np.all(np.abs(obs) <= 0.05)
