"""Property-based tests for the ModelDelta merge algebra.

The merge is an ordered left-fold, so it is only *expected* to be
associative and commutative in exact arithmetic — the properties here
assert equality in counts-weighted expectation (allclose), not bitwise,
plus the exactly-held invariants: moment merges match pooled moments,
sum reduction is exactly order-free in expectation, and singleton
merges copy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import (
    DeltaRecorder,
    TargetMoments,
    merge_deltas,
)

N_ROWS, WIDTH = 3, 4


@st.composite
def deltas(draw, min_count=0):
    """One shard delta over a fixed (3, 4) counted + plain array pair."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=min_count, max_value=50))
    rng = np.random.default_rng(seed)
    rec = DeltaRecorder(
        "multi",
        {"fp": 0},
        {"counted": (N_ROWS, WIDTH), "plain": (N_ROWS, WIDTH)},
        counted=("counted",),
    )
    if n:
        rec.observe_targets(rng.normal(size=n))
        rec.accumulate("plain", rng.normal(size=(N_ROWS, WIDTH)))
        counts = rng.multinomial(n, np.ones(N_ROWS) / N_ROWS)
        update = rng.normal(size=(N_ROWS, WIDTH))
        # Recorder invariant: a row nobody visited accumulates nothing.
        update[counts == 0] = 0.0
        rec.accumulate("counted", update, counts)
    return rec.finish()


def _assert_delta_close(a, b):
    assert a.n_samples == b.n_samples
    assert a.moments.count == b.moments.count
    np.testing.assert_allclose(a.moments.mean, b.moments.mean, atol=1e-9)
    np.testing.assert_allclose(a.moments.m2, b.moments.m2, rtol=1e-9, atol=1e-9)
    for name in a.arrays:
        np.testing.assert_allclose(
            a.arrays[name], b.arrays[name], rtol=1e-9, atol=1e-12
        )
    for name in a.row_counts:
        np.testing.assert_array_equal(a.row_counts[name], b.row_counts[name])


class TestMergeAlgebra:
    @given(deltas(), deltas(), deltas())
    @settings(max_examples=50, deadline=None)
    def test_mean_merge_is_associative_in_expectation(self, a, b, c):
        left = merge_deltas([merge_deltas([a, b]), c])
        right = merge_deltas([a, merge_deltas([b, c])])
        flat = merge_deltas([a, b, c])
        _assert_delta_close(left, flat)
        _assert_delta_close(right, flat)

    @given(deltas(), deltas())
    @settings(max_examples=50, deadline=None)
    def test_mean_merge_is_commutative_in_expectation(self, a, b):
        _assert_delta_close(merge_deltas([a, b]), merge_deltas([b, a]))

    @given(deltas(), deltas(), deltas())
    @settings(max_examples=50, deadline=None)
    def test_sum_merge_is_associative_and_commutative(self, a, b, c):
        flat = merge_deltas([a, b, c], reduction="sum")
        nested = merge_deltas(
            [merge_deltas([c, a], reduction="sum"), b], reduction="sum"
        )
        _assert_delta_close(nested, flat)

    @given(deltas())
    @settings(max_examples=25, deadline=None)
    def test_singleton_merge_copies(self, d):
        for reduction in ("mean", "sum"):
            merged = merge_deltas([d], reduction=reduction)
            assert merged is not d
            for name in d.arrays:
                np.testing.assert_array_equal(
                    merged.arrays[name], d.arrays[name]
                )

    @given(deltas(min_count=1), deltas())
    @settings(max_examples=50, deadline=None)
    def test_zero_sample_shard_is_mean_identity(self, a, empty_src):
        """Merging in a shard that saw nothing changes no array."""
        rec = DeltaRecorder(
            "multi",
            {"fp": 0},
            {"counted": (N_ROWS, WIDTH), "plain": (N_ROWS, WIDTH)},
            counted=("counted",),
        )
        empty = rec.finish()
        merged = merge_deltas([a, empty])
        for name in a.arrays:
            np.testing.assert_allclose(
                merged.arrays[name], a.arrays[name], rtol=1e-12, atol=0
            )
        assert merged.moments == a.moments


class TestMomentProperties:
    @given(
        st.lists(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=0,
                max_size=40,
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_chan_merge_matches_pooled(self, chunks):
        pooled = np.concatenate([np.asarray(c) for c in chunks]) if any(
            chunks
        ) else np.array([])
        merged = TargetMoments()
        for chunk in chunks:
            merged = merged.merge(TargetMoments.from_values(np.asarray(chunk)))
        assert merged.count == len(pooled)
        if len(pooled):
            np.testing.assert_allclose(
                merged.mean, np.mean(pooled), rtol=1e-9, atol=1e-9
            )
            np.testing.assert_allclose(
                merged.variance, np.var(pooled), rtol=1e-6, atol=1e-6
            )

    @given(st.permutations(list(range(4))))
    @settings(max_examples=24, deadline=None)
    def test_moment_merge_order_free(self, order):
        rng = np.random.default_rng(0)
        parts = [
            TargetMoments.from_values(rng.normal(size=n))
            for n in (5, 17, 0, 31)
        ]
        merged = TargetMoments()
        for i in order:
            merged = merged.merge(parts[i])
        reference = TargetMoments()
        for part in parts:
            reference = reference.merge(part)
        assert merged.count == reference.count
        np.testing.assert_allclose(merged.mean, reference.mean, atol=1e-12)
        np.testing.assert_allclose(
            merged.m2, reference.m2, rtol=1e-9, atol=1e-9
        )
