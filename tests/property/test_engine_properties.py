"""Property tests: CompiledPlan.predict is equivalent to the model path.

The ISSUE-2 acceptance contract: across every ``ClusterQuant`` ×
``PredictQuant`` combination, tile sizes that do not divide the batch,
and ``n_workers`` ∈ {1, 4}, the compiled plan reproduces
``MultiModelRegHD.predict`` to float tolerance — and the packed
similarity scores reproduce the float sign-matmul scores *exactly*.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MultiModelRegHD, RegHDConfig
from repro.core import ClusterQuant, ConvergencePolicy, PredictQuant
from repro.ops.packing import pack_sign_words, packed_sign_products
from repro.runtime import Query

CONV = ConvergencePolicy(max_epochs=2, patience=2)

ALL_COMBOS = [
    (cq, pq) for cq in ClusterQuant for pq in PredictQuant
]


def _fitted(cq, pq, seed, dim=64):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, 4))
    y = np.sin(X[:, 0]) + X[:, 1]
    cfg = RegHDConfig(
        dim=dim,
        n_models=3,
        seed=seed,
        convergence=CONV,
        cluster_quant=cq,
        predict_quant=pq,
    )
    return MultiModelRegHD(4, cfg).fit(X, y)


class TestPlanModelEquivalence:
    @pytest.mark.parametrize("cq,pq", ALL_COMBOS)
    @given(
        seed=st.integers(min_value=0, max_value=3),
        n_rows=st.integers(min_value=1, max_value=50),
        tile_rows=st.integers(min_value=1, max_value=70),
        n_workers=st.sampled_from([1, 4]),
    )
    @settings(max_examples=8, deadline=None)
    def test_predictions_match(self, cq, pq, seed, n_rows, tile_rows, n_workers):
        model = _fitted(cq, pq, seed)
        X = np.random.default_rng(seed + 100).normal(size=(n_rows, 4))
        plan = model.compile(tile_rows=tile_rows, n_workers=n_workers)
        np.testing.assert_allclose(
            plan.predict(X),
            model.predict(X),
            rtol=1e-9,
            atol=1e-10,
        )

    @pytest.mark.parametrize("cq,pq", ALL_COMBOS)
    def test_unpacked_backend_matches_too(self, cq, pq):
        model = _fitted(cq, pq, seed=1)
        X = np.random.default_rng(7).normal(size=(23, 4))
        plan = model.compile(packed=False, tile_rows=10)
        np.testing.assert_allclose(
            plan.predict(X), model.predict(X), rtol=1e-9, atol=1e-10
        )


class TestPackedSimilarityExactness:
    """The packed Hamming search must be bit-exact with the float path."""

    @given(
        seed=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=1, max_value=40),
        k=st.integers(min_value=1, max_value=9),
        dim=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_sign_products_exact(self, seed, n, k, dim):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(n, dim))
        B = rng.normal(size=(k, dim))
        signs_a = np.where(A >= 0, 1.0, -1.0)
        signs_b = np.where(B >= 0, 1.0, -1.0)
        expected = signs_a @ signs_b.T
        got = packed_sign_products(
            pack_sign_words(A), pack_sign_words(B), dim
        )
        np.testing.assert_array_equal(got, expected)
        # and so are the normalised similarity scores the engine uses
        np.testing.assert_array_equal(
            got / float(dim), expected / float(dim)
        )

    @given(seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_plan_similarity_scores_exact(self, seed):
        """Quantised cluster similarities are identical packed vs float."""
        model = _fitted(
            ClusterQuant.FRAMEWORK, PredictQuant.BINARY_BOTH, seed
        )
        S = np.random.default_rng(seed + 500).normal(size=(17, model.dim))
        float_sims = model._cluster_similarities(Query(S))
        words = pack_sign_words(S)
        cluster_words = pack_sign_words(model.clusters.view(binary=True))
        packed_sims = packed_sign_products(
            words, cluster_words, model.dim
        ) / float(model.dim)
        np.testing.assert_array_equal(packed_sims, float_sims)
