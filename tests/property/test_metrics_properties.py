"""Property-based tests for the metrics module."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    mean_absolute_error,
    mean_squared_error,
    quality_loss,
    r2_score,
    root_mean_squared_error,
)


#: Element values with magnitudes either exactly 0 or >= 1e-6, so squared
#: differences never underflow past the float64 floor.
_elements = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    st.floats(min_value=-1e6, max_value=-1e-6, allow_nan=False),
)


@st.composite
def target_pairs(draw):
    n = draw(st.integers(min_value=1, max_value=64))
    y = draw(hnp.arrays(np.float64, n, elements=_elements))
    p = draw(hnp.arrays(np.float64, n, elements=_elements))
    return y, p


class TestMetricProperties:
    @given(target_pairs())
    def test_mse_nonnegative(self, pair):
        y, p = pair
        assert mean_squared_error(y, p) >= 0.0

    @given(target_pairs())
    def test_mse_zero_iff_equal(self, pair):
        y, p = pair
        mse = mean_squared_error(y, p)
        if np.array_equal(y, p):
            assert mse == 0.0
        elif mse == 0.0:
            # Squared differences can underflow to zero for subnormal
            # gaps; the elements must still be equal to within sqrt of
            # the smallest normal float.
            assert np.max(np.abs(y - p)) < 2e-154

    @given(target_pairs())
    def test_mse_symmetric(self, pair):
        y, p = pair
        assert mean_squared_error(y, p) == mean_squared_error(p, y)

    @given(target_pairs())
    def test_rmse_consistent(self, pair):
        y, p = pair
        assert root_mean_squared_error(y, p) == np.sqrt(mean_squared_error(y, p))

    @given(target_pairs())
    def test_mae_le_rmse(self, pair):
        y, p = pair
        assert mean_absolute_error(y, p) <= root_mean_squared_error(y, p) * (1 + 1e-9)

    @given(target_pairs(), st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
    def test_mse_shift_invariant(self, pair, shift):
        y, p = pair
        a = mean_squared_error(y, p)
        b = mean_squared_error(y + shift, p + shift)
        assert abs(a - b) <= 1e-6 * max(1.0, a)

    @given(target_pairs())
    def test_r2_at_most_one(self, pair):
        y, p = pair
        assert r2_score(y, p) <= 1.0 + 1e-12

    @given(
        hnp.arrays(
            np.float64,
            st.integers(min_value=2, max_value=64),
            elements=st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
        )
    )
    def test_r2_perfect_for_identity(self, y):
        assert r2_score(y, y) == 1.0

    @given(
        st.floats(min_value=1e-6, max_value=1e6),
        st.floats(min_value=1e-6, max_value=1e6),
    )
    def test_quality_loss_in_range(self, mse, ref):
        loss = quality_loss(mse, ref)
        assert 0.0 <= loss < 100.0
