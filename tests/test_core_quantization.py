"""Tests for the dual-copy quantisation framework."""

import numpy as np
import pytest

from repro.core.quantization import (
    ClusterQuant,
    DualCopy,
    PredictQuant,
    binarize_preserving_scale,
)


class TestBinarizePreservingScale:
    def test_sign_pattern_preserved(self):
        v = np.array([2.0, -3.0, 0.5, -0.1])
        out = binarize_preserving_scale(v)
        np.testing.assert_array_equal(np.sign(out), np.sign(v))

    def test_scale_is_mean_abs(self):
        v = np.array([2.0, -4.0])
        out = binarize_preserving_scale(v)
        np.testing.assert_allclose(np.abs(out), 3.0)

    def test_zero_vector_stays_zero(self):
        np.testing.assert_array_equal(
            binarize_preserving_scale(np.zeros(4)), np.zeros(4)
        )

    def test_batch_rows_independent(self):
        m = np.array([[1.0, -1.0], [10.0, -10.0]])
        out = binarize_preserving_scale(m)
        np.testing.assert_allclose(np.abs(out[0]), 1.0)
        np.testing.assert_allclose(np.abs(out[1]), 10.0)

    def test_single_vector_shape(self):
        out = binarize_preserving_scale(np.array([1.0, -2.0, 3.0]))
        assert out.shape == (3,)

    def test_idempotent(self):
        v = np.random.default_rng(0).normal(size=32)
        once = binarize_preserving_scale(v)
        twice = binarize_preserving_scale(once)
        np.testing.assert_allclose(once, twice)

    def test_direction_preserved_cosine(self):
        """Binarisation keeps high cosine similarity to the original —
        the property the Hamming search depends on."""
        rng = np.random.default_rng(1)
        v = rng.normal(size=2048)
        out = binarize_preserving_scale(v)
        cos = float(v @ out / (np.linalg.norm(v) * np.linalg.norm(out)))
        assert cos > 0.7  # sign quantisation of gaussian keeps sqrt(2/pi)


class TestDualCopy:
    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            DualCopy(np.zeros(8))

    def test_binary_derived_on_init(self):
        dc = DualCopy(np.array([[1.0, -2.0], [0.0, 0.0]]))
        np.testing.assert_allclose(np.abs(dc.binary[0]), 1.5)
        np.testing.assert_allclose(dc.binary[1], 0.0)

    def test_update_touches_only_integer(self):
        dc = DualCopy(np.array([[1.0, 1.0]]))
        before = dc.binary.copy()
        dc.update(0, np.array([5.0, -5.0]))
        np.testing.assert_array_equal(dc.binary, before)
        np.testing.assert_allclose(dc.integer[0], [6.0, -4.0])

    def test_rebinarize_refreshes(self):
        dc = DualCopy(np.array([[1.0, 1.0]]))
        dc.update(0, np.array([5.0, -5.0]))
        dc.rebinarize()
        np.testing.assert_allclose(np.sign(dc.binary[0]), [1.0, -1.0])

    def test_update_all(self):
        dc = DualCopy(np.zeros((2, 3)))
        dc.update_all(np.ones((2, 3)))
        np.testing.assert_allclose(dc.integer, 1.0)

    def test_view_selects_copy(self):
        dc = DualCopy(np.array([[2.0, -2.0]]))
        assert dc.view(binary=False) is dc.integer
        assert dc.view(binary=True) is dc.binary

    def test_shape(self):
        assert DualCopy(np.zeros((3, 5))).shape == (3, 5)


class TestDualCopyReplace:
    """``replace`` is the only safe wholesale overwrite: rebinding or
    assigning ``.integer`` directly leaves ``binary`` and the cached
    ``signs`` serving pre-overwrite values."""

    def test_replace_overwrites_in_place(self):
        dc = DualCopy(np.array([[1.0, -1.0]]))
        integer_ref = dc.integer
        dc.replace(np.array([[3.0, 4.0]]))
        assert dc.integer is integer_ref
        np.testing.assert_allclose(integer_ref, [[3.0, 4.0]])

    def test_replace_refreshes_binary(self):
        dc = DualCopy(np.array([[1.0, -1.0]]))
        dc.replace(np.array([[-2.0, 2.0]]))
        np.testing.assert_allclose(np.sign(dc.binary[0]), [-1.0, 1.0])

    def test_replace_invalidates_sign_cache(self):
        """Regression: reading ``signs``, then replacing the contents, must
        not serve the stale cached sign matrix."""
        dc = DualCopy(np.array([[1.0, 1.0]]))
        stale = dc.signs.copy()
        np.testing.assert_allclose(stale, [[1.0, 1.0]])
        dc.replace(np.array([[-5.0, -5.0]]))
        np.testing.assert_allclose(dc.signs, [[-1.0, -1.0]])

    def test_replace_rejects_shape_mismatch(self):
        dc = DualCopy(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="replace expects shape"):
            dc.replace(np.zeros((3, 2)))

    def test_naive_cluster_update_invalidates_signs(self):
        """End-to-end regression for the NAIVE quantisation branch: after
        an epoch of cluster updates, the Hamming search must see the new
        sign patterns, not the ones cached before the update."""
        from repro.core.config import ConvergencePolicy, RegHDConfig
        from repro.core.multi import MultiModelRegHD

        rng = np.random.default_rng(7)
        X = rng.normal(size=(40, 3))
        y = X[:, 0] - X[:, 1]
        cfg = RegHDConfig(
            dim=64,
            n_models=2,
            seed=11,
            cluster_quant=ClusterQuant.NAIVE,
            convergence=ConvergencePolicy(max_epochs=2, patience=1),
        )
        model = MultiModelRegHD(3, cfg).fit(X, y)
        expected = np.sign(model.clusters.integer)
        expected[expected == 0] = 1.0
        np.testing.assert_array_equal(model.clusters.signs, expected)


class TestEnumCoverage:
    def test_cluster_quant_members(self):
        assert {c.value for c in ClusterQuant} == {"none", "framework", "naive"}

    def test_predict_quant_members(self):
        assert {p.value for p in PredictQuant} == {
            "full",
            "binary_query",
            "binary_model",
            "binary_both",
        }
