"""Tests for scalers and splits."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    MinMaxScaler,
    StandardScaler,
    TargetScaler,
    k_fold_splits,
    train_test_split,
)
from repro.exceptions import DatasetError, NotFittedError


class TestStandardScaler:
    def test_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        out = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_passes_through_centered(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        out = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X
        )

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_train_statistics_applied_to_test(self):
        train = np.zeros((10, 1)) + 5.0
        train[0] = 15.0
        scaler = StandardScaler().fit(train)
        out = scaler.transform(np.array([[5.0]]))
        assert out[0, 0] != 0.0 or train.mean() == 5.0

    def test_fitted_flag(self):
        scaler = StandardScaler()
        assert not scaler.fitted
        scaler.fit(np.zeros((3, 1)))
        assert scaler.fitted


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self):
        X = np.array([[0.0], [5.0], [10.0]])
        out = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(out[:, 0], [0.0, 0.5, 1.0])

    def test_custom_range(self):
        X = np.array([[0.0], [10.0]])
        out = MinMaxScaler((-1.0, 1.0)).fit_transform(X)
        np.testing.assert_allclose(out[:, 0], [-1.0, 1.0])

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler((1.0, 0.0))

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_constant_feature(self):
        X = np.ones((5, 1)) * 4.0
        out = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(out))


class TestTargetScaler:
    def test_roundtrip(self):
        y = np.array([10.0, 20.0, 30.0])
        scaler = TargetScaler().fit(y)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(y)), y
        )

    def test_standardisation(self):
        y = np.random.default_rng(0).normal(100.0, 25.0, 500)
        out = TargetScaler().fit_transform(y)
        assert abs(out.mean()) < 1e-10
        assert out.std() == pytest.approx(1.0)

    def test_constant_target(self):
        y = np.full(5, 3.0)
        out = TargetScaler().fit_transform(y)
        np.testing.assert_allclose(out, 0.0)

    def test_before_fit(self):
        with pytest.raises(NotFittedError):
            TargetScaler().transform(np.zeros(3))
        with pytest.raises(NotFittedError):
            TargetScaler().inverse_transform(np.zeros(3))


def _dataset(n=40):
    rng = np.random.default_rng(0)
    return Dataset("t", rng.normal(size=(n, 3)), rng.normal(size=n))


class TestTrainTestSplit:
    def test_sizes(self):
        split = train_test_split(_dataset(40), test_fraction=0.25, seed=0)
        assert split.n_test == 10
        assert split.n_train == 30

    def test_disjoint_and_complete(self):
        ds = _dataset(20)
        split = train_test_split(ds, test_fraction=0.3, seed=1)
        all_rows = np.vstack([split.X_train, split.X_test])
        assert all_rows.shape[0] == ds.n_samples
        # Every original row appears exactly once.
        original = {tuple(r) for r in ds.X}
        recovered = {tuple(r) for r in all_rows}
        assert original == recovered

    def test_deterministic(self):
        a = train_test_split(_dataset(), seed=2)
        b = train_test_split(_dataset(), seed=2)
        np.testing.assert_array_equal(a.X_test, b.X_test)

    def test_invalid_fraction(self):
        with pytest.raises(DatasetError):
            train_test_split(_dataset(), test_fraction=0.0)
        with pytest.raises(DatasetError):
            train_test_split(_dataset(), test_fraction=1.0)


class TestKFold:
    def test_fold_count(self):
        folds = list(k_fold_splits(_dataset(25), k=5, seed=0))
        assert len(folds) == 5

    def test_test_sets_partition_data(self):
        ds = _dataset(23)
        folds = list(k_fold_splits(ds, k=4, seed=0))
        total_test = sum(f.n_test for f in folds)
        assert total_test == ds.n_samples

    def test_train_test_disjoint_per_fold(self):
        ds = _dataset(20)
        for fold in k_fold_splits(ds, k=4, seed=0):
            train_rows = {tuple(r) for r in fold.X_train}
            test_rows = {tuple(r) for r in fold.X_test}
            assert not train_rows & test_rows

    def test_invalid_k(self):
        with pytest.raises(DatasetError):
            list(k_fold_splits(_dataset(), k=1))
        with pytest.raises(DatasetError):
            list(k_fold_splits(_dataset(5), k=10))
