"""Tests for random hypervector generation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.ops.generate import (
    random_binary,
    random_bipolar,
    random_gaussian,
    random_level_set,
    random_orthogonal_bipolar,
)


class TestRandomBipolar:
    def test_values_are_bipolar(self):
        out = random_bipolar(10, 128, seed=0)
        assert set(np.unique(out)) <= {-1, 1}
        assert out.dtype == np.int8

    def test_shape(self):
        assert random_bipolar(3, 64, seed=0).shape == (3, 64)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            random_bipolar(4, 32, seed=9), random_bipolar(4, 32, seed=9)
        )

    def test_near_orthogonality(self):
        vecs = random_bipolar(20, 4096, seed=1).astype(np.float64)
        gram = vecs @ vecs.T / 4096
        off_diag = gram[~np.eye(20, dtype=bool)]
        # sd of cosine is 1/sqrt(D) ~ 0.0156; 5 sigma bound.
        assert np.max(np.abs(off_diag)) < 5.0 / np.sqrt(4096)

    def test_balanced_signs(self):
        vec = random_bipolar(1, 10_000, seed=2)[0]
        assert abs(vec.mean()) < 0.05

    @pytest.mark.parametrize("count,dim", [(0, 8), (3, 0), (-1, 8)])
    def test_invalid_shape_raises(self, count, dim):
        with pytest.raises(ConfigurationError):
            random_bipolar(count, dim)


class TestRandomBinary:
    def test_values_are_binary(self):
        out = random_binary(5, 64, seed=0)
        assert set(np.unique(out)) <= {0, 1}
        assert out.dtype == np.uint8

    def test_deterministic(self):
        np.testing.assert_array_equal(
            random_binary(2, 32, seed=3), random_binary(2, 32, seed=3)
        )


class TestRandomGaussian:
    def test_moments(self):
        out = random_gaussian(4, 20_000, seed=0)
        assert abs(out.mean()) < 0.02
        assert abs(out.std() - 1.0) < 0.02

    def test_scale(self):
        out = random_gaussian(2, 20_000, seed=0, scale=3.0)
        assert abs(out.std() - 3.0) < 0.1

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            random_gaussian(1, 8, scale=0.0)


class TestRandomOrthogonalBipolar:
    def test_pairwise_similarity_bounded(self):
        vecs = random_orthogonal_bipolar(8, 1024, seed=0).astype(np.float64)
        gram = vecs @ vecs.T / 1024
        off = gram[~np.eye(8, dtype=bool)]
        assert np.max(np.abs(off)) <= 4.0 / np.sqrt(1024) + 1e-12

    def test_exhausted_budget_raises(self):
        # With max_tries=1 the draw budget equals the request, so any
        # rejection fails the run; at this count/dim rejections are
        # overwhelmingly likely.
        with pytest.raises(ConfigurationError, match="near-orthogonal"):
            random_orthogonal_bipolar(4000, 36, seed=0, max_tries=1)


class TestRandomLevelSet:
    def test_shape_and_values(self):
        levels = random_level_set(8, 512, seed=0)
        assert levels.shape == (8, 512)
        assert set(np.unique(levels)) <= {-1, 1}

    def test_similarity_decays_with_level_distance(self):
        levels = random_level_set(16, 4096, seed=1).astype(np.float64)
        sim_near = levels[0] @ levels[1] / 4096
        sim_mid = levels[0] @ levels[8] / 4096
        sim_far = levels[0] @ levels[15] / 4096
        assert sim_near > sim_mid > sim_far

    def test_extremes_nearly_orthogonal(self):
        levels = random_level_set(16, 4096, seed=2).astype(np.float64)
        sim = levels[0] @ levels[-1] / 4096
        assert abs(sim) < 0.15

    def test_requires_two_levels(self):
        with pytest.raises(ConfigurationError):
            random_level_set(1, 64)
