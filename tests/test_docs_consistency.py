"""Documentation/code consistency checks.

DESIGN.md's experiment index, the README's example list and
EXPERIMENTS.md's benchmark references must all point at files that
exist — these tests fail the suite when docs and code drift apart.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]


def _read(name: str) -> str:
    return (REPO / name).read_text()


class TestDesignDoc:
    def test_every_bench_target_exists(self):
        """Each `benchmarks/test_*.py` mentioned in DESIGN.md exists."""
        design = _read("DESIGN.md")
        targets = set(re.findall(r"benchmarks/(test_\w+\.py)", design))
        assert targets, "DESIGN.md names no benchmark targets?"
        for target in targets:
            assert (REPO / "benchmarks" / target).exists(), target

    def test_every_bench_file_is_indexed(self):
        """Each benchmark module appears in DESIGN.md's experiment index."""
        design = _read("DESIGN.md")
        for path in (REPO / "benchmarks").glob("test_*.py"):
            assert path.name in design, f"{path.name} missing from DESIGN.md"

    def test_named_modules_exist(self):
        """Module paths quoted in the inventory tables resolve."""
        design = _read("DESIGN.md")
        for match in re.findall(r"`((?:src/)?repro/[\w/]+\.py)`", design):
            rel = match if match.startswith("src/") else f"src/{match}"
            assert (REPO / rel).exists(), match


class TestReadme:
    def test_example_commands_exist(self):
        readme = _read("README.md")
        for script in re.findall(r"python (examples/\w+\.py)", readme):
            assert (REPO / script).exists(), script

    def test_all_examples_are_listed(self):
        readme = _read("README.md")
        for path in (REPO / "examples").glob("*.py"):
            assert path.name in readme, f"{path.name} not mentioned in README"

    def test_doc_links_resolve(self):
        readme = _read("README.md")
        for target in re.findall(r"\[[^\]]+\]\((\w+\.md)\)", readme):
            assert (REPO / target).exists(), target


class TestExperimentsDoc:
    def test_referenced_benches_exist(self):
        experiments = _read("EXPERIMENTS.md")
        for target in set(re.findall(r"benchmarks/(test_\w+\.py)", experiments)):
            assert (REPO / "benchmarks" / target).exists(), target

    def test_referenced_result_files_are_produced(self):
        """Every `results/<id>.txt` EXPERIMENTS.md quotes is written by
        some benchmark (save_result call)."""
        experiments = _read("EXPERIMENTS.md")
        produced = set()
        for path in (REPO / "benchmarks").glob("test_*.py"):
            produced.update(
                re.findall(r'save_result\(\s*"(\w+)"', path.read_text())
            )
        for ref in set(re.findall(r"results/(\w+)\.txt", experiments)):
            assert ref in produced, f"results/{ref}.txt has no producer"


class TestDocsDirectory:
    @pytest.mark.parametrize(
        "name", ["algorithms.md", "hardware_model.md", "api.md", "tuning.md", "faq.md"]
    )
    def test_docs_present_and_substantial(self, name):
        path = REPO / "docs" / name
        assert path.exists()
        assert len(path.read_text()) > 1000

    def test_api_doc_mentions_every_subpackage(self):
        api = _read("docs/api.md")
        for sub in ("core", "encoding", "ops", "baselines", "datasets",
                    "hardware", "noise", "evaluation", "rl", "runtime"):
            assert f"repro.{sub}" in api, sub
