"""Integration tests across the extension modules."""

import numpy as np

from repro import (
    ClusterQuant,
    MultiModelRegHD,
    PredictQuant,
    RegHDConfig,
    load_model,
    save_model,
)
from repro.core import ConvergencePolicy
from repro.core.sparsify import density_of, fine_tune_sparse
from repro.datasets import (
    load_dataset,
    sensor_signal,
    train_test_split,
    windowed_forecasting_dataset,
)
from repro.evaluation import ConformalRegressor, paired_comparison, multi_seed_mses
from repro.streaming import PageHinkley, StreamingRegHD

CONV = ConvergencePolicy(max_epochs=8, patience=3)
CONFIG = RegHDConfig(dim=512, n_models=4, seed=0, convergence=CONV)


class TestDeploymentPipeline:
    def test_train_sparsify_quantize_save_load_predict(self, tmp_path):
        """The full edge-deployment chain preserves predictions."""
        ds = load_dataset("boston").subsample(300, seed=0)
        split = train_test_split(ds, seed=0)
        model = MultiModelRegHD(
            ds.n_features,
            CONFIG.with_overrides(
                cluster_quant=ClusterQuant.FRAMEWORK,
                predict_quant=PredictQuant.BINARY_QUERY,
            ),
        ).fit(split.X_train, split.y_train)
        fine_tune_sparse(
            model, split.X_train, split.y_train, density=0.5, epochs=2
        )
        assert density_of(model.models.integer) <= 0.51

        path = save_model(model, tmp_path / "edge_model.npz")
        loaded = load_model(path)
        np.testing.assert_array_equal(
            loaded.predict(split.X_test), model.predict(split.X_test)
        )
        # Sparsity survives the round trip.
        assert density_of(loaded.models.integer) <= 0.51

    def test_conformal_around_quantized_reghd(self):
        ds = load_dataset("ccpp").subsample(600, seed=0)
        split = train_test_split(ds, seed=0)
        conformal = ConformalRegressor(
            MultiModelRegHD(
                ds.n_features,
                CONFIG.with_overrides(cluster_quant=ClusterQuant.FRAMEWORK),
            ),
            alpha=0.2,
            seed=0,
        ).fit(split.X_train, split.y_train)
        interval = conformal.predict_interval(split.X_test)
        coverage = interval.covers(split.y_test).mean()
        assert coverage > 0.6  # loose bound; exact coverage tested in unit


class TestStreamingForecastPipeline:
    def test_sensor_stream_through_streaming_reghd(self):
        series = sensor_signal(1400, seed=0)
        ds = windowed_forecasting_dataset(series, window=10)
        stream = StreamingRegHD(
            10,
            RegHDConfig(dim=512, n_models=4, seed=0),
            forgetting=0.999,
            detector=PageHinkley(threshold=2.0),
        )
        batch = 100
        for start in range(0, ds.n_samples - batch, batch):
            stream.update(
                ds.X[start : start + batch], ds.y[start : start + batch]
            )
        curve = stream.history.mse_curve()
        # Forecasting error ends well below the series variance.
        assert np.nanmean(curve[-3:]) < np.var(series)


class TestStatisticsPipeline:
    def test_reghd_vs_linear_on_nonlinear_surrogate(self):
        """Multi-seed paired comparison: RegHD beats ridge on a dataset
        with genuine nonlinearity, significantly."""
        from repro.baselines import RidgeRegression

        ds = load_dataset("airfoil").subsample(500, seed=0)
        seeds = [0, 1, 2, 3, 4]
        reghd = multi_seed_mses(
            lambda seed, n: MultiModelRegHD(
                n, CONFIG.with_overrides(seed=seed)
            ),
            ds,
            seeds=seeds,
        )
        ridge = multi_seed_mses(
            lambda seed, n: RidgeRegression(1.0), ds, seeds=seeds
        )
        result = paired_comparison(reghd, ridge)
        assert result.mean_difference < 0  # RegHD lower MSE
        assert result.significant(0.05)
