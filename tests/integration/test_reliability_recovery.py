"""End-to-end kill-and-recover tests for the resilient streaming stack.

The headline scenario (ISSUE acceptance criterion): a streaming session
checkpoints periodically, "crashes" (the process state is discarded), its
*newest* checkpoint is deliberately corrupted, and recovery must fall
back to the previous valid checkpoint and replay the tail of the stream
to a bit-exact final model state.
"""

import numpy as np
import pytest

from repro import RegHDConfig
from repro.exceptions import RecoveryError
from repro.reliability import (
    CheckpointManager,
    HealthState,
    ResilientStreamingRegHD,
    Watchdog,
)
from repro.streaming import PageHinkley, StreamingRegHD

CONFIG = RegHDConfig(dim=512, n_models=4, seed=0)


def make_batches(n_batches, *, batch=48, seed=0, concept=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_batches):
        X = rng.normal(size=(batch, 4))
        if concept == 0:
            y = np.sin(2 * X[:, 0]) + X[:, 1]
        else:
            y = -np.sin(2 * X[:, 0]) - X[:, 1] + 2.0
        out.append((X, y))
    return out


class TestKillAndRecover:
    def test_crash_corrupt_newest_recover_bit_exact(self, tmp_path):
        """Crash + corrupted newest checkpoint: recover from the previous
        one and resume to a bit-exact final state."""
        data = make_batches(20)

        # Uninterrupted reference run (no reliability machinery at all —
        # the reliability layer must not perturb learning).
        reference = StreamingRegHD(4, CONFIG, detector=PageHinkley())
        for X, y in data:
            reference.update(X, y)

        # Checkpointed run that "crashes" after batch 17.
        crashed = ResilientStreamingRegHD(
            4, CONFIG, detector=PageHinkley(),
            checkpoint_dir=tmp_path, checkpoint_every=5,
        )
        for X, y in data[:17]:
            crashed.update(X, y)
        del crashed  # simulated process death

        # Deliberately corrupt the newest checkpoint (batch 15).
        infos = CheckpointManager(tmp_path).checkpoints()
        assert [i.batch for i in infos] == [5, 10, 15]
        newest = infos[-1]
        blob = bytearray(newest.path.read_bytes())
        blob[len(blob) // 3] ^= 0xFF
        newest.path.write_bytes(bytes(blob))

        # Recovery must skip the corrupt batch-15 file and land on 10.
        recovered = ResilientStreamingRegHD.recover(tmp_path)
        assert recovered._batch_counter == 10
        assert recovered.fitted

        # Replay the stream from batch 11 onward.
        for X, y in data[10:]:
            recovered.update(X, y)

        np.testing.assert_array_equal(
            recovered.model.models.integer, reference.model.models.integer
        )
        np.testing.assert_array_equal(
            recovered.model.clusters.integer,
            reference.model.clusters.integer,
        )
        X_query = np.random.default_rng(99).normal(size=(16, 4))
        np.testing.assert_array_equal(
            recovered.predict(X_query), reference.predict(X_query)
        )

    def test_recover_restores_detector_mid_state(self, tmp_path):
        data = make_batches(12)
        stream = ResilientStreamingRegHD(
            4, CONFIG, detector=PageHinkley(threshold=1.5),
            checkpoint_dir=tmp_path, checkpoint_every=4,
        )
        for X, y in data:
            stream.update(X, y)
        recovered = ResilientStreamingRegHD.recover(tmp_path)
        assert recovered.detector is not None
        assert recovered.detector.threshold == 1.5
        expected = stream.checkpoints.load_latest()[1]["stream"]["detector"]
        assert recovered.detector.get_state() == expected["state"]

    def test_recover_empty_dir_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            ResilientStreamingRegHD.recover(tmp_path / "nothing_here")


class TestWatchdogRollback:
    def test_poisoned_stream_triggers_rollback(self, tmp_path):
        """Gross target corruption (past the drift detector's gentle
        shrink) must roll the model back to the last checkpoint."""
        stream = ResilientStreamingRegHD(
            4, CONFIG,
            checkpoint_dir=tmp_path, checkpoint_every=5,
            watchdog=Watchdog(
                baseline_batches=10, window=3, fail_factor=4.0
            ),
            forgetting=1.0,
        )
        for X, y in make_batches(20):
            stream.update(X, y)
        healthy_state = stream.model.models.integer.copy()
        last_ckpt = stream.checkpoints.latest_valid()
        assert last_ckpt.batch == 20

        # Poison: targets replaced by huge garbage.
        rng = np.random.default_rng(5)
        rolled = False
        for _ in range(10):
            X = rng.normal(size=(48, 4))
            report = stream.update(X, 1e4 * np.ones(48))
            if report.rolled_back:
                rolled = True
                break
        assert rolled, "watchdog should have fired a rollback"
        assert stream.rollbacks[0].restored_batch == 20
        assert stream._batch_counter == 20
        np.testing.assert_array_equal(
            stream.model.models.integer, healthy_state
        )
        assert stream.watchdog.state is HealthState.HEALTHY

    def test_no_rollback_without_checkpoints(self):
        stream = ResilientStreamingRegHD(
            4, CONFIG,
            watchdog=Watchdog(baseline_batches=5, window=2),
        )
        for X, y in make_batches(10):
            stream.update(X, y)
        rng = np.random.default_rng(5)
        reports = [
            stream.update(rng.normal(size=(48, 4)), 1e4 * np.ones(48))
            for _ in range(5)
        ]
        assert any(r.health is HealthState.FAILED for r in reports)
        assert not any(r.rolled_back for r in reports)

    def test_ordinary_drift_does_not_roll_back(self, tmp_path):
        """A genuine concept change is handled by the drift path; the
        watchdog envelope must survive it without firing a rollback."""
        stream = ResilientStreamingRegHD(
            4, CONFIG,
            detector=PageHinkley(threshold=1.0),
            checkpoint_dir=tmp_path, checkpoint_every=5,
            watchdog=Watchdog(
                baseline_batches=15, window=5, fail_factor=12.0
            ),
        )
        for X, y in make_batches(25, seed=0, concept=0):
            stream.update(X, y)
        for X, y in make_batches(20, seed=1, concept=1):
            stream.update(X, y)
        assert stream.history.drift_events
        assert not stream.rollbacks


class TestResilientPipeline:
    def test_guard_skips_fully_bad_batch(self):
        stream = ResilientStreamingRegHD(4, CONFIG, guard="drop")
        X, y = make_batches(1)[0]
        stream.update(X, y)
        report = stream.update(np.full((8, 4), np.nan), np.zeros(8))
        assert report.skipped
        assert stream._batch_counter == 1  # nothing was learned

    def test_repair_guard_keeps_stream_finite(self):
        stream = ResilientStreamingRegHD(4, CONFIG, guard="repair")
        rng = np.random.default_rng(0)
        for X, y in make_batches(10):
            X = X.copy()
            X[rng.integers(0, len(X)), 0] = np.nan
            stream.update(X, y)
        assert np.isfinite(stream.model.models.integer).all()
        curve = stream.history.mse_curve()
        assert np.isfinite(curve[1:]).all()

    def test_scheduled_scrub_and_checkpoint_flags(self, tmp_path):
        stream = ResilientStreamingRegHD(
            4, CONFIG,
            checkpoint_dir=tmp_path, checkpoint_every=4, scrub_every=3,
        )
        reports = [stream.update(X, y) for X, y in make_batches(12)]
        assert [r.checkpointed for r in reports].count(True) == 3
        # Scrub runs at the start of batches 4, 7, 10 (counter 3, 6, 9).
        assert sum(r.scrub is not None for r in reports) == 3
        # No shadow faults were injected, so voting repairs nothing (the
        # binary refresh count may be nonzero: full-precision configs let
        # the unused binary copy go stale between scrubs).
        assert all(
            r.scrub.shadow_elements_repaired == 0
            for r in reports
            if r.scrub
        )

    def test_reliability_layer_is_learning_neutral(self, tmp_path):
        """Guards + scrubbing + checkpoints on clean data must reproduce
        the plain streaming learner bit-exactly."""
        plain = StreamingRegHD(4, CONFIG, detector=PageHinkley())
        armored = ResilientStreamingRegHD(
            4, CONFIG, detector=PageHinkley(),
            guard="raise", checkpoint_dir=tmp_path, checkpoint_every=3,
            scrub_every=2,
        )
        for X, y in make_batches(15):
            plain.update(X, y)
            armored.update(X, y)
        np.testing.assert_array_equal(
            plain.model.models.integer, armored.model.models.integer
        )
