"""End-to-end integration: datasets -> harness -> models -> metrics."""

import numpy as np

from repro import (
    BaselineHD,
    MultiModelRegHD,
    RegHDConfig,
    SingleModelRegHD,
)
from repro.baselines import (
    DecisionTreeRegressor,
    KNNRegressor,
    MLPRegressor,
    RidgeRegression,
    SVR,
)
from repro.core import ConvergencePolicy
from repro.datasets import load_dataset, train_test_split
from repro.evaluation import grid_search, run_many


CONV = ConvergencePolicy(max_epochs=12, patience=3)


class TestFullPipeline:
    def test_all_models_run_on_surrogate(self):
        """Every Table-1 model class trains and predicts on a surrogate."""
        results = run_many(
            {
                "ridge": lambda n: RidgeRegression(1.0),
                "tree": lambda n: DecisionTreeRegressor(max_depth=6),
                "mlp": lambda n: MLPRegressor(hidden=(32,), epochs=40, seed=0),
                "svr": lambda n: SVR(epochs=30, seed=0),
                "knn": lambda n: KNNRegressor(k=5),
                "reghd-1": lambda n: SingleModelRegHD(
                    n, dim=500, seed=0, convergence=CONV
                ),
                "reghd-4": lambda n: MultiModelRegHD(
                    n, RegHDConfig(dim=500, n_models=4, seed=0, convergence=CONV)
                ),
                "baseline-hd": lambda n: BaselineHD(
                    n, dim=500, n_bins=32, seed=0, convergence=CONV
                ),
            },
            load_dataset("boston"),
        )
        by_model = {r.model: r for r in results}
        assert len(by_model) == 8
        for result in results:
            assert np.isfinite(result.mse)
            assert result.mse > 0

    def test_reghd_beats_target_variance_on_structured_data(self):
        """RegHD must actually learn (r2 > 0) on every paper surrogate."""
        for name in ("boston", "airfoil", "ccpp"):
            ds = load_dataset(name).subsample(800, seed=0)
            results = run_many(
                {
                    "reghd": lambda n: MultiModelRegHD(
                        n,
                        RegHDConfig(dim=800, n_models=8, seed=0, convergence=CONV),
                    )
                },
                ds,
            )
            assert results[0].r2 > 0.2, f"{name}: r2={results[0].r2:.3f}"

    def test_grid_search_over_reghd(self):
        ds = load_dataset("boston").subsample(300, seed=0)
        split = train_test_split(ds, seed=0)
        result = grid_search(
            lambda n_models: MultiModelRegHD(
                ds.n_features,
                RegHDConfig(
                    dim=300,
                    n_models=n_models,
                    seed=0,
                    convergence=ConvergencePolicy(max_epochs=5, patience=2),
                ),
            ),
            {"n_models": [1, 4]},
            split.X_train,
            split.y_train,
            seed=0,
        )
        assert result.best_params["n_models"] in (1, 4)
        assert np.isfinite(result.best_mse)

    def test_sequence_encoder_with_reghd(self):
        """Time-series windows through the sequence encoder + RegHD."""
        from repro.encoding import SequenceEncoder

        rng = np.random.default_rng(0)
        t = np.arange(300, dtype=float)
        series = np.sin(0.3 * t) + 0.5 * np.sin(0.05 * t) + 0.05 * rng.normal(size=300)
        window = 8
        X = np.stack([series[i : i + window] for i in range(300 - window)])
        y = series[window:]
        encoder = SequenceEncoder(window, 512, seed=0, value_range=(-2.0, 2.0))
        model = MultiModelRegHD(
            window,
            RegHDConfig(dim=512, n_models=4, seed=0, convergence=CONV),
            encoder=encoder,
        )
        model.fit(X[:200], y[:200])
        from repro.metrics import r2_score

        assert r2_score(y[200:], model.predict(X[200:])) > 0.5
