"""Integration tests pinning the paper's qualitative claims (the 'shape').

Each test here corresponds to a sentence in the paper's evaluation; the
benchmarks print the full tables, these tests assert the directions.
"""

import numpy as np
import pytest

from repro import BaselineHD, MultiModelRegHD, RegHDConfig, SingleModelRegHD
from repro.core import ClusterQuant, ConvergencePolicy, PredictQuant
from repro.datasets import load_dataset, regime_mixture, train_test_split
from repro.datasets.preprocessing import StandardScaler
from repro.metrics import mean_squared_error


CONV = ConvergencePolicy(max_epochs=15, patience=4)


@pytest.fixture(scope="module")
def complex_split():
    """A regime-mixture task hard enough that capacity matters at D=96."""
    ds = regime_mixture(1200, 6, n_regimes=8, seed=3, noise=0.1)
    split = train_test_split(ds, seed=0)
    scaler = StandardScaler().fit(split.X_train)
    return (
        scaler.transform(split.X_train),
        split.y_train,
        scaler.transform(split.X_test),
        split.y_test,
    )


def _mse(model, data):
    X, y, Xte, yte = data
    model.fit(X, y)
    return mean_squared_error(yte, model.predict(Xte))


class TestFig3bMultiVsSingle:
    def test_multi_model_beats_single_on_complex_task(self, complex_split):
        """Fig. 3b: at capacity-constrained D the multi-model wins."""
        dim = 96
        single = _mse(
            SingleModelRegHD(6, dim=dim, seed=0, convergence=CONV), complex_split
        )
        multi = _mse(
            MultiModelRegHD(
                6, RegHDConfig(dim=dim, n_models=8, seed=0, convergence=CONV)
            ),
            complex_split,
        )
        assert multi < single


class TestTable1Shapes:
    def test_baseline_hd_is_worst(self, complex_split):
        """Table 1: Baseline-HD trails RegHD by a wide margin."""
        reghd = _mse(
            MultiModelRegHD(
                6, RegHDConfig(dim=512, n_models=8, seed=0, convergence=CONV)
            ),
            complex_split,
        )
        baseline = _mse(
            BaselineHD(6, dim=512, n_bins=64, seed=0, convergence=CONV),
            complex_split,
        )
        assert baseline > reghd * 1.3

    def test_more_models_do_not_hurt(self, complex_split):
        """Table 1: RegHD-32 >= RegHD-2 quality (monotone trend, with
        tolerance for seed noise)."""
        mses = {}
        for k in (2, 32):
            mses[k] = _mse(
                MultiModelRegHD(
                    6, RegHDConfig(dim=96, n_models=k, seed=0, convergence=CONV)
                ),
                complex_split,
            )
        assert mses[32] < mses[2] * 1.05


class TestFig6ClusterQuantization:
    def test_framework_close_to_integer(self, complex_split):
        """Fig. 6: the dual-copy framework matches integer clustering."""
        integer = _mse(
            MultiModelRegHD(
                6,
                RegHDConfig(
                    dim=512, n_models=8, seed=0, convergence=CONV,
                    cluster_quant=ClusterQuant.NONE,
                ),
            ),
            complex_split,
        )
        framework = _mse(
            MultiModelRegHD(
                6,
                RegHDConfig(
                    dim=512, n_models=8, seed=0, convergence=CONV,
                    cluster_quant=ClusterQuant.FRAMEWORK,
                ),
            ),
            complex_split,
        )
        assert framework < integer * 1.35

    def test_framework_beats_naive(self, complex_split):
        """Fig. 6: naive binarisation loses to the framework."""
        mses = {}
        for cq in (ClusterQuant.FRAMEWORK, ClusterQuant.NAIVE):
            per_seed = []
            for seed in (0, 1, 2):
                per_seed.append(
                    _mse(
                        MultiModelRegHD(
                            6,
                            RegHDConfig(
                                dim=256, n_models=8, seed=seed,
                                convergence=CONV, cluster_quant=cq,
                            ),
                        ),
                        complex_split,
                    )
                )
            mses[cq] = float(np.mean(per_seed))
        assert mses[ClusterQuant.FRAMEWORK] <= mses[ClusterQuant.NAIVE] * 1.1


class TestFig7PredictionQuantization:
    def test_quality_ordering(self, complex_split):
        """Fig. 7: full ~ binary-query > binary-model-containing configs,
        averaged over seeds."""
        mses = {}
        for pq in PredictQuant:
            per_seed = []
            for seed in (0, 1):
                per_seed.append(
                    _mse(
                        MultiModelRegHD(
                            6,
                            RegHDConfig(
                                dim=512, n_models=8, seed=seed,
                                convergence=CONV, predict_quant=pq,
                            ),
                        ),
                        complex_split,
                    )
                )
            mses[pq] = float(np.mean(per_seed))
        # Binary query stays close to full precision...
        assert mses[PredictQuant.BINARY_QUERY] < mses[PredictQuant.FULL] * 1.5
        # ...and the fully binary path is the worst of the four.
        assert mses[PredictQuant.BINARY_BOTH] >= max(
            mses[PredictQuant.FULL], mses[PredictQuant.BINARY_QUERY]
        ) * 0.95


class TestTable2Dimensionality:
    def test_quality_loss_grows_as_dim_shrinks(self):
        """Table 2: lower D -> higher quality loss, small at high D."""
        ds = load_dataset("airfoil", seed=0).subsample(900, seed=0)
        split = train_test_split(ds, seed=0)
        scaler = StandardScaler().fit(split.X_train)
        data = (
            scaler.transform(split.X_train),
            split.y_train,
            scaler.transform(split.X_test),
            split.y_test,
        )
        mses = {}
        for dim in (64, 512, 2000):
            mses[dim] = _mse(
                MultiModelRegHD(
                    ds.n_features,
                    RegHDConfig(dim=dim, n_models=8, seed=0, convergence=CONV),
                ),
                data,
            )
        assert mses[2000] < mses[64]
        assert mses[512] < mses[64]


class TestQuantizedRobustness:
    def test_binary_model_survives_bit_flips(self, complex_split):
        """Sec. 3's two claims compose: a fully quantised RegHD stays
        usable when its *binary* model memory takes real bit flips."""
        from repro.noise import flip_bits
        from repro.ops.quantize import binarize

        X, y, Xte, yte = complex_split
        model = MultiModelRegHD(
            6,
            RegHDConfig(
                dim=1024, n_models=8, seed=0, convergence=CONV,
                cluster_quant=ClusterQuant.FRAMEWORK,
                predict_quant=PredictQuant.BINARY_MODEL,
            ),
        ).fit(X, y)
        clean_mse = mean_squared_error(yte, model.predict(Xte))

        # Flip 5 % of the *bits* of the binary model copy, keeping each
        # row's scale (what a faulty 1-bit memory would do).
        binary = model.models.binary
        scales = np.max(np.abs(binary), axis=1, keepdims=True)
        bits = binarize(binary)
        flipped = flip_bits(bits, 0.05, seed=1)
        model.models.binary = (2.0 * flipped - 1.0) * scales
        noisy_mse = mean_squared_error(yte, model.predict(Xte))

        assert noisy_mse < clean_mse * 2.0  # graceful, not catastrophic


class TestCapacityClaim:
    def test_paper_capacity_example_end_to_end(self):
        """Sec. 2.3: the D=100k/T=0.5/P=10k example, analytic vs empirical
        at reduced scale."""
        from repro.core import (
            empirical_false_positive_rate,
            false_positive_probability,
        )

        analytic = false_positive_probability(4000, 400, 0.5)
        measured = empirical_false_positive_rate(
            4000, 400, 0.5, n_queries=3000, seed=0
        )
        assert measured == pytest.approx(analytic, abs=0.015)
