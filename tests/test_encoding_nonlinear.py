"""Tests for the paper's Eq.-(1) nonlinear encoder."""

import numpy as np
import pytest

from repro.encoding.nonlinear import NonlinearEncoder
from repro.exceptions import EncodingError
from repro.ops.similarity import cosine_similarity


class TestConstruction:
    def test_default_properties(self):
        enc = NonlinearEncoder(6, 512, seed=0)
        assert enc.in_features == 6
        assert enc.dim == 512
        assert enc.scale == pytest.approx(1.0 / np.sqrt(6))

    def test_invalid_base(self):
        with pytest.raises(EncodingError):
            NonlinearEncoder(4, 64, base="ternary")

    def test_invalid_scale(self):
        with pytest.raises(EncodingError):
            NonlinearEncoder(4, 64, scale=0.0)

    def test_invalid_shape(self):
        with pytest.raises(EncodingError):
            NonlinearEncoder(0, 64)
        with pytest.raises(EncodingError):
            NonlinearEncoder(4, 0)

    def test_bipolar_bases_are_pm_one(self):
        enc = NonlinearEncoder(4, 128, seed=0, base="bipolar")
        assert set(np.unique(enc.bases)) <= {-1.0, 1.0}

    def test_bases_read_only(self):
        enc = NonlinearEncoder(4, 64, seed=0)
        with pytest.raises(ValueError):
            enc.bases[0, 0] = 0.0
        with pytest.raises(ValueError):
            enc.phases[0] = 0.0


class TestDeterminism:
    def test_same_seed_same_encoding(self):
        x = np.random.default_rng(0).normal(size=5)
        a = NonlinearEncoder(5, 256, seed=3).encode(x)
        b = NonlinearEncoder(5, 256, seed=3).encode(x)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        x = np.random.default_rng(0).normal(size=5)
        a = NonlinearEncoder(5, 256, seed=3).encode(x)
        b = NonlinearEncoder(5, 256, seed=4).encode(x)
        assert not np.array_equal(a, b)

    def test_train_and_query_share_encoder(self):
        """The prediction pipeline must reuse the training encoder — two
        encoders with the same seed are interchangeable."""
        enc = NonlinearEncoder(5, 128, seed=7)
        x = np.ones(5)
        np.testing.assert_array_equal(enc.encode(x), enc.encode(x))


class TestShapes:
    def test_single_row(self):
        enc = NonlinearEncoder(3, 64, seed=0)
        assert enc.encode([1.0, 2.0, 3.0]).shape == (64,)

    def test_batch(self):
        enc = NonlinearEncoder(3, 64, seed=0)
        assert enc.encode_batch(np.zeros((10, 3))).shape == (10, 64)

    def test_encode_rejects_matrix(self):
        enc = NonlinearEncoder(3, 64, seed=0)
        with pytest.raises(EncodingError):
            enc.encode(np.zeros((2, 3)))

    def test_wrong_feature_count(self):
        enc = NonlinearEncoder(3, 64, seed=0)
        with pytest.raises(EncodingError):
            enc.encode_batch(np.zeros((2, 4)))

    def test_values_bounded(self):
        """cos * sin is bounded by 1/2... actually by 1; check [-1, 1]."""
        enc = NonlinearEncoder(4, 256, seed=0)
        out = enc.encode_batch(np.random.default_rng(1).normal(size=(20, 4)))
        assert np.all(np.abs(out) <= 1.0)


class TestSimilarityPreservation:
    """The 'commonsense principle' of paper Sec. 2.2."""

    def test_identical_inputs_identical_encodings(self):
        enc = NonlinearEncoder(5, 1024, seed=0)
        x = np.random.default_rng(0).normal(size=5)
        assert cosine_similarity(enc.encode(x), enc.encode(x)) == pytest.approx(1.0)

    def test_near_inputs_more_similar_than_far(self):
        enc = NonlinearEncoder(5, 4096, seed=0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=5)
        near = x + 0.05 * rng.normal(size=5)
        far = x + 5.0 * rng.normal(size=5)
        sim_near = cosine_similarity(enc.encode(x), enc.encode(near))
        sim_far = cosine_similarity(enc.encode(x), enc.encode(far))
        assert sim_near > sim_far
        assert sim_near > 0.8

    def test_similarity_decays_monotonically_on_average(self):
        enc = NonlinearEncoder(4, 4096, seed=2)
        rng = np.random.default_rng(3)
        x = rng.normal(size=4)
        direction = rng.normal(size=4)
        direction /= np.linalg.norm(direction)
        sims = []
        for step in [0.0, 0.5, 1.0, 2.0, 4.0]:
            sims.append(
                cosine_similarity(enc.encode(x), enc.encode(x + step * direction))
            )
        assert sims[0] == pytest.approx(1.0)
        assert sims[0] > sims[1] > sims[2] > sims[3]

    def test_distant_inputs_hit_the_dc_baseline(self):
        """Unrelated inputs decay to a constant similarity floor (the
        encoder's deterministic -sin(b)/2 phase component), well below the
        near-input similarity.  Two independent far pairs land on the same
        floor."""
        enc = NonlinearEncoder(6, 8192, seed=4)
        rng = np.random.default_rng(5)
        a = rng.normal(size=6)
        b = a + 20.0 * rng.normal(size=6)
        c = 10.0 * rng.normal(size=6)
        sim_ab = cosine_similarity(enc.encode(a), enc.encode(b))
        sim_ac = cosine_similarity(enc.encode(a), enc.encode(c))
        assert sim_ab < 0.6
        assert sim_ab == pytest.approx(sim_ac, abs=0.1)


class TestNonlinearity:
    def test_encoding_is_not_linear_in_input(self):
        """enc(x + y) must differ from enc(x) + enc(y) (the encoder's
        nonlinearity is what lets a linear HD model fit nonlinear maps)."""
        enc = NonlinearEncoder(4, 512, seed=0)
        rng = np.random.default_rng(6)
        x, y = rng.normal(size=4), rng.normal(size=4)
        lhs = enc.encode(x + y)
        rhs = enc.encode(x) + enc.encode(y)
        assert not np.allclose(lhs, rhs, atol=1e-3)

    def test_gaussian_vs_bipolar_base_both_work(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=4)
        for base in ("gaussian", "bipolar"):
            enc = NonlinearEncoder(4, 256, seed=0, base=base)
            out = enc.encode(x)
            assert out.shape == (256,)
            assert np.all(np.isfinite(out))
