"""Tests for binding and permutation operations."""

import numpy as np
import pytest

from repro.exceptions import DimensionalityError
from repro.ops.binding import bind, permute, unbind, xor_bind
from repro.ops.generate import random_binary, random_bipolar
from repro.ops.similarity import cosine_similarity


class TestBind:
    def test_bipolar_self_inverse(self):
        a = random_bipolar(1, 256, seed=0)[0].astype(np.float64)
        b = random_bipolar(1, 256, seed=1)[0].astype(np.float64)
        np.testing.assert_allclose(unbind(bind(a, b), b), a)

    def test_bound_dissimilar_to_operands(self):
        a = random_bipolar(1, 4096, seed=2)[0].astype(np.float64)
        b = random_bipolar(1, 4096, seed=3)[0].astype(np.float64)
        bound = bind(a, b)
        assert abs(cosine_similarity(bound, a)) < 0.1
        assert abs(cosine_similarity(bound, b)) < 0.1

    def test_shape_mismatch_raises(self):
        with pytest.raises(DimensionalityError):
            bind(np.ones(4), np.ones(5))

    def test_elementwise(self):
        np.testing.assert_allclose(
            bind([1.0, -1.0, 2.0], [2.0, 3.0, -1.0]), [2.0, -3.0, -2.0]
        )


class TestXorBind:
    def test_self_inverse(self):
        a = random_binary(1, 128, seed=0)[0]
        b = random_binary(1, 128, seed=1)[0]
        np.testing.assert_array_equal(xor_bind(xor_bind(a, b), b), a)

    def test_known_values(self):
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        np.testing.assert_array_equal(xor_bind(a, b), [0, 1, 1, 0])

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            xor_bind(np.array([0, 2]), np.array([0, 1]))


class TestPermute:
    def test_roundtrip(self):
        v = np.arange(8.0)
        np.testing.assert_allclose(permute(permute(v, 3), -3), v)

    def test_shift_moves_elements(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(permute(v, 1), [4.0, 1.0, 2.0, 3.0])

    def test_permuted_nearly_orthogonal(self):
        v = random_bipolar(1, 4096, seed=4)[0].astype(np.float64)
        assert abs(cosine_similarity(v, permute(v, 1))) < 0.1

    def test_full_rotation_identity(self):
        v = np.arange(6.0)
        np.testing.assert_allclose(permute(v, 6), v)

    def test_batch_rotation(self):
        batch = np.arange(8.0).reshape(2, 4)
        out = permute(batch, 1)
        np.testing.assert_allclose(out[0], [3.0, 0.0, 1.0, 2.0])

    def test_rejects_3d(self):
        with pytest.raises(DimensionalityError):
            permute(np.zeros((2, 2, 2)), 1)
