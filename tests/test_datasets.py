"""Tests for the dataset container, generators, surrogates and registry."""

import numpy as np
import pytest

from repro.datasets import (
    PAPER_DATASETS,
    SPECS,
    Dataset,
    available_datasets,
    build_surrogate,
    friedman1,
    friedman2,
    friedman3,
    load_dataset,
    piecewise,
    regime_mixture,
    register_dataset,
    sinusoid,
)
from repro.exceptions import DatasetError


class TestDatasetContainer:
    def test_basic(self):
        ds = Dataset("t", np.zeros((4, 2)), np.zeros(4))
        assert ds.n_samples == 4
        assert ds.n_features == 2

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DatasetError):
            Dataset("t", np.zeros((4, 2)), np.zeros(5))

    def test_rejects_1d_x(self):
        with pytest.raises(DatasetError):
            Dataset("t", np.zeros(4), np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            Dataset("t", np.zeros((0, 2)), np.zeros(0))

    def test_feature_name_count_checked(self):
        with pytest.raises(DatasetError):
            Dataset("t", np.zeros((4, 2)), np.zeros(4), feature_names=("a",))

    def test_subsample(self):
        ds = Dataset("t", np.arange(20.0).reshape(10, 2), np.arange(10.0))
        sub = ds.subsample(4, seed=0)
        assert sub.n_samples == 4
        # Rows stay aligned with targets.
        for row, target in zip(sub.X, sub.y):
            assert row[0] == target * 2.0

    def test_subsample_noop_when_larger(self):
        ds = Dataset("t", np.zeros((5, 1)), np.zeros(5))
        assert ds.subsample(10) is ds

    def test_subsample_invalid(self):
        ds = Dataset("t", np.zeros((5, 1)), np.zeros(5))
        with pytest.raises(DatasetError):
            ds.subsample(0)


class TestSyntheticGenerators:
    def test_friedman1_shape_and_determinism(self):
        a = friedman1(100, seed=1)
        b = friedman1(100, seed=1)
        assert a.X.shape == (100, 10)
        np.testing.assert_array_equal(a.y, b.y)

    def test_friedman1_distractors_irrelevant(self):
        ds = friedman1(3000, n_features=8, noise=0.0, seed=0)
        # Correlation with a distractor column should be near zero.
        corr = np.corrcoef(ds.X[:, 7], ds.y)[0, 1]
        assert abs(corr) < 0.08

    def test_friedman1_needs_five_features(self):
        with pytest.raises(DatasetError):
            friedman1(10, n_features=4)

    def test_friedman2_and_3_shapes(self):
        assert friedman2(50, seed=0).X.shape == (50, 4)
        assert friedman3(50, seed=0).X.shape == (50, 4)

    def test_friedman3_target_range(self):
        ds = friedman3(500, noise=0.0, seed=0)
        assert np.all(np.abs(ds.y) <= np.pi / 2)

    def test_sinusoid_noise_free_identity(self):
        ds = sinusoid(200, n_features=2, frequency=1.0, noise=0.0, seed=0)
        np.testing.assert_allclose(ds.y, np.sin(ds.X).sum(axis=1))

    def test_piecewise_has_regimes(self):
        ds = piecewise(400, n_pieces=4, noise=0.0, seed=0)
        assert ds.X.shape == (400, 4)
        assert ds.y.std() > 0

    def test_piecewise_invalid(self):
        with pytest.raises(DatasetError):
            piecewise(10, n_pieces=1)

    def test_regime_mixture_standardised(self):
        ds = regime_mixture(1000, 6, seed=0)
        assert abs(ds.y.mean()) < 1e-9
        assert ds.y.std() == pytest.approx(1.0, abs=1e-9)

    def test_regime_mixture_deterministic(self):
        a = regime_mixture(100, 4, seed=5)
        b = regime_mixture(100, 4, seed=5)
        np.testing.assert_array_equal(a.X, b.X)

    def test_regime_mixture_invalid(self):
        with pytest.raises(DatasetError):
            regime_mixture(0, 4)
        with pytest.raises(DatasetError):
            regime_mixture(10, 0)
        with pytest.raises(DatasetError):
            regime_mixture(10, 4, n_regimes=0)


class TestUCISurrogates:
    @pytest.mark.parametrize("name", PAPER_DATASETS)
    def test_shapes_match_specs(self, name):
        ds = load_dataset(name)
        spec = SPECS[name]
        assert ds.X.shape == (spec.n_samples, spec.n_features)
        assert ds.y.shape == (spec.n_samples,)

    @pytest.mark.parametrize("name", PAPER_DATASETS)
    def test_deterministic(self, name):
        np.testing.assert_array_equal(
            load_dataset(name, seed=3).y, load_dataset(name, seed=3).y
        )

    def test_target_moments_approximate_spec(self):
        ds = load_dataset("ccpp")
        spec = SPECS["ccpp"]
        assert ds.y.mean() == pytest.approx(spec.target_mean, rel=0.05)
        assert ds.y.std() == pytest.approx(spec.target_std, rel=0.35)

    def test_wine_targets_integer(self):
        ds = load_dataset("wine")
        np.testing.assert_array_equal(ds.y, np.round(ds.y))

    def test_clipping_respected(self):
        boston = load_dataset("boston")
        assert boston.y.min() >= 5.0
        assert boston.y.max() <= 50.0

    def test_heavy_tail_skewness(self):
        ds = load_dataset("forest")
        y = ds.y
        skew = float(np.mean(((y - y.mean()) / y.std()) ** 3))
        assert skew > 1.0  # strongly right-skewed, like burned areas

    def test_surrogate_description_flags_substitution(self):
        assert "SURROGATE" in load_dataset("diabetes").description

    def test_build_surrogate_signal_is_learnable(self):
        """A ridge fit must explain a chunk of variance, confirming the
        signal_fraction knob produces learnable structure."""
        from repro.baselines.linear import RidgeRegression
        from repro.metrics import r2_score

        ds = load_dataset("ccpp").subsample(1500, seed=0)
        model = RidgeRegression(1.0).fit(ds.X, ds.y)
        assert r2_score(ds.y, model.predict(ds.X)) > 0.2


class TestRegistry:
    def test_paper_datasets_registered(self):
        assert set(PAPER_DATASETS) <= set(available_datasets())

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("not-a-dataset")

    def test_duplicate_registration_raises(self):
        with pytest.raises(DatasetError):
            register_dataset("boston", lambda seed=0: None)  # type: ignore[arg-type]

    def test_duplicate_error_names_the_registration_site(self):
        """The error points at the file:line that holds the name."""
        with pytest.raises(DatasetError, match=r"registry\.py:\d+"):
            register_dataset("boston", lambda seed=0: None)  # type: ignore[arg-type]

    def test_replace_overwrites_and_unregister_frees_the_name(self):
        from repro.datasets import unregister_dataset

        marker = friedman1(10, seed=0)
        register_dataset("registry-test-temp", lambda seed=0: marker)
        try:
            with pytest.raises(DatasetError):
                register_dataset("registry-test-temp", lambda seed=0: marker)
            register_dataset(
                "registry-test-temp", lambda seed=0: marker, replace=True
            )
            assert load_dataset("registry-test-temp") is marker
        finally:
            unregister_dataset("registry-test-temp")
        assert "registry-test-temp" not in available_datasets()
        with pytest.raises(DatasetError):
            unregister_dataset("registry-test-temp")

    def test_dataset_params_reports_loader_signature(self):
        from repro.datasets import dataset_params

        params = dataset_params("friedman1")
        assert "n_samples" in params
        assert "seed" in params
        with pytest.raises(DatasetError):
            dataset_params("not-a-dataset")

    def test_dataset_tags(self):
        from repro.datasets import dataset_tags

        assert "paper" in dataset_tags("boston")
        assert "workload" in dataset_tags("sensor_forecast")
        assert dataset_tags("never-registered") == ()

    def test_loader_kwargs_forwarded(self):
        ds = load_dataset("friedman1", seed=0, n_samples=37)
        assert ds.n_samples == 37
