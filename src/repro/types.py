"""Shared type aliases and lightweight protocols.

Hypervector conventions used throughout the library (see DESIGN.md §4):

* dense hypervectors are ``float64`` arrays of shape ``(D,)`` or ``(n, D)``;
* binary views are ``uint8`` arrays with values in ``{0, 1}``;
* bipolar views are ``int8`` arrays with values in ``{-1, +1}``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np
import numpy.typing as npt

#: A dense (integer-valued but float-stored) hypervector or batch thereof.
FloatArray = npt.NDArray[np.float64]

#: A binary {0, 1} hypervector or batch thereof.
BinaryArray = npt.NDArray[np.uint8]

#: A bipolar {-1, +1} hypervector or batch thereof.
BipolarArray = npt.NDArray[np.int8]

#: Anything numpy can coerce into an array of floats.
ArrayLike = npt.ArrayLike

#: Seed accepted at API boundaries: an int, a Generator, or None.
SeedLike = int | np.random.Generator | None


@runtime_checkable
class SupportsPredict(Protocol):
    """Minimal regressor interface used by the evaluation harness."""

    def predict(self, X: ArrayLike) -> FloatArray:  # pragma: no cover
        """Return predicted targets for a batch of raw feature rows."""
        ...


@runtime_checkable
class SupportsFit(Protocol):
    """A trainable regressor."""

    def fit(self, X: ArrayLike, y: ArrayLike) -> "SupportsFit":  # pragma: no cover
        """Train on raw feature rows ``X`` and targets ``y``."""
        ...
