"""Binding and permutation operations.

Binding associates two hypervectors into one that is dissimilar to both —
the HDC analogue of a key/value pair.  RegHD's feature-vector encoder does
not bind explicitly (the random projection plays that role), but the
ID-level encoder and the sequence encoder in :mod:`repro.encoding` are built
on these primitives, as is the Baseline-HD comparator.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionalityError
from repro.types import ArrayLike, BinaryArray, FloatArray


def _check_same_shape(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise DimensionalityError(
            f"binding operands must have identical shapes, got "
            f"{a.shape} and {b.shape}"
        )


def bind(a: ArrayLike, b: ArrayLike) -> FloatArray:
    """Elementwise-multiply binding for bipolar/real hypervectors.

    For bipolar operands the result is bipolar and the operation is its own
    inverse: ``bind(bind(a, b), b) == a``.
    """
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    _check_same_shape(a_arr, b_arr)
    return a_arr * b_arr


def unbind(bound: ArrayLike, key: ArrayLike) -> FloatArray:
    """Invert :func:`bind` for bipolar keys (multiply binding is an involution)."""
    return bind(bound, key)


def xor_bind(a: ArrayLike, b: ArrayLike) -> BinaryArray:
    """XOR binding for binary {0,1} hypervectors.

    The binary analogue of multiply binding; also self-inverse.
    """
    a_arr = np.asarray(a)
    b_arr = np.asarray(b)
    _check_same_shape(a_arr, b_arr)
    if not (_is_binary(a_arr) and _is_binary(b_arr)):
        raise ValueError("xor_bind requires binary {0,1} operands")
    return np.bitwise_xor(a_arr.astype(np.uint8), b_arr.astype(np.uint8))


def _is_binary(arr: np.ndarray) -> bool:
    return bool(np.isin(arr, (0, 1)).all())


def permute(vector: ArrayLike, shift: int = 1) -> FloatArray:
    """Cyclic permutation (rotation) of a hypervector.

    Permutation encodes *position*: ``permute(v, k)`` is nearly orthogonal
    to ``v`` for any ``k != 0 (mod D)``, which lets sequence encoders mark
    the time step of each element (see
    :class:`repro.encoding.permutation.SequenceEncoder`).
    """
    arr = np.asarray(vector, dtype=np.float64)
    if arr.ndim not in (1, 2):
        raise DimensionalityError(
            f"permute expects 1-D or 2-D input, got shape {arr.shape}"
        )
    return np.roll(arr, shift, axis=-1)
