"""Associative item memory with cleanup.

The classic HDC component: a codebook of named hypervectors supporting
*cleanup* — mapping a noisy hypervector back to its nearest stored item.
Used across the HDC literature for symbol tables and decoding bundles;
included here as substrate (the capacity analysis of Sec. 2.3 is exactly
the theory of when cleanup fails) and exercised by the property tests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ops.generate import random_bipolar
from repro.ops.similarity import cosine_similarity
from repro.types import ArrayLike, FloatArray, SeedLike
from repro.utils.rng import as_generator


class ItemMemory:
    """A codebook of named hypervectors with nearest-neighbour cleanup.

    Parameters
    ----------
    dim:
        Hypervector dimensionality.
    seed:
        Seed for auto-generated item hypervectors.
    """

    def __init__(self, dim: int, seed: SeedLike = 0):
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim}")
        self._dim = int(dim)
        self._rng = as_generator(seed)
        self._names: list[str] = []
        self._vectors: list[FloatArray] = []

    @property
    def dim(self) -> int:
        """Hypervector dimensionality."""
        return self._dim

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._names

    @property
    def names(self) -> tuple[str, ...]:
        """Stored item names, in insertion order."""
        return tuple(self._names)

    def add(self, name: str, vector: ArrayLike | None = None) -> FloatArray:
        """Store an item; draws a fresh random bipolar vector when omitted.

        Returns the stored hypervector.
        """
        if name in self._names:
            raise ConfigurationError(f"item {name!r} already stored")
        if vector is None:
            stored = random_bipolar(1, self._dim, self._rng)[0].astype(
                np.float64
            )
        else:
            stored = np.asarray(vector, dtype=np.float64)
            if stored.shape != (self._dim,):
                raise ConfigurationError(
                    f"vector shape {stored.shape} != ({self._dim},)"
                )
            stored = stored.copy()
        self._names.append(name)
        self._vectors.append(stored)
        return stored.copy()

    def get(self, name: str) -> FloatArray:
        """Retrieve a stored hypervector by name."""
        try:
            index = self._names.index(name)
        except ValueError:
            raise ConfigurationError(f"unknown item {name!r}") from None
        return self._vectors[index].copy()

    def cleanup(self, noisy: ArrayLike) -> tuple[str, float]:
        """Map a (noisy) hypervector to its most similar stored item.

        Returns ``(name, similarity)``.
        """
        if not self._names:
            raise ConfigurationError("cleanup on an empty memory")
        query = np.asarray(noisy, dtype=np.float64)
        if query.shape != (self._dim,):
            raise ConfigurationError(
                f"query shape {query.shape} != ({self._dim},)"
            )
        matrix = np.stack(self._vectors)
        sims = cosine_similarity(matrix, query)
        best = int(np.argmax(sims))
        return self._names[best], float(sims[best])

    def cleanup_batch(self, noisy: ArrayLike) -> list[tuple[str, float]]:
        """Vectorised :meth:`cleanup` over rows."""
        queries = np.asarray(noisy, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self._dim:
            raise ConfigurationError(
                f"queries must be (n, {self._dim}), got {queries.shape}"
            )
        if not self._names:
            raise ConfigurationError("cleanup on an empty memory")
        matrix = np.stack(self._vectors)
        sims = cosine_similarity(queries, matrix)
        best = np.argmax(sims, axis=1)
        return [
            (self._names[b], float(sims[i, b])) for i, b in enumerate(best)
        ]
