"""Bundling (superposition) operations.

Bundling is elementwise addition: the bundle of a set of hypervectors is
similar to each of its members.  RegHD's model hypervectors are bundles of
error-weighted encoded inputs (Eq. 2 / Eq. 7), and its cluster hypervectors
are ``(1 - delta)``-weighted bundles of their members (Eq. 8).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionalityError
from repro.types import ArrayLike, BipolarArray, FloatArray


def bundle(vectors: ArrayLike) -> FloatArray:
    """Sum a batch ``(n, D)`` of hypervectors into a single ``(D,)`` bundle."""
    arr = np.asarray(vectors, dtype=np.float64)
    if arr.ndim != 2:
        raise DimensionalityError(
            f"bundle expects a 2-D batch, got shape {arr.shape}"
        )
    return arr.sum(axis=0)


def weighted_bundle(vectors: ArrayLike, weights: ArrayLike) -> FloatArray:
    """Weighted sum ``sum_i w_i v_i`` over a batch of hypervectors."""
    arr = np.asarray(vectors, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if arr.ndim != 2:
        raise DimensionalityError(
            f"weighted_bundle expects a 2-D batch, got shape {arr.shape}"
        )
    if w.ndim != 1 or w.shape[0] != arr.shape[0]:
        raise DimensionalityError(
            f"weights shape {w.shape} does not match batch of {arr.shape[0]}"
        )
    return w @ arr


def majority_bundle(vectors: ArrayLike, *, tie_value: int = 1) -> BipolarArray:
    """Majority-rule bundling of bipolar vectors.

    The canonical binary-HDC bundle: each output component is the sign of
    the componentwise sum.  Exact ties (possible for even counts) resolve
    to ``tie_value``.
    """
    if tie_value not in (-1, 1):
        raise ValueError(f"tie_value must be -1 or +1, got {tie_value}")
    total = bundle(vectors)
    out = np.sign(total)
    out[out == 0] = tie_value
    return out.astype(np.int8)


class Accumulator:
    """Incremental bundler used by online training loops.

    Keeps a running float sum so training never materialises the full batch
    of encoded hypervectors.  Supports weighted additions, matching the
    update rules Eq. (7) and Eq. (8).
    """

    def __init__(self, dim: int):
        if dim <= 0:
            raise ValueError(f"dim must be > 0, got {dim}")
        self._sum = np.zeros(dim, dtype=np.float64)
        self._count = 0

    @property
    def dim(self) -> int:
        """Dimensionality of the accumulated hypervector."""
        return int(self._sum.shape[0])

    @property
    def count(self) -> int:
        """Number of (weighted) additions performed so far."""
        return self._count

    def add(self, vector: ArrayLike, weight: float = 1.0) -> None:
        """Add ``weight * vector`` into the running bundle."""
        arr = np.asarray(vector, dtype=np.float64)
        if arr.shape != self._sum.shape:
            raise DimensionalityError(
                f"vector shape {arr.shape} does not match accumulator "
                f"dim {self._sum.shape}"
            )
        self._sum += weight * arr
        self._count += 1

    def value(self) -> FloatArray:
        """Return a copy of the current bundle."""
        return self._sum.copy()

    def mean(self) -> FloatArray:
        """Return the bundle divided by the number of additions."""
        if self._count == 0:
            return self._sum.copy()
        return self._sum / self._count

    def reset(self) -> None:
        """Zero the bundle and the addition counter."""
        self._sum[:] = 0.0
        self._count = 0
