"""Similarity metrics over hypervectors.

RegHD uses two metrics:

* **cosine similarity** (Eq. 5) between an encoded input and the integer
  cluster hypervectors — the full-precision path;
* **normalised Hamming similarity** between binary views — the quantised
  path of Section 3.1, mapped to the same ``[-1, 1]`` range so it can be
  dropped in as a replacement for cosine without retuning the softmax.

All functions accept either a single vector ``(D,)`` or a batch ``(n, D)``
for each argument and broadcast in the usual row-wise way.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionalityError
from repro.types import ArrayLike, FloatArray


def _as_2d(name: str, x: ArrayLike) -> tuple[FloatArray, bool]:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        return arr[np.newaxis, :], True
    if arr.ndim == 2:
        return arr, False
    raise DimensionalityError(f"{name} must be 1-D or 2-D, got shape {arr.shape}")


def _check_same_dim(a: FloatArray, b: FloatArray) -> None:
    if a.shape[-1] != b.shape[-1]:
        raise DimensionalityError(
            f"hypervector dimensionalities differ: {a.shape[-1]} vs {b.shape[-1]}"
        )


def dot_similarity(a: ArrayLike, b: ArrayLike) -> FloatArray | float:
    """Unnormalised dot product ``a . b``.

    The core prediction primitive: RegHD's output is
    ``y_hat = sum_i delta'_i (M_i . S)`` (Eq. 6).  Returns a scalar for two
    single vectors, a vector for one batch, or an ``(n, m)`` matrix for two
    batches.
    """
    a2, a_single = _as_2d("a", a)
    b2, b_single = _as_2d("b", b)
    _check_same_dim(a2, b2)
    out = a2 @ b2.T
    if a_single and b_single:
        return float(out[0, 0])
    if a_single:
        return out[0]
    if b_single:
        return out[:, 0]
    return out


def cosine_similarity(
    a: ArrayLike, b: ArrayLike, *, eps: float = 1e-12
) -> FloatArray | float:
    """Cosine similarity (paper Eq. 5): ``a.b / (|a| |b|)``.

    Zero vectors are treated as having similarity 0 to everything (the
    all-zero initial model hypervector must not produce NaNs on the first
    training sample).
    """
    a2, a_single = _as_2d("a", a)
    b2, b_single = _as_2d("b", b)
    _check_same_dim(a2, b2)
    norm_a = np.linalg.norm(a2, axis=1, keepdims=True)
    norm_b = np.linalg.norm(b2, axis=1, keepdims=True)
    denom = norm_a @ norm_b.T
    out = (a2 @ b2.T) / np.maximum(denom, eps)
    if a_single and b_single:
        return float(out[0, 0])
    if a_single:
        return out[0]
    if b_single:
        return out[:, 0]
    return out


def hamming_distance(a: ArrayLike, b: ArrayLike) -> FloatArray | float:
    """Raw Hamming distance between binary {0,1} hypervectors.

    Counts positions where the operands differ.  Accepts single vectors or
    batches; returns the same shapes as :func:`dot_similarity`.
    """
    a2, a_single = _as_2d("a", a)
    b2, b_single = _as_2d("b", b)
    _check_same_dim(a2, b2)
    # XOR on {0,1} stored as float: |a - b| is 1 exactly where bits differ.
    # Computed via dot products to stay O(n*m*D) vectorised:
    # dist = sum(a) + sum(b) - 2 a.b  for a, b in {0,1}.
    sum_a = a2.sum(axis=1, keepdims=True)
    sum_b = b2.sum(axis=1, keepdims=True)
    out = sum_a + sum_b.T - 2.0 * (a2 @ b2.T)
    if a_single and b_single:
        return float(out[0, 0])
    if a_single:
        return out[0]
    if b_single:
        return out[:, 0]
    return out


def hamming_similarity(a: ArrayLike, b: ArrayLike) -> FloatArray | float:
    """Normalised Hamming similarity mapped onto ``[-1, 1]``.

    ``sim = 1 - 2 * hamming(a, b) / D``.  For binary views of bipolar
    vectors this equals the cosine similarity of the underlying bipolar
    vectors, which is why the Section-3.1 framework can swap it in for
    Eq. (5) without changing the softmax confidence scale.
    """
    dim = np.asarray(a).shape[-1]
    dist = hamming_distance(a, b)
    return 1.0 - 2.0 * dist / float(dim)


def pairwise_cosine(batch: ArrayLike, *, eps: float = 1e-12) -> FloatArray:
    """All-pairs cosine similarity of a batch, as an ``(n, n)`` matrix."""
    arr, _ = _as_2d("batch", batch)
    norms = np.linalg.norm(arr, axis=1, keepdims=True)
    denom = np.maximum(norms @ norms.T, eps)
    return (arr @ arr.T) / denom
