"""Seeded random hypervector generation.

The paper's encoder (Eq. 1) relies on randomly chosen bipolar base
hypervectors being *nearly orthogonal*: for i.i.d. ±1 components the cosine
similarity of two independent D-dimensional vectors concentrates around 0
with standard deviation 1/sqrt(D).  Everything here produces such vectors
deterministically from an explicit seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import BinaryArray, BipolarArray, FloatArray, SeedLike
from repro.utils.rng import as_generator


def _check_shape(count: int, dim: int) -> None:
    if count <= 0:
        raise ConfigurationError(f"count must be > 0, got {count}")
    if dim <= 0:
        raise ConfigurationError(f"dim must be > 0, got {dim}")


def random_bipolar(count: int, dim: int, seed: SeedLike = None) -> BipolarArray:
    """Draw ``count`` i.i.d. bipolar {-1, +1} hypervectors of length ``dim``.

    Independent draws are nearly orthogonal in expectation
    (E[cos] = 0, sd = 1/sqrt(dim)), which is the property Eq. (1) of the
    paper depends on.
    """
    _check_shape(count, dim)
    rng = as_generator(seed)
    bits = rng.integers(0, 2, size=(count, dim), dtype=np.int8)
    return (2 * bits - 1).astype(np.int8)


def random_binary(count: int, dim: int, seed: SeedLike = None) -> BinaryArray:
    """Draw ``count`` i.i.d. binary {0, 1} hypervectors of length ``dim``."""
    _check_shape(count, dim)
    rng = as_generator(seed)
    return rng.integers(0, 2, size=(count, dim), dtype=np.uint8)


def random_gaussian(
    count: int, dim: int, seed: SeedLike = None, *, scale: float = 1.0
) -> FloatArray:
    """Draw ``count`` standard-normal hypervectors (optional ``scale``).

    Gaussian bases are an alternative to bipolar bases in the nonlinear
    encoder; they make the encoding an exact random-Fourier-feature map.
    """
    _check_shape(count, dim)
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    rng = as_generator(seed)
    return rng.normal(0.0, scale, size=(count, dim))


def random_orthogonal_bipolar(
    count: int, dim: int, seed: SeedLike = None, *, max_tries: int = 64
) -> BipolarArray:
    """Draw bipolar hypervectors re-sampled until pairwise |cos| is small.

    Plain i.i.d. draws are already nearly orthogonal; this constructor
    additionally rejects any draw whose cosine similarity to a previously
    accepted vector exceeds ``4 / sqrt(dim)`` (four standard deviations).
    Used where the near-orthogonality assumption must hold strictly, e.g.
    the capacity experiments of Section 2.3.
    """
    _check_shape(count, dim)
    rng = as_generator(seed)
    threshold = 4.0 / np.sqrt(dim)
    accepted = np.empty((count, dim), dtype=np.int8)
    n_accepted = 0
    tries = 0
    while n_accepted < count:
        if tries >= max_tries * count:
            raise ConfigurationError(
                f"could not draw {count} near-orthogonal bipolar vectors of "
                f"dim {dim} within {max_tries * count} tries; increase dim"
            )
        tries += 1
        candidate = (2 * rng.integers(0, 2, size=dim, dtype=np.int8) - 1).astype(
            np.int8
        )
        if n_accepted:
            cos = accepted[:n_accepted] @ candidate.astype(np.float64) / dim
            if np.max(np.abs(cos)) > threshold:
                continue
        accepted[n_accepted] = candidate
        n_accepted += 1
    return accepted


def random_level_set(
    levels: int, dim: int, seed: SeedLike = None
) -> BipolarArray:
    """Generate a set of *level* hypervectors with correlated neighbours.

    Classic HDC level encoding: the first level is a random bipolar vector
    and each subsequent level flips a fresh ``dim / (2 * (levels - 1))``
    coordinates, so similarity decays linearly with level distance — nearby
    scalar values map to similar hypervectors.  Used by the ID-level encoder
    and by the Baseline-HD comparator.
    """
    if levels < 2:
        raise ConfigurationError(f"levels must be >= 2, got {levels}")
    _check_shape(levels, dim)
    rng = as_generator(seed)
    out = np.empty((levels, dim), dtype=np.int8)
    out[0] = (2 * rng.integers(0, 2, size=dim, dtype=np.int8) - 1).astype(np.int8)
    # Flip half the dimensions in total across all transitions so that the
    # first and last level are nearly orthogonal.
    flips_per_step = dim // (2 * (levels - 1))
    order = rng.permutation(dim)
    cursor = 0
    for level in range(1, levels):
        out[level] = out[level - 1]
        to_flip = order[cursor : cursor + flips_per_step]
        out[level, to_flip] = -out[level, to_flip]
        cursor += flips_per_step
    return out
