"""Hyperdimensional-computing primitive operations.

This subpackage is the lowest layer of the library: seeded hypervector
generation, similarity metrics, bundling/binding algebra, and the
quantisers used by RegHD's Section-3 binarisation framework.
"""

from repro.ops.binding import bind, permute, unbind, xor_bind
from repro.ops.bundling import (
    Accumulator,
    bundle,
    majority_bundle,
    weighted_bundle,
)
from repro.ops.item_memory import ItemMemory
from repro.ops.normalize import normalize_rows, softmax
from repro.ops.packing import (
    pack_bits,
    pack_sign_words,
    packed_hamming_distance,
    packed_hamming_similarity,
    packed_sign_products,
    unpack_bits,
)
from repro.ops.generate import (
    random_binary,
    random_bipolar,
    random_gaussian,
    random_level_set,
    random_orthogonal_bipolar,
)
from repro.ops.quantize import (
    binarize,
    bipolarize,
    binary_to_bipolar,
    bipolar_to_binary,
    stochastic_binarize,
)
from repro.ops.similarity import (
    cosine_similarity,
    dot_similarity,
    hamming_distance,
    hamming_similarity,
    pairwise_cosine,
)

__all__ = [
    "bind",
    "permute",
    "unbind",
    "xor_bind",
    "Accumulator",
    "bundle",
    "majority_bundle",
    "weighted_bundle",
    "ItemMemory",
    "normalize_rows",
    "softmax",
    "pack_bits",
    "pack_sign_words",
    "packed_hamming_distance",
    "packed_hamming_similarity",
    "packed_sign_products",
    "unpack_bits",
    "random_binary",
    "random_bipolar",
    "random_gaussian",
    "random_level_set",
    "random_orthogonal_bipolar",
    "binarize",
    "bipolarize",
    "binary_to_bipolar",
    "bipolar_to_binary",
    "stochastic_binarize",
    "cosine_similarity",
    "dot_similarity",
    "hamming_distance",
    "hamming_similarity",
    "pairwise_cosine",
]
