"""Quantisers used by RegHD's Section-3 binarisation framework.

The framework keeps an *integer* (float-stored) working copy of each cluster
and model hypervector and periodically derives a *binary* copy from it with a
single comparison per element ("This quantization assigns each element of
cluster hypervector to 0 or 1 by exploiting a single comparison operation",
Sec. 3.1).  These helpers implement that comparison plus the conversions
between the binary {0,1} and bipolar {-1,+1} views.
"""

from __future__ import annotations

import numpy as np

from repro.types import ArrayLike, BinaryArray, BipolarArray, SeedLike
from repro.utils.rng import as_generator


def binarize(vector: ArrayLike, *, threshold: float = 0.0) -> BinaryArray:
    """Quantise to binary {0, 1}: ``1`` where the element exceeds ``threshold``.

    The single-comparison quantiser of Sec. 3.1.  The default threshold of 0
    is the natural choice for sign-symmetric hypervectors (zero-initialised
    models updated with ±-balanced encodings).
    """
    arr = np.asarray(vector, dtype=np.float64)
    return (arr > threshold).astype(np.uint8)


def bipolarize(vector: ArrayLike, *, tie_value: int = 1) -> BipolarArray:
    """Quantise to bipolar {-1, +1} via the sign function.

    Zeros (exact ties) map to ``tie_value`` so the output never contains 0,
    keeping Hamming/cosine equivalence exact.
    """
    if tie_value not in (-1, 1):
        raise ValueError(f"tie_value must be -1 or +1, got {tie_value}")
    arr = np.asarray(vector, dtype=np.float64)
    out = np.sign(arr)
    out[out == 0] = tie_value
    return out.astype(np.int8)


def binary_to_bipolar(vector: ArrayLike) -> BipolarArray:
    """Map {0, 1} -> {-1, +1} (0 becomes -1)."""
    arr = np.asarray(vector)
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("binary_to_bipolar requires values in {0, 1}")
    return (2 * arr.astype(np.int8) - 1).astype(np.int8)


def bipolar_to_binary(vector: ArrayLike) -> BinaryArray:
    """Map {-1, +1} -> {0, 1} (-1 becomes 0)."""
    arr = np.asarray(vector)
    if not np.isin(arr, (-1, 1)).all():
        raise ValueError("bipolar_to_binary requires values in {-1, +1}")
    return ((arr.astype(np.int8) + 1) // 2).astype(np.uint8)


def stochastic_binarize(
    vector: ArrayLike, seed: SeedLike = None, *, scale: float | None = None
) -> BinaryArray:
    """Randomised quantiser: P(bit = 1) follows a clipped linear sigmoid.

    An unbiased-in-expectation alternative to the deterministic comparison,
    included for the quantisation ablation benchmarks.  ``scale`` defaults
    to the mean absolute element so that typical magnitudes land mid-slope.
    """
    rng = as_generator(seed)
    arr = np.asarray(vector, dtype=np.float64)
    if scale is None:
        mean_abs = float(np.mean(np.abs(arr)))
        scale = mean_abs if mean_abs > 0 else 1.0
    elif scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    prob = np.clip(0.5 + arr / (2.0 * scale), 0.0, 1.0)
    return (rng.random(arr.shape) < prob).astype(np.uint8)


def quantization_error(vector: ArrayLike, quantized: ArrayLike) -> float:
    """Relative L2 error between a hypervector and its (rescaled) quantised view.

    The binary view is first affinely rescaled (least squares) onto the
    original, so the metric reflects *directional* information loss — the
    quantity that matters for similarity search — not magnitude loss.
    """
    orig = np.asarray(vector, dtype=np.float64).ravel()
    quant = np.asarray(quantized, dtype=np.float64).ravel()
    if orig.shape != quant.shape:
        raise ValueError(
            f"shape mismatch: {orig.shape} vs {quant.shape}"
        )
    norm = np.linalg.norm(orig)
    if norm == 0:
        return 0.0
    # Least-squares scale a, offset b minimising |orig - (a*quant + b)|.
    design = np.stack([quant, np.ones_like(quant)], axis=1)
    coef, *_ = np.linalg.lstsq(design, orig, rcond=None)
    residual = orig - design @ coef
    return float(np.linalg.norm(residual) / norm)
