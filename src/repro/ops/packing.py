"""Bit-packed binary hypervectors: the hardware-friendly path, in software.

The Section-3 efficiency argument is that binary hypervectors turn
D-element integer arithmetic into D-*bit* logic.  This module realises
that in software: sign patterns are packed 8-per-byte into ``uint8`` words
and Hamming distances are computed with XOR + a popcount lookup table —
the same computation an FPGA's LUTs or a CPU's ``popcnt`` performs.  The
micro-benchmark ``benchmarks/test_packed_binary.py`` measures the actual
speedup over the float dot product on this machine.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionalityError
from repro.types import ArrayLike, FloatArray

#: popcount of every byte value; fallback when numpy lacks bitwise_count.
_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount(words: np.ndarray) -> np.ndarray:
    """Per-element popcount (hardware ``popcnt`` when numpy provides it)."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    return _POPCOUNT_TABLE[words]


def pack_bits(binary: ArrayLike) -> tuple[np.ndarray, int]:
    """Pack {0,1} rows into uint8 words (8 bits per byte).

    Returns ``(packed, dim)`` where ``packed`` has shape
    ``(n, ceil(dim / 8))`` and ``dim`` is the original bit length (needed
    to undo the zero padding on unpack).
    """
    arr = np.asarray(binary)
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("pack_bits requires a binary {0,1} array")
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise DimensionalityError(
            f"pack_bits expects 1-D or 2-D input, got shape {arr.shape}"
        )
    dim = arr.shape[1]
    packed = np.packbits(arr.astype(np.uint8), axis=1)
    return (packed[0] if single else packed), dim


def unpack_bits(packed: ArrayLike, dim: int) -> np.ndarray:
    """Invert :func:`pack_bits`."""
    arr = np.asarray(packed, dtype=np.uint8)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    if dim <= 0 or dim > arr.shape[1] * 8:
        raise DimensionalityError(
            f"dim {dim} inconsistent with {arr.shape[1]} packed bytes"
        )
    bits = np.unpackbits(arr, axis=1)[:, :dim]
    return bits[0] if single else bits


def _as_words(packed: np.ndarray) -> np.ndarray:
    """Reinterpret packed uint8 rows as uint64 words (zero-padded)."""
    n, n_bytes = packed.shape
    pad = (-n_bytes) % 8
    if pad:
        packed = np.concatenate(
            [packed, np.zeros((n, pad), dtype=np.uint8)], axis=1
        )
    return np.ascontiguousarray(packed).view(np.uint64)


def packed_hamming_distance(a: ArrayLike, b: ArrayLike) -> FloatArray | float:
    """Hamming distance between packed rows: XOR + byte-popcount.

    Accepts single packed vectors or batches; returns the same shapes as
    :func:`repro.ops.similarity.hamming_distance`.  Padding bits cancel in
    the XOR (both operands pad with zeros), so no ``dim`` is needed.
    """
    a_arr = np.asarray(a, dtype=np.uint8)
    b_arr = np.asarray(b, dtype=np.uint8)
    a_single = a_arr.ndim == 1
    b_single = b_arr.ndim == 1
    if a_single:
        a_arr = a_arr[np.newaxis, :]
    if b_single:
        b_arr = b_arr[np.newaxis, :]
    if a_arr.shape[1] != b_arr.shape[1]:
        raise DimensionalityError(
            f"packed widths differ: {a_arr.shape[1]} vs {b_arr.shape[1]}"
        )
    # Widen the packed bytes to uint64 words so XOR + popcount touch 8x
    # fewer elements, then broadcast (n, m, words) and reduce.
    a_words = _as_words(a_arr)
    b_words = _as_words(b_arr)
    xor = np.bitwise_xor(a_words[:, np.newaxis, :], b_words[np.newaxis, :, :])
    out = _popcount(xor).sum(axis=2, dtype=np.int64).astype(np.float64)
    if a_single and b_single:
        return float(out[0, 0])
    if a_single:
        return out[0]
    if b_single:
        return out[:, 0]
    return out


def packed_hamming_similarity(
    a: ArrayLike, b: ArrayLike, dim: int
) -> FloatArray | float:
    """Normalised Hamming similarity on packed operands, in [-1, 1].

    ``dim`` is the original (unpacked) bit length used for normalisation.
    """
    if dim <= 0:
        raise DimensionalityError(f"dim must be > 0, got {dim}")
    return 1.0 - 2.0 * packed_hamming_distance(a, b) / float(dim)
