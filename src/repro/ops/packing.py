"""Compatibility shim: the packing kernels live in :mod:`repro.runtime.packing`.

The bit-packing primitives started life in the ops layer and moved into
the execution runtime when training and serving were unified behind
:class:`~repro.runtime.KernelBackend`.  This module re-exports the public
surface so existing imports (``from repro.ops.packing import ...``) keep
working; new code should import from :mod:`repro.runtime.packing`.
"""

from __future__ import annotations

from repro.runtime.packing import (
    pack_bits,
    pack_sign_words,
    packed_hamming_distance,
    packed_hamming_similarity,
    packed_sign_products,
    unpack_bits,
)

__all__ = [
    "pack_bits",
    "pack_sign_words",
    "packed_hamming_distance",
    "packed_hamming_similarity",
    "packed_sign_products",
    "unpack_bits",
]
