"""Shared row-wise normalisation and softmax primitives.

Every RegHD model runs the same two steps between encoding and learning:
L2-normalise the encoded hypervectors (so the LMS update is stable for
any ``lr < 2`` independent of ``D``) and, for the multi-model variants,
softmax the cluster similarities into per-cluster confidences (Fig. 4).
These used to live as private clones in each model class; this module is
now the single definition both the training path
(:mod:`repro.core`) and the compiled inference engine
(:mod:`repro.engine.kernels`) consume, so the two paths stay bit-exact
by construction.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray


def normalize_rows(S: FloatArray, eps: float = 1e-12) -> FloatArray:
    """L2-normalise each row of ``S``; rows with norm < ``eps`` divide by ``eps``.

    The floor keeps all-zero encodings at zero instead of producing NaNs.
    """
    norms = np.linalg.norm(S, axis=1, keepdims=True)
    return S / np.maximum(norms, eps)


def softmax(scores: FloatArray) -> FloatArray:
    """Row-wise softmax, numerically stabilised by a per-row max shift.

    The shift makes every exponent non-positive, so the largest term is
    exactly ``exp(0) = 1`` and overflow is impossible for any finite
    input; the result is mathematically identical to the unshifted form.
    """
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
