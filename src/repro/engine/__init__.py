"""Packed-binary inference engine: compiled plans for serving traffic.

Training wants mutable dual-copy state; serving wants an immutable,
maximally-preprocessed artefact.  This subpackage separates the two:
:func:`compile_model` freezes a fitted :class:`~repro.core.multi.MultiModelRegHD`
into a :class:`CompiledPlan` — encoder projection, target scaling and the
effective (quantised) hypervectors, with binary operands bit-packed into
``uint64`` words — and the plan predicts through a tiled pipeline
(fused encode → similarity → softmax → accumulate on preallocated
scratch) fanned over a thread pool.

On quantised configurations the similarity search and fully-binary dot
products run as XOR + popcount (Sec. 3's D-bit logic), bit-exact with the
float sign arithmetic they replace; ``repro.engine.bench`` measures the
resulting speedup and seeds ``BENCH_inference.json``.
"""

from repro.engine.bench import (
    compare_inference_records,
    run_inference_benchmark,
)
from repro.engine.plan import CompiledPlan, auto_tile_rows, compile_model

__all__ = [
    "CompiledPlan",
    "auto_tile_rows",
    "compile_model",
    "compare_inference_records",
    "run_inference_benchmark",
]
