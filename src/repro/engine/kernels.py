"""Scratch-buffer tile kernels for the compiled inference engine.

Each helper operates on one row tile of a batch and writes its large
intermediates into caller-provided scratch buffers, so a tile's peak
memory is a fixed number of ``(tile_rows, D)`` arrays no matter how many
rows the full batch has.  Numpy's ufuncs and BLAS release the GIL on
arrays of this size, which is what lets the executor fan tiles out over a
thread pool.

This module owns only the *query-side preparation* — fused encoding,
norms, binarisation scales, sign matrices and packed words derived into
scratch.  The similarity / softmax / dot-product arithmetic itself lives
in :mod:`repro.runtime` and is reached through the plan's
:class:`~repro.runtime.KernelBackend`, so serving and training share one
kernel layer by construction.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.fused import FusedScratch
from repro.runtime.packing import pack_sign_words
from repro.types import FloatArray


class TileScratch:
    """Preallocated buffers for one in-flight tile (one set per worker).

    ``fused=True`` builds the block-sized buffers of the fused
    encode→pack pipeline *instead of* the full ``(tile_rows, dim)`` float
    slabs — a fused tile never materialises the float encoding, so its
    scratch is a fraction of the unfused set.
    """

    def __init__(self, tile_rows: int, dim: int, *, fused: bool = False):
        self.tile_rows = int(tile_rows)
        self.dim = int(dim)
        if fused:
            self.main = self.aux = self.bits = None
            self.fused = FusedScratch(tile_rows, dim)
            return
        self.fused = None
        #: primary float buffer: raw encoding, then normalised encoding
        self.main = np.empty((tile_rows, dim), dtype=np.float64)
        #: secondary float buffer: trig temporary, |S|, then sign matrix
        self.aux = np.empty((tile_rows, dim), dtype=np.float64)
        #: boolean sign-bit buffer feeding the word packer
        self.bits = np.empty((tile_rows, dim), dtype=np.bool_)

    @property
    def nbytes(self) -> int:
        """Total scratch footprint in bytes."""
        if self.fused is not None:
            return self.fused.nbytes
        return self.main.nbytes + self.aux.nbytes + self.bits.nbytes


def encode_tile(
    X: FloatArray,
    bases: FloatArray,
    phases: FloatArray,
    scale: float,
    scratch: TileScratch,
) -> FloatArray:
    """Nonlinear encode (Eq. 1) of a tile into ``scratch.main``.

    Computes ``cos(X @ B * scale + phase) * sin(X @ B * scale)`` with the
    same elementwise operation order as
    :class:`~repro.encoding.nonlinear.NonlinearEncoder`, so per-row
    results match the un-tiled encoder.
    """
    t = X.shape[0]
    proj = scratch.main[:t]
    tmp = scratch.aux[:t]
    np.dot(X, bases, out=proj)
    np.multiply(proj, scale, out=proj)
    np.add(proj, phases, out=tmp)
    np.cos(tmp, out=tmp)
    np.sin(proj, out=proj)
    np.multiply(proj, tmp, out=proj)
    return proj


def row_norms(S: FloatArray, eps: float = 1e-12) -> FloatArray:
    """Euclidean row norms, floored at ``eps`` (the same floor as
    :func:`repro.ops.normalize.normalize_rows`)."""
    norms = np.linalg.norm(S, axis=1)
    np.maximum(norms, eps, out=norms)
    return norms


def query_scales(S: FloatArray, norms: FloatArray, scratch: TileScratch) -> FloatArray:
    """Per-row binarisation scale of the *normalised* queries.

    ``mean(|S / norm|) == mean(|S|) / norm``, so the scale is computed
    from the raw encoding without materialising the normalised tile.
    Rows whose scale is zero (all-zero encodings) binarise to zero,
    matching :func:`repro.core.quantization.binarize_preserving_scale`.
    """
    t = S.shape[0]
    absS = np.abs(S, out=scratch.aux[:t])
    scales = absS.mean(axis=1)
    scales /= norms
    return scales


def sign_matrix(S: FloatArray, scratch: TileScratch) -> FloatArray:
    """±1 sign pattern of a tile (ties → +1) built in ``scratch.aux``."""
    t = S.shape[0]
    bits = np.greater_equal(S, 0, out=scratch.bits[:t])
    signs = np.multiply(bits, 2.0, out=scratch.aux[:t])
    np.subtract(signs, 1.0, out=signs)
    return signs


def packed_query_words(S: FloatArray, scratch: TileScratch) -> np.ndarray:
    """Pack a tile's sign bits into uint64 words via the shared scratch."""
    return pack_sign_words(S, out_bits=scratch.bits)
