"""Inference throughput/latency harness: float vs packed vs v2 vs threaded.

Shared by the CLI ``bench`` subcommand and
``benchmarks/test_engine_throughput.py``.  For each hypervector
dimensionality it times four serving paths on the same fitted, quantised
model (``cluster_quant=framework``, ``predict_quant=binary_both`` — the
configuration where every heavy stage binarises):

* ``float`` — the legacy :meth:`MultiModelRegHD.predict` path (float
  sign matmuls);
* ``packed`` — a compiled plan on the requested backend (default: the
  first-generation XOR + popcount backend), single-threaded;
* ``packed_v2`` — a compiled plan pinned to the second-generation
  backend (fused encode→pack, cache-blocked popcount), single-threaded;
* ``packed_mt`` — the ``packed_v2`` plan fanned over the persistent
  thread pool (sequential fallback below the measured work cutoff, so
  it is never slower than ``packed_v2``).

The emitted dict is what ``BENCH_inference.json`` stores at the repo
root: rows/sec plus p50/p99 per-batch latency for every (dim, variant)
cell, and per-dim speedup ratios of the packed paths over the float
path — the regression baseline ``repro bench --compare`` checks against.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.config import RegHDConfig
from repro.core.multi import MultiModelRegHD
from repro.core.quantization import ClusterQuant, PredictQuant
from repro.runtime import RUNTIME_VERSION, resolve_backend
from repro.telemetry.timing import monotonic

#: Dimensionalities swept by the full benchmark (paper Sec. 4 uses 4k-10k).
DEFAULT_DIMS = (1000, 4096, 10000)


def _fitted_model(
    dim: int, features: int, seed: int, n_models: int = 8
) -> MultiModelRegHD:
    """A minimally-trained quantised model (state, not quality, matters)."""
    model = MultiModelRegHD(
        features,
        RegHDConfig(
            dim=dim,
            n_models=n_models,
            seed=seed,
            cluster_quant=ClusterQuant.FRAMEWORK,
            predict_quant=PredictQuant.BINARY_BOTH,
        ),
    )
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(256, features))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
    model.partial_fit(X, y)
    return model


def _time_predictor(predict, X, repeats: int, warmup: int = 1) -> dict:
    """Latency/throughput stats for one predictor over ``repeats`` batches."""
    for _ in range(warmup):
        predict(X)
    latencies = np.empty(repeats)
    for i in range(repeats):
        start = monotonic()
        predict(X)
        latencies[i] = monotonic() - start
    return {
        "batch_rows": int(X.shape[0]),
        "repeats": int(repeats),
        "rows_per_s": float(X.shape[0] * repeats / latencies.sum()),
        "mean_ms": float(latencies.mean() * 1e3),
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
    }


def run_inference_benchmark(
    *,
    dims: tuple[int, ...] = DEFAULT_DIMS,
    batch_rows: int = 2048,
    repeats: int = 10,
    features: int = 16,
    n_workers: int = 4,
    seed: int = 0,
    quick: bool = False,
    backend: str = "packed",
) -> dict:
    """Measure the three serving paths across ``dims``.

    ``quick=True`` shrinks the sweep (drops D = 10k, smaller batches,
    fewer repeats) to a CI-friendly smoke run that still yields the
    packed-vs-float comparison at D = 4096.  ``backend`` selects the
    execution-runtime backend for the ``packed`` cell; the ``packed_v2``
    and ``packed_mt`` cells always run the second-generation backend and
    the ``float`` cell always runs the uncompiled model path.
    """
    if quick:
        dims = tuple(d for d in dims if d <= 4096) or dims[:1]
        batch_rows = min(batch_rows, 512)
        repeats = min(repeats, 3)

    runtime = resolve_backend(backend)
    rng = np.random.default_rng(seed + 1)
    results: list[dict] = []
    speedups: dict[str, dict[str, float]] = {}
    for dim in dims:
        model = _fitted_model(dim, features, seed)
        plan = model.compile(backend=runtime, n_workers=1)
        plan_v2 = model.compile(backend="packed_v2", n_workers=1)
        X = rng.normal(size=(batch_rows, features))

        cells = {
            "float": _time_predictor(model.predict, X, repeats),
            "packed": _time_predictor(plan.predict, X, repeats),
            "packed_v2": _time_predictor(plan_v2.predict, X, repeats),
            "packed_mt": _time_predictor(
                lambda batch: plan_v2.predict(batch, n_workers=n_workers),
                X,
                repeats,
            ),
        }
        for variant, stats in cells.items():
            results.append({"dim": int(dim), "variant": variant, **stats})
        speedups[str(dim)] = {
            "packed_vs_float": cells["packed"]["rows_per_s"]
            / cells["float"]["rows_per_s"],
            "packed_v2_vs_float": cells["packed_v2"]["rows_per_s"]
            / cells["float"]["rows_per_s"],
            "packed_v2_vs_packed": cells["packed_v2"]["rows_per_s"]
            / cells["packed"]["rows_per_s"],
            "packed_mt_vs_float": cells["packed_mt"]["rows_per_s"]
            / cells["float"]["rows_per_s"],
        }

    return {
        "schema": 1,
        "benchmark": "reghd-inference-engine",
        "quant": {"cluster": "framework", "predict": "binary_both"},
        "quick": bool(quick),
        "params": {
            "dims": [int(d) for d in dims],
            "batch_rows": int(batch_rows),
            "repeats": int(repeats),
            "features": int(features),
            "n_workers": int(n_workers),
            "n_models": 8,
            "seed": int(seed),
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
        },
        "runtime": {
            "backend": runtime.name,
            "version": RUNTIME_VERSION,
        },
        "results": results,
        "speedups": speedups,
    }


# -- regression gate ---------------------------------------------------------

#: workload-parameter keys that must match for any comparison at all:
#: both raw rows/s *and* the speedup ratios shift with batch size (small
#: batches compress every packed speedup as python overhead dominates),
#: so a quick-mode record can never be gated against a full-sweep one.
_STRICT_KEYS = ("batch_rows", "repeats", "features", "n_workers")


def compare_inference_records(
    baseline: dict, current: dict, *, threshold: float = 0.10
) -> dict:
    """Diff two inference-benchmark records; flag throughput regressions.

    Records produced with different benchmark parameters (quick vs full
    sweep) are declared incomparable — both raw throughput and the
    speedup ratios are workload-dependent — and the gate passes with a
    ``note`` explaining why nothing was diffed.  With matching
    parameters, same core count means every shared ``(dim, variant)``
    cell's ``rows_per_s`` is compared directly and a drop larger than
    ``threshold`` is a regression; a different machine falls back to the
    machine-independent *speedup ratios* (packed paths over the float
    path on the same host).  Cross-machine comparison and quick-mode
    records each double the slack (without compounding) — smoke runs
    are noisy enough that only catastrophic drops are signal.

    The ``packed`` cell runs whatever backend the record requested, so
    that cell — and every ratio built on it — is only diffed when both
    records requested the same backend; the ``float``, ``packed_v2`` and
    ``packed_mt`` cells are pinned and always comparable.

    Returns a dict with ``strict`` (which mode ran), ``compared`` (cells
    diffed), ``lines`` (human-readable diff rows), ``regressions`` (the
    subset that breached the threshold; empty means the gate passes) and
    ``note`` (non-``None`` when something was skipped wholesale).  Cells
    present on only one side are skipped, so a baseline predating a
    variant never fails the gate spuriously.
    """
    lines: list[str] = []
    regressions: list[str] = []
    note: str | None = None
    if any(
        baseline.get("params", {}).get(k) != current.get("params", {}).get(k)
        for k in _STRICT_KEYS
    ):
        return {
            "strict": False,
            "threshold": float(threshold),
            "compared": 0,
            "lines": [],
            "regressions": [],
            "note": (
                "benchmark parameters differ (quick vs full sweep?) — "
                "throughput and speedup ratios are workload-dependent, "
                "nothing to gate"
            ),
        }
    backend_match = baseline.get("runtime", {}).get("backend") == current.get(
        "runtime", {}
    ).get("backend")
    if not backend_match:
        note = (
            "requested backends differ; the `packed` cell and its "
            "ratios were skipped"
        )
    strict = baseline.get("machine", {}).get("cpu_count") == current.get(
        "machine", {}
    ).get("cpu_count")
    # Quick-mode smoke runs (small batches, few repeats) carry enough
    # run-to-run noise that only catastrophic drops are signal; crossing
    # machines makes even the speedup ratios softer.  Either condition
    # doubles the slack (they do not compound).
    quick = bool(baseline.get("quick") or current.get("quick"))
    cut = 1.0 - threshold * (2.0 if quick or not strict else 1.0)
    if strict:
        base = {
            (r["dim"], r["variant"]): r["rows_per_s"]
            for r in baseline.get("results", [])
        }
        for r in current.get("results", []):
            key = (r["dim"], r["variant"])
            if key not in base or not base[key]:
                continue
            if key[1] == "packed" and not backend_match:
                continue
            ratio = r["rows_per_s"] / base[key]
            line = (
                f"D={key[0]} {key[1]}: {base[key]:,.0f} -> "
                f"{r['rows_per_s']:,.0f} rows/s ({(ratio - 1) * 100:+.1f}%)"
            )
            lines.append(line)
            if ratio < cut:
                regressions.append(line)
    else:
        for dim, ratios in current.get("speedups", {}).items():
            base_ratios = baseline.get("speedups", {}).get(dim, {})
            for name, cur_val in ratios.items():
                base_val = base_ratios.get(name)
                if not base_val:
                    continue
                if "packed" in name.split("_vs_") and not backend_match:
                    continue
                rel = cur_val / base_val
                line = (
                    f"D={dim} {name}: {base_val:.2f}x -> {cur_val:.2f}x "
                    f"({(rel - 1) * 100:+.1f}%)"
                )
                lines.append(line)
                if rel < cut:
                    regressions.append(line)
    return {
        "strict": strict,
        "threshold": float(threshold),
        "compared": len(lines),
        "lines": lines,
        "regressions": regressions,
        "note": note,
    }
