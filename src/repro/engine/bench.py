"""Inference throughput/latency harness: float vs packed vs threaded.

Shared by the CLI ``bench`` subcommand and
``benchmarks/test_engine_throughput.py``.  For each hypervector
dimensionality it times three serving paths on the same fitted, quantised
model (``cluster_quant=framework``, ``predict_quant=binary_both`` — the
configuration where every heavy stage binarises):

* ``float`` — the legacy :meth:`MultiModelRegHD.predict` path (float
  sign matmuls);
* ``packed`` — a compiled plan on the XOR + popcount backend,
  single-threaded;
* ``packed_mt`` — the same plan fanned over the thread pool.

The emitted dict is what ``BENCH_inference.json`` stores at the repo
root: rows/sec plus p50/p99 per-batch latency for every (dim, variant)
cell, and per-dim speedup ratios of the packed paths over the float
path — the regression baseline later PRs check against.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.config import RegHDConfig
from repro.core.multi import MultiModelRegHD
from repro.core.quantization import ClusterQuant, PredictQuant
from repro.runtime import RUNTIME_VERSION, resolve_backend
from repro.telemetry.timing import monotonic

#: Dimensionalities swept by the full benchmark (paper Sec. 4 uses 4k-10k).
DEFAULT_DIMS = (1000, 4096, 10000)


def _fitted_model(
    dim: int, features: int, seed: int, n_models: int = 8
) -> MultiModelRegHD:
    """A minimally-trained quantised model (state, not quality, matters)."""
    model = MultiModelRegHD(
        features,
        RegHDConfig(
            dim=dim,
            n_models=n_models,
            seed=seed,
            cluster_quant=ClusterQuant.FRAMEWORK,
            predict_quant=PredictQuant.BINARY_BOTH,
        ),
    )
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(256, features))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
    model.partial_fit(X, y)
    return model


def _time_predictor(predict, X, repeats: int, warmup: int = 1) -> dict:
    """Latency/throughput stats for one predictor over ``repeats`` batches."""
    for _ in range(warmup):
        predict(X)
    latencies = np.empty(repeats)
    for i in range(repeats):
        start = monotonic()
        predict(X)
        latencies[i] = monotonic() - start
    return {
        "batch_rows": int(X.shape[0]),
        "repeats": int(repeats),
        "rows_per_s": float(X.shape[0] * repeats / latencies.sum()),
        "mean_ms": float(latencies.mean() * 1e3),
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
    }


def run_inference_benchmark(
    *,
    dims: tuple[int, ...] = DEFAULT_DIMS,
    batch_rows: int = 2048,
    repeats: int = 10,
    features: int = 16,
    n_workers: int = 4,
    seed: int = 0,
    quick: bool = False,
    backend: str = "packed",
) -> dict:
    """Measure the three serving paths across ``dims``.

    ``quick=True`` shrinks the sweep (drops D = 10k, smaller batches,
    fewer repeats) to a CI-friendly smoke run that still yields the
    packed-vs-float comparison at D = 4096.  ``backend`` selects the
    execution-runtime backend the compiled plan dispatches through for
    the ``packed``/``packed_mt`` cells (the ``float`` cell always runs
    the uncompiled model path).
    """
    if quick:
        dims = tuple(d for d in dims if d <= 4096) or dims[:1]
        batch_rows = min(batch_rows, 512)
        repeats = min(repeats, 3)

    runtime = resolve_backend(backend)
    rng = np.random.default_rng(seed + 1)
    results: list[dict] = []
    speedups: dict[str, dict[str, float]] = {}
    for dim in dims:
        model = _fitted_model(dim, features, seed)
        plan = model.compile(backend=runtime, n_workers=1)
        X = rng.normal(size=(batch_rows, features))

        cells = {
            "float": _time_predictor(model.predict, X, repeats),
            "packed": _time_predictor(plan.predict, X, repeats),
            "packed_mt": _time_predictor(
                lambda batch: plan.predict(batch, n_workers=n_workers),
                X,
                repeats,
            ),
        }
        for variant, stats in cells.items():
            results.append({"dim": int(dim), "variant": variant, **stats})
        speedups[str(dim)] = {
            "packed_vs_float": cells["packed"]["rows_per_s"]
            / cells["float"]["rows_per_s"],
            "packed_mt_vs_float": cells["packed_mt"]["rows_per_s"]
            / cells["float"]["rows_per_s"],
        }

    return {
        "schema": 1,
        "benchmark": "reghd-inference-engine",
        "quant": {"cluster": "framework", "predict": "binary_both"},
        "quick": bool(quick),
        "params": {
            "dims": [int(d) for d in dims],
            "batch_rows": int(batch_rows),
            "repeats": int(repeats),
            "features": int(features),
            "n_workers": int(n_workers),
            "n_models": 8,
            "seed": int(seed),
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
        },
        "runtime": {
            "backend": runtime.name,
            "version": RUNTIME_VERSION,
        },
        "results": results,
        "speedups": speedups,
    }
