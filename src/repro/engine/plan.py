"""Compile a fitted RegHD model into a frozen execution plan.

:func:`compile_model` snapshots everything prediction needs — the encoder
projection, the target scaling, and the *effective* cluster/model
hypervectors under the configured Section-3 quantisation — into an
immutable :class:`CompiledPlan`.  Binary operands are bit-packed into
``uint64`` words at compile time, so at serve time the quantised
similarity search and the fully-binary model dot products run as XOR +
popcount instead of float matrix products (paper Sec. 3: D-*bit* logic in
place of D-element arithmetic).

The plan is a value, not a view: further training of the source model
does not change a compiled plan, and a plan never mutates the model.
That makes plans safe to hand to serving threads while the online learner
keeps updating — the streaming wrappers recompile after each absorbed
batch (see :meth:`repro.streaming.StreamingRegHD.predict`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.multi import MultiModelRegHD
from repro.core.quantization import ClusterQuant, PredictQuant
from repro.encoding.base import Encoder
from repro.encoding.nonlinear import NonlinearEncoder
from repro.exceptions import (
    ConfigurationError,
    EncodingError,
    NotFittedError,
)
from repro.ops.packing import pack_sign_words
from repro.types import ArrayLike, FloatArray
from repro.utils.validation import check_2d


def _frozen(array: np.ndarray) -> np.ndarray:
    """A contiguous, read-only float64/uint64-preserving copy."""
    out = np.ascontiguousarray(np.array(array, copy=True))
    out.flags.writeable = False
    return out


@dataclass(frozen=True, repr=False)
class CompiledPlan:
    """An immutable, executable snapshot of a fitted RegHD model.

    Instances are produced by :func:`compile_model` (or the convenience
    :meth:`MultiModelRegHD.compile <repro.core.multi.MultiModelRegHD.compile>`)
    and execute prediction through the tiled engine via :meth:`predict`.
    All array fields are read-only; the plan shares no mutable state with
    the model it was compiled from.

    Exactly one of each operand pair is populated, depending on the
    quantisation scheme and the ``packed`` compile flag:

    * cluster search — ``cluster_matT``/``cluster_norms`` (full-precision
      cosine), ``cluster_signsT`` (float sign search), or
      ``cluster_words`` (packed Hamming search);
    * model dots — ``model_matT`` (float matmul against the effective
      models) or ``model_words``/``model_scales`` (packed sign products,
      fully-binary configs only).
    """

    in_features: int
    dim: int
    n_models: int
    softmax_temp: float
    cluster_quant: ClusterQuant
    predict_quant: PredictQuant
    y_mean: float
    y_scale: float
    packed_sims: bool
    packed_dots: bool
    tile_rows: int
    n_workers: int
    # encoder snapshot (fast fused path) or opaque fallback encoder
    enc_bases: FloatArray | None = field(default=None)
    enc_phases: FloatArray | None = field(default=None)
    enc_scale: float = 1.0
    encoder: Encoder | None = field(default=None)
    # cluster-search operands
    cluster_matT: FloatArray | None = field(default=None)
    cluster_norms: FloatArray | None = field(default=None)
    cluster_signsT: FloatArray | None = field(default=None)
    cluster_words: np.ndarray | None = field(default=None)
    # model dot-product operands
    model_matT: FloatArray | None = field(default=None)
    model_words: np.ndarray | None = field(default=None)
    model_scales: FloatArray | None = field(default=None)

    @property
    def packed(self) -> bool:
        """Whether any stage of this plan runs on packed words."""
        return self.packed_sims or self.packed_dots

    @property
    def needs_normalized(self) -> bool:
        """Whether the pipeline must materialise the normalised encoding.

        Fully sign-based stages (packed or float sign search, binary
        queries) are invariant to the positive per-row normalisation, so
        the ``(tile, D)`` division is skipped unless a full-precision
        stage consumes the normalised rows.
        """
        return (
            self.cluster_quant is ClusterQuant.NONE
            or not self.predict_quant.query_is_binary
        )

    @property
    def needs_signs(self) -> bool:
        """Whether a float ±1 sign matrix of the queries is required."""
        unpacked_sign_search = (
            self.cluster_quant is not ClusterQuant.NONE and not self.packed_sims
        )
        unpacked_binary_query = (
            self.predict_quant.query_is_binary and not self.packed_dots
        )
        return unpacked_sign_search or unpacked_binary_query

    @property
    def needs_words(self) -> bool:
        """Whether the queries are packed into uint64 sign words."""
        return self.packed_sims or self.packed_dots

    @property
    def nbytes(self) -> int:
        """Total bytes held by the plan's operand arrays."""
        total = 0
        for arr in (
            self.enc_bases,
            self.enc_phases,
            self.cluster_matT,
            self.cluster_norms,
            self.cluster_signsT,
            self.cluster_words,
            self.model_matT,
            self.model_words,
            self.model_scales,
        ):
            if arr is not None:
                total += arr.nbytes
        return total

    def predict(
        self,
        X: ArrayLike,
        *,
        tile_rows: int | None = None,
        n_workers: int | None = None,
    ) -> FloatArray:
        """Predict targets (original units) for raw feature rows.

        Equivalent to :meth:`MultiModelRegHD.predict
        <repro.core.multi.MultiModelRegHD.predict>` on the model state at
        compile time (bit-exact packed similarity scores; predictions
        match to float rounding).  ``tile_rows``/``n_workers`` override
        the compile-time execution knobs for this call only.
        """
        from repro.engine.executor import execute_plan

        X_arr = check_2d("X", X)
        if X_arr.shape[1] != self.in_features:
            raise EncodingError(
                f"expected {self.in_features} features, got {X_arr.shape[1]}"
            )
        return execute_plan(
            self,
            X_arr,
            tile_rows=self.tile_rows if tile_rows is None else int(tile_rows),
            n_workers=self.n_workers if n_workers is None else int(n_workers),
        )

    def __repr__(self) -> str:
        backend = []
        backend.append("packed-sims" if self.packed_sims else "float-sims")
        backend.append("packed-dots" if self.packed_dots else "float-dots")
        return (
            f"CompiledPlan(in_features={self.in_features}, dim={self.dim}, "
            f"k={self.n_models}, cluster_quant={self.cluster_quant.value}, "
            f"predict_quant={self.predict_quant.value}, "
            f"backend={'+'.join(backend)}, tile_rows={self.tile_rows}, "
            f"n_workers={self.n_workers})"
        )


def auto_tile_rows(dim: int, budget_bytes: int = 24 << 20) -> int:
    """Tile height whose scratch set (~17 bytes/element) fits the budget."""
    rows = budget_bytes // (17 * max(1, dim))
    return int(min(4096, max(64, rows)))


def compile_model(
    model: MultiModelRegHD,
    *,
    packed: bool | None = None,
    tile_rows: int | None = None,
    n_workers: int = 1,
) -> CompiledPlan:
    """Compile a fitted :class:`MultiModelRegHD` into a :class:`CompiledPlan`.

    Parameters
    ----------
    model:
        A fitted multi-model RegHD instance.  The plan copies every
        operand it needs; the model can keep training afterwards without
        affecting the plan.
    packed:
        ``True`` forces the packed popcount backend wherever the
        quantisation scheme permits it (quantised cluster search, fully
        binary dot products); ``False`` keeps every stage on float
        operands; ``None`` (default) picks packed automatically exactly
        when some stage benefits.
    tile_rows:
        Rows per execution tile.  ``None`` sizes tiles so one worker's
        scratch stays near 24 MiB (:func:`auto_tile_rows`).
    n_workers:
        Default thread count for :meth:`CompiledPlan.predict`.  ``1``
        runs the single-threaded fallback loop with one scratch set.

    Raises
    ------
    NotFittedError
        If the model has not been fitted.
    ConfigurationError
        If ``model`` is not a :class:`MultiModelRegHD` or the knobs are
        out of range.
    """
    if not isinstance(model, MultiModelRegHD):
        raise ConfigurationError(
            f"compile_model supports MultiModelRegHD, got "
            f"{type(model).__name__}"
        )
    if not model.fitted:
        raise NotFittedError("compile_model called before fit")
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    cfg = model.config
    if tile_rows is None:
        tile_rows = auto_tile_rows(cfg.dim)
    elif tile_rows < 1:
        raise ConfigurationError(f"tile_rows must be >= 1, got {tile_rows}")

    quantised_search = cfg.cluster_quant is not ClusterQuant.NONE
    fully_binary_dots = cfg.predict_quant is PredictQuant.BINARY_BOTH
    if packed is None:
        packed = quantised_search or fully_binary_dots
    packed_sims = bool(packed) and quantised_search
    packed_dots = bool(packed) and fully_binary_dots

    # Encoder snapshot: the fused tile kernel needs the projection
    # operands; other encoder types fall back to their encode_batch.
    enc_bases = enc_phases = None
    enc_scale = 1.0
    encoder: Encoder | None = None
    if type(model.encoder) is NonlinearEncoder:
        enc_bases = _frozen(model.encoder.bases)
        enc_phases = _frozen(model.encoder.phases)
        enc_scale = float(model.encoder.scale)
    else:
        encoder = model.encoder

    # Cluster-search operands (Eq. 5 or its Hamming replacement).
    cluster_matT = cluster_norms = cluster_signsT = cluster_words = None
    if not quantised_search:
        C = model.clusters.integer
        cluster_matT = _frozen(C.T)
        cluster_norms = _frozen(
            np.maximum(np.linalg.norm(C, axis=1), 1e-12)
        )
    elif packed_sims:
        cluster_words = _frozen(pack_sign_words(model.clusters.view(binary=True)))
    else:
        cluster_signsT = _frozen(model.clusters.signs.T)

    # Model dot-product operands (Eq. 6 under the Sec.-3.2 scheme).
    model_matT = model_words = model_scales = None
    if packed_dots:
        M = model.models.integer
        model_words = _frozen(pack_sign_words(M))
        model_scales = _frozen(np.mean(np.abs(M), axis=1))
    else:
        model_matT = _frozen(model._effective_models().T)

    return CompiledPlan(
        in_features=model.in_features,
        dim=cfg.dim,
        n_models=cfg.n_models,
        softmax_temp=float(cfg.softmax_temp),
        cluster_quant=cfg.cluster_quant,
        predict_quant=cfg.predict_quant,
        y_mean=float(model.scaler.mean),
        y_scale=float(model.scaler.scale),
        packed_sims=packed_sims,
        packed_dots=packed_dots,
        tile_rows=int(tile_rows),
        n_workers=int(n_workers),
        enc_bases=enc_bases,
        enc_phases=enc_phases,
        enc_scale=enc_scale,
        encoder=encoder,
        cluster_matT=cluster_matT,
        cluster_norms=cluster_norms,
        cluster_signsT=cluster_signsT,
        cluster_words=cluster_words,
        model_matT=model_matT,
        model_words=model_words,
        model_scales=model_scales,
    )
