"""Compile a fitted RegHD model into a frozen execution plan.

:func:`compile_model` snapshots everything prediction needs — the encoder
projection, the target scaling, and the *effective* cluster/model
hypervectors under the configured Section-3 quantisation — into a
:class:`CompiledPlan`.  The operands are frozen
:class:`~repro.runtime.FrozenClusterOperand` /
:class:`~repro.runtime.FrozenModelOperand` snapshots built for a
:class:`~repro.runtime.KernelBackend`: under the packed backend the
binary operands are bit-packed into ``uint64`` words at compile time, so
at serve time the quantised similarity search and the fully-binary model
dot products run as XOR + popcount instead of float matrix products
(paper Sec. 3: D-*bit* logic in place of D-element arithmetic).

The plan is a value, not a view: further training of the source model
does not change a compiled plan, and a plan never mutates the model.
That makes plans safe to hand to serving threads while the online
learner keeps updating.  When the learner wants the plan to catch up it
calls :meth:`CompiledPlan.refresh` explicitly — an *incremental* update
that re-packs only the operand rows whose sign pattern actually moved
(see :meth:`repro.streaming.StreamingRegHD.update`), instead of
recompiling the whole plan after every absorbed batch.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.core.multi import MultiModelRegHD
from repro.core.quantization import ClusterQuant, PredictQuant
from repro.encoding.base import Encoder
from repro.encoding.nonlinear import NonlinearEncoder
from repro.exceptions import (
    ConfigurationError,
    EncodingError,
    NotFittedError,
)
from repro.runtime import (
    BACKEND_ENV_VAR,
    EncoderOperands,
    FrozenClusterOperand,
    FrozenModelOperand,
    KernelBackend,
    freeze_cluster_operand,
    freeze_model_operand,
    refresh_cluster_operand,
    refresh_model_operand,
    resolve_backend,
)
from repro.telemetry import metrics as _metrics
from repro.types import ArrayLike, FloatArray
from repro.utils.rng import derive_generator
from repro.utils.validation import check_2d


@dataclass(frozen=True)
class EncoderSpec:
    """Seed provenance of a :class:`NonlinearEncoder`, in place of its arrays.

    A rematerialised plan (``compile_model(..., rematerialize=True)``)
    stores this spec instead of the frozen ``(in_features, dim)``
    projection matrix; :meth:`materialize` re-draws bit-identical bases
    and phases from the seeded RNG at execution time — trading a cheap
    regeneration per predict call for most of the plan's memory (the
    Schmuck et al. rematerialisation trade, PAPERS.md).
    """

    in_features: int
    dim: int
    seed: int
    base: str
    scale: float | None

    def materialize(self) -> NonlinearEncoder:
        """Re-draw the encoder exactly as the model constructor did."""
        return NonlinearEncoder(
            self.in_features,
            self.dim,
            derive_generator(self.seed, 0),
            base=self.base,
            scale=self.scale,
        )


class RefreshStats(dict):
    """Snapshot/refresh counters of a plan, with dict compatibility.

    Keys: ``compiles`` (full compilations — always 1 for a live plan),
    ``rows_snapshotted`` (operand rows copied at compile time),
    ``refreshes`` (incremental :meth:`CompiledPlan.refresh` calls),
    ``rows_refreshed`` / ``rows_reused`` (per-row refresh split).  A full
    ``compile()`` and an incremental ``refresh()`` are therefore
    distinguishable: compiles touch ``compiles``/``rows_snapshotted``
    only, refreshes touch the other three.

    :meth:`reset` zeroes the *incremental* counters on the owning plan
    (``refreshes``, ``rows_refreshed``, ``rows_reused``), so a caller can
    measure one window of streaming refreshes; the compile-time
    provenance keys are preserved.  The instance itself is a value copy —
    mutating it does not touch the plan.
    """

    def __init__(self, data: dict, owner: "CompiledPlan"):
        super().__init__(data)
        self._owner = owner

    def reset(self) -> None:
        """Zero the owning plan's incremental refresh counters."""
        stats = self._owner._refresh["stats"]
        for key in ("refreshes", "rows_refreshed", "rows_reused"):
            stats[key] = 0
            self[key] = 0


def _frozen(array: np.ndarray) -> np.ndarray:
    """A contiguous, read-only float64/uint64-preserving copy."""
    out = np.ascontiguousarray(np.array(array, copy=True))
    out.flags.writeable = False
    return out


@dataclass(frozen=True, repr=False, eq=False)
class CompiledPlan:
    """An executable snapshot of a fitted RegHD model.

    Instances are produced by :func:`compile_model` (or the convenience
    :meth:`MultiModelRegHD.compile <repro.core.multi.MultiModelRegHD.compile>`)
    and execute prediction through the tiled engine via :meth:`predict`.
    All operand arrays are read-only; the plan never mutates the model it
    was compiled from, and training the model does not change the plan.
    The only sanctioned mutation is :meth:`refresh`, which incrementally
    re-snapshots the operands from the source model.

    The operands live in ``cluster_op`` / ``model_op``
    (:class:`~repro.runtime.FrozenClusterOperand` /
    :class:`~repro.runtime.FrozenModelOperand`); which representation
    each carries depends on the quantisation scheme and the compiled
    backend — full-precision matrices, a float sign matrix, or bit-packed
    ``uint64`` words.  The flat ``cluster_matT`` / ``cluster_words`` /
    ``model_matT`` / … accessors expose them under their historical
    names.
    """

    in_features: int
    dim: int
    n_models: int
    softmax_temp: float
    cluster_quant: ClusterQuant
    predict_quant: PredictQuant
    y_mean: float
    y_scale: float
    packed_sims: bool
    packed_dots: bool
    tile_rows: int
    n_workers: int
    #: the kernel backend the executor dispatches through
    backend: KernelBackend
    #: frozen cluster-search operands (Eq. 5 or its Hamming replacement)
    cluster_op: FrozenClusterOperand
    #: frozen model dot-product operands (Eq. 6 under the Sec.-3.2 scheme)
    model_op: FrozenModelOperand
    # encoder snapshot (fast fused path) or opaque fallback encoder
    enc_bases: FloatArray | None = field(default=None)
    enc_phases: FloatArray | None = field(default=None)
    enc_scale: float = 1.0
    encoder: Encoder | None = field(default=None)
    #: precomputed ``sin(phases)`` for the fused single-trig encode
    enc_sin_phases: FloatArray | None = field(default=None)
    #: seed provenance replacing the stored projection (rematerialize=True)
    enc_spec: "EncoderSpec | None" = field(default=None)
    #: whether serving runs the fused encode→pack pipeline
    fused_encode: bool = field(default=False)
    #: refresh machinery: source-model weakref, operand trackers, stats
    _refresh: dict = field(init=False, default_factory=dict)

    # -- historical flat operand accessors ---------------------------------

    @property
    def cluster_matT(self) -> FloatArray | None:
        """Full-precision clusters, transposed (cosine search only)."""
        return self.cluster_op.matT

    @property
    def cluster_norms(self) -> FloatArray | None:
        """Cluster row norms for the cosine search."""
        return self.cluster_op.norms

    @property
    def cluster_signsT(self) -> FloatArray | None:
        """±1 cluster sign matrix, transposed (float sign search)."""
        return self.cluster_op.signsT

    @property
    def cluster_words(self) -> np.ndarray | None:
        """Bit-packed cluster sign words (packed Hamming search)."""
        return self.cluster_op.words

    @property
    def model_matT(self) -> FloatArray | None:
        """Effective model matrix, transposed (float dot products)."""
        return self.model_op.matT

    @property
    def model_words(self) -> np.ndarray | None:
        """Bit-packed model sign words (fully-binary dot products)."""
        return self.model_op.words

    @property
    def model_scales(self) -> FloatArray | None:
        """Per-model binarisation scales for the packed dot products."""
        return self.model_op.scales

    @property
    def backend_name(self) -> str:
        """Registry name of the compiled kernel backend."""
        return self.backend.name

    @property
    def packed(self) -> bool:
        """Whether any stage of this plan runs on packed words."""
        return self.packed_sims or self.packed_dots

    @property
    def needs_normalized(self) -> bool:
        """Whether the pipeline must materialise the normalised encoding.

        Fully sign-based stages (packed or float sign search, binary
        queries) are invariant to the positive per-row normalisation, so
        the ``(tile, D)`` division is skipped unless a full-precision
        stage consumes the normalised rows.
        """
        return (
            self.cluster_quant is ClusterQuant.NONE
            or not self.predict_quant.query_is_binary
        )

    @property
    def needs_signs(self) -> bool:
        """Whether a float ±1 sign matrix of the queries is required."""
        unpacked_sign_search = (
            self.cluster_quant is not ClusterQuant.NONE and not self.packed_sims
        )
        unpacked_binary_query = (
            self.predict_quant.query_is_binary and not self.packed_dots
        )
        return unpacked_sign_search or unpacked_binary_query

    @property
    def needs_words(self) -> bool:
        """Whether the queries are packed into uint64 sign words."""
        return self.packed_sims or self.packed_dots

    @property
    def rematerialized(self) -> bool:
        """Whether the encoder operands regenerate from the seeded RNG."""
        return self.enc_spec is not None

    @property
    def nbytes(self) -> int:
        """Total bytes held by the plan's operand arrays.

        A rematerialised plan stores no projection matrix, so its count
        drops to the cluster/model operands plus scalars — the memory
        the ``rematerialize=True`` trade actually saves.
        """
        total = 0
        for arr in (self.enc_bases, self.enc_phases, self.enc_sin_phases):
            if arr is not None:
                total += arr.nbytes
        for arr in self.cluster_op.arrays + self.model_op.arrays:
            total += arr.nbytes
        return total

    def encoder_operands(self) -> EncoderOperands | None:
        """Projection operands for this predict call, stored or re-drawn.

        Returns ``None`` for plans serving an opaque fallback encoder.
        Rematerialised plans regenerate bases/phases from
        :class:`EncoderSpec` here — once per :func:`execute_plan` call,
        shared by every tile, dropped afterwards.
        """
        if self.enc_bases is not None:
            return EncoderOperands(
                self.enc_bases,
                self.enc_phases,
                self.enc_scale,
                self.enc_sin_phases,
            )
        if self.enc_spec is None:
            return None
        encoder = self.enc_spec.materialize()
        registry = _metrics.active()
        if registry is not None:
            registry.counter("reghd_plan_rematerializations_total").inc()
        bases = np.asarray(encoder.bases)
        phases = np.asarray(encoder.phases)
        sin_phases = np.sin(phases) if self.fused_encode else None
        return EncoderOperands(bases, phases, self.enc_scale, sin_phases)

    # -- incremental refresh ------------------------------------------------

    def refresh(
        self, model: MultiModelRegHD, delta=None
    ) -> tuple[int, int]:
        """Re-snapshot the operands from the (further-trained) source model.

        Only rows whose sign pattern moved since the last snapshot are
        re-packed / re-copied (tracked through
        :attr:`repro.runtime.DualCopy.sign_versions`); full-precision
        operands refresh wholesale but only when the model actually
        changed.  Returns ``(rows_refreshed, rows_reused)`` for this call.

        ``delta`` may carry the :class:`~repro.core.delta.ModelDelta`
        that was just applied to the model (a merged shard fold, say):
        its :meth:`~repro.core.delta.ModelDelta.touched_rows` masks then
        narrow the *full-precision* operand refreshes to the rows the
        delta actually moved, instead of re-copying every row on any
        version bump.  Sign-derived operands already diff per-row and
        ignore the hint.  Passing a delta that does not describe the
        model's latest changes serves stale rows — callers hand in only
        the delta they just applied.

        ``model`` must be the instance this plan was compiled from —
        refreshing from an unrelated model would silently mix two models'
        state, so it raises :class:`ConfigurationError` instead.
        """
        source = self._refresh.get("source")
        if source is None or source() is not model:
            raise ConfigurationError(
                "CompiledPlan.refresh requires the model the plan was "
                "compiled from"
            )
        object.__setattr__(self, "y_mean", float(model.scaler.mean))
        object.__setattr__(self, "y_scale", float(model.scaler.scale))
        cluster_rows = model_rows = None
        if delta is not None:
            if "clusters_integer" in delta.arrays:
                cluster_rows = delta.touched_rows("clusters_integer")
            if "models_integer" in delta.arrays:
                model_rows = delta.touched_rows("models_integer")
        c_new, c_old = refresh_cluster_operand(
            self.cluster_op,
            model.clusters,
            self._refresh["clusters"],
            rows=cluster_rows,
        )
        m_new, m_old = refresh_model_operand(
            self.model_op,
            model.models,
            self._refresh["models"],
            rows=model_rows,
        )
        stats = self._refresh["stats"]
        stats["refreshes"] += 1
        stats["rows_refreshed"] += c_new + m_new
        stats["rows_reused"] += c_old + m_old
        registry = _metrics.active()
        if registry is not None:
            registry.counter("reghd_plan_refreshes_total").inc()
            if c_new + m_new:
                registry.counter(
                    "reghd_plan_rows_total", event="refreshed"
                ).inc(c_new + m_new)
            if c_old + m_old:
                registry.counter(
                    "reghd_plan_rows_total", event="reused"
                ).inc(c_old + m_old)
        return c_new + m_new, c_old + m_old

    @property
    def refresh_stats(self) -> RefreshStats:
        """Cumulative compile/refresh counters (a value copy).

        Behaves as a plain dict (``stats["rows_refreshed"]`` etc.) and
        additionally offers :meth:`RefreshStats.reset` to zero the
        incremental refresh counters on this plan.  Exported registries
        mirror these as the ``reghd_plan_*`` counters.
        """
        return RefreshStats(self._refresh["stats"], self)

    def predict(
        self,
        X: ArrayLike,
        *,
        tile_rows: int | None = None,
        n_workers: int | None = None,
    ) -> FloatArray:
        """Predict targets (original units) for raw feature rows.

        Equivalent to :meth:`MultiModelRegHD.predict
        <repro.core.multi.MultiModelRegHD.predict>` on the model state at
        compile time (bit-exact packed similarity scores; predictions
        match to float rounding).  ``tile_rows``/``n_workers`` override
        the compile-time execution knobs for this call only.
        """
        from repro.engine.executor import execute_plan

        X_arr = check_2d("X", X)
        if X_arr.shape[1] != self.in_features:
            raise EncodingError(
                f"expected {self.in_features} features, got {X_arr.shape[1]}"
            )
        return execute_plan(
            self,
            X_arr,
            tile_rows=self.tile_rows if tile_rows is None else int(tile_rows),
            n_workers=self.n_workers if n_workers is None else int(n_workers),
        )

    def __repr__(self) -> str:
        stages = []
        stages.append("packed-sims" if self.packed_sims else "float-sims")
        stages.append("packed-dots" if self.packed_dots else "float-dots")
        return (
            f"CompiledPlan(in_features={self.in_features}, dim={self.dim}, "
            f"k={self.n_models}, cluster_quant={self.cluster_quant.value}, "
            f"predict_quant={self.predict_quant.value}, "
            f"backend={'+'.join(stages)}, tile_rows={self.tile_rows}, "
            f"n_workers={self.n_workers})"
        )


def auto_tile_rows(
    dim: int, budget_bytes: int = 24 << 20, *, fused: bool = False
) -> int:
    """Tile height whose scratch set fits the budget.

    Unfused tiles hold ~17 bytes per element of the full ``(rows, dim)``
    slab set.  Fused tiles only hold block-wide slabs plus the packed
    words, so the same budget buys far taller tiles — fewer per-tile
    dispatches for the same peak memory.
    """
    if fused:
        from repro.runtime import fused_block_cols

        per_row = 17 * fused_block_cols(dim) + max(8, dim // 8)
    else:
        per_row = 17 * max(1, dim)
    rows = budget_bytes // per_row
    return int(min(4096, max(64, rows)))


def _resolve_compile_backend(
    model: MultiModelRegHD,
    packed: bool | None,
    backend: "KernelBackend | str | None",
) -> KernelBackend:
    """Pick the serving backend: packed flag > backend > config > env > auto.

    The auto default keeps the engine's historical behaviour — packed
    operands exactly where a stage benefits (quantised cluster search or
    fully-binary dots), dense otherwise.
    """
    if packed is not None:
        return resolve_backend("packed" if packed else "dense")
    cfg = model.config
    if (
        backend is not None
        or cfg.backend is not None
        or os.environ.get(BACKEND_ENV_VAR)
    ):
        return resolve_backend(backend if backend is not None else cfg.backend)
    beneficial = (
        cfg.cluster_quant is not ClusterQuant.NONE
        or cfg.predict_quant is PredictQuant.BINARY_BOTH
    )
    return resolve_backend("packed_v2" if beneficial else "dense")


def compile_model(
    model: MultiModelRegHD,
    *,
    backend: "KernelBackend | str | None" = None,
    packed: bool | None = None,
    tile_rows: int | None = None,
    n_workers: int = 1,
    rematerialize: bool = False,
) -> CompiledPlan:
    """Compile a fitted :class:`MultiModelRegHD` into a :class:`CompiledPlan`.

    Parameters
    ----------
    model:
        A fitted multi-model RegHD instance.  The plan copies every
        operand it needs; the model can keep training afterwards without
        affecting the plan (until an explicit :meth:`CompiledPlan.refresh`).
    backend:
        Execution-runtime backend for the serving kernels (a registry
        name or instance).  ``None`` defers to ``model.config.backend``,
        then the ``REPRO_BACKEND`` environment variable, then the
        historical automatic choice: packed exactly where a stage
        benefits from it.
    packed:
        Legacy boolean override: ``True`` forces the packed popcount
        backend wherever the quantisation scheme permits it, ``False``
        keeps every stage on float operands.  Takes precedence over
        ``backend`` when given.
    tile_rows:
        Rows per execution tile.  ``None`` sizes tiles so one worker's
        scratch stays near 24 MiB (:func:`auto_tile_rows`).
    n_workers:
        Default thread count for :meth:`CompiledPlan.predict`.  ``1``
        runs the single-threaded fallback loop with one scratch set.
    rematerialize:
        Store the encoder's *seed provenance* instead of its projection
        matrix: :meth:`CompiledPlan.encoder_operands` then re-draws
        bit-identical bases/phases from the seeded RNG per predict call,
        shrinking the resident plan by the ``(in_features, D)`` + two
        ``(D,)`` arrays.  Requires a :class:`NonlinearEncoder` built from
        a configured integer seed; the regenerated arrays are verified
        against the live encoder at compile time.

    Raises
    ------
    NotFittedError
        If the model has not been fitted.
    ConfigurationError
        If ``model`` is not a :class:`MultiModelRegHD` or the knobs are
        out of range.
    """
    if not isinstance(model, MultiModelRegHD):
        raise ConfigurationError(
            f"compile_model supports MultiModelRegHD, got "
            f"{type(model).__name__}"
        )
    if not model.fitted:
        raise NotFittedError("compile_model called before fit")
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    cfg = model.config

    runtime = _resolve_compile_backend(model, packed, backend)
    packed_sims = runtime.packs_similarities(cfg.cluster_quant)
    packed_dots = runtime.packs_dots(cfg.predict_quant)

    # Encoder snapshot: the fused tile kernel needs the projection
    # operands; other encoder types fall back to their encode_batch.
    enc_bases = enc_phases = enc_sin_phases = None
    enc_scale = 1.0
    encoder: Encoder | None = None
    enc_spec: EncoderSpec | None = None
    fused_encode = False
    if type(model.encoder) is NonlinearEncoder:
        enc_scale = float(model.encoder.scale)
        fused_encode = runtime.fuses_encode(cfg.cluster_quant, cfg.predict_quant)
        if rematerialize:
            if cfg.seed is None:
                raise ConfigurationError(
                    "rematerialize=True requires a configured integer seed; "
                    "an unseeded encoder cannot be re-drawn"
                )
            enc_spec = EncoderSpec(
                in_features=model.in_features,
                dim=cfg.dim,
                seed=int(cfg.seed),
                base=cfg.encoder_base,
                scale=cfg.encoder_scale,
            )
            regenerated = enc_spec.materialize()
            if not (
                np.array_equal(regenerated.bases, model.encoder.bases)
                and np.array_equal(regenerated.phases, model.encoder.phases)
                and float(regenerated.scale) == enc_scale
            ):
                raise ConfigurationError(
                    "rematerialize=True: regenerating the encoder from "
                    "the configured seed did not reproduce the live "
                    "projection (the encoder was not built by this "
                    "model's constructor)"
                )
        else:
            enc_bases = _frozen(model.encoder.bases)
            enc_phases = _frozen(model.encoder.phases)
            if fused_encode:
                enc_sin_phases = _frozen(np.sin(model.encoder.phases))
    else:
        if rematerialize:
            raise ConfigurationError(
                "rematerialize=True requires a NonlinearEncoder, got "
                f"{type(model.encoder).__name__}"
            )
        encoder = model.encoder

    if tile_rows is None:
        tile_rows = auto_tile_rows(cfg.dim, fused=fused_encode)
    elif tile_rows < 1:
        raise ConfigurationError(f"tile_rows must be >= 1, got {tile_rows}")

    cluster_op, cluster_tracker = freeze_cluster_operand(
        model.clusters, cfg.cluster_quant, packed=packed_sims
    )
    model_op, model_tracker = freeze_model_operand(
        model.models, cfg.predict_quant, packed=packed_dots
    )

    plan = CompiledPlan(
        in_features=model.in_features,
        dim=cfg.dim,
        n_models=cfg.n_models,
        softmax_temp=float(cfg.softmax_temp),
        cluster_quant=cfg.cluster_quant,
        predict_quant=cfg.predict_quant,
        y_mean=float(model.scaler.mean),
        y_scale=float(model.scaler.scale),
        packed_sims=packed_sims,
        packed_dots=packed_dots,
        tile_rows=int(tile_rows),
        n_workers=int(n_workers),
        backend=runtime,
        cluster_op=cluster_op,
        model_op=model_op,
        enc_bases=enc_bases,
        enc_phases=enc_phases,
        enc_scale=enc_scale,
        encoder=encoder,
        enc_sin_phases=enc_sin_phases,
        enc_spec=enc_spec,
        fused_encode=fused_encode,
    )
    rows_snapshotted = 2 * cfg.n_models  # one cluster + one model row each
    plan._refresh.update(
        source=weakref.ref(model),
        clusters=cluster_tracker,
        models=model_tracker,
        stats={
            "compiles": 1,
            "rows_snapshotted": rows_snapshotted,
            "refreshes": 0,
            "rows_refreshed": 0,
            "rows_reused": 0,
        },
    )
    registry = _metrics.active()
    if registry is not None:
        registry.counter("reghd_plan_compiles_total").inc()
        registry.counter(
            "reghd_plan_rows_total", event="snapshotted"
        ).inc(rows_snapshotted)
    return plan
