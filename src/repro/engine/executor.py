"""Tiled, multi-threaded execution of a :class:`CompiledPlan`.

A batch is cut into row tiles; every tile flows through the fused
pipeline (encode → similarity → softmax → dot products → accumulate)
entirely inside one preallocated :class:`~repro.engine.kernels.TileScratch`,
so peak memory is ``n_workers`` scratch sets plus the output vector — a
million-row batch costs no more transient memory than one tile per
worker.

Tiles write disjoint slices of the shared output array, so fanning them
out over a :class:`~concurrent.futures.ThreadPoolExecutor` needs no
locking; BLAS, the trig ufuncs and the packed popcount kernels all
release the GIL on tile-sized arrays.  ``n_workers=1`` bypasses the pool
entirely (the single-threaded fallback).
"""

from __future__ import annotations

import queue
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.kernels import (
    TileScratch,
    encode_tile,
    packed_query_words,
    query_scales,
    row_norms,
    sign_matrix,
)
from repro.runtime import Query
from repro.telemetry import metrics as _metrics
from repro.telemetry.timing import monotonic
from repro.types import FloatArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.plan import CompiledPlan


def _run_tile(
    plan: "CompiledPlan",
    X: FloatArray,
    lo: int,
    hi: int,
    out: FloatArray,
    scratch: TileScratch,
) -> None:
    """Run one row tile through the fused pipeline into ``out[lo:hi]``."""
    X_tile = X[lo:hi]
    # Serving latency split by stage; `registry is None` is the entire
    # cost of the disabled path (no clock reads, no metric lookups).
    registry = _metrics.active()
    t0 = monotonic() if registry is not None else 0.0

    # 1. Encode (Eq. 1), fused into the scratch buffers when the plan
    #    carries a projection snapshot.
    if plan.enc_bases is not None:
        S = encode_tile(
            X_tile, plan.enc_bases, plan.enc_phases, plan.enc_scale, scratch
        )
    else:
        S = np.asarray(plan.encoder.encode_batch(X_tile), dtype=np.float64)
    norms = row_norms(S)

    # 2. Raw-encoding derivatives, before S is normalised in place:
    #    sign bits / words and the binary-query scale are all invariant
    #    to the positive row normalisation.
    q_scales = (
        query_scales(S, norms, scratch)
        if plan.predict_quant.query_is_binary
        else None
    )
    words = packed_query_words(S, scratch) if plan.needs_words else None
    signs = sign_matrix(S, scratch) if plan.needs_signs else None
    if plan.needs_normalized:
        np.divide(S, norms[:, np.newaxis], out=S)
    if registry is not None:
        t1 = monotonic()
        registry.histogram(
            "reghd_serving_latency_seconds", stage="encode"
        ).observe(t1 - t0)
        t0 = t1

    # 3. Cluster similarities (Eq. 5) and softmax confidences, dispatched
    #    through the plan's kernel backend over the scratch-derived query.
    backend = plan.backend
    query = Query(S, signs=signs, words=words, scales=q_scales)
    sims = backend.cluster_similarities(query, plan.cluster_op)
    conf = backend.confidences(sims, plan.softmax_temp)
    if registry is not None:
        t1 = monotonic()
        registry.histogram(
            "reghd_serving_latency_seconds", stage="search"
        ).observe(t1 - t0)
        t0 = t1

    # 4. Model dot products (Eq. 6 under the Sec.-3.2 scheme).  The
    #    binarised queries are built in place in the sign buffer — only
    #    after the similarities above are done reading it.
    if plan.predict_quant.query_is_binary and not plan.packed_dots:
        query._binarized = np.multiply(
            signs, q_scales[:, np.newaxis], out=signs
        )
    dots = backend.model_dots(query, plan.model_op)

    # 5. Confidence-weighted accumulation, mapped back to target units.
    y = backend.weighted_prediction(conf, dots)
    np.multiply(y, plan.y_scale, out=y)
    np.add(y, plan.y_mean, out=y)
    out[lo:hi] = y
    if registry is not None:
        registry.histogram(
            "reghd_serving_latency_seconds", stage="accumulate"
        ).observe(monotonic() - t0)


def execute_plan(
    plan: "CompiledPlan",
    X: FloatArray,
    *,
    tile_rows: int,
    n_workers: int,
) -> FloatArray:
    """Predict a full batch through the tiled pipeline."""
    n = X.shape[0]
    out = np.empty(n, dtype=np.float64)
    if n == 0:
        return out
    registry = _metrics.active()
    if registry is not None:
        registry.counter("reghd_serving_rows_total").inc(n)
    tile_rows = max(1, int(tile_rows))
    spans = [
        (lo, min(lo + tile_rows, n)) for lo in range(0, n, tile_rows)
    ]
    workers = min(max(1, int(n_workers)), len(spans))

    if workers == 1:
        scratch = TileScratch(min(tile_rows, n), plan.dim)
        for lo, hi in spans:
            _run_tile(plan, X, lo, hi, out, scratch)
        return out

    # One scratch set per worker, recycled through a queue; tiles write
    # disjoint output slices so no further synchronisation is needed.
    scratch_pool: queue.SimpleQueue[TileScratch] = queue.SimpleQueue()
    for _ in range(workers):
        scratch_pool.put(TileScratch(tile_rows, plan.dim))

    def _job(span: tuple[int, int]) -> None:
        scratch = scratch_pool.get()
        try:
            _run_tile(plan, X, span[0], span[1], out, scratch)
        finally:
            scratch_pool.put(scratch)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        # list() drains the iterator so worker exceptions propagate.
        list(pool.map(_job, spans))
    return out
