"""Tiled, multi-threaded execution of a :class:`CompiledPlan`.

A batch is cut into row tiles; every tile flows through the fused
pipeline (encode → similarity → softmax → dot products → accumulate)
entirely inside one preallocated :class:`~repro.engine.kernels.TileScratch`,
so peak memory is ``n_workers`` scratch sets plus the output vector — a
million-row batch costs no more transient memory than one tile per
worker.

Plans whose backend fuses encode→pack (``plan.fused_encode``) skip the
float pipeline entirely: raw feature rows become packed ``uint64`` sign
words plus per-row scales in one kernel, and the ``(tile, D)`` float
encoding is never materialised.

Tiles write disjoint slices of the shared output array, so fanning them
out over a thread pool needs no locking; BLAS, the trig ufuncs and the
packed popcount kernels all release the GIL on tile-sized arrays.  The
pool is a persistent process-wide singleton (spawning threads per
predict call made small batches *slower* than the sequential loop), and
batches below a measured rows×words cutoff bypass it entirely — the
multi-threaded path is never dispatched where it cannot win.
"""

from __future__ import annotations

import os
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.kernels import (
    TileScratch,
    encode_tile,
    packed_query_words,
    query_scales,
    row_norms,
    sign_matrix,
)
from repro.runtime import EncoderOperands, Query
from repro.telemetry import metrics as _metrics
from repro.telemetry import timing as _timing
from repro.telemetry import tracing as _tracing
from repro.types import FloatArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.plan import CompiledPlan

#: below this many rows × uint64 words per batch, thread fan-out costs
#: more than it saves and the sequential loop runs instead (measured on
#: the benchmark config: dispatch+sync overhead crosses kernel time
#: around 2M word-elements).
MT_MIN_ROWS_X_WORDS = 1 << 21

_pool: ThreadPoolExecutor | None = None
_pool_lock = threading.Lock()


def _worker_pool() -> ThreadPoolExecutor:
    """The persistent serving pool, created once per process.

    Sized at ``os.cpu_count()`` threads; per-call concurrency is bounded
    by the scratch queue, not the pool size, so one pool serves every
    plan regardless of its ``n_workers``.
    """
    global _pool
    if _pool is None:
        with _pool_lock:
            if _pool is None:
                _pool = ThreadPoolExecutor(
                    max_workers=max(2, os.cpu_count() or 1),
                    thread_name_prefix="repro-serve",
                )
    return _pool


def _effective_workers(n_workers: int, n_tiles: int, n: int, dim: int) -> int:
    """Thread count actually worth using for this batch.

    Falls back to the sequential loop when the host has one core, the
    batch has one tile, or the total work is below the measured
    :data:`MT_MIN_ROWS_X_WORDS` cutoff — the fix for the ``packed_mt``
    regression, where per-call thread dispatch made small batches slower
    than single-threaded execution.
    """
    workers = min(max(1, int(n_workers)), n_tiles)
    if workers <= 1:
        return 1
    if (os.cpu_count() or 1) <= 1:
        return 1
    if n * max(1, (dim + 63) // 64) < MT_MIN_ROWS_X_WORDS:
        return 1
    return workers


def _run_tile(
    plan: "CompiledPlan",
    X: FloatArray,
    lo: int,
    hi: int,
    out: FloatArray,
    scratch: TileScratch,
    enc: EncoderOperands | None,
    trace: "tuple | None" = None,
) -> None:
    """Run one row tile through the fused pipeline into ``out[lo:hi]``.

    ``trace`` is a captured ``(tracer, ctx)`` pair: contextvars do not
    propagate into the serving pool's threads, so :func:`execute_plan`
    snapshots the open trace context once and each tile attaches its
    stage records explicitly.  The clock is read through the timing
    module so a single monkeypatch pins every span timestamp.
    """
    X_tile = X[lo:hi]
    # Serving latency split by stage; `registry is None` is the entire
    # cost of the disabled path (no clock reads, no metric lookups).
    registry = _metrics.active()
    t0 = _timing.monotonic() if registry is not None else 0.0

    if plan.fused_encode:
        # Fused encode→pack: raw rows straight to packed words + scales,
        # no float hypervector batch.  Exactly the stages a fully-packed
        # plan consumes (needs_normalized and needs_signs are False).
        words, q_scales = plan.backend.encode_pack(X_tile, enc, scratch.fused)
        query = Query(None, words=words, scales=q_scales)
        signs = None
    else:
        # 1. Encode (Eq. 1), fused into the scratch buffers when the plan
        #    carries a projection snapshot.
        if enc is not None:
            S = encode_tile(
                X_tile, enc.bases, enc.phases, enc.scale, scratch
            )
        else:
            S = np.asarray(plan.encoder.encode_batch(X_tile), dtype=np.float64)
        norms = row_norms(S)

        # 2. Raw-encoding derivatives, before S is normalised in place:
        #    sign bits / words and the binary-query scale are all invariant
        #    to the positive row normalisation.
        q_scales = (
            query_scales(S, norms, scratch)
            if plan.predict_quant.query_is_binary
            else None
        )
        words = packed_query_words(S, scratch) if plan.needs_words else None
        signs = sign_matrix(S, scratch) if plan.needs_signs else None
        if plan.needs_normalized:
            np.divide(S, norms[:, np.newaxis], out=S)
        query = Query(S, signs=signs, words=words, scales=q_scales)
    if registry is not None:
        t1 = _timing.monotonic()
        registry.histogram(
            "reghd_serving_latency_seconds", stage="encode"
        ).observe(t1 - t0)
        if trace is not None:
            trace[0].record_stage(trace[1], "tile/encode", t0, t1, rows=hi - lo)
        t0 = t1

    # 3. Cluster similarities (Eq. 5) and softmax confidences, dispatched
    #    through the plan's kernel backend over the scratch-derived query.
    backend = plan.backend
    sims = backend.cluster_similarities(query, plan.cluster_op)
    conf = backend.confidences(sims, plan.softmax_temp)
    if registry is not None:
        t1 = _timing.monotonic()
        registry.histogram(
            "reghd_serving_latency_seconds", stage="search"
        ).observe(t1 - t0)
        if trace is not None:
            trace[0].record_stage(trace[1], "tile/search", t0, t1, rows=hi - lo)
        t0 = t1

    # 4. Model dot products (Eq. 6 under the Sec.-3.2 scheme).  The
    #    binarised queries are built in place in the sign buffer — only
    #    after the similarities above are done reading it.
    if plan.predict_quant.query_is_binary and not plan.packed_dots:
        query._binarized = np.multiply(
            signs, q_scales[:, np.newaxis], out=signs
        )
    dots = backend.model_dots(query, plan.model_op)

    # 5. Confidence-weighted accumulation, mapped back to target units.
    y = backend.weighted_prediction(conf, dots)
    np.multiply(y, plan.y_scale, out=y)
    np.add(y, plan.y_mean, out=y)
    out[lo:hi] = y
    if registry is not None:
        t1 = _timing.monotonic()
        registry.histogram(
            "reghd_serving_latency_seconds", stage="accumulate"
        ).observe(t1 - t0)
        if trace is not None:
            trace[0].record_stage(
                trace[1], "tile/accumulate", t0, t1, rows=hi - lo
            )


def execute_plan(
    plan: "CompiledPlan",
    X: FloatArray,
    *,
    tile_rows: int,
    n_workers: int,
) -> FloatArray:
    """Predict a full batch through the tiled pipeline."""
    n = X.shape[0]
    out = np.empty(n, dtype=np.float64)
    if n == 0:
        return out
    registry = _metrics.active()
    if registry is not None:
        registry.counter("reghd_serving_rows_total").inc(n)
    tile_rows = max(1, int(tile_rows))
    spans = [
        (lo, min(lo + tile_rows, n)) for lo in range(0, n, tile_rows)
    ]
    # Rematerialised plans regenerate the projection here — once per
    # call, shared read-only by every tile.
    enc = plan.encoder_operands()
    workers = _effective_workers(n_workers, len(spans), n, plan.dim)

    # Snapshot the open trace once; worker threads receive it by value
    # (contextvars do not cross the persistent pool's threads).
    tracer = _tracing.active_tracer()
    ctx = _tracing.current() if tracer is not None else None
    trace = (tracer, ctx) if ctx is not None else None

    if workers == 1:
        scratch = TileScratch(
            min(tile_rows, n), plan.dim, fused=plan.fused_encode
        )
        for lo, hi in spans:
            _run_tile(plan, X, lo, hi, out, scratch, enc, trace)
        return out

    # One scratch set per worker, recycled through a queue; tiles write
    # disjoint output slices so no further synchronisation is needed.
    scratch_pool: queue.SimpleQueue[TileScratch] = queue.SimpleQueue()
    for _ in range(workers):
        scratch_pool.put(
            TileScratch(tile_rows, plan.dim, fused=plan.fused_encode)
        )

    def _job(span: tuple[int, int]) -> None:
        scratch = scratch_pool.get()
        try:
            _run_tile(plan, X, span[0], span[1], out, scratch, enc, trace)
        finally:
            scratch_pool.put(scratch)

    # list() drains the iterator so worker exceptions propagate.
    list(_worker_pool().map(_job, spans))
    return out
