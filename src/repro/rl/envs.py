"""From-scratch environments for the HD-RL extension.

Two classic control problems, implemented in plain numpy so the RL
extension carries no external dependency:

* :class:`GridWorld` — a discrete navigation task with obstacles; states
  are (row, col) coordinates presented as continuous features, which is
  exactly the regime RegHD's encoder handles.
* :class:`CartPole` — the classic cart-pole balancing problem with
  Euler-integrated physics (pole angle/velocity dynamics per Barto, Sutton
  & Anderson 1983).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray, SeedLike
from repro.utils.rng import as_generator


class Environment(ABC):
    """Minimal episodic-environment interface."""

    @property
    @abstractmethod
    def state_dim(self) -> int:
        """Number of features in a state observation."""

    @property
    @abstractmethod
    def n_actions(self) -> int:
        """Number of discrete actions."""

    @property
    @abstractmethod
    def max_steps(self) -> int:
        """Episode step limit."""

    @abstractmethod
    def reset(self, seed: SeedLike = None) -> FloatArray:
        """Start a new episode; returns the initial observation."""

    @abstractmethod
    def step(self, action: int) -> tuple[FloatArray, float, bool]:
        """Apply ``action``; returns ``(observation, reward, done)``."""

    def _check_action(self, action: int) -> None:
        if not 0 <= action < self.n_actions:
            raise ConfigurationError(
                f"action must be in [0, {self.n_actions}), got {action}"
            )


class GridWorld(Environment):
    """An ``size x size`` grid with obstacles, a start and a goal.

    Actions: 0 = up, 1 = right, 2 = down, 3 = left.  Rewards: +1 at the
    goal (episode ends), -1 on an obstacle (episode ends), -0.01 per step
    (encourages short paths).  Observations are the (row, col) position
    scaled to [0, 1]².

    Parameters
    ----------
    size:
        Grid side length.
    obstacles:
        Cells that end the episode with the penalty; defaults to a small
        diagonal wall that forces a detour.
    """

    ACTIONS = ((-1, 0), (0, 1), (1, 0), (0, -1))

    def __init__(
        self,
        size: int = 5,
        *,
        obstacles: tuple[tuple[int, int], ...] | None = None,
        step_limit: int = 100,
    ):
        if size < 2:
            raise ConfigurationError(f"size must be >= 2, got {size}")
        if step_limit < 1:
            raise ConfigurationError(
                f"step_limit must be >= 1, got {step_limit}"
            )
        self.size = int(size)
        self.start = (size - 1, 0)
        self.goal = (0, size - 1)
        if obstacles is None:
            mid = size // 2
            obstacles = tuple(
                (mid, c) for c in range(size - 2)
            )  # a wall with a gap on the right
        for cell in obstacles:
            if cell in (self.start, self.goal):
                raise ConfigurationError(
                    f"obstacle {cell} collides with start or goal"
                )
            if not (0 <= cell[0] < size and 0 <= cell[1] < size):
                raise ConfigurationError(f"obstacle {cell} outside the grid")
        self.obstacles = frozenset(obstacles)
        self._step_limit = int(step_limit)
        self._pos = self.start
        self._steps = 0

    @property
    def state_dim(self) -> int:
        return 2

    @property
    def n_actions(self) -> int:
        return 4

    @property
    def max_steps(self) -> int:
        return self._step_limit

    def _observe(self) -> FloatArray:
        return np.array(
            [self._pos[0] / (self.size - 1), self._pos[1] / (self.size - 1)]
        )

    def reset(self, seed: SeedLike = None) -> FloatArray:
        self._pos = self.start
        self._steps = 0
        return self._observe()

    def step(self, action: int) -> tuple[FloatArray, float, bool]:
        self._check_action(action)
        self._steps += 1
        dr, dc = self.ACTIONS[action]
        row = min(max(self._pos[0] + dr, 0), self.size - 1)
        col = min(max(self._pos[1] + dc, 0), self.size - 1)
        self._pos = (row, col)
        if self._pos == self.goal:
            return self._observe(), 1.0, True
        if self._pos in self.obstacles:
            return self._observe(), -1.0, True
        done = self._steps >= self._step_limit
        return self._observe(), -0.01, done


class CartPole(Environment):
    """Cart-pole balancing with Euler-integrated dynamics.

    State: ``(x, x_dot, theta, theta_dot)``.  Actions: 0 = push left,
    1 = push right.  Reward +1 per step; the episode ends when the pole
    tips past ±12° or the cart leaves ±2.4, or at the step limit.
    """

    GRAVITY = 9.8
    CART_MASS = 1.0
    POLE_MASS = 0.1
    POLE_HALF_LENGTH = 0.5
    FORCE = 10.0
    DT = 0.02
    THETA_LIMIT = 12.0 * np.pi / 180.0
    X_LIMIT = 2.4

    def __init__(self, *, step_limit: int = 200):
        if step_limit < 1:
            raise ConfigurationError(
                f"step_limit must be >= 1, got {step_limit}"
            )
        self._step_limit = int(step_limit)
        self._state = np.zeros(4)
        self._steps = 0
        self._rng = as_generator(None)

    @property
    def state_dim(self) -> int:
        return 4

    @property
    def n_actions(self) -> int:
        return 2

    @property
    def max_steps(self) -> int:
        return self._step_limit

    def reset(self, seed: SeedLike = None) -> FloatArray:
        self._rng = as_generator(seed)
        self._state = self._rng.uniform(-0.05, 0.05, size=4)
        self._steps = 0
        return self._state.copy()

    def step(self, action: int) -> tuple[FloatArray, float, bool]:
        self._check_action(action)
        x, x_dot, theta, theta_dot = self._state
        force = self.FORCE if action == 1 else -self.FORCE
        total_mass = self.CART_MASS + self.POLE_MASS
        pole_mass_length = self.POLE_MASS * self.POLE_HALF_LENGTH

        cos_t, sin_t = np.cos(theta), np.sin(theta)
        temp = (
            force + pole_mass_length * theta_dot**2 * sin_t
        ) / total_mass
        theta_acc = (self.GRAVITY * sin_t - cos_t * temp) / (
            self.POLE_HALF_LENGTH
            * (4.0 / 3.0 - self.POLE_MASS * cos_t**2 / total_mass)
        )
        x_acc = temp - pole_mass_length * theta_acc * cos_t / total_mass

        x += self.DT * x_dot
        x_dot += self.DT * x_acc
        theta += self.DT * theta_dot
        theta_dot += self.DT * theta_acc
        self._state = np.array([x, x_dot, theta, theta_dot])
        self._steps += 1

        failed = abs(x) > self.X_LIMIT or abs(theta) > self.THETA_LIMIT
        done = failed or self._steps >= self._step_limit
        return self._state.copy(), 1.0, done
