"""Training and evaluation loops for the HD-RL agent."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rl.agent import HDQAgent
from repro.rl.envs import Environment
from repro.rl.replay import Transition
from repro.types import FloatArray, SeedLike
from repro.utils.rng import derive_generator


@dataclass
class EpisodeStats:
    """Per-episode training record."""

    episode: int
    total_reward: float
    steps: int
    epsilon: float
    mean_td_error: float


@dataclass
class TrainingRun:
    """Full history of a training run."""

    episodes: list[EpisodeStats] = field(default_factory=list)

    def rewards(self) -> FloatArray:
        """Per-episode total reward (the learning curve)."""
        return np.array([e.total_reward for e in self.episodes])

    def moving_average(self, window: int = 10) -> FloatArray:
        """Smoothed learning curve."""
        rewards = self.rewards()
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if len(rewards) < window:
            return rewards
        kernel = np.ones(window) / window
        return np.convolve(rewards, kernel, mode="valid")


def train_agent(
    env: Environment,
    agent: HDQAgent,
    *,
    episodes: int = 200,
    replay_updates_per_step: int = 1,
    seed: SeedLike = 0,
) -> TrainingRun:
    """Run epsilon-greedy Q-learning episodes.

    Each environment step performs one online TD update plus
    ``replay_updates_per_step`` mini-batch replay updates; epsilon decays
    once per episode.
    """
    if episodes < 1:
        raise ConfigurationError(f"episodes must be >= 1, got {episodes}")
    if replay_updates_per_step < 0:
        raise ConfigurationError(
            f"replay_updates_per_step must be >= 0, got "
            f"{replay_updates_per_step}"
        )
    run = TrainingRun()
    for episode in range(1, episodes + 1):
        state = env.reset(derive_generator(seed, episode))
        total_reward = 0.0
        td_errors = []
        steps = 0
        done = False
        while not done:
            action = agent.act(state)
            next_state, reward, done = env.step(action)
            td = agent.observe(
                Transition(state, action, reward, next_state, done)
            )
            td_errors.append(td)
            for _ in range(replay_updates_per_step):
                replay_td = agent.learn_from_replay()
                if replay_td is not None:
                    td_errors.append(replay_td)
            state = next_state
            total_reward += reward
            steps += 1
        agent.decay_epsilon()
        run.episodes.append(
            EpisodeStats(
                episode=episode,
                total_reward=total_reward,
                steps=steps,
                epsilon=agent.epsilon,
                mean_td_error=float(np.mean(td_errors)),
            )
        )
    return run


def evaluate_policy(
    env: Environment,
    agent: HDQAgent,
    *,
    episodes: int = 20,
    seed: SeedLike = 1_000_000,
) -> float:
    """Mean total reward of the greedy policy over fresh episodes."""
    if episodes < 1:
        raise ConfigurationError(f"episodes must be >= 1, got {episodes}")
    totals = []
    for episode in range(episodes):
        state = env.reset(derive_generator(seed, episode))
        total = 0.0
        done = False
        while not done:
            state, reward, done = env.step(agent.act(state, greedy=True))
            total += reward
        totals.append(total)
    return float(np.mean(totals))


def random_policy_reward(
    env: Environment, *, episodes: int = 20, seed: SeedLike = 2_000_000
) -> float:
    """Mean total reward of a uniform-random policy (the floor to beat)."""
    if episodes < 1:
        raise ConfigurationError(f"episodes must be >= 1, got {episodes}")
    rng = np.random.default_rng(0)
    totals = []
    for episode in range(episodes):
        env.reset(derive_generator(seed, episode))
        total = 0.0
        done = False
        while not done:
            _, reward, done = env.step(int(rng.integers(env.n_actions)))
            total += reward
        totals.append(total)
    return float(np.mean(totals))
