"""HD-based reinforcement learning — the paper's stated future work.

The conclusion of the RegHD paper: "Regression is a key required algorithm
which can be extended to support the first HD-based reinforcement
learning."  This subpackage builds that extension: a Q-learning agent
whose action-value function is a set of RegHD hypervector models
(``Q(s, a) = M_a · enc(s)``, updated with the Eq.-(2) delta rule driven by
the TD error), plus the from-scratch environments and replay machinery it
needs.
"""

from repro.rl.agent import HDQAgent
from repro.rl.envs import CartPole, Environment, GridWorld
from repro.rl.replay import ReplayBuffer, Transition
from repro.rl.training import EpisodeStats, evaluate_policy, train_agent

__all__ = [
    "HDQAgent",
    "CartPole",
    "Environment",
    "GridWorld",
    "ReplayBuffer",
    "Transition",
    "EpisodeStats",
    "evaluate_policy",
    "train_agent",
]
