"""Experience replay for the HD-RL agent."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray, SeedLike
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class Transition:
    """One environment step: ``(s, a, r, s', done)``."""

    state: FloatArray
    action: int
    reward: float
    next_state: FloatArray
    done: bool


class ReplayBuffer:
    """Ring-buffer experience replay with seeded uniform sampling."""

    def __init__(self, capacity: int, seed: SeedLike = 0):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._buffer: list[Transition] = []
        self._cursor = 0
        self._rng = as_generator(seed)

    @property
    def capacity(self) -> int:
        """Maximum number of stored transitions."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._buffer)

    def push(self, transition: Transition) -> None:
        """Append a transition, evicting the oldest when full."""
        if len(self._buffer) < self._capacity:
            self._buffer.append(transition)
        else:
            self._buffer[self._cursor] = transition
            self._cursor = (self._cursor + 1) % self._capacity

    def sample(self, batch_size: int) -> list[Transition]:
        """Uniformly sample ``batch_size`` transitions (with replacement
        only when the buffer is smaller than the request)."""
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if not self._buffer:
            raise ConfigurationError("cannot sample from an empty buffer")
        replace = batch_size > len(self._buffer)
        idx = self._rng.choice(
            len(self._buffer), size=batch_size, replace=replace
        )
        return [self._buffer[i] for i in idx]

    def as_arrays(
        self, transitions: list[Transition]
    ) -> tuple[FloatArray, np.ndarray, FloatArray, FloatArray, np.ndarray]:
        """Stack a transition list into batched arrays."""
        states = np.stack([t.state for t in transitions])
        actions = np.array([t.action for t in transitions], dtype=np.int64)
        rewards = np.array([t.reward for t in transitions])
        next_states = np.stack([t.next_state for t in transitions])
        dones = np.array([t.done for t in transitions], dtype=bool)
        return states, actions, rewards, next_states, dones
