"""HD Q-learning agent: RegHD as the action-value approximator.

The action-value function is hyperdimensional: states are encoded once
with the Eq.-(1) nonlinear encoder, and each discrete action ``a`` owns a
model hypervector ``M_a`` with

    Q(s, a) = M_a . enc(s).

Learning is the RegHD delta rule (Eq. 2) driven by the temporal-difference
error instead of a supervised target:

    M_a <- M_a + alpha * (r + gamma * max_a' Q(s', a') - Q(s, a)) * enc(s)

which is exactly Q-learning with linear function approximation over the
nonlinear HD feature map — the extension the paper's conclusion sketches.
Exploration is epsilon-greedy with exponential decay; updates can be
online, from replay, or both.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.base import Encoder
from repro.encoding.nonlinear import NonlinearEncoder
from repro.exceptions import ConfigurationError
from repro.rl.replay import ReplayBuffer, Transition
from repro.types import FloatArray, SeedLike
from repro.utils.rng import as_generator, derive_generator


class HDQAgent:
    """Q-learning over hyperdimensional state encodings.

    Parameters
    ----------
    state_dim:
        Dimensionality of environment observations.
    n_actions:
        Number of discrete actions (one model hypervector each).
    dim:
        Hypervector dimensionality ``D``.
    lr:
        TD learning rate ``alpha``.
    gamma:
        Discount factor.
    epsilon / epsilon_min / epsilon_decay:
        Epsilon-greedy schedule; ``epsilon`` decays multiplicatively per
        :meth:`decay_epsilon` call (once per episode in the trainer).
    replay_capacity / batch_size:
        Experience-replay settings for :meth:`learn_from_replay`.
    encoder:
        Optional custom state encoder.
    seed:
        Master seed (encoder bases, exploration, replay sampling).
    """

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        *,
        dim: int = 2000,
        lr: float = 0.3,
        gamma: float = 0.98,
        epsilon: float = 1.0,
        epsilon_min: float = 0.05,
        epsilon_decay: float = 0.97,
        replay_capacity: int = 10_000,
        batch_size: int = 32,
        encoder: Encoder | None = None,
        seed: SeedLike = 0,
    ):
        if n_actions < 2:
            raise ConfigurationError(f"n_actions must be >= 2, got {n_actions}")
        if not 0 < lr < 2:
            raise ConfigurationError(f"lr must be in (0, 2), got {lr}")
        if not 0 <= gamma <= 1:
            raise ConfigurationError(f"gamma must be in [0, 1], got {gamma}")
        if not 0 <= epsilon_min <= epsilon <= 1:
            raise ConfigurationError(
                "epsilon schedule must satisfy 0 <= epsilon_min <= epsilon <= 1"
            )
        if not 0 < epsilon_decay <= 1:
            raise ConfigurationError(
                f"epsilon_decay must be in (0, 1], got {epsilon_decay}"
            )
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if encoder is not None and encoder.in_features != state_dim:
            raise ConfigurationError(
                f"encoder expects {encoder.in_features} features, agent got "
                f"state_dim={state_dim}"
            )
        self.n_actions = int(n_actions)
        self.lr = float(lr)
        self.gamma = float(gamma)
        self.epsilon = float(epsilon)
        self.epsilon_min = float(epsilon_min)
        self.epsilon_decay = float(epsilon_decay)
        self.batch_size = int(batch_size)
        self.encoder = encoder or NonlinearEncoder(
            state_dim, dim, derive_generator(seed, 0)
        )
        self.models = np.zeros((n_actions, self.encoder.dim))
        self.replay = ReplayBuffer(replay_capacity, derive_generator(seed, 1))
        self._explore_rng = as_generator(derive_generator(seed, 2))

    @property
    def dim(self) -> int:
        """Hypervector dimensionality."""
        return self.encoder.dim

    def _encode(self, states: FloatArray) -> FloatArray:
        S = self.encoder.encode_batch(np.atleast_2d(states))
        norms = np.linalg.norm(S, axis=1, keepdims=True)
        return S / np.maximum(norms, 1e-12)

    def q_values(self, state: FloatArray) -> FloatArray:
        """Action values ``Q(s, .)`` for one state."""
        return (self._encode(state) @ self.models.T)[0]

    def q_values_batch(self, states: FloatArray) -> FloatArray:
        """Action values for a batch of states, shape ``(n, n_actions)``."""
        return self._encode(states) @ self.models.T

    def act(self, state: FloatArray, *, greedy: bool = False) -> int:
        """Epsilon-greedy action selection (pure greedy with ``greedy``)."""
        if not greedy and self._explore_rng.random() < self.epsilon:
            return int(self._explore_rng.integers(self.n_actions))
        return int(np.argmax(self.q_values(state)))

    def decay_epsilon(self) -> None:
        """Apply one step of the exploration-decay schedule."""
        self.epsilon = max(self.epsilon_min, self.epsilon * self.epsilon_decay)

    # -- learning ------------------------------------------------------------

    def _td_update(
        self,
        states: FloatArray,
        actions: np.ndarray,
        rewards: FloatArray,
        next_states: FloatArray,
        dones: np.ndarray,
    ) -> float:
        """Apply the RegHD delta rule with TD targets; returns mean |error|."""
        S = self._encode(states)
        q_sa = np.einsum("ij,ij->i", S, self.models[actions])
        next_q = self._encode(next_states) @ self.models.T
        targets = rewards + self.gamma * np.where(
            dones, 0.0, next_q.max(axis=1)
        )
        errors = targets - q_sa
        scaled = self.lr * errors / len(errors)
        for i, action in enumerate(actions):
            self.models[action] += scaled[i] * S[i]
        return float(np.mean(np.abs(errors)))

    def observe(self, transition: Transition) -> float:
        """Online step: store in replay and apply one TD update."""
        self.replay.push(transition)
        return self._td_update(
            np.atleast_2d(transition.state),
            np.array([transition.action]),
            np.array([transition.reward]),
            np.atleast_2d(transition.next_state),
            np.array([transition.done]),
        ) * 1.0

    def learn_from_replay(self) -> float | None:
        """One mini-batch TD update from replay; None if buffer is empty."""
        if len(self.replay) == 0:
            return None
        batch = self.replay.sample(min(self.batch_size, len(self.replay)))
        return self._td_update(*self.replay.as_arrays(batch))
