"""Fault injection and robustness sweeps (paper Sec. 3 robustness claim)."""

from repro.noise.injection import (
    INJECTORS,
    add_gaussian_noise,
    bit_flip,
    corrupt_model,
    flip_bits,
    flip_signs,
    outlier_burst,
    stuck_at_zero,
)
from repro.noise.robustness import (
    RobustnessCurve,
    RobustnessPoint,
    sweep_mlp,
    sweep_reghd,
)

__all__ = [
    "INJECTORS",
    "add_gaussian_noise",
    "bit_flip",
    "corrupt_model",
    "flip_bits",
    "flip_signs",
    "outlier_burst",
    "stuck_at_zero",
    "RobustnessCurve",
    "RobustnessPoint",
    "sweep_mlp",
    "sweep_reghd",
]
