"""Fault injection *during training* — the intro's training-phase claim.

The paper motivates HD learning with: "ML algorithms in the training
phase have very high sensitivity to noise and failure in the hardware"
(Sec. 1).  These harnesses train RegHD and the MLP comparator while
corrupting their parameters after every epoch — modelling an unreliable
accelerator that computes updates correctly but stores parameters in
faulty memory — and report the final test quality per fault rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.mlp import MLPRegressor
from repro.core.config import RegHDConfig
from repro.core.multi import MultiModelRegHD
from repro.exceptions import ConfigurationError
from repro.metrics import mean_squared_error
from repro.noise.injection import INJECTORS
from repro.types import FloatArray, SeedLike
from repro.utils.rng import derive_generator


@dataclass(frozen=True)
class TrainingFaultPoint:
    """Final test quality for training under one fault rate."""

    rate: float
    mse: float


@dataclass(frozen=True)
class TrainingFaultCurve:
    """A quality-vs-training-fault-rate sweep for one model family."""

    label: str
    injector: str
    points: tuple[TrainingFaultPoint, ...]

    @property
    def rates(self) -> FloatArray:
        """Fault rates of the sweep."""
        return np.array([p.rate for p in self.points])

    @property
    def mses(self) -> FloatArray:
        """Final test MSE per fault rate."""
        return np.array([p.mse for p in self.points])

    def degradation(self) -> FloatArray:
        """Relative MSE growth over the fault-free run."""
        clean = self.points[0].mse
        if clean <= 0:
            raise ConfigurationError("fault-free MSE must be positive")
        return self.mses / clean - 1.0


def _validate(rates: list[float], injector: str, epochs: int) -> None:
    if not rates or rates[0] != 0.0:
        raise ConfigurationError(
            "rates must start at 0.0 (the fault-free reference)"
        )
    if injector not in INJECTORS:
        raise ConfigurationError(
            f"unknown injector {injector!r}; available: {sorted(INJECTORS)}"
        )
    if epochs < 1:
        raise ConfigurationError(f"epochs must be >= 1, got {epochs}")


def train_reghd_with_faults(
    config_factory,
    X_train: FloatArray,
    y_train: FloatArray,
    X_test: FloatArray,
    y_test: FloatArray,
    *,
    rates: list[float],
    injector: str = "sign_flip",
    epochs: int = 10,
    seed: SeedLike = 0,
) -> TrainingFaultCurve:
    """Train RegHD with per-epoch parameter corruption at each rate.

    ``config_factory()`` must return a fresh :class:`RegHDConfig`-built
    :class:`MultiModelRegHD` (so every rate trains an identical model).
    """
    _validate(rates, injector, epochs)
    inject = INJECTORS[injector]
    points = []
    for i, rate in enumerate(rates):
        model: MultiModelRegHD = config_factory()
        for epoch in range(epochs):
            model.partial_fit(X_train, y_train)
            if rate > 0.0:
                rng = derive_generator(seed, i, epoch)
                model.models.integer[:] = inject(
                    model.models.integer, rate, rng
                )
                model.models.rebinarize()
        points.append(
            TrainingFaultPoint(
                rate, mean_squared_error(y_test, model.predict(X_test))
            )
        )
    return TrainingFaultCurve(
        label="MultiModelRegHD", injector=injector, points=tuple(points)
    )


def train_mlp_with_faults(
    mlp_factory,
    X_train: FloatArray,
    y_train: FloatArray,
    X_test: FloatArray,
    y_test: FloatArray,
    *,
    rates: list[float],
    injector: str = "sign_flip",
    epochs: int = 10,
    seed: SeedLike = 0,
) -> TrainingFaultCurve:
    """Train the MLP comparator with per-epoch weight corruption.

    ``mlp_factory()`` must return a fresh single-epoch-configured
    :class:`MLPRegressor` (``epochs=1``); the harness drives the epoch
    loop so faults land between epochs, mirroring the RegHD harness.
    """
    _validate(rates, injector, epochs)
    inject = INJECTORS[injector]
    points = []
    for i, rate in enumerate(rates):
        model: MLPRegressor = mlp_factory()
        for epoch in range(epochs):
            if epoch == 0:
                model.fit(X_train, y_train)
            else:
                # Continue training from the (possibly corrupted) weights:
                # re-run fit's epoch loop manually via a single-epoch fit
                # on the standardised data path.
                model.early_stopping_patience = 0
                model.epochs = 1
                _continue_mlp_training(model, X_train, y_train)
            if rate > 0.0:
                for layer in range(len(model.weights_)):
                    rng = derive_generator(seed, i, epoch, layer)
                    model.weights_[layer][:] = inject(
                        model.weights_[layer], rate, rng
                    )
        points.append(
            TrainingFaultPoint(
                rate, mean_squared_error(y_test, model.predict(X_test))
            )
        )
    return TrainingFaultCurve(
        label="MLPRegressor", injector=injector, points=tuple(points)
    )


def _continue_mlp_training(
    model: MLPRegressor, X: FloatArray, y: FloatArray
) -> None:
    """One additional SGD epoch on an already-fitted MLP, keeping weights."""
    Xs = (X - model._x_mean) / model._x_scale
    ys = model.scaler.transform(y)
    n = Xs.shape[0]
    order = model._rng.permutation(n)
    for start in range(0, n, model.batch_size):
        idx = order[start : start + model.batch_size]
        pred, pres, posts = model._forward(Xs[idx])
        err = pred - ys[idx]
        grads_w, grads_b = model._backward(err, pres, posts)
        for layer in range(len(model.weights_)):
            model.weights_[layer] -= model.lr * grads_w[layer]
            model.biases_[layer] -= model.lr * grads_b[layer]
