"""Fault injection into hypervectors and model parameters.

RegHD's robustness claim (paper Sec. 3) rests on the holographic property
of hypervectors: information is spread uniformly across all D components,
so random component errors degrade quality gracefully.  These injectors
corrupt arrays in the three ways embedded hardware fails — sign/bit flips,
additive analog noise, and stuck-at elements — and are used by the
robustness sweep (:mod:`repro.noise.robustness`) and its benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import ArrayLike, FloatArray, SeedLike
from repro.utils.rng import as_generator


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"error rate must be in [0, 1], got {rate}")


def flip_signs(
    array: ArrayLike, rate: float, seed: SeedLike = None
) -> FloatArray:
    """Flip the sign of a random fraction of elements.

    The float-domain analogue of a memory bit flip on a sign-magnitude or
    bipolar representation; applied to model hypervectors it models faulty
    associative-memory cells.
    """
    _check_rate(rate)
    rng = as_generator(seed)
    out = np.array(array, dtype=np.float64, copy=True)
    mask = rng.random(out.shape) < rate
    out[mask] = -out[mask]
    return out


def flip_bits(
    array: ArrayLike, rate: float, seed: SeedLike = None
) -> np.ndarray:
    """Flip a random fraction of bits of a binary {0, 1} array."""
    _check_rate(rate)
    arr = np.asarray(array)
    if not np.isin(arr, (0, 1)).all():
        raise ConfigurationError("flip_bits requires a binary {0,1} array")
    rng = as_generator(seed)
    mask = rng.random(arr.shape) < rate
    return np.where(mask, 1 - arr, arr).astype(arr.dtype)


def bit_flip(
    array: ArrayLike, rate: float, seed: SeedLike = None
) -> np.ndarray:
    """Bit flips dispatched on the array's domain.

    ``{0, 1}`` arrays get true bit flips (:func:`flip_bits`); everything
    else is treated as a sign-magnitude/bipolar representation, where a
    memory bit flip of the sign bit is exactly a sign flip
    (:func:`flip_signs`).  This lets the robustness sweeps corrupt
    binary-quantised models in their native domain through the same
    ``INJECTORS`` entry that full-precision models use.
    """
    _check_rate(rate)
    arr = np.asarray(array)
    if np.isin(arr, (0, 1)).all():
        return flip_bits(arr, rate, seed)
    return flip_signs(arr, rate, seed)


def add_gaussian_noise(
    array: ArrayLike,
    rate: float,
    seed: SeedLike = None,
    *,
    relative_sigma: float = 1.0,
) -> FloatArray:
    """Perturb a random fraction of elements with Gaussian noise.

    The noise standard deviation is ``relative_sigma`` times the RMS of
    the array, modelling analog compute noise on the affected elements.
    """
    _check_rate(rate)
    if relative_sigma < 0:
        raise ConfigurationError(
            f"relative_sigma must be >= 0, got {relative_sigma}"
        )
    rng = as_generator(seed)
    out = np.array(array, dtype=np.float64, copy=True)
    rms = float(np.sqrt(np.mean(out**2)))
    scale = relative_sigma * (rms if rms > 0 else 1.0)
    mask = rng.random(out.shape) < rate
    out[mask] += rng.normal(0.0, scale, size=int(mask.sum()))
    return out


def stuck_at_zero(
    array: ArrayLike, rate: float, seed: SeedLike = None
) -> FloatArray:
    """Zero out a random fraction of elements (dead cells / gated lanes)."""
    _check_rate(rate)
    rng = as_generator(seed)
    out = np.array(array, dtype=np.float64, copy=True)
    mask = rng.random(out.shape) < rate
    out[mask] = 0.0
    return out


def outlier_burst(
    array: ArrayLike,
    rate: float,
    seed: SeedLike = None,
    *,
    magnitude: float = 10.0,
    tail: float = 3.0,
) -> FloatArray:
    """Replace a random fraction of *rows* with correlated heavy-tailed
    outliers (2-d input) or of elements (1-d input).

    Unlike the element-wise injectors above, this models *data*-level
    contamination — a sensor burst, a mislabelled shard — rather than a
    memory fault: every affected row is shifted by one shared random
    direction scaled by ``magnitude`` times the per-column RMS and a
    heavy-tailed draw (Student-t with ``tail`` degrees of freedom), so
    the outliers are correlated across features the way a common-cause
    fault makes them.  This is the workload behind the Mahalanobis-gate
    contamination benchmark.
    """
    _check_rate(rate)
    if magnitude <= 0:
        raise ConfigurationError(f"magnitude must be > 0, got {magnitude}")
    if tail <= 1.0:
        raise ConfigurationError(
            f"tail must be > 1 (finite-mean Student-t), got {tail}"
        )
    rng = as_generator(seed)
    out = np.array(array, dtype=np.float64, copy=True)
    if out.ndim == 1:
        mask = rng.random(len(out)) < rate
        if mask.any():
            rms = float(np.sqrt(np.mean(out**2))) or 1.0
            out[mask] += (
                magnitude * rms * rng.standard_t(tail, size=int(mask.sum()))
            )
        return out
    if out.ndim != 2:
        raise ConfigurationError(
            f"outlier_burst expects a 1-d or 2-d array, got shape {out.shape}"
        )
    mask = rng.random(len(out)) < rate
    if mask.any():
        rms = np.sqrt(np.mean(out**2, axis=0))
        rms[rms == 0] = 1.0
        # One shared unit direction: the burst is correlated across
        # features, exactly the structure marginal z-scores miss and a
        # covariance-aware gate catches.
        direction = rng.normal(size=out.shape[1])
        direction /= np.linalg.norm(direction)
        draws = rng.standard_t(tail, size=int(mask.sum()))
        out[mask] += (
            magnitude * draws[:, np.newaxis] * (direction * rms)[np.newaxis, :]
        )
    return out


INJECTORS = {
    "sign_flip": flip_signs,
    "bit_flip": bit_flip,
    "gaussian": add_gaussian_noise,
    "stuck_at_zero": stuck_at_zero,
    "outlier_burst": outlier_burst,
}


def corrupt_model(
    model: object, injector: str, rate: float, seed: SeedLike = None
) -> None:
    """Corrupt a live model's hypervectors in place (no restore).

    Unlike :func:`repro.noise.robustness.sweep_reghd`, which corrupts a
    *copy* of a trained model's clean state and restores it after each
    measurement, this hits the running model mid-stream and leaves the
    damage in — the memory-fault shape the replay engine injects so the
    scrubber/watchdog pair has something real to repair.  Works on any
    estimator exposing either ``models.integer`` + ``models.rebinarize``
    (MultiModelRegHD) or a float ``model`` hypervector bundle
    (SingleModelRegHD).
    """
    _check_rate(rate)
    try:
        inject = INJECTORS[injector]
    except KeyError:
        raise ConfigurationError(
            f"unknown injector {injector!r}; available: {sorted(INJECTORS)}"
        ) from None
    bank = getattr(model, "models", None)
    if bank is not None and hasattr(bank, "integer"):
        bank.integer[:] = inject(bank.integer, rate, seed)
        bank.rebinarize()
        return
    vector = getattr(model, "model", None)
    if vector is not None:
        vector[:] = inject(vector, rate, seed)
        return
    raise ConfigurationError(
        f"cannot corrupt {type(model).__name__}: no hypervector state found"
    )
