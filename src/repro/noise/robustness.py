"""Robustness sweeps: quality vs. injected hardware error rate.

Corrupts a *trained* model's parameters at increasing error rates and
measures test MSE, for RegHD (model hypervectors) and the MLP baseline
(weight matrices).  The paper's claim — reproduced by
``benchmarks/test_robustness.py`` — is that the hypervectors' redundant,
holographic representation degrades gracefully where the DNN's structured
weights collapse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.mlp import MLPRegressor
from repro.core.multi import MultiModelRegHD
from repro.core.single import SingleModelRegHD
from repro.exceptions import ConfigurationError
from repro.metrics import mean_squared_error
from repro.noise.injection import INJECTORS
from repro.types import FloatArray, SeedLike
from repro.utils.rng import derive_generator


@dataclass(frozen=True)
class RobustnessPoint:
    """Quality at one injected error rate."""

    rate: float
    mse: float


@dataclass(frozen=True)
class RobustnessCurve:
    """A full quality-vs-error-rate sweep for one model."""

    label: str
    injector: str
    points: tuple[RobustnessPoint, ...]

    @property
    def rates(self) -> FloatArray:
        """Error rates of the sweep."""
        return np.array([p.rate for p in self.points])

    @property
    def mses(self) -> FloatArray:
        """Test MSE at each error rate."""
        return np.array([p.mse for p in self.points])

    def degradation(self) -> FloatArray:
        """Relative MSE increase over the clean (rate 0) point."""
        clean = self.points[0].mse
        if clean <= 0:
            raise ConfigurationError("clean MSE must be positive")
        return self.mses / clean - 1.0


def _validate_sweep(rates: list[float], injector: str, repeats: int) -> None:
    if not rates or rates[0] != 0.0:
        raise ConfigurationError(
            "rates must start at 0.0 (the clean reference point)"
        )
    if injector not in INJECTORS:
        raise ConfigurationError(
            f"unknown injector {injector!r}; available: {sorted(INJECTORS)}"
        )
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")


def sweep_reghd(
    model: SingleModelRegHD | MultiModelRegHD,
    X_test: FloatArray,
    y_test: FloatArray,
    *,
    rates: list[float],
    injector: str = "sign_flip",
    repeats: int = 3,
    seed: SeedLike = 0,
) -> RobustnessCurve:
    """Corrupt a trained RegHD model's hypervectors and measure test MSE.

    Each non-zero rate is averaged over ``repeats`` corruption draws.  The
    model is restored to its clean parameters before returning.
    """
    _validate_sweep(rates, injector, repeats)
    inject = INJECTORS[injector]
    if isinstance(model, SingleModelRegHD):
        clean = model.model.copy()

        def corrupt(rate: float, rng_seed: int) -> None:
            model.model[:] = inject(clean, rate, rng_seed)

        def restore() -> None:
            model.model[:] = clean

    else:
        clean_int = model.models.integer.copy()

        def corrupt(rate: float, rng_seed: int) -> None:
            model.models.integer[:] = inject(clean_int, rate, rng_seed)
            model.models.rebinarize()

        def restore() -> None:
            model.models.integer[:] = clean_int
            model.models.rebinarize()

    points = []
    try:
        for i, rate in enumerate(rates):
            if rate == 0.0:
                restore()
                points.append(
                    RobustnessPoint(0.0, mean_squared_error(y_test, model.predict(X_test)))
                )
                continue
            mses = []
            for rep in range(repeats):
                rng = derive_generator(seed, i, rep)
                corrupt(rate, rng)
                mses.append(mean_squared_error(y_test, model.predict(X_test)))
            points.append(RobustnessPoint(rate, float(np.mean(mses))))
    finally:
        restore()
    return RobustnessCurve(
        label=type(model).__name__, injector=injector, points=tuple(points)
    )


def sweep_mlp(
    model: MLPRegressor,
    X_test: FloatArray,
    y_test: FloatArray,
    *,
    rates: list[float],
    injector: str = "sign_flip",
    repeats: int = 3,
    seed: SeedLike = 0,
) -> RobustnessCurve:
    """Corrupt a trained MLP's weight matrices and measure test MSE."""
    _validate_sweep(rates, injector, repeats)
    inject = INJECTORS[injector]
    clean = [W.copy() for W in model.weights_]

    def restore() -> None:
        for W, saved in zip(model.weights_, clean):
            W[:] = saved

    points = []
    try:
        for i, rate in enumerate(rates):
            if rate == 0.0:
                restore()
                points.append(
                    RobustnessPoint(0.0, mean_squared_error(y_test, model.predict(X_test)))
                )
                continue
            mses = []
            for rep in range(repeats):
                for layer, saved in enumerate(clean):
                    rng = derive_generator(seed, i, rep, layer)
                    model.weights_[layer][:] = inject(saved, rate, rng)
                mses.append(mean_squared_error(y_test, model.predict(X_test)))
            points.append(RobustnessPoint(rate, float(np.mean(mses))))
    finally:
        restore()
    return RobustnessCurve(label="MLPRegressor", injector=injector, points=tuple(points))
