"""Soft-cluster distributional outputs for multi-model RegHD.

RegHD-k's point prediction is already a responsibility-weighted mixture
(Eq. 6): softmax confidences over the k cluster similarities weight the
k per-model dot products.  Taking the mixture seriously — in the spirit
of Dewulf et al.'s hyperdimensional distributional regression — the same
two arrays also yield a *predictive distribution*: the responsibilities
are mixture weights and the per-model dots are component means, so the
first two moments come for free.

:func:`mixture_moments` computes those moments; the model packages them
(plus an interval) as a :class:`DistributionalPrediction`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.robust.conformal import PredictionInterval
from repro.robust.moments import normal_quantile
from repro.types import ArrayLike, FloatArray

__all__ = ["DistributionalPrediction", "mixture_moments"]


def mixture_moments(
    responsibilities: FloatArray, components: FloatArray
) -> tuple[FloatArray, FloatArray]:
    """Mean and variance of a per-row discrete mixture.

    ``responsibilities`` is ``(n, k)`` (rows sum to 1) and ``components``
    the matching ``(n, k)`` component values.  The variance is the
    between-component spread ``E[c^2] - E[c]^2`` — how much the k
    specialised models disagree about this row — clipped at zero against
    floating-point cancellation.
    """
    resp = np.asarray(responsibilities, dtype=np.float64)
    comp = np.asarray(components, dtype=np.float64)
    if resp.shape != comp.shape or resp.ndim != 2:
        raise ConfigurationError(
            "responsibilities and components must share an (n, k) shape, "
            f"got {resp.shape} and {comp.shape}"
        )
    mean = (resp * comp).sum(axis=1)
    second = (resp * comp**2).sum(axis=1)
    return mean, np.maximum(second - mean**2, 0.0)


@dataclass(frozen=True)
class DistributionalPrediction:
    """Mixture predictive distribution for a batch of queries.

    ``mean``/``variance`` are the mixture moments in original target
    units; ``lower``/``upper`` the interval band (conformal when a
    calibrator supplied it, otherwise Gaussian from the mixture
    variance); ``responsibilities`` the ``(n, k)`` soft-cluster weights
    that produced them.
    """

    mean: FloatArray
    variance: FloatArray
    lower: FloatArray
    upper: FloatArray
    responsibilities: FloatArray

    @property
    def std(self) -> FloatArray:
        """Mixture standard deviation per query."""
        return np.sqrt(self.variance)

    @property
    def interval(self) -> PredictionInterval:
        """The band as a :class:`PredictionInterval`."""
        return PredictionInterval(
            lower=self.lower, prediction=self.mean, upper=self.upper
        )

    def covers(self, y_true: ArrayLike) -> FloatArray:
        """Boolean per-query coverage indicator of the band."""
        return self.interval.covers(y_true)

    @staticmethod
    def gaussian_band(
        mean: FloatArray, variance: FloatArray, alpha: float
    ) -> tuple[FloatArray, FloatArray]:
        """Symmetric ``1 - alpha`` Gaussian band from mixture moments."""
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1), got {alpha}"
            )
        half = normal_quantile(1.0 - alpha / 2.0) * np.sqrt(variance)
        return mean - half, mean + half
