"""Streaming conformal calibration over prequential residuals.

The batch :class:`~repro.evaluation.conformal.ConformalRegressor` splits
a dataset once and calibrates once; a streaming learner instead sees an
unbounded sequence of honest (predict-then-train) residuals.
:class:`AdaptiveConformal` turns that sequence into always-current
prediction intervals:

* a **rolling window** of the newest absolute residuals, so the
  calibration set tracks the current concept instead of averaging over
  every regime the stream ever visited;
* the **finite-sample-corrected quantile** ``ceil((n+1)(1-alpha))/n`` on
  the window — the same rank rule as the split-conformal wrapper, shared
  through :func:`conformal_quantile`;
* optional **adaptive alpha** (Gibbs & Candès-style ACI): each scored
  observation nudges the working miscoverage level toward the target, so
  sustained under-/over-coverage self-corrects even under drift.

Coverage is scored *prequentially* — each incoming truth is checked
against the interval the calibrator would have issued **before** seeing
it — so :attr:`AdaptiveConformal.coverage` is an honest online estimate.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.telemetry import metrics as _metrics
from repro.types import ArrayLike, FloatArray

__all__ = [
    "AdaptiveConformal",
    "PredictionInterval",
    "conformal_quantile",
]


@dataclass(frozen=True)
class PredictionInterval:
    """Lower/centre/upper bands for a batch of predictions."""

    lower: FloatArray
    prediction: FloatArray
    upper: FloatArray

    @property
    def width(self) -> FloatArray:
        """Per-query interval width."""
        return self.upper - self.lower

    def covers(self, y_true: ArrayLike) -> FloatArray:
        """Boolean per-query coverage indicator."""
        y = np.asarray(y_true, dtype=np.float64).ravel()
        return (self.lower <= y) & (y <= self.upper)


def conformal_quantile(residuals: ArrayLike, alpha: float) -> float:
    """Finite-sample-corrected conformal quantile of absolute residuals.

    The rank rule ``ceil((n+1)(1-alpha))`` guarantees at least
    ``1 - alpha`` marginal coverage for exchangeable data; when the
    calibration set is too small for the requested ``alpha`` the result
    is ``inf`` (the guarantee forces an infinite band — no silent
    under-coverage).
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    r = np.asarray(residuals, dtype=np.float64).ravel()
    n = len(r)
    if n == 0:
        return float("inf")
    rank = math.ceil((n + 1) * (1.0 - alpha))
    if rank > n:
        return float("inf")
    return float(np.sort(r)[rank - 1])


class AdaptiveConformal:
    """Rolling-quantile conformal calibrator for streaming regression.

    Parameters
    ----------
    alpha:
        Target miscoverage; intervals aim for ``1 - alpha`` coverage.
    window:
        Number of newest absolute residuals retained for calibration.
    gamma:
        Adaptive-alpha step size (0 disables adaptation).  Each scored
        observation moves the working level by ``gamma * (alpha - err)``
        where ``err`` is 1 on a miss — persistent under-coverage widens
        the next intervals, persistent over-coverage narrows them.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.1,
        window: int = 512,
        gamma: float = 0.0,
    ):
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        if window < 8:
            raise ConfigurationError(f"window must be >= 8, got {window}")
        if gamma < 0.0:
            raise ConfigurationError(f"gamma must be >= 0, got {gamma}")
        self.alpha = float(alpha)
        self.window = int(window)
        self.gamma = float(gamma)
        self.alpha_t = float(alpha)  # working (possibly adapted) level
        self._residuals: deque[float] = deque(maxlen=self.window)
        self.n_scored = 0
        self.n_covered = 0

    # -- calibration state ---------------------------------------------------

    @property
    def n_calibration(self) -> int:
        """Residuals currently in the rolling window."""
        return len(self._residuals)

    @property
    def coverage(self) -> float:
        """Prequential empirical coverage over everything scored so far.

        NaN until at least one observation has been scored against a
        finite interval.
        """
        if self.n_scored == 0:
            return float("nan")
        return self.n_covered / self.n_scored

    def quantile(self) -> float:
        """Current half-width of the interval (``inf`` while warming up)."""
        return conformal_quantile(self._residuals, self.alpha_t)

    def interval(self, prediction: ArrayLike) -> PredictionInterval:
        """Symmetric conformal bands around point predictions."""
        center = np.asarray(prediction, dtype=np.float64).ravel()
        q = self.quantile()
        return PredictionInterval(
            lower=center - q, prediction=center, upper=center + q
        )

    # -- streaming update ----------------------------------------------------

    def observe(self, y_true: ArrayLike, y_pred: ArrayLike) -> FloatArray:
        """Score coverage of one prequential batch, then absorb residuals.

        Returns the per-row coverage indicators against the interval
        that was in force *before* this batch arrived (honest online
        coverage).  While the quantile is still infinite the batch
        counts as covered but is not scored — an infinite band carries
        no information about calibration quality.
        """
        y_arr = np.asarray(y_true, dtype=np.float64).ravel()
        p_arr = np.asarray(y_pred, dtype=np.float64).ravel()
        if len(y_arr) != len(p_arr):
            raise ConfigurationError(
                f"y_true has {len(y_arr)} rows but y_pred has {len(p_arr)}"
            )
        q = self.quantile()
        residuals = np.abs(y_arr - p_arr)
        if math.isinf(q):
            covered = np.ones(len(y_arr), dtype=bool)
        else:
            covered = residuals <= q
            self.n_scored += len(covered)
            self.n_covered += int(covered.sum())
            if self.gamma > 0.0:
                # ACI: one step per observation, in arrival order.
                for hit in covered:
                    err = 0.0 if hit else 1.0
                    self.alpha_t += self.gamma * (self.alpha - err)
                self.alpha_t = float(
                    np.clip(self.alpha_t, 1e-4, 1.0 - 1e-4)
                )
            self._emit(covered, q)
        self._residuals.extend(float(r) for r in residuals)
        return covered

    def _emit(self, covered: np.ndarray, q: float) -> None:
        registry = _metrics.active()
        if registry is None:
            return
        n_hit = int(covered.sum())
        if n_hit:
            registry.counter(
                "reghd_conformal_coverage_total", outcome="covered"
            ).inc(n_hit)
        if len(covered) - n_hit:
            registry.counter(
                "reghd_conformal_coverage_total", outcome="missed"
            ).inc(len(covered) - n_hit)
        registry.gauge("reghd_conformal_interval_width").set(2.0 * q)

    # -- state protocol ------------------------------------------------------

    def get_state(self) -> dict:
        """JSON-serialisable snapshot (checkpoint/restore support)."""
        return {
            "alpha": self.alpha,
            "window": self.window,
            "gamma": self.gamma,
            "alpha_t": self.alpha_t,
            "n_scored": self.n_scored,
            "n_covered": self.n_covered,
            "residuals": list(self._residuals),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot (bit-exact quantiles)."""
        self.alpha = float(state["alpha"])
        self.window = int(state["window"])
        self.gamma = float(state["gamma"])
        self.alpha_t = float(state["alpha_t"])
        self.n_scored = int(state["n_scored"])
        self.n_covered = int(state["n_covered"])
        self._residuals = deque(
            (float(r) for r in state["residuals"]), maxlen=self.window
        )

    @classmethod
    def from_state(cls, state: dict) -> "AdaptiveConformal":
        """Rebuild a calibrator from a :meth:`get_state` snapshot."""
        calibrator = cls(
            alpha=float(state["alpha"]),
            window=int(state["window"]),
            gamma=float(state["gamma"]),
        )
        calibrator.set_state(state)
        return calibrator

    def __repr__(self) -> str:
        return (
            f"AdaptiveConformal(alpha={self.alpha}, window={self.window}, "
            f"n_calibration={self.n_calibration}, "
            f"coverage={self.coverage:.3f})"
        )
