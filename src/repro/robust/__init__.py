"""Statistical robustness layer: robust gating, streaming conformal
intervals, and distributional outputs.

The reliability package (:mod:`repro.reliability`) is *mechanical*: it
repairs NaN, rolls back diverged models, scrubs flipped bits.  This
package makes the stack *statistical* — it models what normal data looks
like and acts on departures from it:

* :mod:`~repro.robust.moments` — :class:`RobustMomentTracker`, streaming
  MinCovDet-style robust mean/covariance with Mahalanobis scoring and
  degenerate-covariance (null-space) handling;
* :mod:`~repro.robust.gate` — :class:`MahalanobisGate`, per-row leverage
  (``d_x``) and studentised-residual (``d_r``) gating over joint
  ``[x, y]`` moments, wired into
  :class:`~repro.reliability.guards.InputGuard` as the ``mahalanobis``
  guard policy;
* :mod:`~repro.robust.conformal` — :class:`AdaptiveConformal`,
  rolling-quantile conformal calibration over prequential residuals
  (checkpointable; optional adaptive-alpha correction);
* :mod:`~repro.robust.distribution` — mixture moments over the k
  soft-cluster responsibilities, powering
  :meth:`MultiModelRegHD.predict_dist`;
* :mod:`~repro.robust.bench` — the contamination benchmark behind
  ``BENCH_robustness.json`` (not imported here; it pulls in the full
  model stack).

All covariance/Mahalanobis arithmetic in the repository lives here — a
repo-consistency test bans ad-hoc clones elsewhere.
"""

from repro.robust.conformal import (
    AdaptiveConformal,
    PredictionInterval,
    conformal_quantile,
)
from repro.robust.distribution import DistributionalPrediction, mixture_moments
from repro.robust.gate import GateScores, MahalanobisGate
from repro.robust.moments import (
    RobustMomentTracker,
    chi2_quantile,
    clipped_eigh,
    mahalanobis2_from,
    normal_quantile,
)

__all__ = [
    "AdaptiveConformal",
    "DistributionalPrediction",
    "GateScores",
    "MahalanobisGate",
    "PredictionInterval",
    "RobustMomentTracker",
    "chi2_quantile",
    "clipped_eigh",
    "conformal_quantile",
    "mahalanobis2_from",
    "mixture_moments",
    "normal_quantile",
]
