"""Robust covariance gating: leverage and residual Mahalanobis scores.

:class:`MahalanobisGate` tracks the *joint* robust moments of
``z = [x, y]`` with one :class:`~repro.robust.moments.RobustMomentTracker`
and derives the two salad-style scores from the partitioned covariance:

* **leverage** ``d_x`` — Mahalanobis distance of the feature vector
  under the marginal ``Sigma_xx``: how unusual is this input?
* **residual** ``d_r`` — the studentised residual of the implied linear
  regression ``y ≈ alpha + beta·x`` with ``beta = Sigma_xx^+ Sigma_xy``
  and noise variance ``sigma_e = Sigma_yy - Sigma_yx beta``: how unusual
  is this *target given the input*?

A row is admitted only when both scores sit inside their chi-square
envelopes.  Admitted rows update the joint moments (the tracker applies
its own MCD-style reweighting on top), so the estimate stays clean under
sustained contamination instead of being dragged toward it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.robust.moments import (
    RobustMomentTracker,
    chi2_quantile,
    clipped_eigh,
    mahalanobis2_from,
)
from repro.types import ArrayLike, FloatArray

__all__ = ["GateScores", "MahalanobisGate"]


class GateScores:
    """Per-row gate outcome: keep mask plus both Mahalanobis scores.

    ``residual`` is None for inference-only batches (no targets to
    studentise).  During warmup ``keep`` is all-True and the scores are
    whatever the immature estimate produced — callers should treat them
    as telemetry, not verdicts.
    """

    __slots__ = ("keep", "leverage", "residual", "active")

    def __init__(
        self,
        keep: np.ndarray,
        leverage: FloatArray,
        residual: FloatArray | None,
        active: bool,
    ):
        self.keep = keep
        self.leverage = leverage
        self.residual = residual
        self.active = active

    @property
    def n_gated(self) -> int:
        """Rows the gate excluded."""
        return int((~self.keep).sum())


class MahalanobisGate:
    """Statistical input gate over streaming ``(X, y)`` batches.

    Parameters
    ----------
    in_features:
        Feature dimensionality of ``X``.
    leverage_p / residual_p:
        Chi-square envelope probabilities for the leverage (``d_x``,
        ``in_features`` dof) and residual (``d_r``, 1 dof) cutoffs.
    warmup:
        Rows absorbed before the gate starts excluding anything.
    decay:
        Exponential forgetting of the joint moments (1 = stationary).
    """

    def __init__(
        self,
        in_features: int,
        *,
        leverage_p: float = 0.995,
        residual_p: float = 0.995,
        warmup: int = 64,
        decay: float = 1.0,
    ):
        if in_features < 1:
            raise ConfigurationError(
                f"in_features must be >= 1, got {in_features}"
            )
        for name, p in (("leverage_p", leverage_p), ("residual_p", residual_p)):
            if not 0.0 < p < 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1), got {p}")
        self.in_features = int(in_features)
        self.leverage_p = float(leverage_p)
        self.residual_p = float(residual_p)
        self.leverage_cut2 = chi2_quantile(leverage_p, in_features)
        self.residual_cut2 = chi2_quantile(residual_p, 1)
        self.tracker = RobustMomentTracker(
            in_features + 1, warmup=warmup, decay=decay
        )
        self.n_gated = 0

    # -- score derivation ----------------------------------------------------

    def _partition(self) -> tuple[FloatArray, tuple, FloatArray, float]:
        """``(mu_x, eig(Sigma_xx), beta, sigma_e)`` from the joint moments."""
        d = self.in_features
        cov = self.tracker.covariance
        sigma_xx = cov[:d, :d]
        sigma_xy = cov[:d, d]
        sigma_yy = float(cov[d, d])
        # Clipped-eigenvalue pseudo-inverse of Sigma_xx (same policy as
        # the tracker's own scoring, kept local to the x-marginal).
        eigvals, eigvecs, kept = clipped_eigh(sigma_xx)
        inv = np.where(kept, 1.0 / np.where(kept, eigvals, 1.0), 0.0)
        beta = eigvecs @ (inv * (eigvecs.T @ sigma_xy))
        sigma_e = sigma_yy - float(sigma_xy @ beta)
        return (
            self.tracker.mean[:d],
            (eigvals, eigvecs, kept),
            beta,
            max(sigma_e, 0.0),
        )

    def leverage2(self, X: ArrayLike) -> FloatArray:
        """Squared leverage ``d_x^2`` under the marginal ``Sigma_xx``."""
        X_arr = np.asarray(X, dtype=np.float64)
        d = self.in_features
        if X_arr.ndim != 2 or X_arr.shape[1] != d:
            raise ConfigurationError(
                f"expected rows of shape (n, {d}), got {X_arr.shape}"
            )
        if self.tracker.weight <= 0.0:
            return np.zeros(len(X_arr))
        mu_x, (eigvals, eigvecs, kept), _, _ = self._partition()
        return mahalanobis2_from(eigvals, eigvecs, kept, X_arr - mu_x)

    def residual2(self, X: ArrayLike, y: ArrayLike) -> FloatArray:
        """Squared studentised residual ``d_r^2`` of ``y`` given ``x``."""
        X_arr = np.asarray(X, dtype=np.float64)
        y_arr = np.asarray(y, dtype=np.float64).ravel()
        mu = self.tracker.mean
        d = self.in_features
        _, _, beta, sigma_e = self._partition()
        r = (y_arr - mu[d]) - (X_arr - mu[:d]) @ beta
        if sigma_e <= np.finfo(np.float64).tiny:
            # Degenerate noise estimate: any non-zero residual is
            # infinitely surprising, zero residuals are unremarkable.
            return np.where(np.abs(r) > 1e-12, np.inf, 0.0)
        return r**2 / sigma_e

    # -- gating -------------------------------------------------------------

    def score(self, X: ArrayLike, y: ArrayLike | None = None) -> GateScores:
        """Score one batch without updating the moments."""
        X_arr = np.asarray(X, dtype=np.float64)
        active = self.tracker.warm
        lev2 = self.leverage2(X_arr)
        res2 = None if y is None else self.residual2(X_arr, y)
        if not active:
            keep = np.ones(len(X_arr), dtype=bool)
        else:
            keep = lev2 <= self.leverage_cut2
            if res2 is not None:
                keep &= res2 <= self.residual_cut2
        return GateScores(
            keep=keep,
            leverage=np.sqrt(lev2),
            residual=None if res2 is None else np.sqrt(res2),
            active=active,
        )

    def filter(self, X: ArrayLike, y: ArrayLike | None = None) -> GateScores:
        """Score one batch and absorb the admitted rows into the moments.

        Inference-only batches (``y is None``) are scored on leverage but
        never update the joint moments — a half-observed row has no place
        in a joint ``[x, y]`` estimate.
        """
        scores = self.score(X, y)
        if y is not None:
            X_arr = np.asarray(X, dtype=np.float64)
            y_arr = np.asarray(y, dtype=np.float64).ravel()
            z = np.hstack([X_arr, y_arr[:, np.newaxis]])
            self.tracker.update(z, weights=scores.keep.astype(np.float64))
        self.n_gated += scores.n_gated
        return scores

    # -- state protocol ------------------------------------------------------

    def get_state(self) -> dict:
        """JSON-serialisable snapshot (checkpoint/restore support)."""
        return {
            "in_features": self.in_features,
            "leverage_p": self.leverage_p,
            "residual_p": self.residual_p,
            "n_gated": self.n_gated,
            "tracker": self.tracker.get_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot."""
        if int(state["in_features"]) != self.in_features:
            raise ConfigurationError(
                f"state in_features {state['in_features']} != gate "
                f"in_features {self.in_features}"
            )
        self.leverage_p = float(state["leverage_p"])
        self.residual_p = float(state["residual_p"])
        self.leverage_cut2 = chi2_quantile(self.leverage_p, self.in_features)
        self.residual_cut2 = chi2_quantile(self.residual_p, 1)
        self.n_gated = int(state["n_gated"])
        self.tracker.set_state(state["tracker"])

    @classmethod
    def from_state(cls, state: dict) -> "MahalanobisGate":
        """Rebuild a gate from a :meth:`get_state` snapshot."""
        gate = cls(int(state["in_features"]))
        gate.set_state(state)
        return gate

    def __repr__(self) -> str:
        return (
            f"MahalanobisGate(in_features={self.in_features}, "
            f"warm={self.tracker.warm}, gated={self.n_gated})"
        )
