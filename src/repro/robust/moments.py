"""Streaming robust mean/covariance estimation and Mahalanobis scoring.

The salad pipeline (SNIPPETS.md §1) fits a :class:`MinCovDet` estimator
per batch and scores leverage ``d_x`` and residual ``d_r`` Mahalanobis
distances against it.  A streaming learner cannot refit from scratch on
every batch, so :class:`RobustMomentTracker` keeps the two MCD
ingredients incrementally:

* **weighted streaming moments** — mean and covariance are maintained
  with Chan-style weighted merges (a rank-one update per merged batch),
  optionally with exponential decay so the estimate follows drift;
* **MCD-style reweighting** — rows are scored against the *current*
  estimate first and rows beyond a chi-square cutoff get weight zero, so
  gross outliers never enter the moments they would need to corrupt in
  order to hide.

Degenerate covariances are first-class: the precision matrix is a
clipped-eigenvalue pseudo-inverse, and deviations inside the null space
(a "constant" feature suddenly moving) score as infinitely surprising
rather than invisibly zero.

Everything here is pure numpy — no SciPy/scikit-learn dependency — so
the chi-square and normal quantiles ship as closed-form approximations
(Wilson-Hilferty and Acklam), accurate to ~1e-3 in the tail regions the
gates use.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import ArrayLike, FloatArray

__all__ = [
    "RobustMomentTracker",
    "chi2_quantile",
    "clipped_eigh",
    "mahalanobis2_from",
    "normal_quantile",
]

#: relative eigenvalue cutoff below which a covariance direction is
#: treated as degenerate (null space) rather than inverted.
EIG_RTOL = 1e-10


def clipped_eigh(cov: FloatArray) -> tuple[FloatArray, FloatArray, np.ndarray]:
    """Eigendecompose a covariance, flagging the invertible directions.

    Returns ``(eigvals, eigvecs, kept)`` where ``kept`` marks eigenvalues
    above the relative floor — the directions a pseudo-inverse may
    invert.  The symmetrisation makes the decomposition safe for
    accumulated floating-point asymmetry.
    """
    eigvals, eigvecs = np.linalg.eigh((cov + cov.T) / 2.0)
    floor = max(float(eigvals.max()), 0.0) * EIG_RTOL
    kept = eigvals > max(floor, np.finfo(np.float64).tiny)
    return eigvals, eigvecs, kept


def mahalanobis2_from(
    eigvals: FloatArray,
    eigvecs: FloatArray,
    kept: np.ndarray,
    delta: FloatArray,
) -> FloatArray:
    """Squared Mahalanobis distances of centred rows ``delta``.

    Uses the clipped-eigenvalue pseudo-inverse described by
    :func:`clipped_eigh`.  Deviation *inside the null space* of a
    singular covariance (a direction with zero observed variance) scores
    ``inf``: the estimate has never seen movement there, so any movement
    is maximally surprising.
    """
    proj = delta @ eigvecs  # coordinates in the eigenbasis
    inv = np.where(kept, 1.0 / np.where(kept, eigvals, 1.0), 0.0)
    d2 = (proj**2 * inv).sum(axis=1)
    if not kept.all():
        null2 = (proj**2 * ~kept).sum(axis=1)
        scale = max(float(eigvals.max()), 1.0)
        d2 = np.where(null2 > scale * 1e-12, np.inf, d2)
    return d2

# Acklam's rational approximation of the standard normal quantile.
_ACKLAM_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_ACKLAM_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_ACKLAM_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_ACKLAM_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)


def normal_quantile(p: float) -> float:
    """Standard-normal quantile ``Phi^{-1}(p)`` (Acklam approximation).

    Absolute error below 1.2e-9 over (0, 1); the endpoints map to
    ``-inf``/``inf``.
    """
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    if p == 0.0:
        return float("-inf")
    if p == 1.0:
        return float("inf")
    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (
        ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
    ) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def chi2_quantile(p: float, k: int) -> float:
    """Chi-square quantile with ``k`` degrees of freedom.

    Wilson-Hilferty: a chi-square variable over its dof is approximately
    the cube of a normal — accurate to a few parts in a thousand for the
    upper-tail cutoffs the gates use (p in [0.9, 0.999], k >= 1).
    """
    if k < 1:
        raise ConfigurationError(f"degrees of freedom must be >= 1, got {k}")
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"p must be in (0, 1), got {p}")
    z = normal_quantile(p)
    h = 2.0 / (9.0 * k)
    return float(k * (1.0 - h + z * math.sqrt(h)) ** 3)


class RobustMomentTracker:
    """Streaming robust mean/covariance with Mahalanobis scoring.

    Parameters
    ----------
    dim:
        Dimensionality of the tracked vectors.
    reweight_p:
        MCD-style reweighting cutoff: once warm, rows whose squared
        Mahalanobis distance exceeds ``chi2_quantile(reweight_p, dim)``
        get weight zero in the moment update.
    warmup:
        Minimum accumulated weight before scoring activates; during
        warmup every row is absorbed unweighted (there is no trustworthy
        estimate to score against yet).
    decay:
        Per-merge exponential forgetting of the accumulated moments in
        (0, 1]; 1 keeps the full history (stationary estimate).
    """

    def __init__(
        self,
        dim: int,
        *,
        reweight_p: float = 0.975,
        warmup: int = 32,
        decay: float = 1.0,
    ):
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim}")
        if not 0.0 < reweight_p < 1.0:
            raise ConfigurationError(
                f"reweight_p must be in (0, 1), got {reweight_p}"
            )
        if warmup < 1:
            raise ConfigurationError(f"warmup must be >= 1, got {warmup}")
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        self.dim = int(dim)
        self.reweight_p = float(reweight_p)
        self.warmup = int(warmup)
        self.decay = float(decay)
        self.cutoff2 = chi2_quantile(self.reweight_p, self.dim)
        self.weight = 0.0  # accumulated (decayed) row weight
        self.n_seen = 0  # raw rows offered, for bookkeeping
        self.n_rejected = 0  # rows excluded by the reweighting step
        self.mean = np.zeros(self.dim)
        self._m2 = np.zeros((self.dim, self.dim))  # weighted scatter
        self._eig: tuple[FloatArray, FloatArray, np.ndarray] | None = None

    # -- properties ---------------------------------------------------------

    @property
    def warm(self) -> bool:
        """Whether enough weight has accumulated for scoring."""
        return self.weight >= self.warmup

    @property
    def covariance(self) -> FloatArray:
        """The current (weighted) covariance estimate, ``(dim, dim)``."""
        if self.weight <= 0:
            return np.zeros((self.dim, self.dim))
        return self._m2 / self.weight

    # -- update -------------------------------------------------------------

    def _check_rows(self, X: ArrayLike) -> FloatArray:
        arr = np.asarray(X, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.dim:
            raise ConfigurationError(
                f"expected rows of shape (n, {self.dim}), got {arr.shape}"
            )
        return arr

    def update(self, X: ArrayLike, weights: ArrayLike | None = None) -> None:
        """Merge a batch of rows into the moments (Chan weighted merge).

        ``weights`` defaults to all-ones; zero-weight rows are ignored.
        The merge is a single rank-one correction on top of the batch
        scatter, so cost is ``O(n·dim + dim^2)`` per batch.
        """
        X_arr = self._check_rows(X)
        n = len(X_arr)
        self.n_seen += n
        if weights is None:
            w = np.ones(n)
        else:
            w = np.asarray(weights, dtype=np.float64).ravel()
            if len(w) != n:
                raise ConfigurationError(
                    f"weights length {len(w)} != rows {n}"
                )
        w_sum = float(w.sum())
        if w_sum <= 0.0:
            return
        batch_mean = (w[:, np.newaxis] * X_arr).sum(axis=0) / w_sum
        centered = X_arr - batch_mean
        batch_m2 = (w[:, np.newaxis] * centered).T @ centered

        prior = self.decay * self.weight
        total = prior + w_sum
        delta = batch_mean - self.mean
        self._m2 = (
            self.decay * self._m2
            + batch_m2
            + (prior * w_sum / total) * np.outer(delta, delta)
        )
        self.mean = self.mean + (w_sum / total) * delta
        self.weight = total
        self._eig = None  # precision is stale

    # -- scoring ------------------------------------------------------------

    def _eigh(self) -> tuple[FloatArray, FloatArray, np.ndarray]:
        if self._eig is None:
            self._eig = clipped_eigh(self.covariance)
        return self._eig

    def mahalanobis2(self, X: ArrayLike) -> FloatArray:
        """Squared Mahalanobis distance of each row to the current mean.

        Uses the clipped-eigenvalue pseudo-inverse of the covariance
        (:func:`mahalanobis2_from`); null-space deviations score ``inf``.
        Before any update the tracker has no geometry and scores 0.
        """
        X_arr = self._check_rows(X)
        if self.weight <= 0.0:
            return np.zeros(len(X_arr))
        eigvals, eigvecs, kept = self._eigh()
        return mahalanobis2_from(eigvals, eigvecs, kept, X_arr - self.mean)

    def mahalanobis(self, X: ArrayLike) -> FloatArray:
        """Mahalanobis distance (the square root of :meth:`mahalanobis2`)."""
        return np.sqrt(self.mahalanobis2(X))

    def score_and_update(self, X: ArrayLike) -> FloatArray:
        """MCD-style step: score rows, absorb only the inliers.

        Returns the squared distances computed *before* the update.  Rows
        beyond the chi-square cutoff get weight zero; during warmup every
        row is absorbed (scores are still returned for telemetry).
        """
        X_arr = self._check_rows(X)
        d2 = self.mahalanobis2(X_arr)
        if self.warm:
            keep = d2 <= self.cutoff2
            self.n_rejected += int((~keep).sum())
            self.update(X_arr, weights=keep.astype(np.float64))
        else:
            self.update(X_arr)
        return d2

    # -- state protocol ------------------------------------------------------

    def get_state(self) -> dict:
        """JSON-serialisable snapshot (checkpoint/restore support)."""
        return {
            "dim": self.dim,
            "reweight_p": self.reweight_p,
            "warmup": self.warmup,
            "decay": self.decay,
            "weight": self.weight,
            "n_seen": self.n_seen,
            "n_rejected": self.n_rejected,
            "mean": self.mean.tolist(),
            "m2": self._m2.tolist(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot (bit-exact moments)."""
        if int(state["dim"]) != self.dim:
            raise ConfigurationError(
                f"state dim {state['dim']} != tracker dim {self.dim}"
            )
        self.reweight_p = float(state["reweight_p"])
        self.warmup = int(state["warmup"])
        self.decay = float(state["decay"])
        self.cutoff2 = chi2_quantile(self.reweight_p, self.dim)
        self.weight = float(state["weight"])
        self.n_seen = int(state["n_seen"])
        self.n_rejected = int(state["n_rejected"])
        self.mean = np.asarray(state["mean"], dtype=np.float64)
        self._m2 = np.asarray(state["m2"], dtype=np.float64)
        self._eig = None

    @classmethod
    def from_state(cls, state: dict) -> "RobustMomentTracker":
        """Rebuild a tracker from a :meth:`get_state` snapshot."""
        tracker = cls(int(state["dim"]))
        tracker.set_state(state)
        return tracker

    def __repr__(self) -> str:
        return (
            f"RobustMomentTracker(dim={self.dim}, weight={self.weight:.1f}, "
            f"warm={self.warm}, rejected={self.n_rejected})"
        )
