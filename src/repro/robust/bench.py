"""Contamination benchmark: what the Mahalanobis gate buys under outliers.

Shared by ``python -m repro.robust.bench`` (the CI contamination smoke
leg) and ``benchmarks/test_robustness_bench.py``.  Three streaming runs
over the same Friedman-1 workload (the Table-1-style synthetic used
throughout the quality benchmarks):

* ``clean``      — ``drop``-policy stream over the uncontaminated data:
  the best this model family does here;
* ``contaminated`` — the same ``drop``-policy stream after
  :func:`~repro.noise.injection.outlier_burst` replaces a fraction of
  the joint ``[x, y]`` rows with correlated heavy-tailed outliers
  (``drop`` only removes non-finite values, so the finite outliers sail
  through — the undefended baseline);
* ``gated``      — the contaminated stream behind the ``mahalanobis``
  guard policy, with an :class:`~repro.robust.conformal.AdaptiveConformal`
  calibrator riding the prequential residuals.

Each run reports final RMSE on a clean held-out split.  The headline
number is **recovery** — the fraction of the contamination-induced RMSE
gap the gate wins back::

    recovery = (rmse_contaminated - rmse_gated)
             / (rmse_contaminated - rmse_clean)

The emitted dict is what ``BENCH_robustness.json`` stores at the repo
root; the acceptance test asserts ``recovery >= 0.8`` and that the
calibrator's prequential coverage stays inside ``[0.86, 0.94]`` at
nominal 90%.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import RegHDConfig
from repro.datasets import friedman1
from repro.metrics import root_mean_squared_error
from repro.noise.injection import outlier_burst
from repro.reliability.resilient import ResilientStreamingRegHD
from repro.robust.conformal import AdaptiveConformal


def _stream_run(
    X: np.ndarray,
    y: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    *,
    guard: str,
    batch_rows: int,
    config: RegHDConfig,
    conformal: AdaptiveConformal | None = None,
) -> dict:
    """One streaming run; returns final clean-test RMSE plus guard stats."""
    stream = ResilientStreamingRegHD(
        X.shape[1], config, guard=guard, conformal=conformal
    )
    for start in range(0, len(X), batch_rows):
        stream.update(X[start : start + batch_rows], y[start : start + batch_rows])
    rmse = root_mean_squared_error(y_test, stream.model.predict(X_test))
    record: dict = {
        "guard": guard,
        "rmse": float(rmse),
        "rows_in": int(stream.guard.total.n_rows_in),
        "rows_dropped": int(stream.guard.total.n_dropped_rows),
        "rows_gated": int(stream.guard.total.n_gated_rows),
    }
    if conformal is not None:
        record["conformal"] = {
            "alpha": conformal.alpha,
            "coverage": float(conformal.coverage),
            "n_scored": int(conformal.n_scored),
            "half_width": float(conformal.quantile()),
        }
    return record


def run_robustness_benchmark(
    *,
    n_rows: int = 6000,
    n_test: int = 1500,
    features: int = 8,
    batch_rows: int = 64,
    contamination: float = 0.1,
    magnitude: float = 10.0,
    alpha: float = 0.1,
    dim: int = 2048,
    n_models: int = 4,
    seed: int = 0,
    quick: bool = False,
) -> dict:
    """Run the three-way contamination comparison; returns the record.

    ``quick=True`` shrinks rows and dimensionality to a CI-friendly
    smoke run that still exercises every code path (gating, conformal
    scoring, recovery arithmetic).
    """
    if quick:
        n_rows, n_test, dim = 3000, 800, 1024

    data = friedman1(n_rows + n_test, n_features=features, seed=seed)
    X_stream, y_stream = data.X[:n_rows], data.y[:n_rows]
    X_test, y_test = data.X[n_rows:], data.y[n_rows:]

    # Contaminate the *joint* rows: the burst direction spans features
    # and target together, the correlated structure marginal range
    # checks cannot see.
    Z = np.hstack([X_stream, y_stream[:, np.newaxis]])
    Z_dirty = outlier_burst(
        Z, contamination, seed=seed + 1, magnitude=magnitude
    )
    X_dirty, y_dirty = Z_dirty[:, :-1], Z_dirty[:, -1]
    n_outliers = int((Z_dirty != Z).any(axis=1).sum())

    config = RegHDConfig(dim=dim, n_models=n_models, seed=seed)
    calibrator = AdaptiveConformal(alpha=alpha, window=512)

    runs = {
        "clean": _stream_run(
            X_stream, y_stream, X_test, y_test,
            guard="drop", batch_rows=batch_rows, config=config,
        ),
        "contaminated": _stream_run(
            X_dirty, y_dirty, X_test, y_test,
            guard="drop", batch_rows=batch_rows, config=config,
        ),
        "gated": _stream_run(
            X_dirty, y_dirty, X_test, y_test,
            guard="mahalanobis", batch_rows=batch_rows, config=config,
            conformal=calibrator,
        ),
    }

    gap = runs["contaminated"]["rmse"] - runs["clean"]["rmse"]
    won = runs["contaminated"]["rmse"] - runs["gated"]["rmse"]
    recovery = float(won / gap) if gap > 0 else float("nan")

    return {
        "schema": 1,
        "benchmark": "reghd-robustness-contamination",
        "quick": bool(quick),
        "params": {
            "n_rows": int(n_rows),
            "n_test": int(n_test),
            "features": int(features),
            "batch_rows": int(batch_rows),
            "contamination": float(contamination),
            "magnitude": float(magnitude),
            "alpha": float(alpha),
            "dim": int(dim),
            "n_models": int(n_models),
            "seed": int(seed),
            "n_outlier_rows": n_outliers,
        },
        "runs": runs,
        "recovery": recovery,
        "coverage": runs["gated"]["conformal"]["coverage"],
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry: run the benchmark and write the JSON record."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="RegHD contamination benchmark (Mahalanobis gate)"
    )
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--contamination", type=float, default=0.1, help="outlier row rate"
    )
    parser.add_argument(
        "--output",
        default="BENCH_robustness.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)
    record = run_robustness_benchmark(
        quick=args.quick, seed=args.seed, contamination=args.contamination
    )
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    runs = record["runs"]
    print(
        f"clean rmse {runs['clean']['rmse']:.3f} | "
        f"contaminated {runs['contaminated']['rmse']:.3f} | "
        f"gated {runs['gated']['rmse']:.3f} | "
        f"recovery {record['recovery']:.1%} | "
        f"coverage {record['coverage']:.1%} "
        f"(wrote {args.output})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
