"""Regression quality metrics.

The paper reports mean squared error (Table 1), *normalized quality of
regression* (Fig. 7: quality relative to the full-precision configuration),
and *quality loss* percentages (Table 2).  All three are implemented here,
plus the usual companions (RMSE, MAE, R²) used by the examples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionalityError
from repro.types import ArrayLike


def _validate_pair(y_true: ArrayLike, y_pred: ArrayLike) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(y_true, dtype=np.float64).ravel()
    p = np.asarray(y_pred, dtype=np.float64).ravel()
    if t.shape != p.shape:
        raise DimensionalityError(
            f"y_true and y_pred must match, got {t.shape} and {p.shape}"
        )
    if t.size == 0:
        raise DimensionalityError("metrics require at least one sample")
    return t, p


def mean_squared_error(y_true: ArrayLike, y_pred: ArrayLike) -> float:
    """Mean squared error — the paper's headline quality metric (Table 1)."""
    t, p = _validate_pair(y_true, y_pred)
    return float(np.mean((t - p) ** 2))


def root_mean_squared_error(y_true: ArrayLike, y_pred: ArrayLike) -> float:
    """Square root of the MSE, in target units."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true: ArrayLike, y_pred: ArrayLike) -> float:
    """Mean absolute error."""
    t, p = _validate_pair(y_true, y_pred)
    return float(np.mean(np.abs(t - p)))


def r2_score(y_true: ArrayLike, y_pred: ArrayLike) -> float:
    """Coefficient of determination.

    Returns 0 for a constant target (the convention that a model matching
    the mean of a constant signal explains "none of zero variance").
    """
    t, p = _validate_pair(y_true, y_pred)
    ss_res = float(np.sum((t - p) ** 2))
    ss_tot = float(np.sum((t - np.mean(t)) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def normalized_quality(mse: float, reference_mse: float) -> float:
    """Quality of a configuration relative to a reference (Fig. 7 metric).

    Defined as ``reference_mse / mse`` so the reference scores 1.0 and
    worse (larger-MSE) configurations score below 1.0.  A configuration
    that *beats* the reference scores above 1.0.
    """
    if mse <= 0 or reference_mse <= 0:
        raise ValueError(
            f"MSE values must be > 0, got mse={mse}, reference={reference_mse}"
        )
    return reference_mse / mse


def quality_loss(mse: float, reference_mse: float) -> float:
    """Percentage quality loss relative to a reference (Table 2 metric).

    ``(1 - normalized_quality) * 100``; clipped below at 0 so that a
    configuration slightly better than the reference reports 0 % loss,
    matching the paper's convention of reporting "0 %" at full
    dimensionality.
    """
    return max(0.0, (1.0 - normalized_quality(mse, reference_mse)) * 100.0)
