"""Streaming RegHD: prequential learning with forgetting and drift handling.

The paper targets IoT devices that learn from unbounded sensor streams.
This module packages the pieces a deployed streaming learner needs around
:class:`MultiModelRegHD`:

* **prequential evaluation** — every arriving batch is predicted *before*
  it is trained on, so the reported error is honest online error;
* **exponential forgetting** — model hypervectors decay by a factor per
  batch, bounding the influence horizon of stale data (a bundle is a sum,
  so scaling it down-weights the past without touching the encoder);
* **drift detection** — a Page-Hinkley test on the prequential error; on
  detection the model hypervectors are shrunk hard so the learner re-adapts
  quickly instead of averaging two incompatible concepts.
"""

from __future__ import annotations

import dataclasses
import enum
import pathlib
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.config import RegHDConfig
from repro.core.multi import MultiModelRegHD
from repro.encoding.base import Encoder
from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import mean_squared_error
from repro.robust.conformal import AdaptiveConformal, PredictionInterval
from repro.telemetry import metrics as _metrics
from repro.telemetry import tracing as _tracing
from repro.telemetry.spans import span
from repro.types import ArrayLike, FloatArray
from repro.utils.validation import check_1d, check_2d, check_matching_lengths


class PageHinkley:
    """Page-Hinkley change detector on a stream of error magnitudes.

    Standard Page-Hinkley: signals drift when the cumulative deviation of
    the error above its incremental mean exceeds ``threshold``.  ``delta``
    is the magnitude of tolerated change per observation.
    """

    def __init__(self, *, delta: float = 0.01, threshold: float = 2.0):
        if delta < 0:
            raise ConfigurationError(f"delta must be >= 0, got {delta}")
        if threshold <= 0:
            raise ConfigurationError(
                f"threshold must be > 0, got {threshold}"
            )
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.reset()

    def reset(self) -> None:
        """Clear all detector state (called automatically after a drift)."""
        self._mean = 0.0
        self._count = 0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, error: float) -> bool:
        """Feed one error observation; returns True when drift is detected."""
        if error < 0:
            raise ConfigurationError(f"error must be >= 0, got {error}")
        self._count += 1
        # Incremental mean of all errors since the last reset.
        self._mean += (error - self._mean) / self._count
        self._cumulative += error - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._cumulative - self._minimum > self.threshold:
            self.reset()
            return True
        return False

    def get_state(self) -> dict:
        """JSON-serialisable snapshot of the detector internals.

        Together with :meth:`set_state` this lets a checkpoint capture the
        detector mid-stream so recovery resumes bit-exactly.
        """
        return {
            "mean": self._mean,
            "count": self._count,
            "cumulative": self._cumulative,
            "minimum": self._minimum,
        }

    def set_state(self, state: dict) -> None:
        """Restore internals captured by :meth:`get_state`."""
        self._mean = float(state["mean"])
        self._count = int(state["count"])
        self._cumulative = float(state["cumulative"])
        self._minimum = float(state["minimum"])


@dataclass
class StreamBatchReport:
    """Prequential record for one arriving batch."""

    batch: int
    prequential_mse: float | None  # None for the very first batch
    drift_detected: bool


_BASE_REPORT_FIELDS = ("batch", "prequential_mse", "drift_detected")


def _encode_value(value: object) -> object:
    """JSON-safe encoding of a report field (recursive, type-driven).

    Dataclasses become plain dicts, enums their values, paths strings and
    numpy scalars Python scalars — everything the reliability-extended
    reports carry, without this module importing the reliability package.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, pathlib.Path):
        return str(value)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return value


def _decode_report(data: dict) -> StreamBatchReport:
    """Rebuild a report from :func:`_encode_value` output.

    Plain prequential reports decode to :class:`StreamBatchReport`; any
    extra keys mark a reliability-extended report, whose classes are
    imported lazily (the reliability package imports this module, so the
    import must not run at module level).
    """
    base = {
        "batch": int(data["batch"]),
        "prequential_mse": (
            None
            if data["prequential_mse"] is None
            else float(data["prequential_mse"])
        ),
        "drift_detected": bool(data["drift_detected"]),
    }
    extra = {k: v for k, v in data.items() if k not in _BASE_REPORT_FIELDS}
    if not extra:
        return StreamBatchReport(**base)
    from repro.reliability.guards import GuardReport
    from repro.reliability.resilient import ResilientBatchReport
    from repro.reliability.scrub import ScrubReport
    from repro.reliability.watchdog import HealthState

    health = extra.get("health")
    guard = extra.get("guard")
    scrub = extra.get("scrub")
    return ResilientBatchReport(
        **base,
        health=None if health is None else HealthState(health),
        guard=None if guard is None else GuardReport(**guard),
        scrub=None if scrub is None else ScrubReport(**scrub),
        rolled_back=bool(extra.get("rolled_back", False)),
        checkpointed=bool(extra.get("checkpointed", False)),
        skipped=bool(extra.get("skipped", False)),
        restored_checkpoint=extra.get("restored_checkpoint"),
        trigger_error=(
            None
            if extra.get("trigger_error") is None
            else float(extra["trigger_error"])
        ),
    )


class StreamHistory:
    """Accumulated reports of a streaming run.

    ``max_reports`` bounds memory on unbounded streams: when set, only the
    newest ``max_reports`` reports are retained (deque-backed) and
    :attr:`drift_events` / :meth:`mse_curve` operate over that window.
    ``None`` keeps everything, matching the original behaviour.
    """

    def __init__(self, max_reports: int | None = None):
        if max_reports is not None and max_reports < 1:
            raise ConfigurationError(
                f"max_reports must be >= 1 or None, got {max_reports}"
            )
        self.max_reports = max_reports
        self.reports: deque[StreamBatchReport] = deque(maxlen=max_reports)

    @property
    def n_batches(self) -> int:
        """Number of *retained* reports (== processed batches when unbounded)."""
        return len(self.reports)

    @property
    def drift_events(self) -> list[int]:
        """Batch indices where drift fired, over the retained window."""
        return [r.batch for r in self.reports if r.drift_detected]

    def mse_curve(self) -> FloatArray:
        """Prequential MSE per batch (NaN for the untrained first batch)."""
        return np.array(
            [
                np.nan if r.prequential_mse is None else r.prequential_mse
                for r in self.reports
            ]
        )

    # -- checkpointable state ----------------------------------------------

    def get_state(self) -> dict:
        """JSON-serialisable snapshot of the retained reports.

        Reliability-extended reports (guard/scrub outcomes, rollback
        records with their restored checkpoint id and triggering error)
        serialise alongside the plain prequential fields, so a restored
        stream keeps its full per-batch audit trail.
        """
        return {
            "max_reports": self.max_reports,
            "reports": [_encode_value(r) for r in self.reports],
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`get_state`."""
        self.max_reports = state.get("max_reports")
        self.reports = deque(
            (_decode_report(r) for r in state.get("reports", [])),
            maxlen=self.max_reports,
        )


class StreamingRegHD:
    """Drift-aware streaming wrapper around :class:`MultiModelRegHD`.

    Parameters
    ----------
    in_features, config, encoder:
        Forwarded to the underlying model.
    forgetting:
        Per-batch decay of the model hypervectors in (0, 1]; 1 disables
        forgetting.
    detector:
        Optional :class:`PageHinkley` instance; None disables detection.
    drift_shrink:
        Factor applied to the model hypervectors when drift fires (0
        fully resets them; clusters are kept — the input distribution
        geometry usually survives a concept change in the target).
    max_history:
        Optional bound on the number of retained
        :class:`StreamBatchReport` entries (see :class:`StreamHistory`);
        ``None`` retains the full run.
    conformal:
        Optional :class:`~repro.robust.conformal.AdaptiveConformal`
        calibrator.  When present, every prequential batch feeds its
        honest residuals into the calibrator and
        :meth:`predict_interval` issues always-current conformal bands.
    """

    def __init__(
        self,
        in_features: int,
        config: RegHDConfig | None = None,
        *,
        forgetting: float = 0.995,
        detector: PageHinkley | None = None,
        drift_shrink: float = 0.1,
        encoder: Encoder | None = None,
        max_history: int | None = None,
        conformal: AdaptiveConformal | None = None,
    ):
        if not 0 < forgetting <= 1:
            raise ConfigurationError(
                f"forgetting must be in (0, 1], got {forgetting}"
            )
        if not 0 <= drift_shrink <= 1:
            raise ConfigurationError(
                f"drift_shrink must be in [0, 1], got {drift_shrink}"
            )
        self.model = MultiModelRegHD(in_features, config, encoder=encoder)
        self.forgetting = float(forgetting)
        self.detector = detector
        self.drift_shrink = float(drift_shrink)
        self.history = StreamHistory(max_history)
        self.conformal = conformal
        self._batch_counter = 0
        # Long-lived compiled serving plan plus a staleness flag.  Model
        # changes mark the plan stale; the next predict refreshes it
        # incrementally (only sign-changed rows re-pack) instead of
        # recompiling from scratch.
        self._plan = None
        self._plan_stale = False

    @property
    def fitted(self) -> bool:
        """Whether at least one batch has been absorbed."""
        return self.model.fitted

    def predict(self, X: ArrayLike) -> FloatArray:
        """Predict with the current model state (compiled serving path).

        Pure-inference traffic between stream updates runs on a
        :class:`~repro.engine.CompiledPlan` — quantised configurations
        execute as packed XOR + popcount — compiled lazily on the first
        predict after a batch is absorbed.  The plan is long-lived: after
        further stream updates it is *refreshed* in place
        (:meth:`~repro.engine.CompiledPlan.refresh` re-packs only the
        operand rows whose sign pattern moved) rather than recompiled.
        """
        if not self.fitted:
            # Defer to the model for the canonical NotFittedError.
            return self.model.predict(X)
        if self._plan is None:
            self._plan = self.model.compile()
            self._plan_stale = False
        elif self._plan_stale:
            self._plan.refresh(self.model)
            self._plan_stale = False
        return self._plan.predict(X)

    def predict_interval(self, X: ArrayLike) -> PredictionInterval:
        """Predict with conformal bands from the streaming calibrator.

        Requires a ``conformal`` calibrator; the bands reflect every
        prequential residual observed so far (``±inf`` while the
        calibration window is still too small for the target coverage).
        """
        if self.conformal is None:
            raise ConfigurationError(
                "predict_interval requires a conformal calibrator; "
                "construct the stream with conformal=AdaptiveConformal(...)"
            )
        return self.conformal.interval(self.predict(X))

    def invalidate_plan(self) -> None:
        """Mark the compiled serving plan stale after an out-of-band model
        mutation (injected memory faults, manual state surgery); the next
        predict refreshes the sign-changed operand rows."""
        self._plan_stale = True

    def absorb_delta(self, delta) -> None:
        """Fold a merged shard delta into the live model between batches.

        The distributed coordinator's entry point: applies the
        (usually merged) :class:`~repro.core.delta.ModelDelta` through
        the model's delta protocol, then refreshes the long-lived
        serving plan *with the delta's row hint* — only the operand
        rows the delta actually touched are re-copied/re-packed, so a
        shard round that moved two cluster centres costs a two-row
        refresh, not a recompile.
        """
        self.model.apply_delta(delta)
        if self._plan is not None:
            self._plan.refresh(self.model, delta=delta)
            self._plan_stale = False
        else:
            self._plan_stale = True
        registry = _metrics.active()
        if registry is not None:
            # Samples were already counted shard-side by the trainer's
            # map phase; here only the fold events are interesting.
            registry.counter("reghd_distributed_absorbs_total").inc()

    def update(self, X: ArrayLike, y: ArrayLike) -> StreamBatchReport:
        """Absorb one arriving batch (predict-then-train).

        Returns the prequential report for this batch; the full history
        accumulates on :attr:`history`.
        """
        X_arr = check_2d("X", X)
        y_arr = check_1d("y", y)
        check_matching_lengths("X", X_arr, "y", y_arr)
        self._batch_counter += 1

        prequential: float | None = None
        drift = False
        with _tracing.trace("stream/batch", batch=self._batch_counter):
            if self.fitted:
                with span("predict"):
                    predictions = self.model.predict(X_arr)
                prequential = mean_squared_error(y_arr, predictions)
                if self.conformal is not None:
                    # Same honest predict-then-train residuals feed the
                    # conformal window, so interval coverage is
                    # prequential.
                    self.conformal.observe(y_arr, predictions)
                if self.detector is not None:
                    drift = self.detector.update(
                        float(np.sqrt(prequential))
                    )
                if drift:
                    self.model.models.update_all(
                        (self.drift_shrink - 1.0) * self.model.models.integer
                    )
                    self.model.models.rebinarize()
                elif self.forgetting < 1.0:
                    self.model.models.update_all(
                        (self.forgetting - 1.0) * self.model.models.integer
                    )
                    self.model.models.rebinarize()
            with span("train"):
                self.model.partial_fit(X_arr, y_arr)
        self._plan_stale = True  # model changed; next predict refreshes

        report = StreamBatchReport(
            batch=self._batch_counter,
            prequential_mse=prequential,
            drift_detected=drift,
        )
        self.history.reports.append(report)
        registry = _metrics.active()
        if registry is not None:
            registry.counter("reghd_stream_batches_total").inc()
            if drift:
                registry.counter("reghd_stream_drift_total").inc()
                registry.record_event(
                    "stream_drift",
                    batch=self._batch_counter,
                    prequential_mse=prequential,
                )
            if prequential is not None:
                registry.gauge("reghd_stream_prequential_mse").set(
                    prequential
                )
        return report
