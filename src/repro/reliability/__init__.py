"""Active fault tolerance for deployed RegHD learners.

The :mod:`repro.noise` package *measures* how gracefully RegHD degrades
under hardware faults; this package *acts* on faults in a long-running
streaming deployment:

* :mod:`~repro.reliability.checkpoint` — atomic, CRC32-checksummed,
  rotating checkpoints with corrupt-skipping recovery;
* :mod:`~repro.reliability.guards` — input sanitisation policies applied
  before ``predict``/``partial_fit``;
* :mod:`~repro.reliability.watchdog` — a health envelope on prequential
  error that triggers rollback to the last good checkpoint;
* :mod:`~repro.reliability.scrub` — periodic rematerialisation of binary
  working copies and majority-vote repair of replicated shadows;
* :mod:`~repro.reliability.retry` — seeded-jitter retry/backoff for
  transient I/O;
* :mod:`~repro.reliability.resilient` — :class:`ResilientStreamingRegHD`
  composing all of the above.
"""

from repro.reliability.checkpoint import (
    CheckpointInfo,
    CheckpointManager,
    file_crc,
)
from repro.reliability.guards import GuardPolicy, GuardReport, InputGuard
from repro.reliability.resilient import (
    ResilientBatchReport,
    ResilientStreamingRegHD,
    RollbackEvent,
)
from repro.reliability.retry import backoff_delays, retry, retry_call
from repro.reliability.scrub import (
    ModelScrubber,
    ScrubReport,
    majority_vote,
    rematerialize,
)
from repro.reliability.watchdog import HealthState, Watchdog

__all__ = [
    "CheckpointInfo",
    "CheckpointManager",
    "file_crc",
    "GuardPolicy",
    "GuardReport",
    "InputGuard",
    "ResilientBatchReport",
    "ResilientStreamingRegHD",
    "RollbackEvent",
    "backoff_delays",
    "retry",
    "retry_call",
    "ModelScrubber",
    "ScrubReport",
    "majority_vote",
    "rematerialize",
    "HealthState",
    "Watchdog",
]
