"""Periodic memory scrubbing for the dual-copy model hypervectors.

The Sec.-3 framework already stores every model hypervector twice: an
integer shadow that receives training updates and a binary working copy
that serves queries.  That redundancy is a fault-tolerance asset:

* **rematerialisation** — the binary working copy is a pure function of
  the shadow, so any bit flips it accumulates (it is the copy hardware
  reads on every inference, hence the most exposed) are erased completely
  by re-deriving it (`rebinarize`);
* **replication + voting** — the shadows themselves can be replicated R
  times (R odd); an elementwise median vote reconciles the copies, so a
  flip must hit the *same element in a majority of replicas* to survive —
  probability O(rate²) instead of O(rate) for R=3.

:class:`ModelScrubber` composes both: replicas are refreshed after every
training step (hardware would write all replicas on the same bus cycle)
and a scrub pass votes the shadows back together, rewrites them
everywhere, and rematerialises the binary copies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.multi import MultiModelRegHD
from repro.exceptions import ConfigurationError, ReliabilityError
from repro.telemetry import metrics as _metrics
from repro.types import FloatArray


def majority_vote(replicas: list[FloatArray]) -> FloatArray:
    """Elementwise median across an odd number of equal-shape replicas.

    For sign-flip faults the median recovers the clean value wherever
    fewer than half the replicas are corrupted at that element.
    """
    if not replicas:
        raise ConfigurationError("majority_vote needs at least one replica")
    if len(replicas) % 2 == 0:
        raise ConfigurationError(
            f"replica count must be odd, got {len(replicas)}"
        )
    stack = np.stack([np.asarray(r, dtype=np.float64) for r in replicas])
    return np.median(stack, axis=0)


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of one scrub pass."""

    shadow_elements_repaired: int
    binary_elements_refreshed: int
    replicas: int

    @property
    def repaired_anything(self) -> bool:
        """True when the pass changed any stored value."""
        return bool(
            self.shadow_elements_repaired or self.binary_elements_refreshed
        )


class ModelScrubber:
    """Replicated-shadow scrubbing for a :class:`MultiModelRegHD`.

    Parameters
    ----------
    model:
        The live model.  Its ``models.integer`` (and optionally
        ``clusters.integer``) arrays are treated as replica 0.
    replicas:
        Total number of shadow replicas, odd and >= 1.  ``replicas=1``
        disables voting and scrubbing degrades to pure rematerialisation.
    include_clusters:
        Also replicate/scrub the cluster hypervectors.
    """

    def __init__(
        self,
        model: MultiModelRegHD,
        *,
        replicas: int = 3,
        include_clusters: bool = True,
    ):
        if replicas < 1 or replicas % 2 == 0:
            raise ConfigurationError(
                f"replicas must be odd and >= 1, got {replicas}"
            )
        self.model = model
        self.replicas = int(replicas)
        self.include_clusters = bool(include_clusters)
        self._model_shadows: list[FloatArray] = []
        self._cluster_shadows: list[FloatArray] = []
        self.sync()

    def _live_arrays(self) -> list[FloatArray]:
        arrays = [self.model.models.integer]
        if self.include_clusters:
            arrays.append(self.model.clusters.integer)
        return arrays

    def sync(self) -> None:
        """Refresh the shadow replicas from the live integer arrays.

        Call after every training step: in hardware all replicas receive
        the same write, so post-update they agree by construction.
        """
        self._model_shadows = [
            self.model.models.integer.copy()
            for _ in range(self.replicas - 1)
        ]
        self._cluster_shadows = (
            [
                self.model.clusters.integer.copy()
                for _ in range(self.replicas - 1)
            ]
            if self.include_clusters
            else []
        )

    def _scrub_one(
        self, live: FloatArray, shadows: list[FloatArray]
    ) -> int:
        if shadows and live.shape != shadows[0].shape:
            raise ReliabilityError(
                "shadow replicas are stale: live array has shape "
                f"{live.shape}, shadows have {shadows[0].shape}; "
                "call sync() after structural model changes"
            )
        if not shadows:  # replicas == 1: nothing to vote against
            return 0
        voted = majority_vote([live, *shadows])
        repaired = int(np.sum(voted != live))
        repaired += sum(int(np.sum(voted != s)) for s in shadows)
        live[:] = voted
        for shadow in shadows:
            shadow[:] = voted
        return repaired

    def scrub(self) -> ScrubReport:
        """One scrub pass: vote the shadows, rematerialise binary copies."""
        repaired = self._scrub_one(
            self.model.models.integer, self._model_shadows
        )
        if self.include_clusters:
            repaired += self._scrub_one(
                self.model.clusters.integer, self._cluster_shadows
            )
        refreshed = rematerialize(
            self.model, include_clusters=self.include_clusters
        )
        registry = _metrics.active()
        if registry is not None:
            registry.counter("reghd_scrub_passes_total").inc()
            if repaired:
                registry.counter(
                    "reghd_scrub_corrections_total", kind="shadow"
                ).inc(repaired)
            if refreshed:
                registry.counter(
                    "reghd_scrub_corrections_total", kind="binary"
                ).inc(refreshed)
            if repaired or refreshed:
                registry.record_event(
                    "scrub_corrections",
                    shadow_repaired=repaired,
                    binary_refreshed=refreshed,
                    replicas=self.replicas,
                )
        return ScrubReport(
            shadow_elements_repaired=repaired,
            binary_elements_refreshed=refreshed,
            replicas=self.replicas,
        )


def rematerialize(
    model: MultiModelRegHD, *, include_clusters: bool = True
) -> int:
    """Re-derive the binary working copies from the integer shadows.

    Returns the number of binary elements whose stored value changed —
    i.e. the number of accumulated working-copy faults just erased (zero
    on a healthy model: rebinarisation is idempotent).
    """
    before_models = model.models.binary.copy()
    model.models.rebinarize()
    changed = int(np.sum(model.models.binary != before_models))
    if include_clusters:
        before_clusters = model.clusters.binary.copy()
        model.clusters.rebinarize()
        changed += int(np.sum(model.clusters.binary != before_clusters))
    return changed
