"""Seeded-jitter retry/backoff for transient I/O failures.

Checkpoint directories live on network filesystems and flash media that
fail transiently; dataset files arrive over NFS mid-write.  A bounded,
exponential-backoff retry absorbs those blips without hiding persistent
faults.  The jitter is drawn from the library's seeded generator plumbing
so retry timing — like everything else in the package — is reproducible
under a fixed seed.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, TypeVar

from repro.exceptions import ConfigurationError
from repro.types import SeedLike
from repro.utils.rng import as_generator

T = TypeVar("T")


def backoff_delays(
    attempts: int,
    *,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    growth: float = 2.0,
    jitter: float = 0.5,
    seed: SeedLike = None,
) -> list[float]:
    """Delays (seconds) slept between the ``attempts`` tries.

    Delay ``i`` is ``min(max_delay, base_delay * growth**i)`` scaled by a
    uniform jitter factor in ``[1, 1 + jitter]``.  With a fixed ``seed``
    the schedule is deterministic.  Returns ``attempts - 1`` entries —
    there is no sleep after the final failure.
    """
    if attempts < 1:
        raise ConfigurationError(f"attempts must be >= 1, got {attempts}")
    if base_delay < 0 or max_delay < 0:
        raise ConfigurationError("delays must be >= 0")
    if growth < 1.0:
        raise ConfigurationError(f"growth must be >= 1, got {growth}")
    if jitter < 0:
        raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
    rng = as_generator(seed)
    delays = []
    for i in range(attempts - 1):
        raw = min(max_delay, base_delay * growth**i)
        delays.append(raw * (1.0 + jitter * float(rng.random())))
    return delays


def retry(
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    growth: float = 2.0,
    jitter: float = 0.5,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    seed: SeedLike = 0,
    sleep: Callable[[float], None] = time.sleep,
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator: retry a function on transient errors with jittered backoff.

    Only exceptions in ``retry_on`` are retried; anything else propagates
    immediately.  After ``attempts`` failures the last exception is
    re-raised.  ``sleep`` is injectable for tests.

    Examples
    --------
    >>> @retry(attempts=3, retry_on=(OSError,), sleep=lambda s: None)
    ... def read_flaky():
    ...     return "ok"
    >>> read_flaky()
    'ok'
    """

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> T:
            delays = backoff_delays(
                attempts,
                base_delay=base_delay,
                max_delay=max_delay,
                growth=growth,
                jitter=jitter,
                seed=seed,
            )
            for attempt in range(attempts):
                try:
                    return fn(*args, **kwargs)
                except retry_on:
                    if attempt == attempts - 1:
                        raise
                    sleep(delays[attempt])
            raise AssertionError("unreachable")  # pragma: no cover

        return wrapper

    return decorate


def retry_call(
    fn: Callable[..., T],
    *args: object,
    attempts: int = 3,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    seed: SeedLike = 0,
    sleep: Callable[[float], None] = time.sleep,
    **kwargs: object,
) -> T:
    """Functional form of :func:`retry` for one-off calls."""
    wrapped = retry(
        attempts=attempts, retry_on=retry_on, seed=seed, sleep=sleep
    )(fn)
    return wrapped(*args, **kwargs)
