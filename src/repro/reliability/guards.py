"""Input sanitisation guards for streaming batches.

A deployed stream learner sees what real sensors emit: NaN from powered-
down channels, Inf from saturated ADCs, rows of the wrong width after a
firmware update, and occasional wild out-of-range values.  Unfiltered,
one NaN poisons every model hypervector it is bundled into — silently and
permanently.  :class:`InputGuard` runs ahead of ``predict``/``partial_fit``
and applies one of three policies per batch:

* ``raise``  — reject the batch with :class:`DataGuardError` (fail fast);
* ``repair`` — replace non-finite / out-of-range feature values with a
  fill value (or clip to range) and drop rows whose *target* is bad — a
  label cannot be invented;
* ``drop``   — drop every row containing any offending value;
* ``mahalanobis`` — drop structurally-bad rows like ``drop``, then pass
  the survivors through a :class:`~repro.robust.gate.MahalanobisGate`:
  rows whose leverage (``d_x``) or studentised residual (``d_r``)
  Mahalanobis score falls outside its chi-square envelope are dropped
  as *statistical* outliers — values that are perfectly finite but do
  not belong to the distribution the model is learning.

Structural problems (wrong rank, wrong feature count, non-numeric dtype)
always raise: no per-row policy can repair a batch the encoder cannot
even index.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, DataGuardError
from repro.robust.gate import GateScores, MahalanobisGate
from repro.telemetry import metrics as _metrics
from repro.types import ArrayLike, FloatArray

#: histogram bounds for Mahalanobis guard scores: the bulk of inlier
#: distances lands below ~4 for moderate dimensionality; outliers tail
#: off to the open-ended overflow bucket.
GUARD_SCORE_BUCKETS = (
    0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0,
)


class GuardPolicy(enum.Enum):
    """What to do with a batch that fails validation."""

    RAISE = "raise"
    REPAIR = "repair"
    DROP = "drop"
    MAHALANOBIS = "mahalanobis"


def coerce_policy(policy: "GuardPolicy | str") -> GuardPolicy:
    """Resolve a policy name, listing the valid ones on a miss."""
    try:
        return GuardPolicy(policy)
    except ValueError:
        valid = ", ".join(repr(p.value) for p in GuardPolicy)
        raise ConfigurationError(
            f"unknown guard policy {policy!r}; valid policies: {valid}"
        ) from None


@dataclass
class GuardReport:
    """What the guard saw and did to one batch."""

    n_rows_in: int
    n_rows_out: int
    n_repaired_values: int = 0
    n_dropped_rows: int = 0
    n_gated_rows: int = 0  # statistical outliers removed by the gate
    issues: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the batch passed untouched."""
        return not self.issues


class InputGuard:
    """Validate and sanitise ``(X, y)`` batches before they reach a model.

    Parameters
    ----------
    in_features:
        Expected feature count; rows of any other width always raise.
    policy:
        A :class:`GuardPolicy` or its string value.
    value_range:
        Optional ``(low, high)`` plausibility range for feature values;
        violations are treated like non-finite values (repair mode clips
        to the range instead of filling).
    fill_value:
        Replacement for non-finite feature values under ``repair``.
    gate:
        Statistical gate used by the ``mahalanobis`` policy.  Defaults
        to a fresh :class:`~repro.robust.gate.MahalanobisGate` over
        ``in_features``; pass one explicitly to tune envelopes/warmup or
        to resume a checkpointed gate.
    """

    def __init__(
        self,
        in_features: int,
        *,
        policy: GuardPolicy | str = GuardPolicy.RAISE,
        value_range: tuple[float, float] | None = None,
        fill_value: float = 0.0,
        gate: MahalanobisGate | None = None,
    ):
        if in_features < 1:
            raise ConfigurationError(
                f"in_features must be >= 1, got {in_features}"
            )
        self.in_features = int(in_features)
        self.policy = coerce_policy(policy)
        if value_range is not None:
            low, high = float(value_range[0]), float(value_range[1])
            if not low < high:
                raise ConfigurationError(
                    f"value_range must satisfy low < high, got {value_range}"
                )
            value_range = (low, high)
        self.value_range = value_range
        self.fill_value = float(fill_value)
        if gate is not None and gate.in_features != self.in_features:
            raise ConfigurationError(
                f"gate expects {gate.in_features} features, guard expects "
                f"{self.in_features}"
            )
        if gate is None and self.policy is GuardPolicy.MAHALANOBIS:
            gate = MahalanobisGate(self.in_features)
        self.gate = gate
        self.total = GuardReport(n_rows_in=0, n_rows_out=0)

    # -- structural checks: never repairable -------------------------------

    def _as_float_2d(self, X: ArrayLike) -> FloatArray:
        try:
            arr = np.asarray(X, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise DataGuardError(
                f"X is not convertible to a float array: {exc}"
            ) from exc
        if arr.ndim != 2:
            raise DataGuardError(f"X must be 2-d, got shape {arr.shape}")
        if arr.shape[1] != self.in_features:
            raise DataGuardError(
                f"X has {arr.shape[1]} features, guard expects "
                f"{self.in_features}"
            )
        return arr

    def _as_float_1d(self, y: ArrayLike, n_rows: int) -> FloatArray:
        try:
            arr = np.asarray(y, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise DataGuardError(
                f"y is not convertible to a float array: {exc}"
            ) from exc
        if arr.ndim != 1:
            raise DataGuardError(f"y must be 1-d, got shape {arr.shape}")
        if len(arr) != n_rows:
            raise DataGuardError(
                f"X has {n_rows} rows but y has {len(arr)}"
            )
        return arr

    # -- value checks: policy applies --------------------------------------

    def check(
        self, X: ArrayLike, y: ArrayLike | None = None
    ) -> tuple[FloatArray, FloatArray | None, GuardReport]:
        """Validate one batch; returns sanitised ``(X, y, report)``.

        ``y`` may be omitted for inference-only batches.  Copies are made
        only when a repair or drop actually happens.
        """
        X_arr = self._as_float_2d(X)
        n_rows = len(X_arr)
        y_arr = None if y is None else self._as_float_1d(y, n_rows)
        report = GuardReport(n_rows_in=n_rows, n_rows_out=n_rows)

        bad_X = ~np.isfinite(X_arr)
        if self.value_range is not None:
            low, high = self.value_range
            with np.errstate(invalid="ignore"):
                out_of_range = np.isfinite(X_arr) & (
                    (X_arr < low) | (X_arr > high)
                )
        else:
            out_of_range = np.zeros_like(bad_X)
        bad_y = (
            np.zeros(n_rows, dtype=bool)
            if y_arr is None
            else ~np.isfinite(y_arr)
        )

        n_bad = int(bad_X.sum() + out_of_range.sum() + bad_y.sum())
        if n_bad == 0 and self.policy is not GuardPolicy.MAHALANOBIS:
            # Value-clean batch and no statistical gate to consult.
            self._accumulate(report)
            self._emit(report, "clean")
            return X_arr, y_arr, report

        if bad_X.any():
            report.issues.append(
                f"{int(bad_X.sum())} non-finite feature value(s)"
            )
        if out_of_range.any():
            report.issues.append(
                f"{int(out_of_range.sum())} out-of-range feature value(s)"
            )
        if bad_y.any():
            report.issues.append(
                f"{int(bad_y.sum())} non-finite target value(s)"
            )

        if self.policy is GuardPolicy.RAISE:
            self._emit(report, "rejected")
            raise DataGuardError(
                "input batch rejected: " + "; ".join(report.issues)
            )

        if self.policy is GuardPolicy.REPAIR:
            X_arr = X_arr.copy()
            X_arr[bad_X] = self.fill_value
            if self.value_range is not None:
                low, high = self.value_range
                X_arr = np.clip(X_arr, low, high)
            report.n_repaired_values = int(bad_X.sum() + out_of_range.sum())
            keep = ~bad_y  # a missing label cannot be repaired
        else:  # DROP and MAHALANOBIS share row-drop value semantics
            keep = ~(bad_X.any(axis=1) | out_of_range.any(axis=1) | bad_y)

        if not keep.all():
            X_arr = X_arr[keep]
            y_arr = None if y_arr is None else y_arr[keep]
            report.n_dropped_rows = int(n_rows - keep.sum())

        # Statistical gating runs on the value-clean survivors: finite
        # rows whose leverage / residual score falls outside the gate's
        # chi-square envelope are removed as distributional outliers.
        scores = None
        if self.policy is GuardPolicy.MAHALANOBIS and len(X_arr):
            scores = self.gate.filter(X_arr, y_arr)
            if scores.n_gated:
                X_arr = X_arr[scores.keep]
                y_arr = None if y_arr is None else y_arr[scores.keep]
                report.n_gated_rows = scores.n_gated
                report.issues.append(
                    f"{scores.n_gated} statistical outlier row(s) gated"
                )

        report.n_rows_out = len(X_arr)
        self._accumulate(report)
        if self.policy is GuardPolicy.REPAIR:
            outcome = "repaired"
        elif report.n_gated_rows:
            outcome = "gated"
        elif report.n_dropped_rows:
            outcome = "dropped"
        else:
            outcome = "clean"
        self._emit(report, outcome, scores=scores)
        return X_arr, y_arr, report

    def _accumulate(self, report: GuardReport) -> None:
        self.total.n_rows_in += report.n_rows_in
        self.total.n_rows_out += report.n_rows_out
        self.total.n_repaired_values += report.n_repaired_values
        self.total.n_dropped_rows += report.n_dropped_rows
        self.total.n_gated_rows += report.n_gated_rows
        self.total.issues.extend(report.issues)

    def _emit(
        self,
        report: GuardReport,
        outcome: str,
        scores: GateScores | None = None,
    ) -> None:
        """Count the batch outcome; dirty batches also log a structured
        event (issues joined into one string) for the audit trail.  When
        the statistical gate scored the batch, the per-row leverage /
        residual distances land in the ``reghd_guard_score`` histograms
        and gated contamination is logged as its own event."""
        registry = _metrics.active()
        if registry is None:
            return
        registry.counter(
            "reghd_guard_batches_total", outcome=outcome
        ).inc()
        if report.n_repaired_values:
            registry.counter("reghd_guard_values_repaired_total").inc(
                report.n_repaired_values
            )
        if report.n_dropped_rows:
            registry.counter("reghd_guard_rows_dropped_total").inc(
                report.n_dropped_rows
            )
        if report.n_gated_rows:
            registry.counter("reghd_guard_rows_gated_total").inc(
                report.n_gated_rows
            )
        if scores is not None:
            hist = registry.histogram(
                "reghd_guard_score",
                buckets=GUARD_SCORE_BUCKETS,
                kind="leverage",
            )
            for value in scores.leverage:
                hist.observe(float(value))
            if scores.residual is not None:
                hist = registry.histogram(
                    "reghd_guard_score",
                    buckets=GUARD_SCORE_BUCKETS,
                    kind="residual",
                )
                for value in scores.residual:
                    hist.observe(float(value))
            if report.n_gated_rows:
                finite_lev = scores.leverage[np.isfinite(scores.leverage)]
                registry.record_event(
                    "guard_contamination",
                    n_rows_in=report.n_rows_in,
                    n_gated=report.n_gated_rows,
                    max_leverage=(
                        float(finite_lev.max()) if len(finite_lev) else None
                    ),
                )
        if report.issues:
            registry.record_event(
                "guard_batch",
                outcome=outcome,
                n_rows_in=report.n_rows_in,
                n_rows_out=report.n_rows_out,
                issues="; ".join(report.issues),
            )
