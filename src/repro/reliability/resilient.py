"""Fault-tolerant streaming RegHD: guards + checkpoints + watchdog + scrub.

:class:`ResilientStreamingRegHD` wraps the drift-aware streaming learner
with the full reliability stack, in this per-batch order:

1. **scrub** (scheduled) — repair memory faults accumulated since the
   last batch, *before* they poison a prediction;
2. **guard** — sanitise the incoming ``(X, y)`` under the configured
   policy; a fully-dropped batch is reported and skipped;
3. **learn** — the usual predict-then-train step of
   :class:`StreamingRegHD`, including forgetting and drift handling;
4. **watchdog** — compare prequential error against the health envelope;
   on ``FAILED``, roll the model back to the newest valid checkpoint;
5. **checkpoint** (scheduled) — atomically persist model + stream state.

Recovery after a crash is :meth:`ResilientStreamingRegHD.recover`: it
finds the newest checkpoint that passes its CRC (skipping corrupt files),
restores the model bit-exactly and resumes the stream at the
checkpointed batch counter with the drift detector mid-state intact — so
replaying the post-checkpoint batches reproduces the uninterrupted run
exactly.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

import numpy as np

from repro.core.config import RegHDConfig
from repro.exceptions import ConfigurationError
from repro.reliability.checkpoint import CheckpointInfo, CheckpointManager
from repro.reliability.guards import GuardPolicy, GuardReport, InputGuard
from repro.reliability.scrub import ModelScrubber, ScrubReport
from repro.reliability.watchdog import HealthState, Watchdog
from repro.robust.conformal import AdaptiveConformal
from repro.streaming import PageHinkley, StreamBatchReport, StreamingRegHD
from repro.telemetry import flight as _flight
from repro.telemetry import metrics as _metrics
from repro.telemetry import tracing as _tracing
from repro.telemetry.spans import span
from repro.types import ArrayLike, FloatArray


@dataclass
class ResilientBatchReport(StreamBatchReport):
    """Per-batch report extended with reliability outcomes.

    On a rolled-back batch, ``restored_checkpoint`` names the checkpoint
    the model was restored from (the on-disk file stem) and
    ``trigger_error`` records the prequential RMSE that breached the
    watchdog's fail envelope.
    """

    health: HealthState | None = None
    guard: GuardReport | None = None
    scrub: ScrubReport | None = None
    rolled_back: bool = False
    checkpointed: bool = False
    skipped: bool = False  # guard dropped every row; nothing was learned
    restored_checkpoint: str | None = None
    trigger_error: float | None = None


@dataclass
class RollbackEvent:
    """One watchdog-triggered restoration from a checkpoint.

    ``checkpoint_id`` is the restored checkpoint's file stem
    (``ckpt-<batch>-<crc>``) and ``trigger_error`` the prequential RMSE
    that fired the watchdog — together they answer "which state did we
    return to, and how bad had it gotten" without consulting the disk.
    """

    at_batch: int
    restored_batch: int
    checkpoint: pathlib.Path
    checkpoint_id: str = ""
    trigger_error: float = float("nan")


class ResilientStreamingRegHD(StreamingRegHD):
    """Streaming RegHD with an active fault-tolerance layer.

    Parameters (on top of :class:`StreamingRegHD`)
    ----------
    guard:
        An :class:`InputGuard`, a :class:`GuardPolicy`/string to build one
        from, or None to admit batches unchecked.
    checkpoint_dir / checkpoint_every / keep_checkpoints:
        Enable rotating CRC-checked checkpoints every N batches
        (``checkpoint_every=0`` checkpoints only on explicit
        :meth:`checkpoint` calls).
    watchdog:
        A :class:`Watchdog`; on ``FAILED`` the model is rolled back to the
        newest valid checkpoint (when a checkpoint directory is set).
    scrub_every / scrub_replicas:
        Run a :class:`ModelScrubber` pass every N batches (0 disables).
    """

    def __init__(
        self,
        in_features: int,
        config: RegHDConfig | None = None,
        *,
        guard: InputGuard | GuardPolicy | str | None = None,
        checkpoint_dir: str | pathlib.Path | None = None,
        checkpoint_every: int = 0,
        keep_checkpoints: int = 3,
        watchdog: Watchdog | None = None,
        scrub_every: int = 0,
        scrub_replicas: int = 3,
        **streaming_kwargs: object,
    ):
        super().__init__(in_features, config, **streaming_kwargs)
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if scrub_every < 0:
            raise ConfigurationError(
                f"scrub_every must be >= 0, got {scrub_every}"
            )
        if isinstance(guard, (GuardPolicy, str)):
            guard = InputGuard(in_features, policy=guard)
        self.guard = guard
        self.checkpoints = (
            CheckpointManager(checkpoint_dir, keep=keep_checkpoints)
            if checkpoint_dir is not None
            else None
        )
        self.checkpoint_every = int(checkpoint_every)
        self.watchdog = watchdog
        self.scrub_every = int(scrub_every)
        self.scrubber = (
            ModelScrubber(self.model, replicas=scrub_replicas)
            if scrub_every > 0
            else None
        )
        self.rollbacks: list[RollbackEvent] = []

    # -- the per-batch pipeline --------------------------------------------

    def update(self, X: ArrayLike, y: ArrayLike) -> ResilientBatchReport:
        """Absorb one batch through the full reliability pipeline.

        Under an armed tracer the whole pipeline shares one trace (or
        joins the replay engine's, when it opened one); an uncaught
        exception dumps a flight-recorder post-mortem before
        propagating, stamped with the failing batch's trace id.
        """
        with _tracing.trace("batch", batch=self._batch_counter + 1):
            try:
                return self._update_pipeline(X, y)
            except Exception as exc:
                _flight.auto_dump(
                    "exception",
                    at_batch=self._batch_counter,
                    error=repr(exc),
                )
                raise

    def _update_pipeline(
        self, X: ArrayLike, y: ArrayLike
    ) -> ResilientBatchReport:
        scrub_report = None
        if (
            self.scrubber is not None
            and self._batch_counter > 0
            and self._batch_counter % self.scrub_every == 0
        ):
            scrub_report = self.scrubber.scrub()

        guard_report = None
        if self.guard is not None:
            with span("guard"):
                X, y, guard_report = self.guard.check(X, y)
            if len(X) == 0:
                report = ResilientBatchReport(
                    batch=self._batch_counter,
                    prequential_mse=None,
                    drift_detected=False,
                    guard=guard_report,
                    scrub=scrub_report,
                    skipped=True,
                )
                self.history.reports.append(report)
                return report

        base = super().update(X, y)
        if self.scrubber is not None:
            # Training wrote the live shadows; mirror the write into the
            # replicas (in hardware this is the same bus cycle).
            self.scrubber.sync()
        report = ResilientBatchReport(
            batch=base.batch,
            prequential_mse=base.prequential_mse,
            drift_detected=base.drift_detected,
            guard=guard_report,
            scrub=scrub_report,
        )
        # super().update appended its own plain report; replace it with
        # the enriched one so history stays one-entry-per-batch.
        self.history.reports.pop()
        self.history.reports.append(report)

        if self.watchdog is not None and base.prequential_mse is not None:
            trigger = float(np.sqrt(base.prequential_mse))
            report.health = self.watchdog.update(trigger)
            if report.health is HealthState.FAILED:
                with span("rollback"):
                    report.rolled_back = self._rollback(trigger)
                if report.rolled_back:
                    event = self.rollbacks[-1]
                    report.restored_checkpoint = event.checkpoint_id
                    report.trigger_error = trigger
                    # _restore rewound history to the checkpointed reports;
                    # re-append this one so the rollback stays on record.
                    self.history.reports.append(report)
                    # The rollback span has landed in the tracer ring and
                    # the batch trace is still open, so the post-mortem
                    # bundle carries both the guard→…→rollback spans and
                    # the breaching batch's trace id.
                    _flight.auto_dump(
                        "watchdog_rollback",
                        at_batch=event.at_batch,
                        restored_batch=event.restored_batch,
                        checkpoint_id=event.checkpoint_id,
                        trigger_error=trigger,
                    )

        if (
            self.checkpoints is not None
            and self.checkpoint_every > 0
            and not report.rolled_back
            and self._batch_counter % self.checkpoint_every == 0
        ):
            self.checkpoint()
            report.checkpointed = True
        return report

    def predict(self, X: ArrayLike) -> FloatArray:
        """Predict through the guard (repair/raise apply; under ``drop``
        the returned predictions correspond to the surviving rows)."""
        if self.guard is not None:
            X, _, _ = self.guard.check(X)
        return super().predict(X)

    # -- checkpointing / recovery ------------------------------------------

    def _stream_state(self) -> dict:
        state: dict = {
            "batch": self._batch_counter,
            "forgetting": self.forgetting,
            "drift_shrink": self.drift_shrink,
        }
        if self.detector is not None:
            state["detector"] = {
                "delta": self.detector.delta,
                "threshold": self.detector.threshold,
                "state": self.detector.get_state(),
            }
        if self.watchdog is not None:
            state["watchdog"] = self.watchdog.get_state()
        if self.conformal is not None:
            state["conformal"] = self.conformal.get_state()
        if self.guard is not None and self.guard.gate is not None:
            state["guard_gate"] = self.guard.gate.get_state()
        state["history"] = self.history.get_state()
        return state

    def checkpoint(self) -> CheckpointInfo:
        """Persist the current model + stream state, atomically."""
        if self.checkpoints is None:
            raise ConfigurationError(
                "no checkpoint_dir was configured for this stream"
            )
        return self.checkpoints.save(
            self.model,
            batch=self._batch_counter,
            extra={"stream": self._stream_state()},
        )

    def _restore(self, model, extra: dict) -> int:
        """Copy a restored model + stream state into this instance.

        Returns the restored batch counter.  The copy is in-place (the
        encoder bases never change after construction, so only the
        learned state moves), keeping every external reference to
        ``self.model`` valid.
        """
        # Restored weights make the serving plan stale; the restore below
        # goes through DualCopy.replace → rebinarize, which advances the
        # sign-version counters, so the next predict refreshes the plan's
        # operands incrementally rather than recompiling it.
        self._plan_stale = True
        # The state protocol applies learned arrays in place (DualCopy
        # .replace copies into the existing buffers), so scrubber shadows
        # and other references to self.model's arrays stay valid.
        self.model.set_state(*model.get_state())
        stream = extra.get("stream", {})
        self._batch_counter = int(stream.get("batch", self._batch_counter))
        detector_state = stream.get("detector")
        if self.detector is not None and detector_state is not None:
            self.detector.set_state(detector_state["state"])
        history_state = stream.get("history")
        if history_state is not None:
            self.history.set_state(history_state)
        conformal_state = stream.get("conformal")
        if self.conformal is not None and conformal_state is not None:
            # Rolling back the model without rolling back the calibration
            # window would score the restored model against residuals of
            # the diverged one; restore them together.
            self.conformal.set_state(conformal_state)
        gate_state = stream.get("guard_gate")
        if (
            gate_state is not None
            and self.guard is not None
            and self.guard.gate is not None
        ):
            self.guard.gate.set_state(gate_state)
        if self.scrubber is not None:
            self.scrubber.sync()
        return self._batch_counter

    def _rollback(self, trigger_error: float = float("nan")) -> bool:
        """Restore the newest valid checkpoint; False when none exists.

        ``trigger_error`` is the prequential RMSE that breached the fail
        envelope — recorded on the :class:`RollbackEvent` for post-mortem.
        """
        if self.checkpoints is None:
            return False
        info = self.checkpoints.latest_valid()
        if info is None:
            return False
        failed_at = self._batch_counter
        model, extra = self.checkpoints.load(info)
        restored = self._restore(model, extra)
        if self.watchdog is not None:
            # The window is full of the divergent errors that fired the
            # rollback; the baseline still describes a healthy model.
            self.watchdog.reset(keep_baseline=True)
        event = RollbackEvent(
            at_batch=failed_at,
            restored_batch=restored,
            checkpoint=info.path,
            checkpoint_id=info.path.stem,
            trigger_error=trigger_error,
        )
        self.rollbacks.append(event)
        registry = _metrics.active()
        if registry is not None:
            registry.counter("reghd_watchdog_rollbacks_total").inc()
            registry.record_event(
                "watchdog_rollback",
                at_batch=failed_at,
                restored_batch=restored,
                checkpoint_id=event.checkpoint_id,
                trigger_error=trigger_error,
            )
        return True

    @classmethod
    def recover(
        cls,
        checkpoint_dir: str | pathlib.Path,
        *,
        keep_checkpoints: int = 3,
        detector: PageHinkley | None = None,
        watchdog: Watchdog | None = None,
        **kwargs: object,
    ) -> "ResilientStreamingRegHD":
        """Resume a crashed stream from its checkpoint directory.

        Restores the newest CRC-valid checkpoint (skipping corrupt ones),
        the batch counter, and the drift-detector state — replaying the
        batches that arrived after the checkpoint then reproduces the
        uninterrupted run bit-exactly.  A detector is rebuilt from the
        checkpointed hyper-parameters unless one is passed in; a watchdog
        is only restored when passed in (its envelope config is the
        caller's choice).

        Raises :class:`RecoveryError` when no valid checkpoint exists.
        """
        manager = CheckpointManager(checkpoint_dir, keep=keep_checkpoints)
        model, extra, _ = manager.load_latest()
        stream = extra.get("stream", {})
        detector_meta = stream.get("detector")
        if detector is None and detector_meta is not None:
            detector = PageHinkley(
                delta=detector_meta["delta"],
                threshold=detector_meta["threshold"],
            )
        if watchdog is not None and "watchdog" in stream:
            watchdog.set_state(stream["watchdog"])
        if "conformal" not in kwargs and "conformal" in stream:
            # The calibrator's hyper-parameters live in its own snapshot,
            # so recovery rebuilds it wholesale unless the caller passed
            # a replacement.
            kwargs["conformal"] = AdaptiveConformal.from_state(
                stream["conformal"]
            )
        instance = cls(
            model.in_features,
            model.config,
            encoder=model.encoder,
            forgetting=float(stream.get("forgetting", 0.995)),
            drift_shrink=float(stream.get("drift_shrink", 0.1)),
            detector=detector,
            watchdog=watchdog,
            checkpoint_dir=checkpoint_dir,
            keep_checkpoints=keep_checkpoints,
            **kwargs,
        )
        instance._restore(model, extra)
        return instance
