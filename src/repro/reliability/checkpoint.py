"""Atomic, checksummed, rotating model checkpoints.

Checkpoint protocol (documented in README "Reliability & deployment"):

* one checkpoint == one ``.npz`` produced by
  :func:`repro.serialization.save_model` (registry-driven state protocol,
  so *any* registered model type checkpoints the same way): everything a
  recovery needs — model hypervectors, encoder bases, target scaling,
  plus wrapper state in the ``extra`` metadata — lives in a single file;
* **atomic**: the file is written to a temporary name in the target
  directory and published with :func:`os.replace`, so readers never
  observe a half-written checkpoint under its final name;
* **self-validating**: the final name embeds the CRC32 of the file bytes
  (``ckpt-<batch:08d>-<crc32:08x>.npz``); a reader recomputes the CRC
  before trusting a file, so truncation and bit rot are detected without
  a sidecar that could itself go missing;
* **rotating**: only the newest ``keep`` checkpoints are retained, and
  :meth:`CheckpointManager.latest_valid` walks newest-to-oldest past any
  corrupt file — one bad checkpoint costs one checkpoint interval, not
  the run.
"""

from __future__ import annotations

import os
import pathlib
import re
import zlib
from dataclasses import dataclass

from repro.exceptions import CheckpointCorruptError, RecoveryError
from repro.reliability.retry import retry
from repro.serialization import load_model, read_metadata, save_model
from repro.telemetry import metrics as _metrics

_NAME = re.compile(r"^ckpt-(?P<batch>\d{8})-(?P<crc>[0-9a-f]{8})\.npz$")


@dataclass(frozen=True)
class CheckpointInfo:
    """One on-disk checkpoint: its path, batch index and declared CRC."""

    path: pathlib.Path
    batch: int
    crc: int


@retry(attempts=3, base_delay=0.02, retry_on=(OSError,))
def _read_bytes(path: pathlib.Path) -> bytes:
    return path.read_bytes()


def file_crc(path: pathlib.Path) -> int:
    """CRC32 of a file's bytes (retried on transient I/O errors)."""
    return zlib.crc32(_read_bytes(path)) & 0xFFFFFFFF


class CheckpointManager:
    """Write, rotate, verify and recover checkpoints in one directory.

    Parameters
    ----------
    directory:
        Checkpoint directory; created if missing.
    keep:
        Number of newest checkpoints to retain (>= 1).  Keep at least 2 in
        production so a corrupt newest file still leaves a fallback.
    """

    def __init__(self, directory: str | pathlib.Path, *, keep: int = 3):
        if keep < 1:
            raise RecoveryError(f"keep must be >= 1, got {keep}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)

    # -- writing -----------------------------------------------------------

    def save(self, model, *, batch: int, extra: dict | None = None) -> CheckpointInfo:
        """Checkpoint ``model`` (+ wrapper state) for ``batch``, atomically.

        Returns the published checkpoint and prunes beyond ``keep``.
        """
        if batch < 0:
            raise RecoveryError(f"batch must be >= 0, got {batch}")
        tmp = self.directory / f".ckpt-{batch:08d}.tmp.npz"
        save_model(model, tmp, extra=extra)
        crc = file_crc(tmp)
        final = self.directory / f"ckpt-{batch:08d}-{crc:08x}.npz"
        os.replace(tmp, final)
        self.prune()
        registry = _metrics.active()
        if registry is not None:
            registry.counter("reghd_checkpoint_writes_total").inc()
            registry.record_event(
                "checkpoint_write",
                batch=batch,
                checkpoint_id=final.stem,
                bytes=final.stat().st_size,
            )
        return CheckpointInfo(path=final, batch=batch, crc=crc)

    def prune(self) -> list[pathlib.Path]:
        """Delete all but the newest ``keep`` checkpoints; returns removals."""
        removed = []
        for info in self.checkpoints()[: -self.keep or None]:
            info.path.unlink(missing_ok=True)
            removed.append(info.path)
        return removed

    # -- discovery / validation -------------------------------------------

    def checkpoints(self) -> list[CheckpointInfo]:
        """All on-disk checkpoints, oldest first (no validation)."""
        found = []
        for path in self.directory.iterdir():
            match = _NAME.match(path.name)
            if match:
                found.append(
                    CheckpointInfo(
                        path=path,
                        batch=int(match.group("batch")),
                        crc=int(match.group("crc"), 16),
                    )
                )
        return sorted(found, key=lambda c: (c.batch, c.path.name))

    def verify(self, info: CheckpointInfo) -> None:
        """Raise :class:`CheckpointCorruptError` unless ``info`` checks out."""
        try:
            actual = file_crc(info.path)
        except OSError as exc:
            raise CheckpointCorruptError(
                f"{info.path}: unreadable checkpoint: {exc}"
            ) from exc
        if actual != info.crc:
            raise CheckpointCorruptError(
                f"{info.path}: CRC mismatch — name declares {info.crc:08x}, "
                f"file bytes hash to {actual:08x}"
            )

    def latest_valid(self) -> CheckpointInfo | None:
        """Newest checkpoint that passes its CRC, or None.

        Corrupt/truncated files are skipped (not deleted — they are
        evidence for the operator) and the scan continues to older
        checkpoints.
        """
        for info in reversed(self.checkpoints()):
            try:
                self.verify(info)
            except CheckpointCorruptError:
                continue
            return info
        return None

    # -- reading -----------------------------------------------------------

    def load(self, info: CheckpointInfo):
        """Restore (model, extra-state dict) from a verified checkpoint."""
        self.verify(info)
        try:
            model = load_model(info.path)
            extra = read_metadata(info.path).get("extra", {})
        except Exception as exc:  # a CRC-valid file that still won't decode
            raise CheckpointCorruptError(
                f"{info.path}: checkpoint failed to decode: {exc}"
            ) from exc
        registry = _metrics.active()
        if registry is not None:
            registry.counter("reghd_checkpoint_restores_total").inc()
            registry.record_event(
                "checkpoint_restore",
                batch=info.batch,
                checkpoint_id=info.path.stem,
            )
        return model, extra

    def load_latest(self):
        """Restore from the newest valid checkpoint.

        Returns ``(model, extra, info)``; raises :class:`RecoveryError`
        when no valid checkpoint exists.
        """
        info = self.latest_valid()
        if info is None:
            raise RecoveryError(
                f"no valid checkpoint found in {self.directory}"
            )
        model, extra = self.load(info)
        return model, extra, info
