"""Health watchdog on the prequential error stream.

Drift detection (Page-Hinkley) answers "did the *world* change?"; the
watchdog answers "did the *model* break?" — a corrupted hypervector, a
poisoned batch that slipped past the guard, or numerical blow-up all show
up the same way: prequential error diverging far beyond its own recent
history.  The watchdog keeps a frozen baseline from the warm-up phase and
compares a rolling window of recent errors against it:

* ``HEALTHY``  — rolling error within ``warn_factor`` × baseline;
* ``WARN``     — above the warn envelope (log, keep serving);
* ``FAILED``   — above the fail envelope; the resilient wrapper responds
  by rolling back to the last good checkpoint.

This complements rather than replaces the drift path: a genuine concept
drift fires Page-Hinkley *first* (it is far more sensitive), shrinks the
model and re-adapts, so error rarely reaches the fail envelope; model
corruption skips straight past both envelopes.
"""

from __future__ import annotations

import enum
from collections import deque

import numpy as np

from repro.exceptions import ConfigurationError


class HealthState(enum.Enum):
    """Watchdog verdict after one error observation."""

    INITIALIZING = "initializing"
    HEALTHY = "healthy"
    WARN = "warn"
    FAILED = "failed"


class Watchdog:
    """Envelope monitor on a stream of error magnitudes.

    Parameters
    ----------
    baseline_batches:
        Number of warm-up observations averaged into the frozen baseline;
        the state is ``INITIALIZING`` until then.
    window:
        Length of the rolling mean compared against the envelopes — one
        wild batch should not trigger a rollback on its own.
    warn_factor / fail_factor:
        Multiples of the baseline that bound the two envelopes.
    floor:
        Lower bound applied to the baseline so a perfect (zero-error)
        warm-up does not make every later epsilon a failure.
    """

    def __init__(
        self,
        *,
        baseline_batches: int = 20,
        window: int = 5,
        warn_factor: float = 2.0,
        fail_factor: float = 4.0,
        floor: float = 1e-9,
    ):
        if baseline_batches < 1:
            raise ConfigurationError(
                f"baseline_batches must be >= 1, got {baseline_batches}"
            )
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 1.0 <= warn_factor <= fail_factor:
            raise ConfigurationError(
                "need 1 <= warn_factor <= fail_factor, got "
                f"warn={warn_factor}, fail={fail_factor}"
            )
        if floor <= 0:
            raise ConfigurationError(f"floor must be > 0, got {floor}")
        self.baseline_batches = int(baseline_batches)
        self.window = int(window)
        self.warn_factor = float(warn_factor)
        self.fail_factor = float(fail_factor)
        self.floor = float(floor)
        self.reset()

    def reset(self, *, keep_baseline: bool = False) -> None:
        """Clear the rolling window (and, by default, the baseline too).

        After a rollback the window must be cleared — it is full of the
        divergent errors that triggered the rollback — while the baseline
        usually survives (the recovered model is expected to perform like
        the warm-up did).
        """
        if not keep_baseline:
            self._warmup: list[float] = []
            self.baseline: float | None = None
        self._recent: deque[float] = deque(maxlen=self.window)
        self.state = (
            HealthState.INITIALIZING
            if self.baseline is None
            else HealthState.HEALTHY
        )

    def update(self, error: float) -> HealthState:
        """Feed one error magnitude; returns the new health state."""
        error = float(error)
        if not np.isfinite(error) or error < 0:
            # Non-finite prequential error is itself a failure signal.
            self.state = HealthState.FAILED
            return self.state
        if self.baseline is None:
            self._warmup.append(error)
            if len(self._warmup) >= self.baseline_batches:
                self.baseline = max(
                    float(np.mean(self._warmup)), self.floor
                )
                self.state = HealthState.HEALTHY
            else:
                self.state = HealthState.INITIALIZING
            return self.state
        self._recent.append(error)
        rolling = float(np.mean(self._recent))
        if rolling > self.fail_factor * self.baseline:
            self.state = HealthState.FAILED
        elif rolling > self.warn_factor * self.baseline:
            self.state = HealthState.WARN
        else:
            self.state = HealthState.HEALTHY
        return self.state

    # -- checkpointable state ----------------------------------------------

    def get_state(self) -> dict:
        """JSON-serialisable snapshot (for checkpoints)."""
        return {
            "baseline": self.baseline,
            "warmup": list(self._warmup) if self.baseline is None else [],
            "recent": list(self._recent),
            "state": self.state.value,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`get_state`."""
        self.baseline = (
            None if state["baseline"] is None else float(state["baseline"])
        )
        self._warmup = [float(e) for e in state.get("warmup", [])]
        self._recent = deque(
            (float(e) for e in state.get("recent", [])), maxlen=self.window
        )
        self.state = HealthState(state["state"])
