"""Primitive-operation accounting.

Every algorithm in the library can be described as a bag of primitive
operations — integer multiplies, additions, comparisons, single-bit
XOR/popcount steps, floating-point MACs and transcendentals.  The paper's
efficiency claims all reduce to *how many of which* operations each method
needs (binary Hamming search replaces integer cosine search, etc.), so an
exact operation count plus a per-device cost table reproduces the
speedup/efficiency *ratios* without the authors' FPGA testbed
(DESIGN.md §3, substitution 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class OpKind(enum.Enum):
    """Primitive operation categories charged by the cost model."""

    #: Integer / fixed-point multiply (the expensive HD op).
    INT_MUL = "int_mul"
    #: Integer / fixed-point add or subtract.
    INT_ADD = "int_add"
    #: Scalar comparison (thresholding, argmax steps, binarisation).
    CMP = "cmp"
    #: Single-bit operation: XOR plus its popcount-tree contribution.
    BIT_OP = "bit_op"
    #: Floating-point multiply (DNN path).
    FLOAT_MUL = "float_mul"
    #: Floating-point add (DNN path).
    FLOAT_ADD = "float_add"
    #: Transcendental evaluation (cos/sin/exp), LUT-based in hardware.
    TRIG = "trig"


@dataclass(frozen=True)
class OpCounts:
    """A bag of primitive-operation counts.

    Immutable; combine with ``+`` and scale with ``*`` so per-phase costs
    compose into per-epoch and per-run costs.
    """

    counts: dict[OpKind, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        clean = {
            kind: float(value)
            for kind, value in self.counts.items()
            if value != 0.0
        }
        for kind, value in clean.items():
            if value < 0:
                raise ValueError(f"negative count for {kind}: {value}")
        object.__setattr__(self, "counts", clean)

    def __add__(self, other: "OpCounts") -> "OpCounts":
        merged = dict(self.counts)
        for kind, value in other.counts.items():
            merged[kind] = merged.get(kind, 0.0) + value
        return OpCounts(merged)

    def __mul__(self, factor: float) -> "OpCounts":
        if factor < 0:
            raise ValueError(f"cannot scale counts by negative {factor}")
        return OpCounts({k: v * factor for k, v in self.counts.items()})

    __rmul__ = __mul__

    def get(self, kind: OpKind) -> float:
        """Count for one operation kind (0 if absent)."""
        return self.counts.get(kind, 0.0)

    @property
    def total(self) -> float:
        """Total primitive operations, all kinds summed."""
        return sum(self.counts.values())

    @staticmethod
    def zero() -> "OpCounts":
        """The empty bag."""
        return OpCounts({})

    @staticmethod
    def single(kind: OpKind, count: float) -> "OpCounts":
        """A bag with one kind."""
        return OpCounts({kind: count})

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{kind.value}={value:.3g}"
            for kind, value in sorted(
                self.counts.items(), key=lambda item: item[0].value
            )
        )
        return f"OpCounts({inner})"
