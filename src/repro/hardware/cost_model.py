"""Analytic per-phase operation counts for RegHD, the DNN and Baseline-HD.

These builders translate an algorithm configuration into exact
primitive-operation counts per phase (encode / similarity search / predict
/ update), which a :class:`~repro.hardware.profiles.DeviceProfile` then
prices into latency and energy.  The efficiency benchmarks (Figs. 8-9,
Table 2) are ratios of these estimates, with iteration counts taken from
actual training runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RegHDConfig
from repro.core.quantization import ClusterQuant, PredictQuant
from repro.exceptions import HardwareModelError
from repro.hardware.ops_count import OpCounts, OpKind
from repro.hardware.profiles import DeviceProfile


@dataclass(frozen=True)
class CostEstimate:
    """Priced operation bag: latency, energy, and the raw counts."""

    latency_s: float
    energy_j: float
    ops: OpCounts

    def speedup_vs(self, other: "CostEstimate") -> float:
        """How much faster *this* estimate is than ``other`` (>1 = faster)."""
        if self.latency_s <= 0:
            raise HardwareModelError("latency must be positive for ratios")
        return other.latency_s / self.latency_s

    def efficiency_vs(self, other: "CostEstimate") -> float:
        """Energy-efficiency ratio vs ``other`` (>1 = less energy)."""
        if self.energy_j <= 0:
            raise HardwareModelError("energy must be positive for ratios")
        return other.energy_j / self.energy_j


def estimate(counts: OpCounts, profile: DeviceProfile) -> CostEstimate:
    """Price an operation bag on a device profile."""
    return CostEstimate(
        latency_s=profile.latency_s(counts),
        energy_j=profile.energy_j(counts),
        ops=counts,
    )


# ---------------------------------------------------------------------------
# RegHD
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegHDCostSpec:
    """The structural parameters that determine RegHD's operation counts."""

    n_features: int
    dim: int
    n_models: int
    cluster_quant: ClusterQuant = ClusterQuant.NONE
    predict_quant: PredictQuant = PredictQuant.FULL
    update_weighting: str = "confidence"
    #: Fraction of non-zero model-hypervector elements (SparseHD-style
    #: sparsification, repro.core.sparsify); scales the model dot-product
    #: and model-update work.
    model_density: float = 1.0

    def __post_init__(self) -> None:
        if self.n_features < 1 or self.dim < 1 or self.n_models < 1:
            raise HardwareModelError(
                "n_features, dim and n_models must all be >= 1"
            )
        if not 0.0 < self.model_density <= 1.0:
            raise HardwareModelError(
                f"model_density must be in (0, 1], got {self.model_density}"
            )

    @classmethod
    def from_config(cls, n_features: int, config: RegHDConfig) -> "RegHDCostSpec":
        """Build a cost spec from a model configuration."""
        return cls(
            n_features=n_features,
            dim=config.dim,
            n_models=config.n_models,
            cluster_quant=config.cluster_quant,
            predict_quant=config.predict_quant,
            update_weighting=config.update_weighting,
        )


def reghd_encode_cost(spec: RegHDCostSpec, *, binary_view: bool = False) -> OpCounts:
    """Eq. (1) per sample: an (n x D) projection + trig nonlinearity.

    The paper's base hypervectors are bipolar (±1), so the hardware
    projection ``x . B_d`` is an add/subtract tree — *no multiplies*; only
    the final ``cos * sin`` product multiplies, and the two trig
    evaluations are LUT/CORDIC units.  ``binary_view`` adds the
    single-comparison quantisation of the encoded hypervector (needed
    whenever a binary query or binary cluster search is configured).
    """
    d, n = spec.dim, spec.n_features
    counts = OpCounts(
        {
            OpKind.INT_MUL: float(d),  # cos * sin product
            OpKind.INT_ADD: float(n * d + d),  # ±x add tree + phase add
            OpKind.TRIG: float(2 * d),  # cos and sin
        }
    )
    if binary_view:
        counts = counts + OpCounts.single(OpKind.CMP, float(d))
    return counts


def reghd_cluster_search_cost(spec: RegHDCostSpec) -> OpCounts:
    """Eq. (5) per sample: similarity of the query to all k clusters."""
    d, k = spec.dim, spec.n_models
    if spec.cluster_quant is ClusterQuant.NONE:
        # Cosine: k D-element integer dot products (norms are cached).
        return OpCounts(
            {OpKind.INT_MUL: float(k * d), OpKind.INT_ADD: float(k * d)}
        )
    # Hamming: XOR + popcount over k binary hypervectors.
    return OpCounts.single(OpKind.BIT_OP, float(k * d))


def reghd_softmax_cost(spec: RegHDCostSpec) -> OpCounts:
    """Fig. 4 normalisation block: k exponentials + normalisation."""
    k = spec.n_models
    return OpCounts(
        {
            OpKind.TRIG: float(k),
            OpKind.INT_ADD: float(k),
            OpKind.INT_MUL: float(k),
        }
    )


def reghd_predict_cost(spec: RegHDCostSpec) -> OpCounts:
    """Eq. (6) per sample: k model dot products + confidence weighting.

    Sparse models (``model_density < 1``) skip zero coordinates, scaling
    the dot-product work by the density.
    """
    d, k = spec.dim, spec.n_models
    effective = spec.model_density * k * d
    pq = spec.predict_quant
    if pq is PredictQuant.FULL:
        dots = OpCounts(
            {OpKind.INT_MUL: effective, OpKind.INT_ADD: effective}
        )
    elif pq is PredictQuant.BINARY_BOTH:
        dots = OpCounts.single(OpKind.BIT_OP, effective)
    else:
        # One binary operand makes the dot product multiply-free: the
        # binary side selects add/subtract of the integer side.
        dots = OpCounts.single(OpKind.INT_ADD, effective)
    weighting = OpCounts(
        {OpKind.INT_MUL: float(k), OpKind.INT_ADD: float(k)}
    )
    return dots + weighting


def reghd_model_update_cost(spec: RegHDCostSpec) -> OpCounts:
    """Eq. (7) per sample, on the integer model copies."""
    d, k = spec.dim, spec.n_models
    if spec.update_weighting == "argmax":
        models_touched = 1
    else:
        models_touched = k
    effective = spec.model_density * models_touched * d
    return OpCounts(
        {OpKind.INT_MUL: effective, OpKind.INT_ADD: effective}
    )


def reghd_cluster_update_cost(spec: RegHDCostSpec) -> OpCounts:
    """Eq. (8) per sample: scale + add into the argmax cluster."""
    d, k = spec.dim, spec.n_models
    return OpCounts(
        {
            OpKind.CMP: float(k),  # argmax scan over similarities
            OpKind.INT_MUL: float(d),
            OpKind.INT_ADD: float(d),
        }
    )


def reghd_rebinarize_cost(spec: RegHDCostSpec) -> OpCounts:
    """Per-epoch dual-copy refresh: one comparison per element (Sec. 3)."""
    d, k = spec.dim, spec.n_models
    elements = 0
    if spec.cluster_quant is ClusterQuant.FRAMEWORK:
        elements += k * d
    if spec.predict_quant.model_is_binary:
        elements += k * d
    return OpCounts.single(OpKind.CMP, float(elements))


def _needs_binary_query(spec: RegHDCostSpec) -> bool:
    return (
        spec.cluster_quant is not ClusterQuant.NONE
        or spec.predict_quant.query_is_binary
    )


def reghd_train_cost(
    spec: RegHDCostSpec,
    n_samples: int,
    epochs: int,
    *,
    amortize_encoding: bool = True,
) -> OpCounts:
    """Total training ops: ``epochs`` iterative passes over ``n_samples``.

    With ``amortize_encoding`` (the default, matching both this library's
    training loop and the paper's pipelined FPGA design) each sample is
    encoded once and the encoded hypervector is reused across all
    retraining iterations; similarity search, prediction and the updates
    are paid every epoch.
    """
    if n_samples < 1 or epochs < 1:
        raise HardwareModelError("n_samples and epochs must be >= 1")
    encode = reghd_encode_cost(spec, binary_view=_needs_binary_query(spec))
    per_epoch_sample = (
        reghd_cluster_search_cost(spec)
        + reghd_softmax_cost(spec)
        + reghd_predict_cost(spec)
        + reghd_model_update_cost(spec)
        + reghd_cluster_update_cost(spec)
    )
    if amortize_encoding:
        total = encode * n_samples + per_epoch_sample * (n_samples * epochs)
    else:
        total = (encode + per_epoch_sample) * (n_samples * epochs)
    return total + reghd_rebinarize_cost(spec) * epochs


def reghd_infer_cost(spec: RegHDCostSpec, n_samples: int = 1) -> OpCounts:
    """Total inference ops for ``n_samples`` queries (no updates)."""
    if n_samples < 1:
        raise HardwareModelError("n_samples must be >= 1")
    per_sample = (
        reghd_encode_cost(spec, binary_view=_needs_binary_query(spec))
        + reghd_cluster_search_cost(spec)
        + reghd_softmax_cost(spec)
        + reghd_predict_cost(spec)
    )
    return per_sample * n_samples


# ---------------------------------------------------------------------------
# DNN (the Table-1 / Fig-8 comparator)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DNNCostSpec:
    """Layer widths of the MLP comparator, input to output."""

    layer_sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.layer_sizes) < 2 or any(s < 1 for s in self.layer_sizes):
            raise HardwareModelError(
                f"layer_sizes needs >= 2 positive entries, got "
                f"{self.layer_sizes}"
            )

    @property
    def forward_macs(self) -> int:
        """Multiply-accumulates of one forward pass."""
        return sum(
            a * b for a, b in zip(self.layer_sizes[:-1], self.layer_sizes[1:])
        )

    @property
    def hidden_units(self) -> int:
        """Total hidden activations (for activation-function costs)."""
        return sum(self.layer_sizes[1:-1])


def dnn_train_cost(spec: DNNCostSpec, n_samples: int, epochs: int) -> OpCounts:
    """Training ops: forward + backward + weight update per sample/epoch.

    The standard 3x-forward accounting: backward costs about twice the
    forward MACs, and the weight update touches every parameter once.
    """
    if n_samples < 1 or epochs < 1:
        raise HardwareModelError("n_samples and epochs must be >= 1")
    macs = spec.forward_macs
    per_sample = OpCounts(
        {
            OpKind.FLOAT_MUL: float(3 * macs + macs),  # fwd+bwd + update
            OpKind.FLOAT_ADD: float(3 * macs + macs),
            OpKind.CMP: float(2 * spec.hidden_units),  # relu fwd + bwd mask
        }
    )
    return per_sample * (n_samples * epochs)


def dnn_infer_cost(spec: DNNCostSpec, n_samples: int = 1) -> OpCounts:
    """Inference ops: one forward pass per query."""
    if n_samples < 1:
        raise HardwareModelError("n_samples must be >= 1")
    macs = spec.forward_macs
    per_sample = OpCounts(
        {
            OpKind.FLOAT_MUL: float(macs),
            OpKind.FLOAT_ADD: float(macs),
            OpKind.CMP: float(spec.hidden_units),
        }
    )
    return per_sample * n_samples


# ---------------------------------------------------------------------------
# Baseline-HD (classification-emulated regression, the paper's [18])
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BaselineHDCostSpec:
    """Structural parameters of the Baseline-HD comparator."""

    n_features: int
    dim: int
    n_bins: int

    def __post_init__(self) -> None:
        if self.n_features < 1 or self.dim < 1 or self.n_bins < 2:
            raise HardwareModelError(
                "n_features, dim must be >= 1 and n_bins >= 2"
            )


def baseline_hd_train_cost(
    spec: BaselineHDCostSpec,
    n_samples: int,
    epochs: int,
    *,
    amortize_encoding: bool = True,
) -> OpCounts:
    """Training ops: encode + search over *hundreds* of class hypervectors.

    The per-sample search scales with ``n_bins`` (vs RegHD's k), which is
    exactly why the paper calls this baseline "significantly inefficient
    in hardware".  Encoding is amortised across iterations like RegHD's.
    """
    if n_samples < 1 or epochs < 1:
        raise HardwareModelError("n_samples and epochs must be >= 1")
    d, n, bins = spec.dim, spec.n_features, spec.n_bins
    encode = OpCounts(
        {
            OpKind.INT_MUL: float(d),
            OpKind.INT_ADD: float(n * d + d),
            OpKind.TRIG: float(2 * d),
        }
    )
    search = OpCounts(
        {OpKind.INT_MUL: float(bins * d), OpKind.INT_ADD: float(bins * d)}
    )
    update = OpCounts(
        {OpKind.INT_MUL: float(2 * d), OpKind.INT_ADD: float(2 * d)}
    )
    per_epoch = (search + update) * (n_samples * epochs)
    if amortize_encoding:
        return encode * n_samples + per_epoch
    return encode * (n_samples * epochs) + per_epoch


def baseline_hd_infer_cost(
    spec: BaselineHDCostSpec, n_samples: int = 1
) -> OpCounts:
    """Inference ops: encode + full class-hypervector search per query."""
    if n_samples < 1:
        raise HardwareModelError("n_samples must be >= 1")
    d, n, bins = spec.dim, spec.n_features, spec.n_bins
    per_sample = OpCounts(
        {
            OpKind.INT_MUL: float(d + bins * d),
            OpKind.INT_ADD: float(n * d + d + bins * d),
            OpKind.TRIG: float(2 * d),
        }
    )
    return per_sample * n_samples
