"""Speedup / efficiency analysis helpers for the Fig. 8-9 / Table-2 benches.

Everything here is ratio arithmetic over :class:`CostEstimate` objects: a
baseline configuration is priced, alternatives are priced, and the tables
report ``baseline / alternative`` for latency (speedup) and energy
(efficiency) — the exact quantities the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import HardwareModelError
from repro.hardware.cost_model import CostEstimate


@dataclass(frozen=True)
class EfficiencyRow:
    """One row of a speedup/efficiency comparison table."""

    label: str
    latency_s: float
    energy_j: float
    speedup: float
    efficiency: float


def relative_table(
    baseline_label: str,
    estimates: dict[str, CostEstimate],
) -> list[EfficiencyRow]:
    """Build speedup/efficiency rows relative to one named baseline.

    The baseline row reports 1.0 for both ratios; every other row reports
    ``baseline_latency / latency`` and ``baseline_energy / energy``.
    """
    if baseline_label not in estimates:
        raise HardwareModelError(
            f"baseline {baseline_label!r} not among {sorted(estimates)}"
        )
    base = estimates[baseline_label]
    if base.latency_s <= 0 or base.energy_j <= 0:
        raise HardwareModelError("baseline latency/energy must be positive")
    rows = []
    for label, est in estimates.items():
        if est.latency_s <= 0 or est.energy_j <= 0:
            raise HardwareModelError(
                f"estimate {label!r} has non-positive latency/energy"
            )
        rows.append(
            EfficiencyRow(
                label=label,
                latency_s=est.latency_s,
                energy_j=est.energy_j,
                speedup=base.latency_s / est.latency_s,
                efficiency=base.energy_j / est.energy_j,
            )
        )
    return rows


def normalize_to(
    rows: list[EfficiencyRow], label: str
) -> list[EfficiencyRow]:
    """Re-normalise a table so ``label`` becomes the 1x reference."""
    ref = next((r for r in rows if r.label == label), None)
    if ref is None:
        raise HardwareModelError(f"label {label!r} not in table")
    return [
        EfficiencyRow(
            label=r.label,
            latency_s=r.latency_s,
            energy_j=r.energy_j,
            speedup=r.speedup / ref.speedup,
            efficiency=r.efficiency / ref.efficiency,
        )
        for r in rows
    ]


def format_table(rows: list[EfficiencyRow], *, title: str = "") -> str:
    """Render rows as a fixed-width ASCII table (benchmark output)."""
    header = f"{'configuration':<28} {'latency':>12} {'energy':>12} {'speedup':>9} {'eff.':>9}"
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            f"{r.label:<28} {r.latency_s:>10.3e}s {r.energy_j:>10.3e}J "
            f"{r.speedup:>8.2f}x {r.efficiency:>8.2f}x"
        )
    return "\n".join(lines)
