"""Model memory-footprint accounting.

The paper motivates HD learning with "today's embedded devices with
limited storage, battery, and resources".  This module computes the
storage each deployable model actually needs on-device, including the
Sec.-3 savings: binary copies cost one bit per element, sparse models
store (index, value) pairs, and the encoder's base matrix — often the
dominant term — can be regenerated from its seed on devices with a PRNG
(``count_encoder=False``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantization import ClusterQuant
from repro.exceptions import HardwareModelError
from repro.hardware.cost_model import BaselineHDCostSpec, DNNCostSpec, RegHDCostSpec


@dataclass(frozen=True)
class MemoryFootprint:
    """Byte counts per component of a deployed model."""

    encoder_bytes: float
    parameters_bytes: float

    @property
    def total_bytes(self) -> float:
        """Encoder + parameters."""
        return self.encoder_bytes + self.parameters_bytes

    @property
    def total_kib(self) -> float:
        """Total in KiB."""
        return self.total_bytes / 1024.0


def _dense_bytes(elements: float, bits: int) -> float:
    return elements * bits / 8.0


def _sparse_bytes(elements: float, density: float, bits: int, dim: int) -> float:
    # (value, index) pairs; index width = ceil(log2 dim) bits.
    index_bits = max(1, (dim - 1).bit_length())
    return elements * density * (bits + index_bits) / 8.0


def reghd_memory(
    spec: RegHDCostSpec,
    *,
    int_bits: int = 32,
    count_encoder: bool = True,
    encoder_base_bits: int = 1,
) -> MemoryFootprint:
    """Deployed RegHD footprint for a given configuration.

    Inference needs: the encoder bases (+phases), the cluster hypervectors
    in whichever precision the search uses, and the model hypervectors in
    whichever precision the prediction uses.  Dual integer copies are a
    *training* artefact and are not shipped.

    Parameters
    ----------
    int_bits:
        Width of integer (fixed-point) hypervector elements.
    count_encoder:
        Include the encoder base matrix (set False when the device
        regenerates it from the seed).
    encoder_base_bits:
        1 for the paper's bipolar bases, 32 for stored float bases.
    """
    if int_bits < 1:
        raise HardwareModelError(f"int_bits must be >= 1, got {int_bits}")
    d, k, n = spec.dim, spec.n_models, spec.n_features
    encoder = 0.0
    if count_encoder:
        encoder = _dense_bytes(n * d, encoder_base_bits) + _dense_bytes(
            d, int_bits
        )  # bases + phases

    if spec.cluster_quant is ClusterQuant.NONE:
        clusters = _dense_bytes(k * d, int_bits)
    else:
        clusters = _dense_bytes(k * d, 1)

    model_bits = 1 if spec.predict_quant.model_is_binary else int_bits
    if spec.model_density < 1.0 and model_bits > 1:
        models = _sparse_bytes(k * d, spec.model_density, model_bits, d)
    else:
        models = _dense_bytes(k * d, model_bits) * (
            spec.model_density if model_bits == 1 else 1.0
        )
    return MemoryFootprint(
        encoder_bytes=encoder, parameters_bytes=clusters + models
    )


def dnn_memory(spec: DNNCostSpec, *, float_bits: int = 32) -> MemoryFootprint:
    """DNN footprint: weights + biases at float precision."""
    if float_bits < 1:
        raise HardwareModelError(f"float_bits must be >= 1, got {float_bits}")
    weights = sum(
        a * b for a, b in zip(spec.layer_sizes[:-1], spec.layer_sizes[1:])
    )
    biases = sum(spec.layer_sizes[1:])
    return MemoryFootprint(
        encoder_bytes=0.0,
        parameters_bytes=_dense_bytes(weights + biases, float_bits),
    )


def baseline_hd_memory(
    spec: BaselineHDCostSpec,
    *,
    int_bits: int = 32,
    count_encoder: bool = True,
    encoder_base_bits: int = 1,
) -> MemoryFootprint:
    """Baseline-HD footprint: encoder + one hypervector per output bin."""
    if int_bits < 1:
        raise HardwareModelError(f"int_bits must be >= 1, got {int_bits}")
    d, n, bins = spec.dim, spec.n_features, spec.n_bins
    encoder = 0.0
    if count_encoder:
        encoder = _dense_bytes(n * d, encoder_base_bits) + _dense_bytes(
            d, int_bits
        )
    return MemoryFootprint(
        encoder_bytes=encoder,
        parameters_bytes=_dense_bytes(bins * d, int_bits),
    )
