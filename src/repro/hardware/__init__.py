"""Hardware cost model: operation counts, device profiles, ratio analysis.

Replaces the paper's FPGA/ARM testbed with an analytic model; see
DESIGN.md §3, substitution 2.
"""

from repro.hardware.analysis import (
    EfficiencyRow,
    format_table,
    normalize_to,
    relative_table,
)
from repro.hardware.cost_model import (
    BaselineHDCostSpec,
    CostEstimate,
    DNNCostSpec,
    RegHDCostSpec,
    baseline_hd_infer_cost,
    baseline_hd_train_cost,
    dnn_infer_cost,
    dnn_train_cost,
    estimate,
    reghd_cluster_search_cost,
    reghd_encode_cost,
    reghd_infer_cost,
    reghd_predict_cost,
    reghd_train_cost,
)
from repro.hardware.memory import (
    MemoryFootprint,
    baseline_hd_memory,
    dnn_memory,
    reghd_memory,
)
from repro.hardware.ops_count import OpCounts, OpKind
from repro.hardware.profiles import (
    ARM_A53,
    DESKTOP_X86,
    FPGA_KINTEX7,
    PIM_ACCELERATOR,
    PROFILES,
    DeviceProfile,
    get_profile,
)

__all__ = [
    "EfficiencyRow",
    "format_table",
    "normalize_to",
    "relative_table",
    "BaselineHDCostSpec",
    "CostEstimate",
    "DNNCostSpec",
    "RegHDCostSpec",
    "baseline_hd_infer_cost",
    "baseline_hd_train_cost",
    "dnn_infer_cost",
    "dnn_train_cost",
    "estimate",
    "reghd_cluster_search_cost",
    "reghd_encode_cost",
    "reghd_infer_cost",
    "reghd_predict_cost",
    "reghd_train_cost",
    "MemoryFootprint",
    "baseline_hd_memory",
    "dnn_memory",
    "reghd_memory",
    "OpCounts",
    "OpKind",
    "ARM_A53",
    "DESKTOP_X86",
    "FPGA_KINTEX7",
    "PIM_ACCELERATOR",
    "PROFILES",
    "DeviceProfile",
    "get_profile",
]
