"""Device profiles: per-operation latency and energy tables.

The absolute numbers are representative of published 45 nm energy tables
(Horowitz, ISSCC'14) and embedded-FPGA datapath costs; what the
reproduction relies on is the *ratio structure* — a 1-bit XOR/popcount
step is roughly an order of magnitude cheaper than an integer
multiply-accumulate, floating-point arithmetic is costlier than integer,
and transcendentals are LUT-evaluated at a few integer-ops' cost.  Those
ratios drive every efficiency figure in the paper (DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import HardwareModelError
from repro.hardware.ops_count import OpCounts, OpKind


@dataclass(frozen=True)
class DeviceProfile:
    """Per-operation latency (ns) and energy (pJ) plus a parallelism width.

    ``parallelism`` models the number of lanes the device executes
    primitive ops on concurrently (wide datapath on an FPGA, SIMD on a
    CPU).  It divides latency but not energy.
    """

    name: str
    latency_ns: dict[OpKind, float] = field(default_factory=dict)
    energy_pj: dict[OpKind, float] = field(default_factory=dict)
    parallelism: float = 1.0

    def __post_init__(self) -> None:
        if self.parallelism <= 0:
            raise HardwareModelError(
                f"parallelism must be > 0, got {self.parallelism}"
            )
        for table_name, table in (
            ("latency_ns", self.latency_ns),
            ("energy_pj", self.energy_pj),
        ):
            for kind in OpKind:
                if kind not in table:
                    raise HardwareModelError(
                        f"profile {self.name!r} is missing {kind} in "
                        f"{table_name}"
                    )
                if table[kind] <= 0:
                    raise HardwareModelError(
                        f"profile {self.name!r} has non-positive "
                        f"{table_name}[{kind}]"
                    )

    def latency_s(self, counts: OpCounts) -> float:
        """Total latency in seconds for a bag of operations."""
        total_ns = sum(
            self.latency_ns[kind] * value for kind, value in counts.counts.items()
        )
        return total_ns * 1e-9 / self.parallelism

    def energy_j(self, counts: OpCounts) -> float:
        """Total energy in joules for a bag of operations."""
        total_pj = sum(
            self.energy_pj[kind] * value for kind, value in counts.counts.items()
        )
        return total_pj * 1e-12


#: Kintex-7-class FPGA datapath: wide parallelism, cheap fixed-point,
#: very cheap single-bit logic, LUT-based transcendentals.
FPGA_KINTEX7 = DeviceProfile(
    name="fpga-kintex7",
    latency_ns={
        OpKind.INT_MUL: 2.0,
        OpKind.INT_ADD: 0.5,
        OpKind.CMP: 0.5,
        OpKind.BIT_OP: 0.1,
        OpKind.FLOAT_MUL: 4.0,
        OpKind.FLOAT_ADD: 2.0,
        OpKind.TRIG: 4.0,
    },
    energy_pj={
        OpKind.INT_MUL: 3.1,
        OpKind.INT_ADD: 0.1,
        OpKind.CMP: 0.05,
        OpKind.BIT_OP: 0.02,
        OpKind.FLOAT_MUL: 3.7,
        OpKind.FLOAT_ADD: 0.9,
        OpKind.TRIG: 5.0,
    },
    parallelism=512.0,
)

#: ARM Cortex-A53-class embedded CPU (Raspberry Pi 3B+): modest SIMD,
#: bit operations less advantaged than on an FPGA (packed 64-bit words).
ARM_A53 = DeviceProfile(
    name="arm-a53",
    latency_ns={
        OpKind.INT_MUL: 2.5,
        OpKind.INT_ADD: 0.8,
        OpKind.CMP: 0.8,
        OpKind.BIT_OP: 0.15,
        OpKind.FLOAT_MUL: 3.3,
        OpKind.FLOAT_ADD: 2.5,
        OpKind.TRIG: 25.0,
    },
    energy_pj={
        OpKind.INT_MUL: 22.0,
        OpKind.INT_ADD: 7.0,
        OpKind.CMP: 5.0,
        OpKind.BIT_OP: 1.2,
        OpKind.FLOAT_MUL: 26.0,
        OpKind.FLOAT_ADD: 20.0,
        OpKind.TRIG: 180.0,
    },
    parallelism=4.0,
)

#: Desktop-class x86 CPU: deep out-of-order core, wide SIMD, but high
#: per-op energy relative to embedded parts.
DESKTOP_X86 = DeviceProfile(
    name="desktop-x86",
    latency_ns={
        OpKind.INT_MUL: 0.8,
        OpKind.INT_ADD: 0.25,
        OpKind.CMP: 0.25,
        OpKind.BIT_OP: 0.05,
        OpKind.FLOAT_MUL: 1.0,
        OpKind.FLOAT_ADD: 0.8,
        OpKind.TRIG: 8.0,
    },
    energy_pj={
        OpKind.INT_MUL: 45.0,
        OpKind.INT_ADD: 15.0,
        OpKind.CMP: 10.0,
        OpKind.BIT_OP: 2.5,
        OpKind.FLOAT_MUL: 55.0,
        OpKind.FLOAT_ADD: 40.0,
        OpKind.TRIG: 350.0,
    },
    parallelism=16.0,
)

#: Processing-in-memory accelerator (the related-work [17]/[44] class):
#: massive bit-level parallelism inside memory arrays makes binary ops
#: essentially free, while integer/float arithmetic must round-trip to a
#: digital periphery.
PIM_ACCELERATOR = DeviceProfile(
    name="pim-accelerator",
    latency_ns={
        OpKind.INT_MUL: 6.0,
        OpKind.INT_ADD: 1.5,
        OpKind.CMP: 0.5,
        OpKind.BIT_OP: 0.01,
        OpKind.FLOAT_MUL: 12.0,
        OpKind.FLOAT_ADD: 6.0,
        OpKind.TRIG: 20.0,
    },
    energy_pj={
        OpKind.INT_MUL: 8.0,
        OpKind.INT_ADD: 1.0,
        OpKind.CMP: 0.1,
        OpKind.BIT_OP: 0.002,
        OpKind.FLOAT_MUL: 15.0,
        OpKind.FLOAT_ADD: 5.0,
        OpKind.TRIG: 30.0,
    },
    parallelism=4096.0,
)

PROFILES: dict[str, DeviceProfile] = {
    FPGA_KINTEX7.name: FPGA_KINTEX7,
    ARM_A53.name: ARM_A53,
    DESKTOP_X86.name: DESKTOP_X86,
    PIM_ACCELERATOR.name: PIM_ACCELERATOR,
}


def get_profile(name: str) -> DeviceProfile:
    """Look up a built-in device profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise HardwareModelError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
