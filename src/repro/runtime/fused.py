"""Fused encode→pack pipeline for binary-query inference (PackedV2).

When every heavy serving stage runs on packed sign words (quantised
cluster search *and* fully-binary model dots), the full ``(tile, D)``
float hypervector batch is dead weight: only its sign bits and two row
reductions (the Euclidean norm and the mean magnitude feeding the
binarisation scale) survive into the kernels.  This module computes
exactly those outputs from raw feature rows, one column block at a time,
so the intermediate float encoding never exists beyond a
``(tile, block)`` slab.

Two things make the fused path faster than encode-then-pack:

* **single-trig encode** — Eq. (1) is ``cos(p + φ) · sin(p)`` with
  ``p = (X @ B) · scale``.  The product-to-sum identity

      ``cos(p + φ) · sin(p) = ½ · (sin(2p + φ) − sin(φ))``

  needs *one* transcendental evaluation per element instead of two
  (``sin(φ)`` is precomputed per plan).  Trig dominates serving time at
  paper-scale D, so this roughly halves the encode stage.  The identity
  is exact in real arithmetic; in floats the two forms agree to a few
  ulps, which leaves the sign bits — all the packed kernels consume —
  identical in practice and the scale reductions equal to rounding.
* **blocked reductions** — the squared-sum / absolute-sum accumulators
  and the sign-bit packing consume each block while it is cache-hot,
  instead of re-streaming a multi-megabyte tile once per derivation.

The block width is derived from ``D`` (a multiple of 64 so each block
lands on packed-word boundaries), overridable through
:func:`set_fused_block_cols` or the ``REPRO_FUSED_BLOCK_COLS``
environment variable, and exported as the ``reghd_fused_block_cols``
telemetry gauge.
"""

from __future__ import annotations

import os
from typing import NamedTuple

import numpy as np

from repro.telemetry import metrics as _metrics
from repro.types import FloatArray

__all__ = [
    "EncoderOperands",
    "FUSED_BLOCK_ENV_VAR",
    "FusedScratch",
    "encode_pack_tile",
    "fused_block_cols",
    "set_fused_block_cols",
]

#: environment override for the fused-encode column block width.
FUSED_BLOCK_ENV_VAR = "REPRO_FUSED_BLOCK_COLS"

#: default block width: wide enough that the BLAS projection per block
#: amortises, narrow enough that the three (tile, block) slabs stay near
#: cache while the reductions and the bit packer consume them.
_DEFAULT_BLOCK_COLS = 1024

_fused_block_cols: int | None = None


def set_fused_block_cols(cols: int | None) -> None:
    """Pin the fused-encode block width; ``None`` restores the default /
    environment-variable resolution.  Values round up to a multiple of 64
    so blocks always align with packed uint64 word boundaries."""
    if cols is not None and int(cols) < 1:
        raise ValueError(f"block width must be >= 1, got {cols}")
    global _fused_block_cols
    _fused_block_cols = None if cols is None else -(-int(cols) // 64) * 64


def fused_block_cols(dim: int) -> int:
    """Column block width for a fused encode over ``dim`` dimensions.

    A multiple of 64 (so per-block ``packbits`` output lands on uint64
    word boundaries), never wider than the padded ``dim``.
    """
    padded = -(-int(dim) // 64) * 64
    cols = _fused_block_cols
    if cols is None:
        env = os.environ.get(FUSED_BLOCK_ENV_VAR)
        if env:
            try:
                cols = -(-int(env) // 64) * 64
            except ValueError:
                cols = None
            if cols is not None and cols < 64:
                cols = None
        if cols is None:
            cols = _DEFAULT_BLOCK_COLS
    return max(64, min(cols, padded))


class EncoderOperands(NamedTuple):
    """Projection operands of one nonlinear encoder, plan- or call-scoped.

    ``sin_phases`` (``sin(φ)``, precomputed once) is only consumed by the
    fused single-trig pipeline; plans that encode unfused carry ``None``.
    """

    bases: FloatArray
    phases: FloatArray
    scale: float
    sin_phases: FloatArray | None = None


class FusedScratch:
    """Preallocated buffers for one worker's fused encode→pack tiles."""

    def __init__(self, tile_rows: int, dim: int):
        self.tile_rows = int(tile_rows)
        self.dim = int(dim)
        self.block_cols = fused_block_cols(dim)
        self.n_words = -(-self.dim // 64)
        #: projection / encoding block, reused per column block
        self.proj = np.empty((tile_rows, self.block_cols), dtype=np.float64)
        #: reduction temporary (squares, magnitudes) per column block
        self.work = np.empty((tile_rows, self.block_cols), dtype=np.float64)
        #: sign bits per column block, feeding the packer
        self.bits = np.empty((tile_rows, self.block_cols), dtype=np.bool_)
        #: packed output words for a full tile
        self.words = np.empty((tile_rows, self.n_words), dtype=np.uint64)
        #: per-row reduction accumulators
        self.sumsq = np.empty(tile_rows, dtype=np.float64)
        self.sumabs = np.empty(tile_rows, dtype=np.float64)
        registry = _metrics.active()
        if registry is not None:
            registry.gauge("reghd_fused_block_cols").set(self.block_cols)

    @property
    def nbytes(self) -> int:
        """Total scratch footprint in bytes."""
        return (
            self.proj.nbytes
            + self.work.nbytes
            + self.bits.nbytes
            + self.words.nbytes
            + self.sumsq.nbytes
            + self.sumabs.nbytes
        )


def encode_pack_tile(
    X: FloatArray,
    enc: EncoderOperands,
    scratch: FusedScratch,
    *,
    norm_eps: float = 1e-12,
) -> tuple[np.ndarray, FloatArray]:
    """Raw feature rows → packed sign words + binary-query scales.

    Returns ``(words, scales)`` where ``words`` is the ``(t, ceil(D/64))``
    uint64 sign packing of the Eq.-(1) encoding (bit 1 where the encoded
    value is ``>= 0``, padding bits zero — the :func:`pack_sign_words`
    convention) and ``scales`` is the per-row binarisation scale of the
    normalised queries, ``mean(|H|) / max(‖H‖, eps)``.  Both are views
    into ``scratch`` valid until its next use.

    The full float encoding is never materialised: each column block is
    encoded with the single-trig identity, reduced into the norm/scale
    accumulators and packed while cache-resident.
    """
    t, dim = X.shape[0], scratch.dim
    bc = scratch.block_cols
    words = scratch.words[:t]
    words_u8 = words.view(np.uint8)
    sumsq = scratch.sumsq[:t]
    sumabs = scratch.sumabs[:t]
    sumsq[:] = 0.0
    sumabs[:] = 0.0
    two_scale = 2.0 * enc.scale
    proj_flat = scratch.proj.reshape(-1)
    work_flat = scratch.work.reshape(-1)
    bits_flat = scratch.bits.reshape(-1)
    for d0 in range(0, dim, bc):
        d1 = min(d0 + bc, dim)
        w = d1 - d0
        # Contiguous (t, w) views carved from the flat buffers — np.dot
        # requires a C-contiguous output array.
        pb = proj_flat[: t * w].reshape(t, w)
        tb = work_flat[: t * w].reshape(t, w)
        # H = ½(sin(2p + φ) − sin φ) with p = (X @ B) · scale: one trig
        # call per element in place of the cos·sin product.
        np.dot(X, enc.bases[:, d0:d1], out=pb)
        np.multiply(pb, two_scale, out=pb)
        np.add(pb, enc.phases[d0:d1], out=pb)
        np.sin(pb, out=pb)
        np.subtract(pb, enc.sin_phases[d0:d1], out=pb)
        np.multiply(pb, 0.5, out=pb)
        # Row reductions while the block is hot: ‖H‖² and Σ|H|.
        np.multiply(pb, pb, out=tb)
        sumsq += tb.sum(axis=1)
        np.abs(pb, out=tb)
        sumabs += tb.sum(axis=1)
        # Sign bits → packed bytes; block starts are multiples of 64, so
        # per-block packbits output lands on whole-byte offsets.
        bits = np.greater_equal(pb, 0, out=bits_flat[: t * w].reshape(t, w))
        packed = np.packbits(bits, axis=1)
        words_u8[:, d0 // 8 : d0 // 8 + packed.shape[1]] = packed
    # Zero the padding bytes so padding bits cancel in XOR, exactly as
    # pack_sign_words guarantees.
    used_bytes = -(-dim // 8)
    if used_bytes < words_u8.shape[1]:
        words_u8[:, used_bytes:] = 0
    norms = np.sqrt(sumsq, out=sumsq)
    np.maximum(norms, norm_eps, out=norms)
    scales = np.divide(sumabs, float(dim), out=sumabs)
    np.divide(scales, norms, out=scales)
    return words, scales
