"""Second-generation packed backend: fused encode→pack serving kernels.

:class:`PackedV2Backend` supersedes :class:`PackedBackend` on the
quantised paths.  It inherits every Hamming/packed-dot kernel (which now
run cache-blocked for *all* packed backends — see
:func:`repro.runtime.packing._pairwise_popcount_xor`) and adds the fused
encode→pack entry point of :mod:`repro.runtime.fused`: when both the
cluster search and the model dots consume packed words
(``cluster_quant != NONE`` and ``predict_quant == BINARY_BOTH``), a
compiled plan encodes raw feature rows directly into uint64 sign words
plus binary-query scales, one cache-resident column block at a time,
using the single-trig product-to-sum identity — the full float
hypervector tile is never materialised.

Training under this backend is bit-identical to :class:`PackedBackend`
(the update and similarity kernels are shared); only compiled-plan
serving gains the fused pipeline.  Fused-plan predictions agree with the
dense reference to float rounding (the packed sign products themselves
stay exact integers).
"""

from __future__ import annotations

import numpy as np

from repro.registry import register_backend
from repro.runtime import fused
from repro.runtime.packed import PackedBackend
from repro.runtime.quantization import ClusterQuant, PredictQuant
from repro.types import FloatArray


@register_backend("packed_v2")
class PackedV2Backend(PackedBackend):
    """Packed backend with the fused encode→pack serving pipeline."""

    def fuses_encode(
        self, cluster_quant: ClusterQuant, predict_quant: PredictQuant
    ) -> bool:
        """Fused serving applies when *every* heavy stage runs packed —
        the float encoding then has no remaining consumer."""
        return self.packs_similarities(cluster_quant) and self.packs_dots(
            predict_quant
        )

    def encode_pack(
        self,
        X: FloatArray,
        enc: fused.EncoderOperands,
        scratch: fused.FusedScratch,
    ) -> tuple[np.ndarray, FloatArray]:
        """Fused raw-rows → (packed sign words, binary-query scales)."""
        return fused.encode_pack_tile(X, enc, scratch)
