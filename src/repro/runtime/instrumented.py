"""Telemetry-instrumented decorator around any :class:`KernelBackend`.

When telemetry is enabled, :func:`repro.runtime.resolve_backend` wraps
the resolved backend singleton in :class:`InstrumentedBackend`, which
counts every kernel invocation and the bytes its operands moved
(``reghd_kernel_calls_total`` / ``reghd_kernel_bytes_total``, labelled
by backend and kernel) before delegating unchanged.  The wrapper *is* a
``KernelBackend`` — capability probes, operand construction and all
arithmetic come from the wrapped instance, so results are bit-identical
to the bare backend.

Byte accounting is deliberately conservative: it sums the ``nbytes`` of
the arrays a kernel actually receives (query base matrix, operand
arrays, result) without forcing any of the query's lazy derivations —
observing a kernel must never change what it computes or caches.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.base import KernelBackend
from repro.telemetry import metrics as _metrics

__all__ = ["InstrumentedBackend", "operand_nbytes"]


def operand_nbytes(operand: object) -> int:
    """Resident bytes of a model-side operand (live or frozen).

    Frozen operands expose ``arrays``; live operands wrap a DualCopy
    whose integer shadow is the authoritative storage.  Unknown operand
    shapes count as zero rather than guessing.
    """
    arrays = getattr(operand, "arrays", None)
    if arrays is not None:
        return int(sum(a.nbytes for a in arrays))
    dual = getattr(operand, "dual", None)
    if dual is not None:
        return int(dual.integer.nbytes)
    integer = getattr(operand, "integer", None)  # a bare DualCopy
    if integer is not None:
        return int(integer.nbytes)
    if isinstance(operand, np.ndarray):
        return int(operand.nbytes)
    return 0


def _query_nbytes(query) -> int:
    """Resident bytes of a query's base matrix, without forcing lazy
    derivations.  Fused serving queries carry no float batch — their
    packed words are the base representation."""
    if query.S is not None:
        return int(query.S.nbytes)
    if query._words is not None:
        return int(query._words.nbytes)
    return 0


class InstrumentedBackend(KernelBackend):
    """Counting proxy for a kernel backend; math delegates untouched.

    The wrapper checks the live telemetry sink on every call, so a
    backend resolved while telemetry was on keeps working (it just stops
    counting) if telemetry is later disabled mid-run.
    """

    def __init__(self, inner: KernelBackend):
        if isinstance(inner, InstrumentedBackend):  # never double-wrap
            inner = inner.inner
        self.inner = inner

    @property
    def name(self) -> str:
        """Registry name of the wrapped backend."""
        return self.inner.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstrumentedBackend({self.inner!r})"

    def _record(self, kernel: str, nbytes: int) -> None:
        registry = _metrics.active()
        if registry is None:
            return
        backend = self.inner.name
        registry.counter(
            "reghd_kernel_calls_total", backend=backend, kernel=kernel
        ).inc()
        registry.counter(
            "reghd_kernel_bytes_total", backend=backend, kernel=kernel
        ).inc(float(nbytes))

    # -- capability probes / plumbing: delegated, not counted ---------------

    def packs_similarities(self, cluster_quant) -> bool:
        """Delegate the packed-similarity capability probe."""
        return self.inner.packs_similarities(cluster_quant)

    def packs_dots(self, predict_quant) -> bool:
        """Delegate the packed-dots capability probe."""
        return self.inner.packs_dots(predict_quant)

    def fuses_encode(self, cluster_quant, predict_quant) -> bool:
        """Delegate the fused encode→pack capability probe."""
        return self.inner.fuses_encode(cluster_quant, predict_quant)

    def make_training_cache(self, S, *, cluster_quant, predict_quant):
        """Delegate cache construction; emits a cache ``build`` event."""
        cache = self.inner.make_training_cache(
            S, cluster_quant=cluster_quant, predict_quant=predict_quant
        )
        registry = _metrics.active()
        if registry is not None and cache is not None:
            registry.counter(
                "reghd_cache_events_total", cache="query", event="build"
            ).inc()
        return cache

    # -- forward kernels -----------------------------------------------------

    def encode_pack(self, X, enc, scratch):
        """Count + delegate the fused encode→pack serving kernel."""
        words, scales = self.inner.encode_pack(X, enc, scratch)
        self._record(
            "encode_pack", X.nbytes + words.nbytes + scales.nbytes
        )
        return words, scales

    def cluster_similarities(self, query, clusters):
        """Count + delegate the Eq.-5 similarity kernel."""
        sims = self.inner.cluster_similarities(query, clusters)
        self._record(
            "cluster_similarities",
            _query_nbytes(query) + operand_nbytes(clusters) + sims.nbytes,
        )
        return sims

    def confidences(self, sims, softmax_temp):
        """Count + delegate the softmax-confidence kernel."""
        conf = self.inner.confidences(sims, softmax_temp)
        self._record("confidences", sims.nbytes + conf.nbytes)
        return conf

    def model_dots(self, query, models):
        """Count + delegate the Eq.-6 model dot-product kernel."""
        dots = self.inner.model_dots(query, models)
        self._record(
            "model_dots",
            _query_nbytes(query) + operand_nbytes(models) + dots.nbytes,
        )
        return dots

    def weighted_prediction(self, conf, dots):
        """Count + delegate the confidence-weighted accumulation."""
        y = self.inner.weighted_prediction(conf, dots)
        self._record(
            "weighted_prediction", conf.nbytes + dots.nbytes + y.nbytes
        )
        return y

    def linear_dots(self, S, weights):
        """Count + delegate the single-vector dot kernel."""
        out = self.inner.linear_dots(S, weights)
        self._record(
            "linear_dots",
            S.nbytes + np.asarray(weights).nbytes + np.asarray(out).nbytes,
        )
        return out

    # -- update kernels ------------------------------------------------------

    def lms_step(self, errors, S, lr):
        """Count + delegate the returned LMS update term."""
        step = self.inner.lms_step(errors, S, lr)
        self._record("lms_step", errors.nbytes + S.nbytes + step.nbytes)
        return step

    def lms_update(self, model, errors, S, lr):
        """Count + delegate the in-place LMS step."""
        self.inner.lms_update(model, errors, S, lr)
        self._record(
            "lms_update", model.nbytes + errors.nbytes + S.nbytes
        )

    def weighted_model_step(self, weights, S, lr):
        """Count + delegate the returned Eq.-7 update term."""
        step = self.inner.weighted_model_step(weights, S, lr)
        self._record(
            "weighted_model_step",
            weights.nbytes + S.nbytes + step.nbytes,
        )
        return step

    def weighted_model_update(self, models, weights, S, lr):
        """Count + delegate the batched Eq.-7 model update."""
        self.inner.weighted_model_update(models, weights, S, lr)
        self._record(
            "weighted_model_update",
            operand_nbytes(models) + weights.nbytes + S.nbytes,
        )

    def segment_delta(self, indices, rows, k):
        """Count + delegate the Eq.-8 segment accumulation."""
        delta = self.inner.segment_delta(indices, rows, k)
        self._record(
            "segment_delta", indices.nbytes + rows.nbytes + delta.nbytes
        )
        return delta

    def scatter_add(self, target, indices, rows):
        """Count + delegate the unbuffered scatter-add."""
        self.inner.scatter_add(target, indices, rows)
        self._record(
            "scatter_add", target.nbytes + indices.nbytes + rows.nbytes
        )
