"""Quantisation schemes for RegHD (paper Section 3).

Two independent axes are quantised:

* **clusters** (:class:`ClusterQuant`, Sec. 3.1) — how the similarity
  search between an encoded input and the cluster hypervectors is done;
* **prediction** (:class:`PredictQuant`, Sec. 3.2) — which operands of the
  model dot product are binarised.

The paper's framework (Fig. 5) keeps *dual copies*: the integer copy
receives all training updates (precision there "has an important impact on
RegHD convergence"), and the binary working copy is re-derived from it by a
single comparison per element after every pass over the training data.
:class:`DualCopy` implements that pattern once, shared by the cluster and
model paths.  It lives in the execution runtime because the runtime's
kernel backends dispatch on these representations and its caches key on
the change counters maintained here (``repro.core.quantization``
re-exports everything for compatibility).

A note on arithmetic conventions: the paper describes binary operands in
{0, 1} with AND/Hamming hardware.  We store binary views in the bipolar
{-1, +1} form for the *arithmetic*, because bipolar dot products are
affinely equivalent to {0,1} AND-popcounts (``a.b = 2*popcount(AND) -
...``) while keeping zero-mean algebra, and we additionally carry the
least-information scale factor the hardware would fold into its output
stage: a binarised operand is ``sign(v) * mean(|v|)`` so that predictions
stay in target units.  The hardware cost model charges these operations at
binary-op cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.ops.quantize import bipolarize
from repro.types import FloatArray


class ClusterQuant(enum.Enum):
    """Cluster similarity-search quantisation (paper Sec. 3.1 / Fig. 6)."""

    #: Full-precision cosine similarity against integer clusters.
    NONE = "none"
    #: The paper's framework: Hamming search on binary copies, integer
    #: updates, per-epoch re-binarisation.
    FRAMEWORK = "framework"
    #: Naive binarisation: the cluster is *stored* binary and re-binarised
    #: immediately after every single-sample update, destroying the
    #: accumulated magnitude information ("binary vectors do not have the
    #: capability for the model update").
    NAIVE = "naive"


class PredictQuant(enum.Enum):
    """Model dot-product quantisation (paper Sec. 3.2 / Fig. 7)."""

    #: Integer query, integer model — the full-precision reference.
    FULL = "full"
    #: Binary query, integer model — the paper's preferred trade-off
    #: (multiply-free dot product, ≈1.5 % quality loss).
    BINARY_QUERY = "binary_query"
    #: Integer query, binary model (≈5.2 % quality loss in the paper).
    BINARY_MODEL = "binary_model"
    #: Binary query, binary model — fastest, largest quality loss.
    BINARY_BOTH = "binary_both"

    @property
    def query_is_binary(self) -> bool:
        """Whether this scheme binarises the encoded query."""
        return self in (PredictQuant.BINARY_QUERY, PredictQuant.BINARY_BOTH)

    @property
    def model_is_binary(self) -> bool:
        """Whether this scheme binarises the model hypervectors."""
        return self in (PredictQuant.BINARY_MODEL, PredictQuant.BINARY_BOTH)


def binarize_preserving_scale(vectors: FloatArray) -> FloatArray:
    """Binarise row hypervectors to ``sign(v) * mean(|v|)``.

    The sign pattern is the single-comparison binary copy of the paper's
    framework; the per-row scalar is the output-stage scale a hardware
    implementation folds into its accumulator so regression outputs keep
    their magnitude.  All-zero rows stay all-zero.
    """
    arr = np.asarray(vectors, dtype=np.float64)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    scales = np.mean(np.abs(arr), axis=1, keepdims=True)
    signs = bipolarize(arr).astype(np.float64)
    out = signs * scales
    # Rows with zero scale (untrained models) binarise to zero so they
    # contribute nothing, exactly like their integer originals.
    out[scales[:, 0] == 0.0] = 0.0
    return out[0] if single else out


@dataclass
class DualCopy:
    """Integer working copy + binary derived copy of a hypervector set.

    Implements the Fig. 5 pattern: :meth:`update` touches only the integer
    copy; :meth:`rebinarize` re-derives the binary copy (one comparison per
    element); readers choose which view to consume.

    Change tracking: :attr:`version` increments on every mutation of the
    integer copy and on every re-binarisation, and :attr:`sign_versions`
    holds one counter per row that moves only when that row's ±1 pattern
    actually changed during :meth:`rebinarize`.  Caches of integer-derived
    values key on :attr:`version`; caches of packed/sign-derived values
    (the runtime's word caches, a compiled plan's operands) key on
    :attr:`sign_versions` so unchanged rows are never re-packed.
    """

    integer: FloatArray
    binary: FloatArray = field(init=False)
    #: per-row ``mean(|integer|)`` captured at the last :meth:`rebinarize`;
    #: ``binary == signs * scales[:, None]`` (zero-scale rows are all-zero).
    scales: FloatArray = field(init=False)
    #: bumped on every integer mutation or re-binarisation.
    version: int = field(init=False, default=0)
    #: per-row ``int64`` counters; bumped only when the row's sign pattern
    #: changed.
    sign_versions: npt.NDArray[np.int64] = field(init=False, repr=False)
    _signs: FloatArray | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        self.integer = np.asarray(self.integer, dtype=np.float64)
        if self.integer.ndim != 2:
            raise ValueError(
                f"DualCopy expects a (k, D) matrix, got {self.integer.shape}"
            )
        self.sign_versions = np.zeros(self.integer.shape[0], dtype=np.int64)
        self.rebinarize()

    @property
    def shape(self) -> tuple[int, int]:
        """The ``(k, D)`` shape shared by both copies."""
        return tuple(self.integer.shape)  # type: ignore[return-value]

    def update(self, index: int, delta: FloatArray) -> None:
        """Add ``delta`` into row ``index`` of the *integer* copy only."""
        self.integer[index] += delta
        self.version += 1

    def update_all(self, delta: FloatArray) -> None:
        """Add a ``(k, D)`` delta into the integer copy (batched updates)."""
        self.integer += delta
        self.version += 1

    def touch(self) -> None:
        """Record an out-of-band in-place write to :attr:`integer`.

        Fault injectors and repair passes write :attr:`integer` directly;
        calling this afterwards keeps :attr:`version`-keyed caches honest
        (they all follow up with :meth:`rebinarize`, which also bumps, so
        this is belt-and-braces for integer-only readers).
        """
        self.version += 1

    def replace(self, values: FloatArray) -> None:
        """Overwrite the integer copy wholesale and re-derive the binary copy.

        Assigning ``dual.integer = ...`` directly would swap the array
        without invalidating the derived binary copy or the sign cache,
        silently serving stale values to the similarity search.  Every
        wholesale overwrite (the NAIVE re-quantisation path, state
        restoration) must go through here.  The write is in-place, so
        external references to :attr:`integer` stay valid.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.integer.shape:
            raise ValueError(
                f"replace expects shape {self.integer.shape}, "
                f"got {values.shape}"
            )
        self.integer[:] = values
        self.rebinarize()

    def rebinarize(self) -> None:
        """Re-derive the binary copy from the integer copy.

        Rows whose sign pattern is unchanged keep their
        :attr:`sign_versions` entry, so packed-word caches skip them.
        """
        scales = np.mean(np.abs(self.integer), axis=1, keepdims=True)
        signs = bipolarize(self.integer).astype(np.float64)
        binary = signs * scales
        # Rows with zero scale (untrained models) binarise to zero so they
        # contribute nothing, exactly like their integer originals.
        binary[scales[:, 0] == 0.0] = 0.0
        if self._signs is None:
            changed = np.ones(signs.shape[0], dtype=bool)
        else:
            changed = np.any(signs != self._signs, axis=1)
        self.sign_versions[changed] += 1
        signs.flags.writeable = False
        self.binary = binary
        self.scales = scales[:, 0].copy()
        self._signs = signs
        self.version += 1

    @property
    def signs(self) -> FloatArray:
        """±1 sign pattern of the binary copy (ties map to +1).

        Derived once per :meth:`rebinarize` (it is needed there anyway to
        detect which rows changed) and served from cache between
        re-binarisations — matching the binary copy, which also only moves
        on :meth:`rebinarize`.  The returned array is read-only; callers
        must not mutate it.
        """
        assert self._signs is not None  # established in __post_init__
        return self._signs

    def view(self, binary: bool) -> FloatArray:
        """Return the requested copy (no defensive copy; callers read only)."""
        return self.binary if binary else self.integer
