"""The dense (reference) kernel backend."""

from __future__ import annotations

from repro.registry import register_backend
from repro.runtime.base import KernelBackend


@register_backend("dense")
class DenseBackend(KernelBackend):
    """Exact float arithmetic — the default and golden-fixture reference.

    Inherits every kernel from :class:`KernelBackend` unchanged: cosine /
    sign-matmul similarities, dense dot products, and the scatter
    primitives, all bit-identical to the pre-runtime inline hot loops.
    """
