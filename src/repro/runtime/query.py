"""Query-side operand bundle handed to kernel backends.

A :class:`Query` wraps one batch of encoded hypervectors ``S`` together
with the derived representations the kernels may need — the ±1 sign
pattern, the bit-packed uint64 words, the per-row binarisation scales and
the scale-preserving binarised matrix.  Derivations are lazy and cached,
so a dense backend that only reads ``S`` never pays for packing, while
the packed backend computes words exactly once per batch.

:class:`QueryCache` extends that reuse across a whole training run: the
trainer presents the same encoded matrix ``S`` every epoch, so its packed
words and scales are computed once up front and epoch batches are served
as row slices of the cached arrays.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.quantization import binarize_preserving_scale
from repro.ops.quantize import bipolarize
from repro.runtime.packing import pack_sign_words
from repro.types import FloatArray


class Query:
    """One batch of encoded queries plus lazily derived representations.

    Parameters
    ----------
    S:
        The ``(n, D)`` encoded (and, in training, row-normalised) batch.
        May be ``None`` for fully-packed serving queries built by the
        fused encode→pack pipeline — those carry ``words``/``scales``
        directly and no kernel on that path reads the float batch.
    signs, words, scales, binarized:
        Optional precomputed derivations.  The serving executor passes
        these in (it derives them into scratch buffers with its own
        normalisation pipeline); training queries derive them on demand.
    """

    __slots__ = ("S", "_signs", "_words", "_scales", "_binarized")

    def __init__(
        self,
        S: FloatArray | None,
        *,
        signs: FloatArray | None = None,
        words: np.ndarray | None = None,
        scales: FloatArray | None = None,
        binarized: FloatArray | None = None,
    ):
        self.S = S
        self._signs = signs
        self._words = words
        self._scales = scales
        self._binarized = binarized

    def _require_S(self, derived: str) -> FloatArray:
        if self.S is None:
            raise ValueError(
                f"Query built without a float batch cannot derive {derived}"
            )
        return self.S

    @property
    def signs(self) -> FloatArray:
        """±1 sign pattern of ``S`` (zeros map to +1)."""
        if self._signs is None:
            self._signs = bipolarize(self._require_S("signs")).astype(
                np.float64
            )
        return self._signs

    @property
    def words(self) -> np.ndarray:
        """Bit-packed uint64 sign words of ``S``."""
        if self._words is None:
            self._words = pack_sign_words(self._require_S("words"))
        return self._words

    @property
    def scales(self) -> FloatArray:
        """Per-row binarisation scale ``mean(|S_i|)``."""
        if self._scales is None:
            self._scales = np.mean(np.abs(self._require_S("scales")), axis=1)
        return self._scales

    @property
    def binarized(self) -> FloatArray:
        """Scale-preserving binarised queries, ``sign(S) * mean(|S|)``."""
        if self._binarized is None:
            self._binarized = binarize_preserving_scale(
                self._require_S("binarized")
            )
        return self._binarized


class QueryCache:
    """Epoch-spanning cache of packed query operands for one training set.

    Built by :meth:`KernelBackend.make_training_cache` when a packed
    kernel will run during training.  The full training matrix is packed
    once; every epoch batch is then served as a slice, so the per-epoch
    packing cost drops to zero after the first epoch.
    """

    def __init__(self, S: FloatArray):
        self.S = S
        self._words = pack_sign_words(S)
        self._scales = np.mean(np.abs(S), axis=1)

    def query(self) -> Query:
        """A :class:`Query` over the full cached training matrix."""
        return Query(self.S, words=self._words, scales=self._scales)

    def slice(self, idx: np.ndarray, S_batch: FloatArray) -> Query:
        """A :class:`Query` for the batch ``S[idx]`` with cached operands.

        ``S_batch`` is the already-materialised row slice (the hot loop
        needs it for the updates anyway), so the cache only contributes
        the packed words and scales.
        """
        return Query(self.S[idx] if S_batch is None else S_batch,
                     words=self._words[idx], scales=self._scales[idx])
