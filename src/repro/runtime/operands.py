"""Model-side operands: live training views and frozen serving snapshots.

Backends are stateless; the *operands* carry the cluster / model
hypervectors in whatever representation the selected kernels consume.
Two flavours exist:

* **live operands** (:class:`ClusterOperand`, :class:`ModelOperand`) wrap
  an estimator's :class:`~repro.core.quantization.DualCopy` directly.
  Integer-derived values (matrices, norms) are views or per-call
  recomputations — bit-identical to reading the shadow copies inline,
  and immune to out-of-band writes by fault injectors.  Sign-derived
  values (packed words) are cached per row and keyed on
  ``DualCopy.sign_versions`` via :class:`PackedWordsCache`, because the
  sign pattern only moves at re-binarisation.
* **frozen operands** (:class:`FrozenClusterOperand`,
  :class:`FrozenModelOperand`) are the read-only snapshots a
  :class:`~repro.engine.CompiledPlan` serves from.
  :func:`refresh_cluster_operand` / :func:`refresh_model_operand` update
  a snapshot in place from its source ``DualCopy``, re-packing **only**
  the rows whose sign version moved — the incremental refresh that lets
  streaming serve from one long-lived plan instead of recompiling after
  every online batch.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.quantization import ClusterQuant, DualCopy, PredictQuant
from repro.runtime.kernels import NORM_EPS
from repro.runtime.packing import pack_sign_words
from repro.telemetry import metrics as _metrics
from repro.types import FloatArray


class PackedWordsCache:
    """Per-row incrementally maintained packed sign words of a DualCopy.

    ``words()`` compares the source's ``sign_versions`` against the last
    snapshot and re-packs only the changed rows.  Counters record the
    split for the refresh micro-benchmarks.
    """

    def __init__(self, dual: DualCopy):
        self.dual = dual
        self._words: np.ndarray | None = None
        self._seen: np.ndarray | None = None
        self.rows_repacked = 0
        self.rows_reused = 0

    def words(self) -> np.ndarray:
        versions = self.dual.sign_versions
        if self._words is None:
            self._words = pack_sign_words(self.dual.signs)
            self._seen = versions.copy()
            self._count(len(versions), 0)
            return self._words
        changed = versions != self._seen
        n_changed = int(np.count_nonzero(changed))
        if n_changed:
            self._words[changed] = pack_sign_words(self.dual.signs[changed])
            self._seen[changed] = versions[changed]
        self._count(n_changed, len(versions) - n_changed)
        return self._words

    def _count(self, repacked: int, reused: int) -> None:
        self.rows_repacked += repacked
        self.rows_reused += reused
        registry = _metrics.active()
        if registry is not None:
            if repacked:
                registry.counter(
                    "reghd_packed_words_rows_total", event="repacked"
                ).inc(repacked)
            if reused:
                registry.counter(
                    "reghd_packed_words_rows_total", event="reused"
                ).inc(reused)


def cluster_norms(dual: DualCopy) -> FloatArray:
    """Row norms of the integer clusters, floored at :data:`NORM_EPS`."""
    return np.maximum(np.linalg.norm(dual.integer, axis=1), NORM_EPS)


class ClusterOperand:
    """Live view of the cluster hypervectors for the training hot loop."""

    def __init__(self, dual: DualCopy, quant: ClusterQuant):
        self.dual = dual
        self.quant = quant
        self._words_cache: PackedWordsCache | None = None

    @property
    def dim(self) -> int:
        return self.dual.shape[1]

    @property
    def matT(self) -> FloatArray:
        """Integer clusters, transposed (live view)."""
        return self.dual.integer.T

    @property
    def norms(self) -> FloatArray:
        """Recomputed per call: training updates move the norms every batch."""
        return cluster_norms(self.dual)

    @property
    def signsT(self) -> FloatArray:
        return self.dual.signs.T

    @property
    def words(self) -> np.ndarray:
        if self._words_cache is None:
            self._words_cache = PackedWordsCache(self.dual)
        return self._words_cache.words()


class ModelOperand:
    """Live view of the model hypervectors for the training hot loop."""

    def __init__(self, dual: DualCopy, quant: PredictQuant):
        self.dual = dual
        self.quant = quant
        self._words_cache: PackedWordsCache | None = None

    @property
    def dim(self) -> int:
        return self.dual.shape[1]

    @property
    def matT(self) -> FloatArray:
        """The effective model matrix (Sec. 3.2 operand choice), transposed."""
        base = self.dual.binary if self.quant.model_is_binary else self.dual.integer
        return base.T

    @property
    def scales(self) -> FloatArray:
        return self.dual.scales

    @property
    def words(self) -> np.ndarray:
        if self._words_cache is None:
            self._words_cache = PackedWordsCache(self.dual)
        return self._words_cache.words()


# -- frozen snapshots + incremental refresh --------------------------------


def _frozen_copy(values: np.ndarray) -> np.ndarray:
    """Contiguous read-only copy decoupled from the live model."""
    out = np.ascontiguousarray(values).copy()
    out.flags.writeable = False
    return out


def _overwrite(dst: np.ndarray, values: np.ndarray) -> None:
    """Write into a read-only snapshot array, restoring the lock after."""
    dst.flags.writeable = True
    try:
        dst[...] = values
    finally:
        dst.flags.writeable = False


def _overwrite_rows(dst: np.ndarray, mask: np.ndarray, values: np.ndarray) -> None:
    dst.flags.writeable = True
    try:
        dst[mask] = values
    finally:
        dst.flags.writeable = False


def _overwrite_cols(dst: np.ndarray, mask: np.ndarray, values: np.ndarray) -> None:
    dst.flags.writeable = True
    try:
        dst[:, mask] = values
    finally:
        dst.flags.writeable = False


class FrozenClusterOperand:
    """Read-only cluster operands snapshotted into a compiled plan."""

    __slots__ = ("quant", "dim", "matT", "norms", "signsT", "words")

    def __init__(
        self,
        quant: ClusterQuant,
        dim: int,
        *,
        matT: np.ndarray | None = None,
        norms: np.ndarray | None = None,
        signsT: np.ndarray | None = None,
        words: np.ndarray | None = None,
    ):
        self.quant = quant
        self.dim = dim
        self.matT = matT
        self.norms = norms
        self.signsT = signsT
        self.words = words

    @property
    def arrays(self) -> tuple[np.ndarray, ...]:
        return tuple(
            a for a in (self.matT, self.norms, self.signsT, self.words)
            if a is not None
        )


class FrozenModelOperand:
    """Read-only model operands snapshotted into a compiled plan."""

    __slots__ = ("quant", "dim", "matT", "words", "scales")

    def __init__(
        self,
        quant: PredictQuant,
        dim: int,
        *,
        matT: np.ndarray | None = None,
        words: np.ndarray | None = None,
        scales: np.ndarray | None = None,
    ):
        self.quant = quant
        self.dim = dim
        self.matT = matT
        self.words = words
        self.scales = scales

    @property
    def arrays(self) -> tuple[np.ndarray, ...]:
        return tuple(
            a for a in (self.matT, self.words, self.scales) if a is not None
        )


def freeze_cluster_operand(
    dual: DualCopy, quant: ClusterQuant, *, packed: bool
) -> tuple[FrozenClusterOperand, dict]:
    """Snapshot cluster operands and return them with a refresh tracker."""
    dim = dual.shape[1]
    if quant is ClusterQuant.NONE:
        op = FrozenClusterOperand(
            quant,
            dim,
            matT=_frozen_copy(dual.integer.T),
            norms=_frozen_copy(cluster_norms(dual)),
        )
    elif packed:
        op = FrozenClusterOperand(
            quant, dim, words=_frozen_copy(pack_sign_words(dual.signs))
        )
    else:
        op = FrozenClusterOperand(
            quant, dim, signsT=_frozen_copy(dual.signs.T)
        )
    tracker = {
        "version": dual.version,
        "sign_versions": dual.sign_versions.copy(),
    }
    return op, tracker


def freeze_model_operand(
    dual: DualCopy, quant: PredictQuant, *, packed: bool
) -> tuple[FrozenModelOperand, dict]:
    """Snapshot model operands and return them with a refresh tracker."""
    dim = dual.shape[1]
    if packed:
        op = FrozenModelOperand(
            quant,
            dim,
            words=_frozen_copy(pack_sign_words(dual.signs)),
            scales=_frozen_copy(dual.scales),
        )
    else:
        base = dual.binary if quant.model_is_binary else dual.integer
        op = FrozenModelOperand(quant, dim, matT=_frozen_copy(base.T))
    tracker = {
        "version": dual.version,
        "sign_versions": dual.sign_versions.copy(),
    }
    return op, tracker


def refresh_cluster_operand(
    op: FrozenClusterOperand,
    dual: DualCopy,
    tracker: dict,
    rows: np.ndarray | None = None,
) -> tuple[int, int]:
    """Bring a snapshot up to date; returns ``(rows_refreshed, rows_reused)``.

    Integer-derived operands (the full-precision path) key on the scalar
    ``DualCopy.version``; sign-derived operands diff per-row
    ``sign_versions`` so unchanged rows are neither re-packed nor copied.

    ``rows`` is an optional boolean mask of rows known to have moved
    (e.g. :meth:`repro.core.delta.ModelDelta.touched_rows` after an
    ``apply_delta``): the full-precision path then re-copies only those
    rows instead of the whole matrix.  The caller asserts the mask is
    complete — rows outside it are served stale if they did change.
    """
    k = dual.shape[0]
    if op.quant is ClusterQuant.NONE:
        if tracker["version"] == dual.version:
            return 0, k
        if rows is not None:
            n_rows = int(np.count_nonzero(rows))
            if n_rows:
                _overwrite_cols(op.matT, rows, dual.integer[rows].T)
                _overwrite_rows(
                    op.norms,
                    rows,
                    np.maximum(
                        np.linalg.norm(dual.integer[rows], axis=1), NORM_EPS
                    ),
                )
            tracker["version"] = dual.version
            return n_rows, k - n_rows
        _overwrite(op.matT, dual.integer.T)
        _overwrite(op.norms, cluster_norms(dual))
        tracker["version"] = dual.version
        return k, 0
    changed = dual.sign_versions != tracker["sign_versions"]
    n_changed = int(np.count_nonzero(changed))
    if n_changed:
        if op.words is not None:
            _overwrite_rows(op.words, changed, pack_sign_words(dual.signs[changed]))
        else:
            _overwrite_cols(op.signsT, changed, dual.signs[changed].T)
        tracker["sign_versions"][changed] = dual.sign_versions[changed]
    return n_changed, k - n_changed


def refresh_model_operand(
    op: FrozenModelOperand,
    dual: DualCopy,
    tracker: dict,
    rows: np.ndarray | None = None,
) -> tuple[int, int]:
    """Bring a snapshot up to date; returns ``(rows_refreshed, rows_reused)``.

    For packed operands the per-row scales refresh on any version bump
    (they are cheap, ``(k,)`` floats, and move under pure magnitude decay)
    while the words re-pack only where the sign pattern changed — the
    common streaming case of forgetting-decay plus small updates re-packs
    nothing.

    ``rows`` narrows the full-precision path to a known-moved row mask,
    exactly as in :func:`refresh_cluster_operand`.
    """
    k = dual.shape[0]
    if op.words is not None:
        changed = dual.sign_versions != tracker["sign_versions"]
        n_changed = int(np.count_nonzero(changed))
        if n_changed:
            _overwrite_rows(op.words, changed, pack_sign_words(dual.signs[changed]))
            tracker["sign_versions"][changed] = dual.sign_versions[changed]
        if tracker["version"] != dual.version:
            _overwrite(op.scales, dual.scales)
            tracker["version"] = dual.version
        return n_changed, k - n_changed
    if tracker["version"] == dual.version:
        return 0, k
    base = dual.binary if op.quant.model_is_binary else dual.integer
    if rows is not None:
        n_rows = int(np.count_nonzero(rows))
        if n_rows:
            _overwrite_cols(op.matT, rows, base[rows].T)
        tracker["version"] = dual.version
        return n_rows, k - n_rows
    _overwrite(op.matT, base.T)
    tracker["version"] = dual.version
    return k, 0
