"""The bit-packed kernel backend: XOR + popcount where quantisation allows.

Where a computation is defined over ±1 sign patterns, this backend runs
it over bit-packed uint64 words: the quantised cluster search (paper
Sec. 3.1 — any :class:`ClusterQuant` other than ``NONE``) and the
fully-binary model dots (Sec. 3.2, ``PredictQuant.BINARY_BOTH``).  The
packed sign products are *bit-exact* against the dense sign matmul (the
products are small integers), so quantised-search training under this
backend reproduces the dense trajectory exactly; only the fully-binary
dots differ, by float rounding in the scale multiplication order.

Everything not expressible over sign bits (full-precision cosine
similarities, integer-operand dots, the update arithmetic that must hit
the integer shadow copies exactly) falls through to the inherited dense
kernels.
"""

from __future__ import annotations

from repro.runtime.quantization import ClusterQuant, PredictQuant
from repro.registry import register_backend
from repro.runtime import kernels
from repro.runtime.base import KernelBackend
from repro.runtime.query import QueryCache
from repro.types import FloatArray


@register_backend("packed")
class PackedBackend(KernelBackend):
    """Hamming-kernel backend over bit-packed uint64 sign words."""

    def packs_similarities(self, cluster_quant: ClusterQuant) -> bool:
        return cluster_quant is not ClusterQuant.NONE

    def packs_dots(self, predict_quant: PredictQuant) -> bool:
        return predict_quant is PredictQuant.BINARY_BOTH

    def make_training_cache(
        self,
        S: FloatArray,
        *,
        cluster_quant: ClusterQuant,
        predict_quant: PredictQuant,
    ) -> QueryCache | None:
        """Pack the training matrix once when any packed kernel will run."""
        if self.packs_similarities(cluster_quant) or self.packs_dots(
            predict_quant
        ):
            return QueryCache(S)
        return None

    def cluster_similarities(self, query, clusters) -> FloatArray:
        if self.packs_similarities(clusters.quant):
            return kernels.hamming_similarities(
                query.words, clusters.words, clusters.dim
            )
        return super().cluster_similarities(query, clusters)

    def model_dots(self, query, models) -> FloatArray:
        if self.packs_dots(models.quant):
            return kernels.packed_scaled_dots(
                query.words,
                models.words,
                query.scales,
                models.scales,
                models.dim,
            )
        return super().model_dots(query, models)
