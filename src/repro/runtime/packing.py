"""Bit-packed binary hypervectors: the hardware-friendly path, in software.

The Section-3 efficiency argument is that binary hypervectors turn
D-element integer arithmetic into D-*bit* logic.  This module realises
that in software: sign patterns are packed 8-per-byte into ``uint8`` words
(widened to ``uint64`` for the kernels) and Hamming distances are computed
with XOR + popcount — the same computation an FPGA's LUTs or a CPU's
``popcnt`` performs.  The micro-benchmark ``benchmarks/test_packed_binary.py``
measures the actual speedup over the float dot product on this machine.

This module is the single home of the bit-level packing primitives; the
:class:`~repro.runtime.PackedBackend` builds its Hamming kernels on top
of it, and both the training hot loops and the inference engine
(``repro.engine``) reach the packed representation exclusively through
the runtime.  ``repro.ops.packing`` re-exports the public names for
backwards compatibility.

All pairwise kernels run over *cache blocks* of both operands so that
the operand tiles and the XOR temporary stay L2-resident regardless of
batch size — a ``(n, m, words)`` XOR broadcast is never materialised in
full.  The block shape is derived from the operand word width against a
byte budget (:func:`popcount_block_bytes`), overridable through
:func:`set_popcount_block_kib` or the ``REPRO_POPCOUNT_BLOCK_KIB``
environment variable; the chosen shape is exported as the
``reghd_popcount_block_rows`` / ``reghd_popcount_block_cols`` telemetry
gauges.
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro.exceptions import DimensionalityError
from repro.telemetry import metrics as _metrics
from repro.types import ArrayLike, FloatArray

#: popcount of every byte value; fallback when numpy lacks bitwise_count.
_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

#: ``np.bitwise_count`` (numpy >= 2.0) is the only popcount path when
#: available; the byte-table lookup exists solely as a fallback.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: environment override for the pairwise-kernel block budget (KiB).
POPCOUNT_BLOCK_ENV_VAR = "REPRO_POPCOUNT_BLOCK_KIB"

#: default XOR-temporary budget: half a typical per-core L2 slice, so the
#: two operand tiles and the popcount scratch fit alongside it.
_DEFAULT_POPCOUNT_BLOCK_KIB = 512

_popcount_block_kib: int | None = None


def set_popcount_block_kib(kib: int | None) -> None:
    """Pin the pairwise-kernel block budget (KiB); ``None`` restores the
    default / environment-variable resolution."""
    if kib is not None and int(kib) < 1:
        raise ValueError(f"block budget must be >= 1 KiB, got {kib}")
    global _popcount_block_kib
    _popcount_block_kib = None if kib is None else int(kib)


def popcount_block_bytes() -> int:
    """Resolved XOR-temporary budget: explicit pin > env var > default."""
    if _popcount_block_kib is not None:
        return _popcount_block_kib << 10
    env = os.environ.get(POPCOUNT_BLOCK_ENV_VAR)
    if env:
        try:
            kib = int(env)
        except ValueError:
            kib = 0
        if kib >= 1:
            return kib << 10
    return _DEFAULT_POPCOUNT_BLOCK_KIB << 10


def _block_shape(n: int, m: int, words: int, itemsize: int) -> tuple[int, int]:
    """Cache-block shape ``(rows, cols)`` for an ``(n, m, words)`` XOR.

    Derived from the operand word width: the widest near-square block
    whose temporary fits the byte budget, so both operand tiles and the
    XOR scratch stay resident while each block is reduced.
    """
    budget = max(1, popcount_block_bytes() // max(1, words * itemsize))
    cols = min(m, max(1, int(math.sqrt(budget))))
    rows = min(n, max(1, budget // cols))
    return rows, cols


def _popcount_sum(words: np.ndarray) -> np.ndarray:
    """Sum of per-element popcounts over the last axis.

    ``words`` may be any unsigned integer dtype; the table fallback views
    the (C-contiguous) input as bytes, which leaves the sum unchanged.
    """
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return _POPCOUNT_TABLE[as_bytes].sum(axis=-1, dtype=np.int64)


def _check_binary(arr: np.ndarray) -> None:
    """Reject non-{0,1} content with a dtype-aware check.

    Boolean and integer inputs are validated by a pair of allocation-free
    min/max reductions (the hot path: quantiser outputs are uint8/bool);
    float inputs keep the exact elementwise check so fractional values
    cannot silently truncate to 0.
    """
    if arr.size == 0:
        return
    kind = arr.dtype.kind
    if kind == "b":
        return
    if kind in "ui":
        if arr.min() < 0 or arr.max() > 1:
            raise ValueError("pack_bits requires a binary {0,1} array")
        return
    if kind == "f":
        if not ((arr == 0) | (arr == 1)).all():
            raise ValueError("pack_bits requires a binary {0,1} array")
        return
    raise ValueError(
        f"pack_bits requires a boolean/integer/float {{0,1}} array, "
        f"got dtype {arr.dtype}"
    )


def pack_bits(binary: ArrayLike) -> tuple[np.ndarray, int]:
    """Pack {0,1} rows into uint8 words (8 bits per byte).

    Returns ``(packed, dim)`` where ``packed`` has shape
    ``(n, ceil(dim / 8))`` and ``dim`` is the original bit length (needed
    to undo the zero padding on unpack).
    """
    arr = np.asarray(binary)
    _check_binary(arr)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise DimensionalityError(
            f"pack_bits expects 1-D or 2-D input, got shape {arr.shape}"
        )
    dim = arr.shape[1]
    packed = np.packbits(arr.astype(np.uint8), axis=1)
    return (packed[0] if single else packed), dim


def unpack_bits(packed: ArrayLike, dim: int) -> np.ndarray:
    """Invert :func:`pack_bits`."""
    arr = np.asarray(packed, dtype=np.uint8)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    if dim <= 0 or dim > arr.shape[1] * 8:
        raise DimensionalityError(
            f"dim {dim} inconsistent with {arr.shape[1]} packed bytes"
        )
    bits = np.unpackbits(arr, axis=1)[:, :dim]
    return bits[0] if single else bits


def _as_words(packed: np.ndarray) -> np.ndarray:
    """Reinterpret packed uint8 rows as uint64 words (zero-padded)."""
    n, n_bytes = packed.shape
    pad = (-n_bytes) % 8
    if pad:
        packed = np.concatenate(
            [packed, np.zeros((n, pad), dtype=np.uint8)], axis=1
        )
    return np.ascontiguousarray(packed).view(np.uint64)


def pack_sign_words(values: ArrayLike, *, out_bits: np.ndarray | None = None) -> np.ndarray:
    """Pack the sign pattern of float rows into uint64 words.

    The bit convention matches :func:`repro.ops.quantize.bipolarize`: bit
    ``1`` where the value is ``>= 0`` (exact ties map to +1), bit ``0``
    where negative.  ``out_bits`` may supply a preallocated boolean
    ``(n, dim)`` scratch buffer so hot loops avoid the comparison
    temporary.

    Returns a ``(n, ceil(dim / 64))`` uint64 array whose padding bits are
    zero (they cancel in XOR between two packed operands).
    """
    arr = np.asarray(values)
    if arr.ndim != 2:
        raise DimensionalityError(
            f"pack_sign_words expects 2-D input, got shape {arr.shape}"
        )
    if out_bits is not None:
        bits = np.greater_equal(arr, 0, out=out_bits[: arr.shape[0]])
    else:
        bits = arr >= 0
    return _as_words(np.packbits(bits, axis=1))


def _pairwise_popcount_xor(
    a_words: np.ndarray, b_words: np.ndarray
) -> np.ndarray:
    """``out[i, j] = popcount(a_words[i] XOR b_words[j])``, cache-blocked.

    Both operands are cut into ``(rows, cols)`` blocks sized by
    :func:`_block_shape` so the XOR temporary and the per-element
    popcounts are reduced while still L2-resident; the scratch buffers
    are allocated once per call and reused across blocks.  On numpy with
    ``np.bitwise_count`` the popcount is a single vectorised ufunc into a
    uint8 scratch; the byte-table lookup runs only as a fallback.
    """
    n, words = a_words.shape
    m = b_words.shape[0]
    out = np.empty((n, m), dtype=np.int64)
    if n == 0 or m == 0:
        return out
    rows, cols = _block_shape(n, m, words, a_words.itemsize)
    registry = _metrics.active()
    if registry is not None:
        registry.gauge("reghd_popcount_block_rows").set(rows)
        registry.gauge("reghd_popcount_block_cols").set(cols)
    xor = np.empty((rows, cols, words), dtype=a_words.dtype)
    counts = np.empty((rows, cols, words), dtype=np.uint8)
    for i0 in range(0, n, rows):
        i1 = min(i0 + rows, n)
        a_blk = a_words[i0:i1, np.newaxis, :]
        for j0 in range(0, m, cols):
            j1 = min(j0 + cols, m)
            x = xor[: i1 - i0, : j1 - j0]
            np.bitwise_xor(a_blk, b_words[np.newaxis, j0:j1, :], out=x)
            if _HAS_BITWISE_COUNT:
                c = counts[: i1 - i0, : j1 - j0]
                np.bitwise_count(x, out=c)
                c.sum(axis=-1, dtype=np.int64, out=out[i0:i1, j0:j1])
            else:
                out[i0:i1, j0:j1] = _popcount_sum(x)
    return out


def packed_hamming_distance(a: ArrayLike, b: ArrayLike) -> FloatArray | float:
    """Hamming distance between packed rows: XOR + popcount.

    Accepts single packed vectors or batches; returns the same shapes as
    :func:`repro.ops.similarity.hamming_distance`.  Padding bits cancel in
    the XOR (both operands pad with zeros), so no ``dim`` is needed.
    """
    a_arr = np.asarray(a, dtype=np.uint8)
    b_arr = np.asarray(b, dtype=np.uint8)
    a_single = a_arr.ndim == 1
    b_single = b_arr.ndim == 1
    if a_single:
        a_arr = a_arr[np.newaxis, :]
    if b_single:
        b_arr = b_arr[np.newaxis, :]
    if a_arr.shape[1] != b_arr.shape[1]:
        raise DimensionalityError(
            f"packed widths differ: {a_arr.shape[1]} vs {b_arr.shape[1]}"
        )
    # Widen the packed bytes to uint64 words so XOR + popcount touch 8x
    # fewer elements, then reduce over bounded column tiles.
    out = _pairwise_popcount_xor(_as_words(a_arr), _as_words(b_arr)).astype(
        np.float64
    )
    if a_single and b_single:
        return float(out[0, 0])
    if a_single:
        return out[0]
    if b_single:
        return out[:, 0]
    return out


def packed_sign_products(
    a_words: np.ndarray, b_words: np.ndarray, dim: int
) -> FloatArray:
    """Pairwise bipolar dot products from packed sign words.

    For ±1 sign patterns packed with :func:`pack_sign_words`,
    ``signs_a @ signs_b.T == dim - 2 * hamming`` exactly, so the float
    matmul of two sign matrices collapses to XOR + popcount on packed
    words.  Returns a float64 ``(n, m)`` matrix of exact integers.
    """
    if dim <= 0:
        raise DimensionalityError(f"dim must be > 0, got {dim}")
    if a_words.shape[1] != b_words.shape[1]:
        raise DimensionalityError(
            f"packed widths differ: {a_words.shape[1]} vs {b_words.shape[1]}"
        )
    hamming = _pairwise_popcount_xor(a_words, b_words)
    return (dim - 2 * hamming).astype(np.float64)


def packed_hamming_similarity(
    a: ArrayLike, b: ArrayLike, dim: int
) -> FloatArray | float:
    """Normalised Hamming similarity on packed operands, in [-1, 1].

    ``dim`` is the original (unpacked) bit length used for normalisation.
    """
    if dim <= 0:
        raise DimensionalityError(f"dim must be > 0, got {dim}")
    return 1.0 - 2.0 * packed_hamming_distance(a, b) / float(dim)
