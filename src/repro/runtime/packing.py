"""Bit-packed binary hypervectors: the hardware-friendly path, in software.

The Section-3 efficiency argument is that binary hypervectors turn
D-element integer arithmetic into D-*bit* logic.  This module realises
that in software: sign patterns are packed 8-per-byte into ``uint8`` words
(widened to ``uint64`` for the kernels) and Hamming distances are computed
with XOR + popcount — the same computation an FPGA's LUTs or a CPU's
``popcnt`` performs.  The micro-benchmark ``benchmarks/test_packed_binary.py``
measures the actual speedup over the float dot product on this machine.

This module is the single home of the bit-level packing primitives; the
:class:`~repro.runtime.PackedBackend` builds its Hamming kernels on top
of it, and both the training hot loops and the inference engine
(``repro.engine``) reach the packed representation exclusively through
the runtime.  ``repro.ops.packing`` re-exports the public names for
backwards compatibility.

All pairwise kernels accumulate over *column tiles* of the second operand
so that peak temporary memory stays bounded (``_TILE_BUDGET_BYTES``)
regardless of batch size — a ``(n, m, words)`` XOR broadcast is never
materialised in full.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionalityError
from repro.types import ArrayLike, FloatArray

#: popcount of every byte value; fallback when numpy lacks bitwise_count.
_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Upper bound on the XOR temporary a pairwise kernel may materialise.
_TILE_BUDGET_BYTES = 1 << 24  # 16 MiB


def _popcount_sum(words: np.ndarray) -> np.ndarray:
    """Sum of per-element popcounts over the last axis.

    ``words`` may be any unsigned integer dtype; the table fallback views
    the (C-contiguous) input as bytes, which leaves the sum unchanged.
    """
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return _POPCOUNT_TABLE[as_bytes].sum(axis=-1, dtype=np.int64)


def _check_binary(arr: np.ndarray) -> None:
    """Reject non-{0,1} content with a dtype-aware check.

    Boolean and integer inputs are validated by a pair of allocation-free
    min/max reductions (the hot path: quantiser outputs are uint8/bool);
    float inputs keep the exact elementwise check so fractional values
    cannot silently truncate to 0.
    """
    if arr.size == 0:
        return
    kind = arr.dtype.kind
    if kind == "b":
        return
    if kind in "ui":
        if arr.min() < 0 or arr.max() > 1:
            raise ValueError("pack_bits requires a binary {0,1} array")
        return
    if kind == "f":
        if not ((arr == 0) | (arr == 1)).all():
            raise ValueError("pack_bits requires a binary {0,1} array")
        return
    raise ValueError(
        f"pack_bits requires a boolean/integer/float {{0,1}} array, "
        f"got dtype {arr.dtype}"
    )


def pack_bits(binary: ArrayLike) -> tuple[np.ndarray, int]:
    """Pack {0,1} rows into uint8 words (8 bits per byte).

    Returns ``(packed, dim)`` where ``packed`` has shape
    ``(n, ceil(dim / 8))`` and ``dim`` is the original bit length (needed
    to undo the zero padding on unpack).
    """
    arr = np.asarray(binary)
    _check_binary(arr)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise DimensionalityError(
            f"pack_bits expects 1-D or 2-D input, got shape {arr.shape}"
        )
    dim = arr.shape[1]
    packed = np.packbits(arr.astype(np.uint8), axis=1)
    return (packed[0] if single else packed), dim


def unpack_bits(packed: ArrayLike, dim: int) -> np.ndarray:
    """Invert :func:`pack_bits`."""
    arr = np.asarray(packed, dtype=np.uint8)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    if dim <= 0 or dim > arr.shape[1] * 8:
        raise DimensionalityError(
            f"dim {dim} inconsistent with {arr.shape[1]} packed bytes"
        )
    bits = np.unpackbits(arr, axis=1)[:, :dim]
    return bits[0] if single else bits


def _as_words(packed: np.ndarray) -> np.ndarray:
    """Reinterpret packed uint8 rows as uint64 words (zero-padded)."""
    n, n_bytes = packed.shape
    pad = (-n_bytes) % 8
    if pad:
        packed = np.concatenate(
            [packed, np.zeros((n, pad), dtype=np.uint8)], axis=1
        )
    return np.ascontiguousarray(packed).view(np.uint64)


def pack_sign_words(values: ArrayLike, *, out_bits: np.ndarray | None = None) -> np.ndarray:
    """Pack the sign pattern of float rows into uint64 words.

    The bit convention matches :func:`repro.ops.quantize.bipolarize`: bit
    ``1`` where the value is ``>= 0`` (exact ties map to +1), bit ``0``
    where negative.  ``out_bits`` may supply a preallocated boolean
    ``(n, dim)`` scratch buffer so hot loops avoid the comparison
    temporary.

    Returns a ``(n, ceil(dim / 64))`` uint64 array whose padding bits are
    zero (they cancel in XOR between two packed operands).
    """
    arr = np.asarray(values)
    if arr.ndim != 2:
        raise DimensionalityError(
            f"pack_sign_words expects 2-D input, got shape {arr.shape}"
        )
    if out_bits is not None:
        bits = np.greater_equal(arr, 0, out=out_bits[: arr.shape[0]])
    else:
        bits = arr >= 0
    return _as_words(np.packbits(bits, axis=1))


def _pairwise_popcount_xor(
    a_words: np.ndarray, b_words: np.ndarray
) -> np.ndarray:
    """``out[i, j] = popcount(a_words[i] XOR b_words[j])`` with bounded memory.

    Accumulates over column tiles of ``b_words`` so the XOR temporary
    never exceeds ``_TILE_BUDGET_BYTES`` (one full column slab when a
    single column already exceeds the budget).
    """
    n, words = a_words.shape
    m = b_words.shape[0]
    out = np.empty((n, m), dtype=np.int64)
    per_column = max(1, n * words * a_words.itemsize)
    tile = max(1, _TILE_BUDGET_BYTES // per_column)
    for start in range(0, m, tile):
        chunk = b_words[start : start + tile]
        xor = np.bitwise_xor(
            a_words[:, np.newaxis, :], chunk[np.newaxis, :, :]
        )
        out[:, start : start + tile] = _popcount_sum(xor)
    return out


def packed_hamming_distance(a: ArrayLike, b: ArrayLike) -> FloatArray | float:
    """Hamming distance between packed rows: XOR + popcount.

    Accepts single packed vectors or batches; returns the same shapes as
    :func:`repro.ops.similarity.hamming_distance`.  Padding bits cancel in
    the XOR (both operands pad with zeros), so no ``dim`` is needed.
    """
    a_arr = np.asarray(a, dtype=np.uint8)
    b_arr = np.asarray(b, dtype=np.uint8)
    a_single = a_arr.ndim == 1
    b_single = b_arr.ndim == 1
    if a_single:
        a_arr = a_arr[np.newaxis, :]
    if b_single:
        b_arr = b_arr[np.newaxis, :]
    if a_arr.shape[1] != b_arr.shape[1]:
        raise DimensionalityError(
            f"packed widths differ: {a_arr.shape[1]} vs {b_arr.shape[1]}"
        )
    # Widen the packed bytes to uint64 words so XOR + popcount touch 8x
    # fewer elements, then reduce over bounded column tiles.
    out = _pairwise_popcount_xor(_as_words(a_arr), _as_words(b_arr)).astype(
        np.float64
    )
    if a_single and b_single:
        return float(out[0, 0])
    if a_single:
        return out[0]
    if b_single:
        return out[:, 0]
    return out


def packed_sign_products(
    a_words: np.ndarray, b_words: np.ndarray, dim: int
) -> FloatArray:
    """Pairwise bipolar dot products from packed sign words.

    For ±1 sign patterns packed with :func:`pack_sign_words`,
    ``signs_a @ signs_b.T == dim - 2 * hamming`` exactly, so the float
    matmul of two sign matrices collapses to XOR + popcount on packed
    words.  Returns a float64 ``(n, m)`` matrix of exact integers.
    """
    if dim <= 0:
        raise DimensionalityError(f"dim must be > 0, got {dim}")
    if a_words.shape[1] != b_words.shape[1]:
        raise DimensionalityError(
            f"packed widths differ: {a_words.shape[1]} vs {b_words.shape[1]}"
        )
    hamming = _pairwise_popcount_xor(a_words, b_words)
    return (dim - 2 * hamming).astype(np.float64)


def packed_hamming_similarity(
    a: ArrayLike, b: ArrayLike, dim: int
) -> FloatArray | float:
    """Normalised Hamming similarity on packed operands, in [-1, 1].

    ``dim`` is the original (unpacked) bit length used for normalisation.
    """
    if dim <= 0:
        raise DimensionalityError(f"dim must be > 0, got {dim}")
    return 1.0 - 2.0 * packed_hamming_distance(a, b) / float(dim)
