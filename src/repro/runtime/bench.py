"""Training throughput harness: dense vs packed kernel backends.

Shared by ``benchmarks/test_train_throughput.py`` (which renders the
table and writes ``BENCH_training.json`` at the repo root).  For each
hypervector dimensionality it times the training hot loop of a quantised
``MultiModelRegHD`` (``cluster_quant=framework``,
``predict_quant=binary_both`` — the configuration where both the
similarity search and the model dot products binarise) on the same
pre-encoded data under both registered backends:

* ``dense`` — the reference float kernels (sign matmuls);
* ``packed`` — bit-packed uint64 XOR + popcount kernels, fed by the
  epoch-spanning :class:`~repro.runtime.QueryCache` the
  ``begin_training`` hook installs;
* ``packed_v2`` — the second-generation backend.  Training shares the
  v1 kernel implementations (the fused encode→pack pipeline is
  serve-only), so its column reports the cache-blocked popcount path
  and is expected to track ``packed`` closely.

Timing covers exactly what an epoch costs in production:
``fit_epoch`` + ``end_epoch`` (the per-epoch re-binarisation is part of
the Sec.-3 framework, not overhead).  Encoding is done once outside the
timed region — both backends consume identical pre-encoded batches, so
the ratio isolates kernel arithmetic.

A second micro-benchmark measures the incremental serving-plan refresh
used by the streaming stack: after compile, each small stream update
marks the plan stale and the next predict refreshes it in place.  The
emitted counters show how many operand rows were re-packed versus
reused — the acceptance evidence that per-update refresh no longer
re-packs unchanged rows.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.config import RegHDConfig
from repro.core.multi import MultiModelRegHD
from repro.core.quantization import ClusterQuant, PredictQuant
from repro.runtime.base import RUNTIME_VERSION
from repro.telemetry.timing import monotonic

#: Dimensionalities swept by the training benchmark (paper Sec. 4 scale).
TRAIN_DIMS = (4096, 10000)

#: Backends compared; ``dense`` is the baseline every ratio divides by.
BACKENDS = ("dense", "packed", "packed_v2")


def _quantised_model(
    dim: int, features: int, seed: int, backend: str, n_models: int = 8
) -> MultiModelRegHD:
    """A fresh quantised model pinned to ``backend`` via its config."""
    return MultiModelRegHD(
        features,
        RegHDConfig(
            dim=dim,
            n_models=n_models,
            seed=seed,
            backend=backend,
            cluster_quant=ClusterQuant.FRAMEWORK,
            predict_quant=PredictQuant.BINARY_BOTH,
        ),
    )


def _time_training(
    model: MultiModelRegHD,
    S: np.ndarray,
    y: np.ndarray,
    *,
    epochs: int,
    warmup: int = 1,
) -> dict:
    """Rows/sec over ``epochs`` timed passes of ``fit_epoch`` + ``end_epoch``.

    Runs under the trainer's ``begin_training``/``finish_training``
    protocol so the packed backend gets its epoch-spanning query cache,
    exactly as :class:`~repro.core.trainer.IterativeTrainer` provides it.
    """
    order = np.arange(len(S))
    model.scaler.fit(y)
    y_scaled = model.scaler.transform(y)
    model.begin_training(S)
    try:
        for _ in range(warmup):
            model.fit_epoch(S, y_scaled, order)
            model.end_epoch()
        latencies = np.empty(epochs)
        for i in range(epochs):
            start = monotonic()
            model.fit_epoch(S, y_scaled, order)
            model.end_epoch()
            latencies[i] = monotonic() - start
    finally:
        model.finish_training()
    return {
        "epochs": int(epochs),
        "rows_per_s": float(len(S) * epochs / latencies.sum()),
        "mean_epoch_ms": float(latencies.mean() * 1e3),
        "p50_epoch_ms": float(np.percentile(latencies, 50) * 1e3),
    }


def _refresh_microbench(
    *, dim: int, features: int, seed: int, updates: int
) -> dict:
    """Incremental plan refresh counters over a short stream session.

    Compiles one plan, then alternates tiny ``update``/``predict`` calls;
    every update marks the plan stale and the following predict refreshes
    it in place.  Reports the plan's cumulative refresh statistics — rows
    actually re-packed versus rows whose sign pattern (and therefore
    packed words) survived unchanged.
    """
    from repro.streaming import StreamingRegHD

    rng = np.random.default_rng(seed + 7)
    stream = StreamingRegHD(
        features,
        RegHDConfig(
            dim=dim,
            n_models=8,
            seed=seed,
            cluster_quant=ClusterQuant.FRAMEWORK,
            predict_quant=PredictQuant.BINARY_BOTH,
        ),
    )
    X0 = rng.normal(size=(64, features))
    stream.update(X0, np.sin(X0[:, 0]))
    stream.predict(rng.normal(size=(8, features)))  # compiles the plan
    for _ in range(updates):
        X = rng.normal(size=(16, features))
        stream.update(X, np.sin(X[:, 0]))
        stream.predict(rng.normal(size=(8, features)))  # refreshes in place
    stats = dict(stream._plan.refresh_stats)
    total = stats["rows_refreshed"] + stats["rows_reused"]
    return {
        "dim": int(dim),
        "updates": int(updates),
        **stats,
        "reuse_fraction": float(stats["rows_reused"] / total) if total else 1.0,
    }


def run_training_benchmark(
    *,
    dims: tuple[int, ...] = TRAIN_DIMS,
    rows: int = 2048,
    epochs: int = 5,
    features: int = 16,
    seed: int = 0,
    quick: bool = False,
) -> dict:
    """Measure quantised training throughput under every backend.

    ``quick=True`` shrinks the sweep (drops D = 10k, fewer rows/epochs)
    to a CI-friendly smoke run that still yields the packed-vs-dense
    ratio at D = 4096.
    """
    if quick:
        dims = tuple(d for d in dims if d <= 4096) or dims[:1]
        rows = min(rows, 512)
        epochs = min(epochs, 2)

    rng = np.random.default_rng(seed)
    X = rng.normal(size=(rows, features))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1]

    results: list[dict] = []
    speedups: dict[str, dict[str, float]] = {}
    for dim in dims:
        cells: dict[str, dict] = {}
        for backend in BACKENDS:
            model = _quantised_model(dim, features, seed, backend)
            # One shared encoding pass: timing isolates kernel arithmetic.
            S = model._encode_normalized(X)
            cells[backend] = _time_training(model, S, y, epochs=epochs)
        for backend, stats in cells.items():
            results.append({"dim": int(dim), "backend": backend, **stats})
        speedups[str(dim)] = {
            "packed_vs_dense": cells["packed"]["rows_per_s"]
            / cells["dense"]["rows_per_s"],
            "packed_v2_vs_dense": cells["packed_v2"]["rows_per_s"]
            / cells["dense"]["rows_per_s"],
        }

    refresh = _refresh_microbench(
        dim=min(dims), features=features, seed=seed, updates=4 if quick else 16
    )

    return {
        "schema": 1,
        "benchmark": "reghd-training-throughput",
        "quant": {"cluster": "framework", "predict": "binary_both"},
        "quick": bool(quick),
        "params": {
            "dims": [int(d) for d in dims],
            "rows": int(rows),
            "epochs": int(epochs),
            "features": int(features),
            "n_models": 8,
            "seed": int(seed),
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
        },
        "runtime": {
            "backends": list(BACKENDS),
            "version": RUNTIME_VERSION,
        },
        "results": results,
        "speedups": speedups,
        "plan_refresh": refresh,
    }
