"""Backend-dispatched execution runtime: one kernel layer for the library.

RegHD's Sec.-3 efficiency argument — binarisation turns cosine similarity
into Hamming distance — is only worth anything if *every* consumer of the
similarity/dot kernels can route through the cheap representation.  This
package is that single routing point:

* :mod:`repro.runtime.kernels` — the stateless arithmetic (similarities,
  softmax confidences, dots, segment/scatter accumulation), defined once;
* :class:`KernelBackend` / :class:`DenseBackend` / :class:`PackedBackend`
  — the dispatch layer choosing dense float or packed XOR+popcount
  execution per kernel, resolved via :func:`resolve_backend` from an
  explicit name, ``RegHDConfig.backend``, or ``REPRO_BACKEND``;
* :class:`Query` / :class:`QueryCache` — query-side operands with lazy,
  reusable derived representations (signs, packed words, scales);
* :mod:`repro.runtime.operands` — model-side operands: live training
  views over the dual copies, and frozen snapshots with per-row
  incremental refresh for compiled serving plans;
* :mod:`repro.runtime.packing` — the bit-packing primitives themselves.

The training hot loops (:mod:`repro.core`), the compiled inference engine
(:mod:`repro.engine`) and the streaming/reliability serving paths all
execute through these objects; the repo-consistency guards fail the build
if kernel math reappears anywhere else.
"""

from repro.runtime import kernels
from repro.runtime.quantization import (
    ClusterQuant,
    DualCopy,
    PredictQuant,
    binarize_preserving_scale,
)
from repro.runtime.packing import (
    pack_bits,
    pack_sign_words,
    packed_hamming_distance,
    packed_hamming_similarity,
    packed_sign_products,
    popcount_block_bytes,
    set_popcount_block_kib,
    unpack_bits,
)
from repro.runtime.fused import (
    EncoderOperands,
    FusedScratch,
    encode_pack_tile,
    fused_block_cols,
    set_fused_block_cols,
)
from repro.runtime.query import Query, QueryCache
from repro.runtime.operands import (
    ClusterOperand,
    FrozenClusterOperand,
    FrozenModelOperand,
    ModelOperand,
    PackedWordsCache,
    freeze_cluster_operand,
    freeze_model_operand,
    refresh_cluster_operand,
    refresh_model_operand,
)
from repro.runtime.base import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    RUNTIME_VERSION,
    KernelBackend,
    resolve_backend,
)
from repro.runtime.dense import DenseBackend
from repro.runtime.packed import PackedBackend
from repro.runtime.packed_v2 import PackedV2Backend

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "RUNTIME_VERSION",
    "KernelBackend",
    "DenseBackend",
    "PackedBackend",
    "PackedV2Backend",
    "resolve_backend",
    "EncoderOperands",
    "FusedScratch",
    "encode_pack_tile",
    "fused_block_cols",
    "set_fused_block_cols",
    "popcount_block_bytes",
    "set_popcount_block_kib",
    "ClusterQuant",
    "PredictQuant",
    "DualCopy",
    "binarize_preserving_scale",
    "Query",
    "QueryCache",
    "ClusterOperand",
    "ModelOperand",
    "PackedWordsCache",
    "FrozenClusterOperand",
    "FrozenModelOperand",
    "freeze_cluster_operand",
    "freeze_model_operand",
    "refresh_cluster_operand",
    "refresh_model_operand",
    "kernels",
    "pack_bits",
    "pack_sign_words",
    "packed_hamming_distance",
    "packed_hamming_similarity",
    "packed_sign_products",
    "unpack_bits",
]
