"""The kernel-backend protocol and backend resolution.

A :class:`KernelBackend` is the single dispatch point for every piece of
RegHD arithmetic: cluster similarities, softmax confidences, model dot
products, and the scatter-style updates.  The base class *is* the dense
reference implementation — :class:`~repro.runtime.DenseBackend` inherits
it unchanged, and :class:`~repro.runtime.PackedBackend` overrides exactly
the kernels where a bit-packed representation applies.

Backends are stateless singletons resolved through the shared registry
(:data:`repro.registry.BACKEND_REGISTRY`) by :func:`resolve_backend`,
with the priority ``explicit argument > RegHDConfig.backend >
REPRO_BACKEND environment variable > default`` — so a config that pins a
backend is reproducible regardless of the environment, while the env var
flips the default fleet-wide (the CI packed leg runs the whole suite
under ``REPRO_BACKEND=packed``).
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import ConfigurationError
from repro.runtime.quantization import ClusterQuant, PredictQuant
from repro.registry import backend_class
from repro.runtime import kernels
from repro.telemetry import metrics as _metrics
from repro.runtime.operands import ClusterOperand, FrozenClusterOperand
from repro.runtime.query import Query, QueryCache
from repro.types import FloatArray

#: environment variable consulted when no backend is pinned explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: the reference backend: exact float arithmetic, bit-identical goldens.
DEFAULT_BACKEND = "dense"

#: bumped when kernel semantics change; recorded in benchmark artifacts.
#: 2.0: cache-blocked pairwise popcount kernels + the PackedV2 fused
#: encode→pack serving pipeline.
RUNTIME_VERSION = "2.0"


class KernelBackend:
    """Dispatchable kernel surface; the base implementation is the dense path.

    Subclasses override individual kernels to exploit a representation
    (and the ``packs_*`` capability probes so callers can build the right
    operands); everything they do not override falls back to the exact
    reference arithmetic below.
    """

    #: registry name; set by :func:`repro.registry.register_backend`.
    state_name = "abstract"
    _instance: "KernelBackend | None" = None

    @classmethod
    def instance(cls) -> "KernelBackend":
        """The shared stateless singleton of this backend class."""
        if cls._instance is None or type(cls._instance) is not cls:
            cls._instance = cls()
        return cls._instance

    @property
    def name(self) -> str:
        """The registry name this backend resolves under."""
        return self.state_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

    # -- capability probes -------------------------------------------------

    def packs_similarities(self, cluster_quant: ClusterQuant) -> bool:
        """Whether the cluster search runs on packed words for this quant."""
        return False

    def packs_dots(self, predict_quant: PredictQuant) -> bool:
        """Whether the model dots run on packed words for this quant."""
        return False

    def fuses_encode(
        self, cluster_quant: ClusterQuant, predict_quant: PredictQuant
    ) -> bool:
        """Whether compiled serving may fuse encode→pack for this quant
        pair (raw rows straight to packed words, no float tile).  Only
        backends that also implement ``encode_pack`` return True."""
        return False

    # -- query plumbing ----------------------------------------------------

    def make_training_cache(
        self,
        S: FloatArray,
        *,
        cluster_quant: ClusterQuant,
        predict_quant: PredictQuant,
    ) -> QueryCache | None:
        """Epoch-spanning query operand cache; None when nothing to reuse.

        The dense path recomputes per batch (bit-identical to the
        historical inline arithmetic), so it returns None.
        """
        return None

    # -- forward kernels (Eqs. 5-6, Fig. 4) --------------------------------

    def cluster_similarities(
        self, query: Query, clusters: ClusterOperand | FrozenClusterOperand
    ) -> FloatArray:
        """Similarity of each query to each cluster hypervector (Eq. 5)."""
        if clusters.quant is ClusterQuant.NONE:
            return kernels.cosine_similarities(
                query.S, clusters.matT, clusters.norms
            )
        return kernels.sign_similarities(
            query.signs, clusters.signsT, clusters.dim
        )

    def confidences(self, sims: FloatArray, softmax_temp: float) -> FloatArray:
        """Softmax confidences over cluster similarities (Fig. 4)."""
        return kernels.confidences(sims, softmax_temp)

    def model_dots(self, query, models) -> FloatArray:
        """Per-model dot products with the Sec.-3.2 operand choice (Eq. 6)."""
        if models.quant.query_is_binary:
            return kernels.dense_dots(query.binarized, models.matT)
        return kernels.dense_dots(query.S, models.matT)

    def weighted_prediction(
        self, conf: FloatArray, dots: FloatArray
    ) -> FloatArray:
        """Confidence-weighted combination of per-model responses (Eq. 6)."""
        return np.sum(conf * dots, axis=1)

    def linear_dots(self, S: FloatArray, weights: FloatArray) -> FloatArray:
        """Dots against a single model vector or stacked class vectors."""
        return kernels.linear_dots(S, weights)

    # -- update kernels (Eqs. 7-8) -----------------------------------------

    def lms_step(
        self, errors: FloatArray, S: FloatArray, lr: float
    ) -> FloatArray:
        """The Eq.-4 LMS update term, returned rather than applied.

        ``lms_update`` adds exactly this array in place, so callers that
        route updates through the mergeable-delta sinks
        (:meth:`repro.core.estimator.BaseRegHDEstimator._push_update`)
        produce bit-identical models to the historical in-place path.
        """
        return lr * (errors @ S) / len(S)

    def lms_update(
        self, model: FloatArray, errors: FloatArray, S: FloatArray, lr: float
    ) -> None:
        """In-place LMS step on a single model vector (Eq. 4)."""
        model += self.lms_step(errors, S, lr)

    def weighted_model_step(
        self, weights: FloatArray, S: FloatArray, lr: float
    ) -> FloatArray:
        """The Eq.-7 batched update term, returned rather than applied.

        ``weighted_model_update`` lands exactly this array on the dual
        copy, so delta-sink callers stay bit-identical to the in-place
        path.
        """
        return lr * (weights.T @ S) / S.shape[0]

    def weighted_model_update(
        self, models, weights: FloatArray, S: FloatArray, lr: float
    ) -> None:
        """Confidence-weighted batched model update (Eq. 7) into a DualCopy."""
        models.update_all(self.weighted_model_step(weights, S, lr))

    def segment_delta(
        self, indices: np.ndarray, rows: FloatArray, k: int
    ) -> FloatArray:
        """Scatter rows into ``k`` accumulator rows (the Eq.-8 cluster pull)."""
        return kernels.segment_sum(indices, rows, k)

    def scatter_add(
        self, target: FloatArray, indices: np.ndarray, rows: FloatArray
    ) -> None:
        """Unbuffered in-place scatter-add (classification-style updates)."""
        kernels.scatter_add(target, indices, rows)


def resolve_backend(
    choice: "KernelBackend | str | None" = None,
    *,
    default: str = DEFAULT_BACKEND,
) -> KernelBackend:
    """Resolve a backend instance: explicit choice > env var > default.

    ``choice`` may be a backend instance (passed through), a registry
    name, or None — in which case the ``REPRO_BACKEND`` environment
    variable is consulted before falling back to ``default``.

    An unknown name raises :class:`~repro.exceptions.ConfigurationError`
    (a ``ValueError``) that lists the registered backend names and says
    where the bad name came from — an explicit argument / config pin or
    the environment variable.

    When telemetry is enabled (:mod:`repro.telemetry`) the resolved
    singleton is wrapped in an
    :class:`~repro.runtime.instrumented.InstrumentedBackend` counting
    kernel calls and bytes moved; with telemetry off the bare backend is
    returned and no per-call checks exist anywhere on the kernel path.
    """
    if isinstance(choice, KernelBackend):
        return choice
    source = "explicit backend choice"
    if choice is None:
        env = os.environ.get(BACKEND_ENV_VAR)
        if env:
            choice, source = env, f"{BACKEND_ENV_VAR} environment variable"
        else:
            choice, source = default, "default"
    try:
        cls = backend_class(str(choice))
    except ConfigurationError as exc:
        raise ConfigurationError(f"{exc} (from {source})") from None
    instance = cls.instance()
    if _metrics.enabled():
        from repro.runtime.instrumented import InstrumentedBackend

        return InstrumentedBackend(instance)
    return instance
