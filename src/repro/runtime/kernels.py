"""Stateless kernel math shared by every :class:`~repro.runtime.KernelBackend`.

This module is the single definition site for the arithmetic both the
training hot loops and the compiled inference engine execute: cosine /
sign / Hamming cluster similarities (paper Eq. 5 and its Sec.-3.1
quantisations), softmax confidences (Fig. 4), model dot products
(Eq. 6 / Sec. 3.2), and the scatter-style accumulation primitives behind
the model and cluster updates (Eqs. 7-8).  Backends select *which* of
these kernels to run for a given representation; none of them reimplement
the math.

The repo-consistency guard (``tests/test_repo_consistency.py``) enforces
that sign matmuls, XOR+popcount and softmax invocations appear nowhere
else under ``src/``.
"""

from __future__ import annotations

import numpy as np

from repro.ops.normalize import softmax
from repro.runtime.packing import packed_sign_products
from repro.types import FloatArray

#: floor applied to cluster norms so untrained (all-zero) clusters yield
#: zero similarity instead of dividing by zero.
NORM_EPS = 1e-12


# -- cluster similarities (Eq. 5 / Sec. 3.1) -------------------------------


def cosine_similarities(
    S: FloatArray, cluster_matT: FloatArray, cluster_norms: FloatArray
) -> FloatArray:
    """Full-precision cosine similarity of row-normalised queries.

    ``S`` rows are already unit-norm (the encoder normalises), so dividing
    the dot products by the cluster norms completes the cosine.
    """
    return (S @ cluster_matT) / cluster_norms


def sign_similarities(
    signs: FloatArray, cluster_signsT: FloatArray, dim: int
) -> FloatArray:
    """Hamming-equivalent similarity as a ±1 sign matmul.

    For bipolar operands, ``a . b = D - 2 * hamming(a, b)``; dividing by
    ``D`` lands in ``[-1, 1]`` like the cosine path.
    """
    return (signs @ cluster_signsT) / float(dim)


def hamming_similarities(
    query_words: np.ndarray, cluster_words: np.ndarray, dim: int
) -> FloatArray:
    """The sign matmul executed as XOR + popcount over packed uint64 words.

    Bit-exact against :func:`sign_similarities` on the same sign patterns
    (the products are integers; the single division is identical).
    """
    return packed_sign_products(query_words, cluster_words, dim) / float(dim)


# -- confidences (Fig. 4) --------------------------------------------------


def confidences(sims: FloatArray, softmax_temp: float) -> FloatArray:
    """Per-cluster confidence: temperature-scaled softmax of similarities."""
    return softmax(softmax_temp * sims)


# -- model dot products (Eq. 6 / Sec. 3.2) ---------------------------------


def dense_dots(queries: FloatArray, model_matT: FloatArray) -> FloatArray:
    """Dense query x model dot products; operands pre-binarised as needed."""
    return queries @ model_matT


def packed_scaled_dots(
    query_words: np.ndarray,
    model_words: np.ndarray,
    query_scales: FloatArray,
    model_scales: FloatArray,
    dim: int,
) -> FloatArray:
    """Fully-binary dot products as XOR + popcount with output-stage scales.

    ``(q_sign * q_scale) . (m_sign * m_scale)`` factors into the integer
    sign product times both per-row scales — the multiply the output
    stage of a binary accelerator folds in.
    """
    products = packed_sign_products(query_words, model_words, dim)
    return products * query_scales[:, np.newaxis] * model_scales[np.newaxis, :]


def linear_dots(S: FloatArray, weights: FloatArray) -> FloatArray:
    """Dot products against a weight vector or a stack of class vectors."""
    return S @ weights.T if weights.ndim == 2 else S @ weights


# -- scatter / accumulation primitives (Eqs. 7-8) --------------------------


def segment_sum(indices: np.ndarray, rows: FloatArray, k: int) -> FloatArray:
    """Sum ``rows`` into ``k`` buckets selected by ``indices``.

    Bit-identical to ``np.add.at`` on a zero target for ``D >= 2``:
    ``np.add.at`` applies updates in index order, i.e. a sequential left
    fold per bucket; a stable argsort groups each bucket's rows
    contiguously in that same relative order, and ``np.add.reduce`` over a
    C-contiguous 2-D slice performs the same sequential fold.  This avoids
    ``np.add.at``'s unbuffered per-element dispatch (5-7x faster at
    training batch shapes).  For a single column numpy's reduce switches
    to pairwise summation, so that degenerate case falls back to
    ``np.add.at``.
    """
    out = np.zeros((k, rows.shape[1]), dtype=np.float64)
    if rows.shape[1] < 2:
        np.add.at(out, indices, rows)
        return out
    order = np.argsort(indices, kind="stable")
    sorted_rows = np.ascontiguousarray(rows[order])
    sorted_idx = indices[order]
    buckets, starts = np.unique(sorted_idx, return_index=True)
    ends = np.append(starts[1:], len(sorted_idx))
    for bucket, lo, hi in zip(buckets, starts, ends):
        np.add.reduce(sorted_rows[lo:hi], axis=0, out=out[bucket])
    return out


def scatter_add(
    target: FloatArray, indices: np.ndarray, rows: FloatArray
) -> None:
    """Unbuffered in-place scatter-add into an existing (non-zero) target.

    ``np.add.at`` semantics are load-bearing here: accumulating into a
    *non-zero* target in index order cannot be reproduced bit-exactly by
    a segment sum followed by one add (float addition is not associative),
    so the classification-style updates keep the unbuffered scatter.
    """
    np.add.at(target, indices, rows)
