"""Datasets: synthetic generators and seeded UCI surrogates.

See DESIGN.md §3 for the surrogate substitution rationale.
"""

from repro.datasets.base import Dataset
from repro.datasets.preprocessing import MinMaxScaler, StandardScaler, TargetScaler
from repro.datasets.registry import (
    PAPER_DATASETS,
    available_datasets,
    dataset_params,
    dataset_tags,
    load_dataset,
    register_dataset,
    unregister_dataset,
)
from repro.datasets.splits import Split, k_fold_splits, train_test_split
from repro.datasets.synthetic import (
    friedman1,
    friedman2,
    friedman3,
    high_cardinality,
    linear,
    nonlinear_interaction,
    piecewise,
    regime_mixture,
    sinusoid,
)
from repro.datasets.timeseries import (
    multihorizon_forecasting_dataset,
    regime_switching_signal,
    sensor_signal,
    windowed_forecasting_dataset,
)
from repro.datasets.uci_like import SPECS, SurrogateSpec, build_surrogate

__all__ = [
    "Dataset",
    "MinMaxScaler",
    "StandardScaler",
    "TargetScaler",
    "PAPER_DATASETS",
    "available_datasets",
    "dataset_params",
    "dataset_tags",
    "load_dataset",
    "register_dataset",
    "unregister_dataset",
    "Split",
    "k_fold_splits",
    "train_test_split",
    "friedman1",
    "friedman2",
    "friedman3",
    "high_cardinality",
    "linear",
    "nonlinear_interaction",
    "piecewise",
    "regime_mixture",
    "sinusoid",
    "SPECS",
    "SurrogateSpec",
    "build_surrogate",
    "multihorizon_forecasting_dataset",
    "regime_switching_signal",
    "sensor_signal",
    "windowed_forecasting_dataset",
]
