"""Dataset container shared by generators, the registry and the harness."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DatasetError
from repro.types import FloatArray


@dataclass(frozen=True)
class Dataset:
    """An in-memory regression dataset.

    Attributes
    ----------
    name:
        Registry name (e.g. ``"airfoil"``).
    X:
        Feature matrix, shape ``(n_samples, n_features)``.
    y:
        Target vector, shape ``(n_samples,)``.
    feature_names:
        One name per feature column.
    target_name:
        Name of the regression target.
    description:
        Human-readable provenance note (for the UCI surrogates this states
        the substitution explicitly).
    """

    name: str
    X: FloatArray
    y: FloatArray
    feature_names: tuple[str, ...] = field(default_factory=tuple)
    target_name: str = "target"
    description: str = ""

    def __post_init__(self) -> None:
        X = np.asarray(self.X, dtype=np.float64)
        y = np.asarray(self.y, dtype=np.float64)
        if X.ndim != 2:
            raise DatasetError(f"X must be 2-D, got shape {X.shape}")
        if y.ndim != 1:
            raise DatasetError(f"y must be 1-D, got shape {y.shape}")
        if X.shape[0] != y.shape[0]:
            raise DatasetError(
                f"X and y lengths differ: {X.shape[0]} vs {y.shape[0]}"
            )
        if X.shape[0] == 0:
            raise DatasetError("dataset must contain at least one sample")
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "y", y)
        if self.feature_names and len(self.feature_names) != X.shape[1]:
            raise DatasetError(
                f"{len(self.feature_names)} feature names for "
                f"{X.shape[1]} features"
            )

    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return int(self.X.shape[1])

    def subsample(self, n: int, seed: int = 0) -> "Dataset":
        """Return a uniformly subsampled copy with at most ``n`` rows.

        Used by the benchmark harness to cap the runtime of the large
        surrogates (wine, ccpp) without changing their structure.
        """
        if n <= 0:
            raise DatasetError(f"n must be > 0, got {n}")
        if n >= self.n_samples:
            return self
        rng = np.random.default_rng(seed)
        idx = rng.choice(self.n_samples, size=n, replace=False)
        return Dataset(
            name=self.name,
            X=self.X[idx],
            y=self.y[idx],
            feature_names=self.feature_names,
            target_name=self.target_name,
            description=self.description,
        )

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, n_samples={self.n_samples}, "
            f"n_features={self.n_features})"
        )
